"""Data-parallel deep-learning proxy: BCE kernel + gradient allreduce.

Reproduces the paper's Section VI-D2 (Figures 10, 11): a CUDA binary
cross-entropy kernel (after [34]) computes per-parameter gradients on each
GPU; the gradients are then combined across ranks with one of three
mechanisms:

* ``traditional`` — ``cudaStreamSynchronize`` + host-staged ``MPI_Allreduce``;
* ``partitioned`` — the partitioned allreduce: the BCE kernel's wave hook
  issues device ``MPIX_Pready`` per user partition; the measurement
  includes ``MPI_Start`` and ``MPIX_Pbuf_prepare`` (they live inside a
  training loop — paper's methodology);
* ``nccl`` — ``ncclAllReduce`` on the stream, one sync at the end;
* ``graphed`` — the NCCL step (BCE kernel + fused ring allreduce) is
  stream-captured once into a transfer graph and replayed as a single
  graph launch per training step — identical timing and numerics to
  ``nccl``, one host submission per step instead of one per op.

The model is a per-parameter logistic unit: ``p_i = sigmoid(w_i * x_i)``,
``grad_i = (p_i - y_i) * x_i``; after averaging gradients across ranks and
stepping, the global loss must decrease — tests assert that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, List, Optional

import numpy as np

from repro.cuda.kernel import UniformKernel
from repro.cuda.timing import WorkSpec
from repro.hw.memory import Buffer
from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import SUM
from repro.nccl import NcclComm
from repro.partitioned import device as pdev


@dataclass(frozen=True)
class DlConfig:
    """One training-loop benchmark configuration."""

    grid: int = 1024               # the paper's swept parameter
    block: int = 1024              # 8 B per thread: data = grid*block*8 B
    steps: int = 4                 # training iterations measured
    variant: str = "traditional"   # 'traditional' | 'partitioned' | 'nccl'
    partitions: int = 8            # user partitions for the partitioned path
    lr: float = 0.5


@dataclass
class DlResult:
    time: float                    # simulated seconds for the timed loop
    goodput: float                 # bytes of gradient processed per second
    losses: List[float]
    grad: np.ndarray               # final (averaged) gradient


def _bce_loss(p: np.ndarray, y: np.ndarray) -> float:
    eps = 1e-12
    return float(-np.mean(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)))


def run_dl(ctx, cfg: DlConfig) -> Generator:
    """Rank-process generator: the DL proxy loop. Returns DlResult."""
    if cfg.variant not in ("traditional", "partitioned", "nccl", "graphed"):
        raise MpiUsageError(f"unknown DL variant {cfg.variant!r}")
    comm = ctx.comm
    n = cfg.grid * cfg.block
    rng = np.random.default_rng(1234 + comm.rank)

    # Per-rank data shard; shared initial weights.
    x = rng.standard_normal(n)
    y = (rng.random(n) < 0.5).astype(np.float64)
    w = np.zeros(n)

    grad = ctx.gpu.alloc(n, label="grad")        # kernel output / allreduce in-place
    work = WorkSpec.bce(elem_bytes=grad.itemsize)

    nccl = None
    pall = None
    preq = None
    dgraph = None
    if cfg.variant in ("nccl", "graphed"):
        nccl = yield from NcclComm.init(ctx)
    elif cfg.variant == "partitioned":
        pall = yield from comm.pallreduce_init(
            grad, grad, partitions=cfg.partitions, op=SUM, device=ctx.gpu
        )

    losses: List[float] = []

    def bce_apply() -> None:
        p = 1.0 / (1.0 + np.exp(-(w * x)))
        losses.append(_bce_loss(p, y))
        grad.data[:] = (p - y) * x

    if cfg.variant == "graphed":
        # Capture one training step's device work — BCE kernel plus the
        # fused NCCL ring allreduce — into a transfer graph (recording
        # only; nothing executes until the first launch).
        stream = ctx.gpu.default_stream
        stream.begin_capture()
        ctx.gpu.launch(UniformKernel(
            cfg.grid, cfg.block, work, name="bce_g", apply=bce_apply
        ))
        nccl.all_reduce(grad, grad, SUM)
        dgraph = stream.end_capture()

    t0 = ctx.now
    for step in range(cfg.steps):
        if cfg.variant == "traditional":
            kernel = UniformKernel(cfg.grid, cfg.block, work, name="bce", apply=bce_apply)
            yield from ctx.gpu.launch_h(kernel)
            yield from ctx.gpu.sync_h()
            yield from comm.allreduce(grad, grad, SUM)
        elif cfg.variant == "nccl":
            kernel = UniformKernel(cfg.grid, cfg.block, work, name="bce", apply=bce_apply)
            yield from ctx.gpu.launch_h(kernel)
            nccl.all_reduce(grad, grad, SUM)
            yield from ctx.gpu.sync_h()
        elif cfg.variant == "graphed":
            # One API charge + one submission replays kernel + allreduce.
            yield from ctx.gpu.graph_launch_h(dgraph)
            yield from ctx.gpu.sync_h()
        else:
            # Partitioned: Start + Pbuf_prepare are inside the timed loop
            # (they recur every training step — paper Section VI-D2).
            yield from pall.start()
            yield from pall.pbuf_prepare()
            if preq is None:
                preq = yield from pall.prequest_create(
                    ctx.gpu, grid=cfg.grid, block=cfg.block
                )
            kernel = UniformKernel(
                cfg.grid, cfg.block, work, name="bce_p", apply=bce_apply,
                wave_hook=pdev.PreadyWaveHook(preq),
            )
            yield from ctx.gpu.launch_h(kernel)
            yield from pall.wait()

        # Averaged-gradient SGD step (host math; not part of the model).
        w -= cfg.lr * grad.data / comm.size

    elapsed = ctx.now - t0
    goodput = (n * grad.itemsize * cfg.steps) / elapsed
    return DlResult(time=elapsed, goodput=goodput, losses=losses, grad=grad.data.copy())
