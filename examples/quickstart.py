#!/usr/bin/env python3
"""Quickstart: GPU-initiated MPI Partitioned send in ~60 lines.

Runs two MPI ranks (one per simulated GH200) inside one deterministic
simulation.  Rank 0 launches a vector-add kernel whose blocks call the
device MPIX_Pready — the data flows to rank 1 *while the host never
synchronizes the stream*; rank 1 just waits on its partitioned receive.

    python examples/quickstart.py
"""

import numpy as np

from repro.cuda import BlockKernel, WorkSpec
from repro.hw.params import ONE_NODE
from repro.mpi.world import World
from repro.partitioned import device as pdev
from repro.partitioned.prequest import CopyMode
from repro.units import us

GRID, BLOCK = 4, 1024                 # 4 blocks x 1024 threads x 8 B = 32 KiB
N = GRID * BLOCK


def main(ctx):
    comm = ctx.comm
    if ctx.rank == 0:
        # ---- sender: compute on GPU, communicate from inside the kernel --
        a = ctx.gpu.alloc(N, fill=1.5)
        b = ctx.gpu.alloc(N, fill=2.0)
        sbuf = ctx.gpu.alloc(N, label="send")

        sreq = yield from comm.psend_init(sbuf, partitions=GRID, dest=1, tag=7)
        yield from sreq.start()             # MPI_Start: open the epoch
        yield from sreq.pbuf_prepare()      # MPIX_Pbuf_prepare: receiver ready?
        preq = yield from sreq.prequest_create(   # MPIX_Prequest_create
            ctx.gpu, grid=GRID, block=BLOCK, mode=CopyMode.KERNEL_COPY,
        )

        def kernel_body(blk):               # runs per block, like __global__
            yield blk.compute(WorkSpec.vector_add())
            yield pdev.pready(blk, preq)    # device MPIX_Pready(my block)

        kernel = BlockKernel(
            GRID, BLOCK, kernel_body, name="vadd",
            apply=lambda: np.add(a.data, b.data, out=sbuf.data),
        )
        t0 = ctx.now
        yield from ctx.gpu.launch_h(kernel)  # async launch — and NO
        yield from sreq.wait()               # cudaStreamSynchronize anywhere
        print(f"[rank 0] kernel+send completed in {(ctx.now - t0) / us:.2f} "
              f"simulated us (no stream synchronize!)")
    else:
        # ---- receiver: persistent partitioned receive --------------------
        rbuf = ctx.gpu.alloc(N, label="recv")
        rreq = yield from comm.precv_init(rbuf, partitions=GRID, source=0, tag=7)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        assert np.all(rbuf.data == 3.5), "vector add result must arrive intact"
        print(f"[rank 1] received {rbuf.nbytes} bytes; "
              f"rbuf[0] = {rbuf.data[0]} (= 1.5 + 2.0)")
    return ctx.now


if __name__ == "__main__":
    world = World(ONE_NODE)
    times = world.run(main, nprocs=2)
    print(f"simulation finished at t = {max(times) / us:.2f} us")
