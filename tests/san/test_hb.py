"""Vector clocks and the happens-before race detector (synthetic traces)."""

from repro.san.clocks import VectorClock
from repro.san.hb import detect_races
from repro.san.record import ACCESS, ACQUIRE, RELEASE, TraceEvent

A = ("block", "gpu0", "k", 0)
B = ("block", "gpu0", "k", 1)


def ev(seq, kind, actor, *, obj=None, alloc=0, lo=0, hi=8, write=False):
    return TraceEvent(
        time=float(seq), seq=seq, kind=kind, actor=actor,
        obj=obj, alloc=alloc, lo=lo, hi=hi, write=write,
    )


# -- VectorClock ------------------------------------------------------------

def test_vector_clock_tick_and_get():
    vc = VectorClock()
    assert vc.get(A) == 0
    vc.tick(A)
    vc.tick(A)
    assert vc.get(A) == 2
    assert vc.get(B) == 0


def test_vector_clock_join_is_componentwise_max():
    a, b = VectorClock(), VectorClock()
    a.tick(A)
    b.tick(B)
    b.tick(B)
    a.join(b)
    assert a.get(A) == 1 and a.get(B) == 2


def test_vector_clock_dominates():
    a, b = VectorClock(), VectorClock()
    a.tick(A)
    assert a.dominates(b)
    b.tick(B)
    assert not a.dominates(b)
    a.join(b)
    assert a.dominates(b)


# -- race detection ----------------------------------------------------------

def test_unsynchronized_writes_race():
    races = detect_races(
        [ev(1, ACCESS, A, write=True), ev(2, ACCESS, B, write=True)], {}
    )
    assert len(races) == 1
    assert races[0].first.actor == A and races[0].second.actor == B


def test_read_read_never_races():
    assert detect_races([ev(1, ACCESS, A), ev(2, ACCESS, B)], {}) == []


def test_disjoint_ranges_never_race():
    races = detect_races(
        [
            ev(1, ACCESS, A, lo=0, hi=8, write=True),
            ev(2, ACCESS, B, lo=8, hi=16, write=True),
        ],
        {},
    )
    assert races == []


def test_different_allocations_never_race():
    races = detect_races(
        [
            ev(1, ACCESS, A, alloc=0, write=True),
            ev(2, ACCESS, B, alloc=1, write=True),
        ],
        {},
    )
    assert races == []


def test_same_actor_never_races():
    races = detect_races(
        [ev(1, ACCESS, A, write=True), ev(2, ACCESS, A, write=True)], {}
    )
    assert races == []


def test_release_acquire_orders_the_pair():
    sig = ("sig", 1)
    races = detect_races(
        [
            ev(1, ACCESS, A, write=True),
            ev(2, RELEASE, A, obj=sig),
            ev(3, ACQUIRE, B, obj=sig),
            ev(4, ACCESS, B, write=True),
        ],
        {},
    )
    assert races == []


def test_acquire_before_release_does_not_order():
    sig = ("sig", 1)
    races = detect_races(
        [
            ev(1, ACQUIRE, B, obj=sig),      # observed nothing yet
            ev(2, ACCESS, A, write=True),
            ev(3, RELEASE, A, obj=sig),
            ev(4, ACCESS, B, write=True),
        ],
        {},
    )
    assert len(races) == 1


def test_transitive_ordering_through_intermediary():
    pe = ("pe", 0)
    s1, s2 = ("sig", 1), ("arr", 2)
    races = detect_races(
        [
            ev(1, ACCESS, A, write=True),
            ev(2, RELEASE, A, obj=s1),
            ev(3, ACQUIRE, pe, obj=s1),
            ev(4, RELEASE, pe, obj=s2),
            ev(5, ACQUIRE, B, obj=s2),
            ev(6, ACCESS, B, write=False),
        ],
        {},
    )
    assert races == []


def test_anonymous_transport_copies_excluded():
    races = detect_races(
        [ev(1, ACCESS, None, write=True), ev(2, ACCESS, A, write=True)], {}
    )
    assert races == []


def test_one_report_per_directed_actor_pair():
    events = [
        ev(1, ACCESS, A, write=True),
        ev(2, ACCESS, B, write=True),
        ev(3, ACCESS, B, write=True),  # echo of the same A->B conflict
    ]
    assert len(detect_races(events, {})) == 1
