"""Recursive-doubling allreduce schedule + execution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.params import ONE_NODE, TestbedConfig
from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import MAX, SUM
from repro.mpi.world import World
from repro.pcoll.rd import recursive_doubling_allreduce_schedule, verify_rd_completion


def test_schedule_structure():
    s = recursive_doubling_allreduce_schedule(5, 8)
    assert s.n_steps == 3
    assert s.n_chunks == 1
    partners = [st.incoming[0] for st in s.steps]
    assert partners == [5 ^ 1, 5 ^ 2, 5 ^ 4]
    for step in s.steps:
        assert step.incoming == step.outgoing
        assert step.op is SUM


def test_power_of_two_required():
    with pytest.raises(MpiUsageError, match="power-of-two"):
        recursive_doubling_allreduce_schedule(0, 6)


def test_needs_two_ranks():
    with pytest.raises(MpiUsageError):
        recursive_doubling_allreduce_schedule(0, 1)


@pytest.mark.parametrize("p", [2, 4, 8, 16, 32])
def test_static_completion(p):
    assert verify_rd_completion(p)


@given(p_log=st.integers(min_value=1, max_value=6))
@settings(max_examples=10, deadline=None)
def test_property_completion(p_log):
    assert verify_rd_completion(1 << p_log)


def _run_rd(P, n=256, op=SUM, U=2, config=None):
    config = config or ONE_NODE

    def main(ctx):
        comm = ctx.comm
        w = ctx.gpu.alloc(n, fill=float(ctx.rank + 1))
        req = yield from comm.pallreduce_init(
            w, w, partitions=U, op=op, algorithm="recursive_doubling", device=ctx.gpu
        )
        yield from req.start()
        yield from req.pbuf_prepare()
        for u in range(U):
            yield from req.pready(u)
        yield from req.wait()
        return w.data.copy()

    return World(config).run(main, nprocs=P)


@pytest.mark.parametrize("P", [2, 4])
def test_rd_allreduce_sum(P):
    for r in _run_rd(P):
        assert np.all(r == sum(range(1, P + 1)))


def test_rd_allreduce_max():
    for r in _run_rd(4, op=MAX):
        assert np.all(r == 4.0)


def test_rd_eight_ranks_two_nodes():
    from repro.hw.params import PAPER_TESTBED

    for r in _run_rd(8, config=PAPER_TESTBED):
        assert np.all(r == 36.0)


def test_rd_random_payload():
    rng = np.random.default_rng(3)
    n = 128
    inputs = {r: rng.standard_normal(n) for r in range(4)}

    def main(ctx):
        comm = ctx.comm
        w = ctx.gpu.alloc(n)
        w.data[:] = inputs[ctx.rank]
        req = yield from comm.pallreduce_init(
            w, w, partitions=2, algorithm="recursive_doubling", device=ctx.gpu
        )
        yield from req.start()
        yield from req.pbuf_prepare()
        for u in range(2):
            yield from req.pready(u)
        yield from req.wait()
        return w.data.copy()

    for r in World(ONE_NODE).run(main, nprocs=4):
        assert np.allclose(r, sum(inputs.values()))


def test_rd_faster_than_ring_for_small_messages():
    from repro.units import us

    def run(alg):
        def main(ctx):
            comm = ctx.comm
            w = ctx.gpu.alloc(64, fill=1.0)
            req = yield from comm.pallreduce_init(
                w, w, partitions=1, algorithm=alg, device=ctx.gpu
            )
            yield from req.start()
            yield from req.pbuf_prepare()
            t0 = ctx.now
            yield from req.pready(0)
            yield from req.wait()
            return ctx.now - t0

        return max(World(ONE_NODE).run(main, nprocs=4))

    assert run("recursive_doubling") < run("ring")
