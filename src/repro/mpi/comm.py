"""Communicators.

A :class:`CommGroup` is the shared identity of a communicator (id + the
ordered list of world ranks); each rank holds its own :class:`Communicator`
facade bound to its local runtime, exposing the MPI API as generator
methods (``req = yield from comm.isend(...)``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional, Sequence

from repro.hw.memory import Buffer
from repro.mpi import p2p
from repro.mpi.errors import MpiUsageError
from repro.mpi.matching import ANY
from repro.mpi.ops import MpiOp, SUM

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.runtime import MpiRuntime

ANY_SOURCE = ANY
ANY_TAG = ANY


class CommGroup:
    """Shared communicator identity."""

    def __init__(self, comm_id: int, world_ranks: Sequence[int]) -> None:
        self.comm_id = comm_id
        self.world_ranks: List[int] = list(world_ranks)

    @property
    def size(self) -> int:
        return len(self.world_ranks)


class Communicator:
    """One rank's view of a communicator."""

    def __init__(self, group: CommGroup, rt: "MpiRuntime") -> None:
        self.group = group
        self.rt = rt
        try:
            self.rank = group.world_ranks.index(rt.world_rank)
        except ValueError:
            raise MpiUsageError(
                f"world rank {rt.world_rank} is not in communicator {group.comm_id}"
            )
        rt.comms[group.comm_id] = self

    # -- identity ---------------------------------------------------------------
    @property
    def comm_id(self) -> int:
        return self.group.comm_id

    @property
    def size(self) -> int:
        return self.group.size

    def world_rank_of(self, comm_rank: int) -> int:
        if not 0 <= comm_rank < self.size:
            raise MpiUsageError(f"rank {comm_rank} out of range (size {self.size})")
        return self.group.world_ranks[comm_rank]

    # -- communicator management ------------------------------------------------
    def dup(self) -> Generator:
        """MPI_Comm_dup: same group, fresh context id (collective)."""
        return (yield from self.split(color=0, key=self.rank))

    def split(self, color: int, key: Optional[int] = None) -> Generator:
        """MPI_Comm_split (collective): group by ``color``, order by ``key``.

        ``color < 0`` (MPI_UNDEFINED) yields None for that rank.  The new
        context id and memberships are agreed out-of-band through the
        launcher (PMIx-style), then a barrier on the parent synchronizes
        the ranks like the real collective would.
        """
        rt = self.rt
        key = key if key is not None else self.rank
        world = rt.world
        slot = world.comm_split_slot(self)
        slot.submit(self.rank, color, key, rt.world_rank)
        yield from self.barrier()
        group = slot.group_for(color)
        if group is None:
            return None
        return Communicator(group, rt)

    # -- point-to-point ------------------------------------------------------------
    def isend(self, buf: Buffer, dest: int, tag: int = 0) -> Generator:
        return (yield from p2p.isend(self, buf, dest, tag))

    def irecv(self, buf: Buffer, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        return (yield from p2p.irecv(self, buf, source, tag))

    def send(self, buf: Buffer, dest: int, tag: int = 0) -> Generator:
        yield from p2p.send(self, buf, dest, tag)

    def recv(self, buf: Buffer, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        return (yield from p2p.recv(self, buf, source, tag))

    def send_init(self, buf: Buffer, dest: int, tag: int = 0) -> Generator:
        return (yield from p2p.send_init(self, buf, dest, tag))

    def recv_init(self, buf: Buffer, source: int, tag: int = 0) -> Generator:
        return (yield from p2p.recv_init(self, buf, source, tag))

    def sendrecv(
        self,
        sendbuf: Buffer,
        dest: int,
        recvbuf: Buffer,
        source: int,
        sendtag: int = 0,
        recvtag: int = 0,
    ) -> Generator:
        yield from p2p.sendrecv(self, sendbuf, dest, recvbuf, source, sendtag, recvtag)

    # -- collectives (traditional baselines) ------------------------------------------
    def barrier(self) -> Generator:
        from repro.mpi import collectives

        yield from collectives.barrier(self)

    def bcast(self, buf: Buffer, root: int = 0) -> Generator:
        from repro.mpi import collectives

        yield from collectives.bcast(self, buf, root)

    def allreduce(self, sendbuf: Buffer, recvbuf: Buffer, op: MpiOp = SUM) -> Generator:
        from repro.mpi import collectives

        yield from collectives.allreduce(self, sendbuf, recvbuf, op)

    def reduce(self, sendbuf: Buffer, recvbuf: Optional[Buffer], op: MpiOp = SUM, root: int = 0) -> Generator:
        from repro.mpi import collectives

        yield from collectives.reduce(self, sendbuf, recvbuf, op, root)

    def allgather(self, sendbuf: Buffer, recvbuf: Buffer) -> Generator:
        from repro.mpi import collectives

        yield from collectives.allgather(self, sendbuf, recvbuf)

    # -- MPI Partitioned (the paper's contribution) --------------------------------------
    def psend_init(self, buf: Buffer, partitions: int, dest: int, tag: int = 0) -> Generator:
        from repro.partitioned.p2p import psend_init

        return (yield from psend_init(self, buf, partitions, dest, tag))

    def precv_init(self, buf: Buffer, partitions: int, source: int, tag: int = 0) -> Generator:
        from repro.partitioned.p2p import precv_init

        return (yield from precv_init(self, buf, partitions, source, tag))

    # -- Partitioned collectives ------------------------------------------------------
    def pallreduce_init(
        self, sendbuf: Buffer, recvbuf: Buffer, partitions: int, op: MpiOp = SUM, **kw
    ) -> Generator:
        from repro.pcoll.api import pallreduce_init

        return (yield from pallreduce_init(self, sendbuf, recvbuf, partitions, op, **kw))

    def pbcast_init(self, buf: Buffer, partitions: int, root: int = 0, **kw) -> Generator:
        from repro.pcoll.api import pbcast_init

        return (yield from pbcast_init(self, buf, partitions, root, **kw))

    def preduce_init(
        self, buf: Buffer, partitions: int, op: MpiOp = SUM, root: int = 0, **kw
    ) -> Generator:
        from repro.pcoll.api import preduce_init

        return (yield from preduce_init(self, buf, partitions, op, root, **kw))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator id={self.comm_id} rank={self.rank}/{self.size}>"
