"""Fig 6: allreduce on four GH200 (one node) — partitioned vs MPI vs NCCL.

Paper claims reproduced here:

* the partitioned allreduce is dramatically (paper: "multiple orders of
  magnitude") faster than the traditional device-buffer MPI_Allreduce at
  the kernel+communication level;
* NCCL still beats the partitioned allreduce at every size (the
  in-collective reduction kernels + stream synchronizations, Section
  VI-B), with a few-hundred-microsecond gap at a 1K grid (paper 226 us).
"""

from conftest import run_exhibit, within

from repro.bench import figures

GRIDS = (1024, 4096, 16384)


def test_fig6_allreduce_1node(benchmark):
    series = run_exhibit(benchmark, figures.fig6, grids=GRIDS)

    for row in series.rows:
        assert row["traditional_us"] > row["partitioned_us"] > row["nccl_us"], (
            f"ordering must be traditional > partitioned > NCCL at grid {row['grid']}"
        )
        assert row["trad_over_part"] > 5.0, (
            "partitioned must be dramatically faster than MPI_Allreduce"
        )

    at_1k = series.rows[0]
    assert at_1k["grid"] == 1024
    within(at_1k["part_minus_nccl_us"], 100.0, 500.0, "partitioned-NCCL gap at 1K (paper ~226us)")

    # The traditional/partitioned factor grows with size (>= an order of
    # magnitude for the larger grids).
    assert series.rows[-1]["trad_over_part"] > 10.0
