"""Device-side action APIs available to kernel bodies and wave hooks.

A :class:`BlockCtx` is handed to each block of a
:class:`~repro.cuda.kernel.BlockKernel`; every method returns an
:class:`~repro.sim.events.Event` so the body chooses to wait (``yield``)
or post fire-and-forget — mirroring how device stores are posted while
``__threadfence_system`` + spin loops wait.

A :class:`KernelCtx` is handed to :class:`~repro.cuda.kernel.UniformKernel`
wave hooks and exposes *bulk* equivalents that aggregate many blocks'
effects into O(1) simulation events.

Host-visible signalling cost model (paper Fig 3): ``n`` device-thread
writes into pinned host memory serialize on the superchip's C2C link at
``flag_write_host`` each, plus a fixed ``flag_write_base`` until the value
is observable by the host — producing the paper's 271.5x (1024 vs 1 write)
and 9.4x (32 vs 1) aggregation ratios.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.cuda.timing import WorkSpec
from repro.hw.memory import Buffer, MemSpace
from repro.san import record
from repro.sim.events import Event
from repro.sim.resources import Counter, Flag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cuda.device import Device

#: Things a device flag-write can fire: a Flag (set) or Counter (add).
HostSignal = Union[Flag, Counter, Callable[[], None]]


def _fire(signal: HostSignal, amount: int = 1) -> None:
    if isinstance(signal, Flag):
        signal.set()
    elif isinstance(signal, Counter):
        signal.add(amount)
    else:
        signal()


def host_flag_write_proc(
    device: "Device", n_writes: int, signal: HostSignal, amount: int = 1, actor=None
):
    """Process: ``n_writes`` serialized device->host flag stores, then fire.

    The C2C down-link port serializes the stores (against other blocks'
    stores too); the fixed base covers the fence + host visibility delay.
    ``actor``, when given, release-publishes everything it did so far to
    whoever observes ``signal`` (the progression engine's watcher).
    """
    if n_writes < 1:
        raise ValueError("n_writes must be >= 1")
    hw = device.fabric.config.params
    link = device.fabric.d2h_link(device.gpu_id)
    yield link.port.acquire()
    t0 = device.engine.now
    yield device.engine.timeout(n_writes * hw.flag_write_host)
    link.account(8 * n_writes, t0, transfers=n_writes)
    link.port.release()
    yield device.engine.timeout(hw.flag_write_base)
    if actor is not None:
        record.release(actor, ("sig", id(signal)))
    _fire(signal, amount)
    return n_writes


def multi_flag_write_proc(device: "Device", signals, actor=None):
    """Aggregate of several same-instant crossing signals, one store each.

    Replays exactly what ``len(signals)`` concurrent single-write
    ``host_flag_write_proc`` processes would do — the C2C port serializes
    them back-to-back (FIFO hands the slot over at the same instant), so
    store ``k`` occupies ``[T + (k-1)*w, T + k*w]`` and fires
    ``flag_write_base`` after its own store — but in one process instead
    of one per signal.  Only the coalescing fast path uses this (the
    engine is unobserved there, hence no per-signal ``record`` calls);
    the exact path keeps per-signal processes.
    """
    hw = device.fabric.config.params
    link = device.fabric.d2h_link(device.gpu_id)
    engine = device.engine
    yield link.port.acquire()
    for signal in signals:
        t0 = engine.now
        yield engine.timeout(hw.flag_write_host)
        link.account(8, t0, transfers=1)
        engine.timeout(hw.flag_write_base).add_callback(
            lambda _ev, s=signal: _fire(s, 1)
        )
    link.port.release()
    return len(signals)


def _fenced_copy(device: "Device", src: Buffer, dst: Buffer, name: str, actor=None) -> Event:
    """Intra-kernel store sequence: wire transfer + system fence."""

    def proc():
        record.access(actor, src, write=False, note=name)
        record.access(actor, dst, write=True, note=name)
        yield device.fabric.dataplane.put(
            src, dst, traffic_class="cuda", initiator="device", name=name
        )
        yield device.engine.timeout(device.fabric.config.params.kc_fence_overhead)

    ev = device.engine.process(proc(), name=name)
    if actor is not None:
        # Release at fence-visible time, keyed by the completion event, so
        # a waiter (e.g. the PE holding this kernel-copy event) acquires it.
        ev.add_callback(lambda _ev: record.release(actor, ("copydone", id(ev))))
    return ev


class BlockCtx:
    """Per-block device context (exact simulation path)."""

    __slots__ = ("device", "kernel", "block_id", "block_threads")

    def __init__(self, device: "Device", kernel, block_id: int) -> None:
        self.device = device
        self.kernel = kernel
        self.block_id = block_id
        self.block_threads = kernel.block

    # -- engine plumbing ------------------------------------------------------
    @property
    def engine(self):
        return self.device.engine

    @property
    def now(self) -> float:
        return self.device.engine.now

    @property
    def actor(self) -> tuple:
        """Sanitizer trace identity of this block."""
        return self.kernel.block_actor(self.device, self.block_id)

    def _spawn(self, gen, name: str) -> Event:
        return self.device.engine.process(gen, name=name)

    # -- compute ----------------------------------------------------------------
    def compute(self, work: WorkSpec) -> Event:
        """This block's compute phase (isolated-block cost model)."""
        dt = self.device.cost.block_compute_time(self.block_threads, work)
        return self.engine.timeout(dt)

    def syncthreads(self) -> Event:
        """``__syncthreads()`` — intra-block barrier cost."""
        record.mark("syncthreads", actor=self.actor)
        return self.engine.timeout(self.device.cost.syncthreads_cost)

    # -- sanitizer annotations ----------------------------------------------------
    def note_read(self, buf: Buffer) -> None:
        """Annotate that this block's threads read ``buf`` (zero sim cost)."""
        record.access(self.actor, buf, write=False, note="note_read")

    def note_write(self, buf: Buffer) -> None:
        """Annotate that this block's threads wrote ``buf`` (zero sim cost)."""
        record.access(self.actor, buf, write=True, note="note_write")

    # -- host signalling (MPIX_Pready progression-engine path) ---------------------
    def write_host_flags(self, n_writes: int, signal: HostSignal, amount: int = 1) -> Event:
        """``n_writes`` serialized stores into pinned host memory, then fire."""
        return self._spawn(
            host_flag_write_proc(self.device, n_writes, signal, amount, actor=self.actor),
            name=f"hflag[{self.kernel.name}:{self.block_id}]",
        )

    def write_host_flag(self, signal: HostSignal, amount: int = 1) -> Event:
        return self.write_host_flags(1, signal, amount)

    # -- global memory atomics (block aggregation counters) -----------------------
    def atomic_add(self, counter: Counter, amount: int = 1) -> Event:
        """Atomic add in this GPU's global memory; event value = new count."""
        def proc():
            yield self.engine.timeout(self.device.fabric.config.params.gmem_atomic)
            # An atomic RMW is both an acquire and a release on the counter:
            # every pair of atomics on it is happens-before ordered.
            record.acquire(self.actor, ("ctr", id(counter)))
            record.release(self.actor, ("ctr", id(counter)))
            return counter.add(amount)

        return self._spawn(proc(), name=f"atomic[{self.kernel.name}:{self.block_id}]")

    # -- intra-kernel copies (Kernel-Copy MPIX_Pready path) --------------------------
    def copy(self, src: Buffer, dst: Buffer) -> Event:
        """Load/store copy from this kernel, e.g. over NVLink to a peer GPU.

        ``dst`` is typically an IPC-mapped view of remote device memory
        obtained through ``ucp_rkey_ptr`` (see repro.ucx.memreg).  The
        event fires once the stores are peer-visible: wire time plus the
        ``__threadfence_system`` fence cost.
        """
        if not src.space.device_accessible or not dst.space.device_accessible:
            raise ValueError("kernel copy requires device-accessible buffers")
        return _fenced_copy(
            self.device, src, dst, f"kcopy[{self.kernel.name}:{self.block_id}]",
            actor=self.actor,
        )

    # -- polling ------------------------------------------------------------------
    def wait_flag(self, flag: Flag) -> Event:
        """Spin on a flag in device-visible memory (MPIX_Parrived device path)."""
        ev = flag.wait()
        actor = self.actor
        ev.add_callback(lambda _ev: record.acquire(actor, ("sig", id(flag))))
        return ev


class KernelCtx:
    """Aggregate device context passed to UniformKernel wave hooks."""

    __slots__ = ("device", "kernel")

    def __init__(self, device: "Device", kernel) -> None:
        self.device = device
        self.kernel = kernel

    @property
    def engine(self):
        return self.device.engine

    @property
    def now(self) -> float:
        return self.device.engine.now

    @property
    def actor(self) -> tuple:
        """Sanitizer trace identity of this kernel's wave context."""
        return self.kernel.actor(self.device)

    def note_read(self, buf: Buffer) -> None:
        """Annotate an aggregate read by this kernel's blocks (zero cost)."""
        record.access(self.actor, buf, write=False, note="note_read")

    def note_write(self, buf: Buffer) -> None:
        """Annotate an aggregate write by this kernel's blocks (zero cost)."""
        record.access(self.actor, buf, write=True, note="note_write")

    def bulk_host_flag_writes(self, n_writes: int, signal: HostSignal, amount: int = 1) -> Event:
        """Aggregate of ``n_writes`` serialized flag stores starting now."""
        return self.device.engine.process(
            host_flag_write_proc(self.device, n_writes, signal, amount, actor=self.actor),
            name=f"hflag[{self.kernel.name}]",
        )

    def bulk_crossing_signals(self, signals) -> Event:
        """Aggregate of several same-wave crossing signals (fast path only).

        See :func:`multi_flag_write_proc`; used by the coalesced-
        signalling layer when one wave crosses the threshold of multiple
        contiguous transport partitions at once.
        """
        return self.device.engine.process(
            multi_flag_write_proc(self.device, signals, actor=self.actor),
            name=f"hflags[{self.kernel.name}]",
        )

    def bulk_atomic_adds(self, counter: Counter, amount: int) -> Event:
        """Aggregate global-memory atomics: ``amount`` increments at once."""
        def proc():
            yield self.engine.timeout(self.device.fabric.config.params.gmem_atomic)
            record.acquire(self.actor, ("ctr", id(counter)))
            record.release(self.actor, ("ctr", id(counter)))
            return counter.add(amount)

        return self.device.engine.process(proc(), name=f"atomic[{self.kernel.name}]")

    def copy(self, src: Buffer, dst: Buffer) -> Event:
        """Intra-kernel bulk copy (Kernel-Copy transport partition)."""
        if not src.space.device_accessible or not dst.space.device_accessible:
            raise ValueError("kernel copy requires device-accessible buffers")
        return _fenced_copy(
            self.device, src, dst, f"kcopy[{self.kernel.name}]", actor=self.actor
        )
