"""Chrome trace_event export: structure, track naming, schema validation."""

import pytest

from repro.obs.bus import COUNTER, INSTANT, SPAN, ObsEvent
from repro.obs.chrome import ChromeTraceExporter, chrome_trace, validate_trace


def _ev(kind, cat, name, actor=None, t0=0.0, t1=None, seq=1, **payload):
    return ObsEvent(kind, cat, name, actor, t0, t0 if t1 is None else t1,
                    seq, tuple(sorted(payload.items())))


def test_span_becomes_complete_event_in_microseconds():
    obj = chrome_trace([_ev(SPAN, "kernel", "vec_add", ("gpu", "gpu0"),
                            t0=1e-6, t1=3e-6, grid=4)])
    xs = [e for e in obj["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 1
    assert xs[0]["name"] == "vec_add"
    assert xs[0]["ts"] == pytest.approx(1.0)
    assert xs[0]["dur"] == pytest.approx(2.0)
    assert xs[0]["args"] == {"grid": 4}


def test_one_named_track_per_actor():
    obj = chrome_trace([
        _ev(SPAN, "kernel", "k", ("gpu", "gpu0"), t0=0.0, t1=1.0, seq=1),
        _ev(SPAN, "pe", "rts", ("pe", 0), t0=0.0, t1=1.0, seq=2),
        _ev(SPAN, "link", "nvl0->1", None, t0=0.0, t1=1.0, seq=3),
    ])
    meta = {e["args"]["name"]: e["tid"]
            for e in obj["traceEvents"] if e["ph"] == "M"}
    # Actor tracks use san.record naming; anonymous events group by category.
    assert set(meta) == {"gpu(gpu0)", "pe(0)", "link"}
    tids = [e["tid"] for e in obj["traceEvents"] if e["ph"] == "X"]
    assert sorted(tids) == sorted(meta.values())


def test_engine_steps_excluded_unless_asked():
    events = [
        _ev(INSTANT, "engine", "step", seq=1, prio=0),
        _ev(INSTANT, "mpi", "am-rts", ("pe", 0), seq=2),
    ]
    names = [e["name"] for e in chrome_trace(events)["traceEvents"]]
    assert "step" not in names and "am-rts" in names
    names = [e["name"]
             for e in chrome_trace(events, include=("engine",))["traceEvents"]]
    assert "step" in names


def test_counter_keeps_numeric_args_only():
    obj = chrome_trace([_ev(COUNTER, "stream", "s0", seq=1, depth=3, note="x")])
    cs = [e for e in obj["traceEvents"] if e["ph"] == "C"]
    assert cs[0]["args"] == {"depth": 3}


def test_object_payloads_degrade_to_labels():
    class Buf:
        label = "gpu0.buf1"

    obj = chrome_trace([_ev(INSTANT, "san", "access", ("gpu", 0), seq=1,
                            buf=Buf(), write=True)])
    ev = [e for e in obj["traceEvents"] if e["ph"] == "i"][0]
    assert ev["args"] == {"buf": "<gpu0.buf1>", "write": True}
    assert ev["s"] == "t"


def test_exporter_roundtrip_validates(tmp_path):
    import json

    exp = ChromeTraceExporter()
    exp.on_event(_ev(SPAN, "link", "nvl0->1", t0=0.0, t1=1e-6, nbytes=64))
    out = tmp_path / "t.json"
    exp.write(str(out))
    obj = json.loads(out.read_text())
    validate_trace(obj)
    assert obj["otherData"]["source"] == "repro.obs"


@pytest.mark.parametrize("bad,msg", [
    ([], "traceEvents"),
    ({"traceEvents": [{"ph": "Q", "name": "x", "pid": 0, "ts": 0}]}, "phase"),
    ({"traceEvents": [{"ph": "i", "pid": 0, "ts": 0}]}, "name"),
    ({"traceEvents": [{"ph": "i", "name": "x", "ts": 0}]}, "pid"),
    ({"traceEvents": [{"ph": "i", "name": "x", "pid": 0, "ts": -1}]}, "ts"),
    ({"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "ts": 0}]}, "dur"),
    ({"traceEvents": [{"ph": "C", "name": "x", "pid": 0, "ts": 0}]}, "args"),
], ids=["no-list", "bad-ph", "no-name", "no-pid", "neg-ts", "no-dur", "no-args"])
def test_validate_rejects_malformed(bad, msg):
    with pytest.raises(ValueError, match=msg):
        validate_trace(bad)
