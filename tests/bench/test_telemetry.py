"""Byte-conservation properties via link telemetry."""

import numpy as np
import pytest

from repro.bench.telemetry import report, snapshot
from repro.hw.params import ONE_NODE, TestbedConfig
from repro.mpi.world import World
from repro.partitioned.prequest import CopyMode
from repro.partitioned import device as pdev
from repro.cuda.kernel import BlockKernel
from repro.cuda.timing import WorkSpec


def _partitioned_send(mode, n=4096, partitions=4):
    """Run one device-initiated partitioned send; return (world, snaps)."""
    world = World(ONE_NODE)
    snaps = {}

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(n, fill=1.0)
            sreq = yield from comm.psend_init(sbuf, partitions, dest=1, tag=0)
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            preq = yield from sreq.prequest_create(
                ctx.gpu, grid=partitions, block=n // partitions, mode=mode
            )
            snaps["before"] = snapshot(ctx.world.fabric)

            def body(blk):
                yield blk.compute(WorkSpec.vector_add())
                yield pdev.pready(blk, preq)

            yield from ctx.gpu.launch_h(BlockKernel(partitions, n // partitions, body))
            yield from sreq.wait()
        else:
            rbuf = ctx.gpu.alloc(n)
            rreq = yield from comm.precv_init(rbuf, partitions, source=0, tag=0)
            yield from rreq.start()
            yield from rreq.pbuf_prepare()
            yield from rreq.wait()
            snaps["after"] = snapshot(ctx.world.fabric)
            assert np.all(rbuf.data == 1.0)

    world.run(main, nprocs=2)
    return world, snaps


@pytest.mark.parametrize("mode", [CopyMode.PROGRESSION_ENGINE, CopyMode.KERNEL_COPY])
def test_payload_bytes_cross_nvlink_exactly_once(mode):
    n = 4096
    world, snaps = _partitioned_send(mode, n=n)
    delta = snaps["before"].delta(snaps["after"])
    payload = n * 8
    # The payload crosses NVLink exactly once (plus nothing else that big).
    assert delta["nvlink"].bytes == payload
    # And exactly `partitions` data transfers happened on NVLink.
    assert delta["nvlink"].transfers == 4


def test_signalling_goes_over_c2c_not_nvlink():
    world, snaps = _partitioned_send(CopyMode.PROGRESSION_ENGINE)
    delta = snaps["before"].delta(snaps["after"])
    # Device -> host ready signals: at least one per transport partition.
    assert delta["c2c_d2h"].transfers >= 4
    assert delta["c2c_d2h"].bytes < 1024  # tiny flag stores only


def test_intra_node_send_uses_no_nic():
    world, snaps = _partitioned_send(CopyMode.KERNEL_COPY)
    delta = snaps["before"].delta(snaps["after"])
    assert delta["nic_out"].bytes == 0
    assert delta["nic_in"].bytes == 0


def test_inter_node_payload_crosses_nic_once():
    config = TestbedConfig(n_nodes=2, gpus_per_node=1)
    world = World(config)
    n = 8192

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(n, fill=2.0)
            before = snapshot(ctx.world.fabric)
            yield from comm.send(sbuf, dest=1, tag=0)
            return before
        rbuf = ctx.gpu.alloc(n)
        yield from comm.recv(rbuf, source=0, tag=0)
        return snapshot(ctx.world.fabric)

    before, after = world.run(main, nprocs=2)
    delta = before.delta(after)
    # Data once through the NIC; control envelopes are small.
    assert n * 8 <= delta["nic_out"].bytes < n * 8 + 2048


def test_delta_reports_classes_missing_from_later_snapshot():
    """Regression: classes only present in `before` used to vanish from the
    delta; they must show up (as negative deltas) instead."""
    from repro.bench.telemetry import FabricSnapshot, LinkStats

    before = FabricSnapshot({
        "nvlink": LinkStats(bytes=100, transfers=2),
        "nic_out": LinkStats(bytes=7, transfers=1),
    })
    later = FabricSnapshot({"nvlink": LinkStats(bytes=150, transfers=3)})
    delta = before.delta(later)
    assert delta["nvlink"].bytes == 50 and delta["nvlink"].transfers == 1
    assert "nic_out" in delta.classes
    assert delta["nic_out"].bytes == -7 and delta["nic_out"].transfers == -1


@pytest.mark.parametrize("mode", [CopyMode.PROGRESSION_ENGINE, CopyMode.KERNEL_COPY])
def test_bus_counters_match_link_snapshot_delta(mode):
    """LinkFlowCounters (event-derived) agrees with the in-place counters
    (snapshot delta) for every link class a run touched."""
    from repro.bench.telemetry import LinkFlowCounters
    from repro.obs import bus as obs_bus

    bus = obs_bus.Bus()
    flows = LinkFlowCounters()
    bus.subscribe(flows)
    obs_bus.install(bus)
    try:
        world, snaps = _partitioned_send(mode)
    finally:
        obs_bus.uninstall()
    end = snapshot(world.fabric)
    # Events cover the whole run; compare against a zero 'before'.
    from repro.bench.telemetry import FabricSnapshot

    full = FabricSnapshot().delta(end)
    for kind, st in full.classes.items():
        assert flows.snap[kind].bytes == st.bytes, kind
        assert flows.snap[kind].transfers == st.transfers, kind


def test_report_renders(one_node_world):
    def main(ctx):
        yield from ctx.comm.barrier()

    one_node_world.run(main, nprocs=2)
    text = report(one_node_world.fabric)
    assert "nvlink" in text and "hostmem" in text
