"""Captured-transfer-graph lifetime checks (graph-capture-mutation)."""

import textwrap

from .conftest import rules_of

ONLY = ["graph-capture-mutation"]


def src(body, path="src/repro/apps/m.py"):
    return {path: textwrap.dedent(body)}


def test_free_between_capture_and_launch_flagged(analyze):
    findings = analyze(src("""
        def step(gpu, stream, buf, kernel):
            stream.begin_capture()
            gpu.launch(kernel)
            graph = stream.end_capture()
            buf.free()
            stream.graph_launch(graph)
    """), only=ONLY)
    assert rules_of(findings) == ["graph-capture-mutation"]
    assert findings[0].line == 6
    assert findings[0].function == "step"


def test_free_inside_replay_loop_flagged(analyze):
    # The free runs after the first launch but before the back edge —
    # every subsequent replay acts on freed memory.
    findings = analyze(src("""
        def steps(gpu, stream, scratch, kernel, iters):
            stream.begin_capture()
            gpu.launch(kernel)
            graph = stream.end_capture()
            for _ in range(iters):
                stream.graph_launch(graph)
                scratch.free()
    """), only=ONLY)
    assert rules_of(findings) == ["graph-capture-mutation"]
    assert findings[0].line == 8


def test_spec_mutation_between_capture_and_launch_flagged(analyze):
    findings = analyze(src("""
        def step(gpu, stream, desc, kernel):
            stream.begin_capture()
            gpu.launch(kernel)
            graph = stream.end_capture()
            desc.nbytes = 0
            yield from gpu.graph_launch_h(graph)
    """), only=ONLY)
    assert rules_of(findings) == ["graph-capture-mutation"]
    assert "desc.nbytes" in findings[0].message


def test_free_after_last_launch_clean(analyze):
    findings = analyze(src("""
        def step(gpu, stream, buf, kernel):
            stream.begin_capture()
            gpu.launch(kernel)
            graph = stream.end_capture()
            stream.graph_launch(graph)
            buf.free()
    """), only=ONLY)
    assert findings == []


def test_free_before_capture_clean(analyze):
    findings = analyze(src("""
        def step(gpu, stream, old, kernel):
            old.free()
            stream.begin_capture()
            gpu.launch(kernel)
            graph = stream.end_capture()
            stream.graph_launch(graph)
    """), only=ONLY)
    assert findings == []


def test_capture_only_and_replay_only_functions_out_of_scope(analyze):
    # Ordering across functions is the caller's concern — beyond a
    # per-function CFG, so neither half is analyzed alone.
    findings = analyze(src("""
        def capture(gpu, stream, buf, kernel):
            stream.begin_capture()
            gpu.launch(kernel)
            buf.free()
            return stream.end_capture()

        def replay(stream, graph, buf):
            buf.free()
            stream.graph_launch(graph)
    """), only=ONLY)
    assert findings == []


def test_inline_suppression_silences_reviewed_site(analyze):
    findings = analyze(src("""
        def step(gpu, stream, buf, kernel):
            stream.begin_capture()
            gpu.launch(kernel)
            graph = stream.end_capture()
            buf.free()  # repro: ignore[graph-capture-mutation]
            stream.graph_launch(graph)
    """), only=ONLY)
    assert findings == []


def test_repo_source_is_clean(analyze_path):
    from .conftest import REPRO_SRC

    findings = analyze_path(REPRO_SRC, only=ONLY)
    assert findings == []
