"""Point-to-point: eager/rendezvous, blocking/nonblocking, ordering."""

import numpy as np
import pytest

from repro.hw.memory import MemSpace
from repro.hw.params import ONE_NODE, PAPER_TESTBED, TestbedConfig
from repro.mpi.errors import MpiMatchError, MpiUsageError
from repro.mpi.matching import ANY
from repro.mpi.requests import waitall
from repro.mpi.world import World


def test_eager_host_send_recv():
    def main(ctx):
        comm = ctx.comm
        buf = ctx.gpu.alloc_pinned(8, fill=float(ctx.rank))
        if ctx.rank == 0:
            yield from comm.send(buf, dest=1, tag=1)
            return "sent"
        rbuf = ctx.gpu.alloc_pinned(8)
        st = yield from comm.recv(rbuf, source=0, tag=1)
        assert np.all(rbuf.data == 0.0)
        return st["protocol"]

    res = World(ONE_NODE).run(main, nprocs=2)
    assert res[1] == "eager"


def test_rendezvous_for_device_buffers():
    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(256, fill=1.5)
            yield from comm.send(sbuf, dest=1, tag=0)
        else:
            rbuf = ctx.gpu.alloc(256)
            st = yield from comm.recv(rbuf, source=0, tag=0)
            assert np.all(rbuf.data == 1.5)
            return st["protocol"]

    assert World(ONE_NODE).run(main, nprocs=2)[1] == "rndv"


def test_rendezvous_for_large_host_buffers():
    def main(ctx):
        comm = ctx.comm
        n = 4096  # 32 KiB > eager threshold
        if ctx.rank == 0:
            yield from comm.send(ctx.gpu.alloc_pinned(n, fill=2.0), dest=1)
        else:
            rbuf = ctx.gpu.alloc_pinned(n)
            st = yield from comm.recv(rbuf, source=0)
            assert np.all(rbuf.data == 2.0)
            return st["protocol"]

    assert World(ONE_NODE).run(main, nprocs=2)[1] == "rndv"


def test_unexpected_message_buffered():
    """Send completes (eager) before the receive is even posted."""

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            yield from comm.send(ctx.gpu.alloc_pinned(4, fill=9.0), dest=1, tag=3)
        else:
            yield ctx.engine.timeout(50e-6)  # post late
            rbuf = ctx.gpu.alloc_pinned(4)
            yield from comm.recv(rbuf, source=0, tag=3)
            assert np.all(rbuf.data == 9.0)

    World(ONE_NODE).run(main, nprocs=2)


def test_any_source_any_tag():
    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            yield from comm.send(ctx.gpu.alloc_pinned(4, fill=5.0), dest=1, tag=42)
        else:
            rbuf = ctx.gpu.alloc_pinned(4)
            st = yield from comm.recv(rbuf, source=ANY, tag=ANY)
            assert st["source"] == 0 and st["tag"] == 42

    World(ONE_NODE).run(main, nprocs=2)


def test_non_overtaking_order():
    """Two same-envelope messages arrive in send order."""

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            for v in (1.0, 2.0):
                yield from comm.send(ctx.gpu.alloc_pinned(4, fill=v), dest=1, tag=0)
        else:
            vals = []
            for _ in range(2):
                rbuf = ctx.gpu.alloc_pinned(4)
                yield from comm.recv(rbuf, source=0, tag=0)
                vals.append(rbuf.data[0])
            assert vals == [1.0, 2.0]

    World(ONE_NODE).run(main, nprocs=2)


def test_truncation_error():
    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            yield from comm.send(ctx.gpu.alloc_pinned(100, fill=1.0), dest=1)
        else:
            with pytest.raises(MpiMatchError, match="truncation"):
                rbuf = ctx.gpu.alloc_pinned(10)
                yield from comm.recv(rbuf, source=0)
            return "caught"
        return None

    assert World(ONE_NODE).run(main, nprocs=2)[1] == "caught"


def test_isend_irecv_waitall():
    def main(ctx):
        comm = ctx.comm
        peer = 1 - ctx.rank
        sbuf = ctx.gpu.alloc(64, fill=float(ctx.rank + 1))
        rbuf = ctx.gpu.alloc(64)
        rr = yield from comm.irecv(rbuf, source=peer, tag=0)
        sr = yield from comm.isend(sbuf, dest=peer, tag=0)
        yield from waitall(ctx.mpi, [rr, sr])
        assert np.all(rbuf.data == float(peer + 1))

    World(ONE_NODE).run(main, nprocs=2)


def test_sendrecv_exchange():
    def main(ctx):
        comm = ctx.comm
        peer = 1 - ctx.rank
        sbuf = ctx.gpu.alloc_pinned(8, fill=float(ctx.rank))
        rbuf = ctx.gpu.alloc_pinned(8)
        yield from comm.sendrecv(sbuf, peer, rbuf, peer)
        assert np.all(rbuf.data == float(peer))

    World(ONE_NODE).run(main, nprocs=2)


def test_dest_out_of_range():
    def main(ctx):
        with pytest.raises(MpiUsageError):
            yield from ctx.comm.isend(ctx.gpu.alloc_pinned(4), dest=9)
        return True

    assert World(ONE_NODE).run(main, nprocs=2) == [True, True]


def test_inter_node_device_send_staged_and_correct():
    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(1 << 16, fill=3.25)
            yield from comm.send(sbuf, dest=1, tag=0)
        else:
            rbuf = ctx.gpu.alloc(1 << 16)
            yield from comm.recv(rbuf, source=0, tag=0)
            assert np.all(rbuf.data == 3.25)

    World(TestbedConfig(n_nodes=2, gpus_per_node=1)).run(main, nprocs=2)


def test_many_outstanding_messages():
    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            reqs = []
            for k in range(20):
                r = yield from comm.isend(ctx.gpu.alloc_pinned(4, fill=float(k)), dest=1, tag=k)
                reqs.append(r)
            yield from waitall(ctx.mpi, reqs)
        else:
            # receive in reverse tag order: matching must sort it out
            for k in reversed(range(20)):
                rbuf = ctx.gpu.alloc_pinned(4)
                yield from comm.recv(rbuf, source=0, tag=k)
                assert rbuf.data[0] == float(k)

    World(ONE_NODE).run(main, nprocs=2)


def test_request_status_and_test():
    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sreq = yield from comm.isend(ctx.gpu.alloc(1024, fill=1.0), dest=1)
            assert not sreq.test()  # rendezvous cannot be done instantly
            yield from sreq.wait()
            assert sreq.test()
        else:
            rbuf = ctx.gpu.alloc(1024)
            yield from comm.recv(rbuf, source=0)

    World(ONE_NODE).run(main, nprocs=2)
