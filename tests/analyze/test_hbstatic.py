"""The static happens-before approximation (hb-read-unordered / send-overwrite)."""

import textwrap

from .conftest import FIXTURES, rules_of

ONLY = ["hb-read-unordered", "hb-send-overwrite"]


def src(body, path="src/repro/partitioned/m.py"):
    return {path: textwrap.dedent(body)}


def test_read_on_unwaited_path_flagged(analyze):
    findings = analyze(src("""
        class R:
            def consume(self, i, hot):
                if hot:
                    return self.buf.partition(i, self.n)
                self.flags.wait_for(i)
                return self.buf.partition(i, self.n)
    """), only=ONLY)
    assert rules_of(findings) == ["hb-read-unordered"]
    assert findings[0].line == 5
    assert findings[0].function == "R.consume"


def test_dominating_wait_clean(analyze):
    findings = analyze(src("""
        class R:
            def consume(self, i):
                self.flags.wait_for(i)
                return self.buf.partition(i, self.n)

            def peek(self, i):
                if self.req.parrived(i):
                    return self.buf.data[i]
                return None
    """), only=ONLY)
    # peek: the access shares the dominating statement? no — it is inside
    # the if body, dominated by the parrived test statement.
    assert findings == []


def test_producer_and_consumer_only_functions_out_of_scope(analyze):
    findings = analyze(src("""
        class R:
            def issue(self, i):
                return self.buf.partition(i, self.n)   # no wait in scope

            def wait_all(self):
                self.flags.wait_for(self.n)            # no access in scope
    """), only=ONLY)
    assert findings == []


def test_send_overwrite_after_pready_flagged(analyze):
    findings = analyze(src("""
        class S:
            def refill(self, i, data):
                self.req.pready(i)
                self.buf.data[i] = data
    """), only=ONLY)
    assert rules_of(findings) == ["hb-send-overwrite"]
    assert findings[0].line == 5


def test_wait_between_pready_and_write_clean(analyze):
    findings = analyze(src("""
        class S:
            def refill(self, i, data):
                self.req.pready(i)
                self.req.wait(i)
                self.buf.data[i] = data
    """), only=ONLY)
    assert findings == []


def test_outside_partitioned_and_pcoll_not_analyzed(analyze):
    findings = analyze(src("""
        class R:
            def consume(self, i, hot):
                if hot:
                    return self.buf.partition(i, self.n)
                self.flags.wait_for(i)
                return self.buf.partition(i, self.n)
    """, path="src/repro/dataplane/m.py"), only=ONLY)
    assert findings == []


def test_inline_suppression_silences_over_approximation(analyze):
    findings = analyze(src("""
        class R:
            def consume(self, i, hot):
                if hot:
                    return self.buf.partition(i, self.n)  # repro: ignore[hb-read-unordered]
                self.flags.wait_for(i)
                return self.buf.partition(i, self.n)
    """), only=ONLY)
    assert findings == []


def test_fixture_hb_bugs(analyze_path):
    findings = analyze_path(FIXTURES / "partitioned", only=ONLY)
    assert rules_of(findings) == ONLY
    by_rule = {f.rule: f for f in findings}
    assert by_rule["hb-read-unordered"].function == "LeakyRequest.consume"
    assert by_rule["hb-send-overwrite"].function == "LeakyRequest.refill"
