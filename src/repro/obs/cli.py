"""``python -m repro profile`` — run a script under the instrumentation bus.

::

    python -m repro profile examples/quickstart.py --chrome trace.json
    python -m repro profile quickstart --util --critical-path
    python -m repro profile pingpong_partitioned --chrome t.json --steps

The target runs with ``__name__ == "__main__"`` exactly as if invoked
directly; every ``World``/``Engine`` it creates attaches to an ambient
:class:`~repro.obs.bus.Bus`.  Exit status: 0 on success, 2 when the
target crashes.
"""

from __future__ import annotations

import argparse
import json
import runpy
import sys
from collections import Counter as _Tally
from typing import List, Optional, Sequence

from repro.obs import bus as obs_bus
from repro.obs.chrome import chrome_trace, validate_trace
from repro.obs.profile import (
    Collector,
    critical_path,
    render_critical_path,
    render_utilization,
    utilization,
)
from repro.san.cli import resolve_target
from repro.units import fmt_time


def profile_script(path: str) -> List:
    """Execute ``path`` as ``__main__`` under an ambient bus; return events."""
    bus = obs_bus.Bus()
    collector = Collector()
    bus.subscribe(collector)
    obs_bus.install(bus)
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        obs_bus.uninstall()
    return collector.events


def _summary(events: List) -> str:
    tally = _Tally((ev.kind, ev.cat) for ev in events)
    t_end = max((ev.t1 for ev in events), default=0.0)
    lines = [
        f"profile: {len(events)} events over {fmt_time(t_end)} simulated",
    ]
    for (kind, cat), n in sorted(tally.items()):
        lines.append(f"  {kind:<8} {cat:<12} {n}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Run a script under the repro.obs instrumentation bus.",
    )
    parser.add_argument("target", help="script path or example name")
    parser.add_argument(
        "--chrome", metavar="OUT.json",
        help="write a Chrome trace_event JSON (open in Perfetto)",
    )
    parser.add_argument(
        "--util", action="store_true",
        help="print the per-resource utilization report",
    )
    parser.add_argument(
        "--critical-path", action="store_true",
        help="print the critical-path report over the span DAG",
    )
    parser.add_argument(
        "--steps", action="store_true",
        help="include per-step engine instants in the Chrome export (noisy)",
    )
    args = parser.parse_args(argv)

    try:
        path = resolve_target(args.target)
    except FileNotFoundError as exc:
        print(f"profile: {exc}", file=sys.stderr)
        return 2
    try:
        events = profile_script(str(path))
    except Exception as exc:  # noqa: BLE001 - CLI surface
        print(
            f"profile: target crashed: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 2

    print(_summary(events))
    if args.chrome:
        obj = chrome_trace(events, include=("engine",) if args.steps else None)
        validate_trace(obj)
        with open(args.chrome, "w") as fh:
            json.dump(obj, fh)
        print(f"profile: wrote {len(obj['traceEvents'])} trace events to {args.chrome}")
    if args.util:
        print(render_utilization(utilization(events)))
    if args.critical_path:
        print(render_critical_path(critical_path(events)))
    return 0
