"""Name -> Workload registry shared by the CLI, bench suite, and sweep.

Built-in workloads register lazily on first lookup (eager registration
would make ``repro.workload`` import every bench module, and the bench
modules import :mod:`repro.workload.runner` — a cycle).  ``resolve_spec``
additionally understands the ``replay:<path>`` form for trace-replay
schedules loaded from JSONL files.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workload.base import Workload, WorkloadError

_REGISTRY: Dict[str, Workload] = {}
_BUILTINS_LOADED = False


def _load_builtins() -> None:
    """Import the built-in workload modules (registration side effects)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.workload import cluster, exhibits  # noqa: F401


def register(workload: Workload) -> Workload:
    if not workload.name:
        raise WorkloadError(f"{workload!r} has no name")
    if workload.name in _REGISTRY:
        raise WorkloadError(f"workload {workload.name!r} already registered")
    _REGISTRY[workload.name] = workload
    return workload


def get(name: str) -> Workload:
    _load_builtins()
    wl = _REGISTRY.get(name)
    if wl is None:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(names())}"
        )
    return wl


def names() -> List[str]:
    _load_builtins()
    return sorted(_REGISTRY)


def resolve_spec(spec: str) -> Workload:
    """A registry name, or ``replay:<schedule.jsonl>`` for a trace file."""
    if spec.startswith("replay:"):
        from repro.workload.replay import ReplayWorkload

        path = spec[len("replay:"):]
        if not path:
            raise WorkloadError("replay: needs a schedule path (replay:<file>)")
        return ReplayWorkload.from_file(path)
    return get(spec)
