"""Byte-conservation properties via link telemetry."""

import numpy as np
import pytest

from repro.bench.telemetry import report, snapshot
from repro.hw.params import ONE_NODE, TestbedConfig
from repro.mpi.world import World
from repro.partitioned.prequest import CopyMode
from repro.partitioned import device as pdev
from repro.cuda.kernel import BlockKernel
from repro.cuda.timing import WorkSpec


def _partitioned_send(mode, n=4096, partitions=4):
    """Run one device-initiated partitioned send; return (world, snaps)."""
    world = World(ONE_NODE)
    snaps = {}

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(n, fill=1.0)
            sreq = yield from comm.psend_init(sbuf, partitions, dest=1, tag=0)
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            preq = yield from sreq.prequest_create(
                ctx.gpu, grid=partitions, block=n // partitions, mode=mode
            )
            snaps["before"] = snapshot(ctx.world.fabric)

            def body(blk):
                yield blk.compute(WorkSpec.vector_add())
                yield pdev.pready(blk, preq)

            yield from ctx.gpu.launch_h(BlockKernel(partitions, n // partitions, body))
            yield from sreq.wait()
        else:
            rbuf = ctx.gpu.alloc(n)
            rreq = yield from comm.precv_init(rbuf, partitions, source=0, tag=0)
            yield from rreq.start()
            yield from rreq.pbuf_prepare()
            yield from rreq.wait()
            snaps["after"] = snapshot(ctx.world.fabric)
            assert np.all(rbuf.data == 1.0)

    world.run(main, nprocs=2)
    return world, snaps


@pytest.mark.parametrize("mode", [CopyMode.PROGRESSION_ENGINE, CopyMode.KERNEL_COPY])
def test_payload_bytes_cross_nvlink_exactly_once(mode):
    n = 4096
    world, snaps = _partitioned_send(mode, n=n)
    delta = snaps["before"].delta(snaps["after"])
    payload = n * 8
    # The payload crosses NVLink exactly once (plus nothing else that big).
    assert delta["nvlink"].bytes == payload
    # And exactly `partitions` data transfers happened on NVLink.
    assert delta["nvlink"].transfers == 4


def test_signalling_goes_over_c2c_not_nvlink():
    world, snaps = _partitioned_send(CopyMode.PROGRESSION_ENGINE)
    delta = snaps["before"].delta(snaps["after"])
    # Device -> host ready signals: at least one per transport partition.
    assert delta["c2c_d2h"].transfers >= 4
    assert delta["c2c_d2h"].bytes < 1024  # tiny flag stores only


def test_intra_node_send_uses_no_nic():
    world, snaps = _partitioned_send(CopyMode.KERNEL_COPY)
    delta = snaps["before"].delta(snaps["after"])
    assert delta["nic_out"].bytes == 0
    assert delta["nic_in"].bytes == 0


def test_inter_node_payload_crosses_nic_once():
    config = TestbedConfig(n_nodes=2, gpus_per_node=1)
    world = World(config)
    n = 8192

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(n, fill=2.0)
            before = snapshot(ctx.world.fabric)
            yield from comm.send(sbuf, dest=1, tag=0)
            return before
        rbuf = ctx.gpu.alloc(n)
        yield from comm.recv(rbuf, source=0, tag=0)
        return snapshot(ctx.world.fabric)

    before, after = world.run(main, nprocs=2)
    delta = before.delta(after)
    # Data once through the NIC; control envelopes are small.
    assert n * 8 <= delta["nic_out"].bytes < n * 8 + 2048


def test_report_renders(one_node_world):
    def main(ctx):
        yield from ctx.comm.barrier()

    one_node_world.run(main, nprocs=2)
    text = report(one_node_world.fabric)
    assert "nvlink" in text and "hostmem" in text
