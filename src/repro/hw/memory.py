"""Memory spaces and NumPy-backed buffers.

A :class:`Buffer` pairs a NumPy array with a *location*: which memory space
it lives in (host pageable, host pinned, device global, unified) and which
GPU/node owns it.  Data movement in the simulation is real — RMA puts and
kernel copies actually copy NumPy data — so numerical results are checkable,
while *time* is charged by the link models.

Buffers support zero-copy partition views (``buf.partition(i, n)``) mirroring
how MPI Partitioned addresses sub-ranges of a persistent buffer.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

import numpy as np

from repro.san import record


class MemSpace(enum.Enum):
    """Where a buffer physically lives."""

    HOST = "host"          # pageable host memory
    PINNED = "pinned"      # page-locked host memory, device-visible
    DEVICE = "device"      # GPU global memory (HBM)
    UNIFIED = "unified"    # managed memory, migrates on demand

    @property
    def device_accessible(self) -> bool:
        return self in (MemSpace.PINNED, MemSpace.DEVICE, MemSpace.UNIFIED)

    @property
    def host_accessible(self) -> bool:
        return self in (MemSpace.HOST, MemSpace.PINNED, MemSpace.UNIFIED)


class Buffer:
    """A located, NumPy-backed, byte-accounted memory region.

    Parameters
    ----------
    data:
        1-D NumPy array holding the payload. Views share memory with their
        parent, exactly like device pointers into one allocation.
    space:
        The :class:`MemSpace` the buffer lives in.
    node:
        Index of the owning node.
    gpu:
        Global GPU index for DEVICE/UNIFIED buffers (None for host memory).
    """

    __slots__ = ("data", "space", "node", "gpu", "label", "_registered", "freed")

    def __init__(
        self,
        data: np.ndarray,
        space: MemSpace,
        node: int,
        gpu: Optional[int] = None,
        label: str = "",
    ) -> None:
        if data.ndim != 1:
            raise ValueError("Buffer requires a 1-D array; flatten first")
        if space in (MemSpace.DEVICE, MemSpace.UNIFIED) and gpu is None:
            raise ValueError(f"{space} buffer needs an owning gpu")
        self.data = data
        self.space = space
        self.node = node
        self.gpu = gpu
        self.label = label
        self._registered = False  # set by ucx mem_map
        self.freed = False        # set by free(); checked by captured plans

    # -- factory helpers ---------------------------------------------------
    @classmethod
    def alloc(
        cls,
        n: int,
        dtype=np.float64,
        space: MemSpace = MemSpace.HOST,
        node: int = 0,
        gpu: Optional[int] = None,
        fill: Optional[float] = None,
        label: str = "",
    ) -> "Buffer":
        data = np.zeros(n, dtype=dtype) if fill is None else np.full(n, fill, dtype=dtype)
        buf = cls(data, space, node, gpu, label)
        record.note_alloc(buf, zero_filled=fill is None)
        if fill is not None:
            # An explicit fill is host initialization, not cudaMalloc garbage.
            record.access(None, buf, write=True, note="alloc-fill")
        return buf

    @classmethod
    def alloc_virtual(
        cls,
        n: int,
        dtype=np.float64,
        space: MemSpace = MemSpace.DEVICE,
        node: int = 0,
        gpu: Optional[int] = None,
        label: str = "",
    ) -> "Buffer":
        """Geometry-only allocation: zero-stride, read-only, O(1) memory.

        Used for regions whose *shape* matters to the protocol (partition
        counts, registration sizes) but whose payload is never read or
        written — e.g. the partitioned-collective send channel, whose puts
        always override the source slice.  Simulates the paper's
        registering of existing application memory without duplicating it.
        """
        data = np.broadcast_to(np.zeros(1, dtype=dtype), (n,))
        buf = cls(data, space, node, gpu, label)
        record.note_alloc(buf, zero_filled=True)
        return buf

    @property
    def is_virtual(self) -> bool:
        """True for geometry-only (read-only, zero-stride) buffers."""
        return not self.data.flags.writeable

    def alloc_like(self, n: int, space: MemSpace, node: int, label: str = "") -> "Buffer":
        """A host-side staging buffer matching this buffer's payload kind.

        Bounce/staging buffers inherit virtuality: staging a virtual
        buffer's bytes materializes nothing, so the stage is virtual too
        (same O(1) footprint), keeping GiB-scale virtual transfers free
        of real allocation and memcpy wall time.
        """
        if self.is_virtual:
            return Buffer.alloc_virtual(n, self.data.dtype, space, node=node, label=label)
        return Buffer.alloc(n, self.data.dtype, space, node=node, label=label)

    # -- geometry ---------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def itemsize(self) -> int:
        return int(self.data.itemsize)

    def __len__(self) -> int:
        return len(self.data)

    def view(self, start: int, count: int, label: str = "") -> "Buffer":
        """Zero-copy element-range view sharing location metadata."""
        if start < 0 or count < 0 or start + count > len(self.data):
            raise IndexError(
                f"view [{start}:{start + count}) out of range for len {len(self.data)}"
            )
        return Buffer(
            self.data[start : start + count],
            self.space,
            self.node,
            self.gpu,
            label or self.label,
        )

    def partition(self, index: int, n_partitions: int) -> "Buffer":
        """View of equal partition ``index`` of ``n_partitions``.

        MPI Partitioned requires the buffer to split evenly across
        partitions; we enforce that (the paper's benchmarks always do).
        """
        if n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        if len(self.data) % n_partitions != 0:
            raise ValueError(
                f"buffer of {len(self.data)} elements does not split into "
                f"{n_partitions} equal partitions"
            )
        psize = len(self.data) // n_partitions
        return self.view(index * psize, psize)

    # -- data movement (caller charges time separately) -------------------------
    def copy_from(self, src: "Buffer") -> None:
        """Instantaneous payload copy; the link model charges the time."""
        if len(src.data) != len(self.data):
            raise ValueError(
                f"size mismatch: src {len(src.data)} vs dst {len(self.data)}"
            )
        record.access(None, src, write=False, note="copy_from")
        record.access(None, self, write=True, note="copy_from")
        if not self.data.flags.writeable:
            # Virtual destination: the transfer's *time* was charged by the
            # link model; there is no payload to materialize.
            return
        np.copyto(self.data, src.data)

    def free(self) -> None:
        """Mark the allocation dead (cudaFree).

        The NumPy payload stays readable — the simulation never segfaults
        — but captured transfer graphs and plan caches that pinned this
        buffer refuse to replay it (:class:`repro.dataplane.graph.GraphError`),
        mirroring the use-after-free a real graph launch would make of a
        freed device pointer.  Idempotent.
        """
        self.freed = True

    def same_allocation(self, other: "Buffer") -> bool:
        """True when both views share underlying memory."""
        return np.shares_memory(self.data, other.data)

    def location(self) -> Tuple[MemSpace, int, Optional[int]]:
        return (self.space, self.node, self.gpu)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"gpu{self.gpu}" if self.gpu is not None else f"node{self.node}"
        tag = f" {self.label!r}" if self.label else ""
        return f"<Buffer{tag} {len(self.data)}x{self.data.dtype} {self.space.value}@{where}>"
