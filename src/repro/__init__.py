"""Full-stack reproduction of *Design and Implementation of MPI-Native
GPU-Initiated MPI Partitioned Communication* (SC 2024).

Top-level convenience imports::

    from repro import World, ONE_NODE, PAPER_TESTBED

See README.md for the architecture overview, DESIGN.md for the system
inventory and substitution rationale, and EXPERIMENTS.md for paper-vs-
measured results.
"""

from repro.hw.params import ONE_NODE, PAPER_TESTBED, GH200Params, TestbedConfig
from repro.mpi.world import RankCtx, World

__version__ = "1.0.0"

__all__ = [
    "GH200Params",
    "ONE_NODE",
    "PAPER_TESTBED",
    "RankCtx",
    "TestbedConfig",
    "World",
    "__version__",
]
