"""repro.san — partitioned-communication sanitizer for the DES.

Three layers (see DESIGN.md §8 and README "Sanitizing a run"):

* :mod:`repro.san.record` — opt-in access/sync/trace recording.  When a
  :class:`Sanitizer` is active, instrumented sites across the simulator
  (buffers, kernels, streams, the partitioned layer) log every simulated
  read/write/signal as ``(actor, time, seq, range, kind)`` events.
* :mod:`repro.san.hb` — a vector-clock happens-before race detector over
  the recorded trace, with synchronization edges from stream ordering,
  kernel launch/join, Pready signal delivery, and Parrived arrival.
* :mod:`repro.san.checks` — MPI 4.0 partitioned-semantics rules (double
  ``Pready``, ``Pready`` outside an epoch / on a freed request, reads
  before ``Parrived``, send-partition overwrite in flight, uninitialized
  device reads, cross-node IPC misuse).

Static companion: :mod:`repro.san.lint` (AST repo-invariant checks),
exposed as ``scripts/lint_repro.py``.

Usage::

    from repro.san import Sanitizer

    with Sanitizer() as san:
        World(ONE_NODE).run(main, nprocs=2)
    assert san.report.ok, san.report.render()

or from the command line::

    python -m repro san examples/quickstart.py
    python -m repro san --list-checks
"""

from repro.san.report import Finding, Report
from repro.san.sanitizer import Sanitizer

__all__ = ["Finding", "Report", "Sanitizer"]
