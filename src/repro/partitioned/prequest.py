"""MPIX_Prequest: the device-resident partitioned request.

Paper Section IV-A3: ``MPIX_Prequest_create`` moves the minimal information
a GPU needs into device global memory — the copy mode, the aggregation
threshold, the per-transport-partition counters — and allocates the pinned
host flags the progression engine watches.  It is *blocking* so the first
device-side ``MPIX_Pready`` always sees a valid request; its cost
(Table I: 110.7 us) is dominated by the cudaMalloc/cudaMallocHost pair,
flag registration, and the host-to-device copy, plus ``ucp_rkey_ptr`` when
the Kernel-Copy mode maps the remote buffer.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Generator, List, Optional

import numpy as np

from repro.hw.memory import Buffer, MemSpace
from repro.mpi.errors import MpiStateError, MpiUsageError
from repro.partitioned.aggregation import AggregationSpec, SignalMode
from repro.partitioned.p2p import PUT_ISSUE_COST, PsendRequest
from repro.san import record
from repro.sim.resources import Counter
from repro.ucx.memreg import rkey_ptr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cuda.device import Device


class CopyMode(enum.Enum):
    """How device-side Pready moves the data (Section IV-A4)."""

    PROGRESSION_ENGINE = "pe"      # device signals; host issues ucp_put_nbx
    KERNEL_COPY = "kernel_copy"    # device stores via rkey_ptr; host sends completion


class Prequest:
    """Device-resident request state for one partitioned send channel."""

    def __init__(
        self,
        sreq: PsendRequest,
        device: "Device",
        agg: AggregationSpec,
        mode: CopyMode,
        on_ready=None,
    ) -> None:
        """``on_ready(tp)`` overrides what the progression engine does when
        a transport partition's signals complete; the default issues the
        channel's host ``MPI_Pready``.  Partitioned collectives pass their
        user-partition trigger here (paper Section IV-B2)."""
        self.sreq = sreq
        self.device = device
        self.agg = agg
        self.mode = mode
        self.on_ready = on_ready
        self.engine = sreq.engine
        self.rt = sreq.rt

        # Global-memory aggregation counters, one per transport partition.
        self.gmem_counters: List[Counter] = [
            Counter(self.engine) for _ in range(agg.n_transport)
        ]
        # Pinned-host signal counters the progression engine watches.
        self.host_signals: List[Counter] = [
            Counter(self.engine) for _ in range(agg.n_transport)
        ]
        # Kernel-Copy: device-mapped view of the remote receive buffer,
        # plus the in-flight direct-store events (the completion-flag put
        # is gated on the matching copy so the receiver can never observe
        # the flag before the data).
        self.mapped_remote: Optional[Buffer] = None
        self.kc_copy_events: dict = {}
        self._watchers: List = []
        self.freed = False

    # -- geometry helpers -------------------------------------------------------
    def src_slice(self, tp: int) -> Buffer:
        """Sender-side data of transport partition ``tp``."""
        return self.sreq.buf.partition(tp, self.agg.n_transport)

    def mapped_slice(self, tp: int) -> Buffer:
        if self.mapped_remote is None:
            raise MpiStateError("kernel-copy slice requested but rkey_ptr not mapped")
        return self.mapped_remote.partition(tp, self.agg.n_transport)

    # -- epoch management ------------------------------------------------------------
    def arm_epoch(self) -> None:
        """Reset counters and start progression watchers for this epoch.

        Called by ``MPI_Start`` (and once at create time if the channel is
        already started): re-arms the persistent channel exactly like the
        paper's flag reset.
        """
        if self.freed:
            raise MpiStateError("arm_epoch on a freed MPIX_Prequest")
        expected = self.agg.expected_host_signals()
        epoch = self.sreq.epoch
        self.kc_copy_events.clear()
        for tp in range(self.agg.n_transport):
            self.gmem_counters[tp].reset()
            self.host_signals[tp].reset()
        record.mark("epoch-arm", req=record.ident(self.sreq), preq=record.ident(self), epoch=epoch)
        self._watchers = [
            self.engine.process(self._watch(tp, expected, epoch), name=f"preq.watch{tp}")
            for tp in range(self.agg.n_transport)
        ]

    def _watch(self, tp: int, expected: int, epoch: int) -> Generator:
        """Progression-engine watcher for one transport partition."""
        yield self.host_signals[tp].wait_for(expected)
        # The PE observes the device's released signal history (sync edge).
        record.acquire(("pe", self.rt.world_rank), ("sig", id(self.host_signals[tp])))
        if self.freed or self.sreq.epoch != epoch:
            return  # stale watcher from a previous epoch
        # Polling delay before the progression thread notices the signal.
        yield self.engine.timeout(self.rt.params.progress_poll_latency)
        yield self.rt.progress.dispatch(
            lambda: self._host_pready(tp), name=f"pready_tp{tp}"
        )

    def _host_pready(self, tp: int) -> Generator:
        """The progression engine's internal MPI_Pready issue."""
        yield self.engine.timeout(PUT_ISSUE_COST)
        pe = ("pe", self.rt.world_rank)
        if self.on_ready is not None:
            self.on_ready(tp)
            return
        if self.mode is CopyMode.KERNEL_COPY:
            # The flag-only completion must not overtake the direct store;
            # usually the copy landed long ago and this is a no-op wait.
            copy_ev = self.kc_copy_events.get(tp)
            if copy_ev is not None:
                if not copy_ev.triggered:
                    yield copy_ev
                record.acquire(pe, ("copydone", id(copy_ev)))
            self.sreq.issue_pready(tp, with_data=False, actor=pe)
        else:
            self.sreq.issue_pready(tp, with_data=True, actor=pe)

    # -- free ------------------------------------------------------------------------
    def free(self) -> Generator:
        """MPIX_Prequest_free: release device + pinned host allocations."""
        cost = self.device.cost
        yield self.engine.timeout(cost.memcpy_api_cost)  # cudaFree / cudaFreeHost
        self.freed = True
        record.mark("preq-free", preq=record.ident(self), req=record.ident(self.sreq))
        self.sreq.preq = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Prequest mode={self.mode.value} tps={self.agg.n_transport} "
            f"signal={self.agg.signal_mode.value}>"
        )


def prequest_create(
    sreq: PsendRequest,
    device: "Device",
    agg: Optional[AggregationSpec] = None,
    mode: Optional[CopyMode] = None,
    grid: Optional[int] = None,
    block: Optional[int] = None,
    blocks_per_partition: Optional[int] = None,
    signal_mode: SignalMode = SignalMode.BLOCK,
) -> Generator:
    """MPIX_Prequest_create (blocking).

    Either pass a full :class:`AggregationSpec` via ``agg`` or the kernel
    geometry (``grid``, ``block``) and let the spec be derived with
    ``blocks_per_partition`` defaulting to ``grid / sreq.partitions``.
    The spec's transport-partition count must equal the channel's wire
    partition count.
    """
    mode = mode or CopyMode.PROGRESSION_ENGINE
    if agg is None:
        if grid is None or block is None:
            raise MpiUsageError("prequest_create needs either agg or grid+block")
        if blocks_per_partition is None:
            if grid % sreq.partitions != 0:
                raise MpiUsageError(
                    f"grid {grid} not divisible by wire partitions {sreq.partitions}"
                )
            blocks_per_partition = grid // sreq.partitions
        agg = AggregationSpec(grid, block, blocks_per_partition, signal_mode)
    if agg.n_transport != sreq.partitions:
        raise MpiUsageError(
            f"aggregation produces {agg.n_transport} transport partitions but the "
            f"channel was initialized with {sreq.partitions}"
        )
    if not sreq.prepared_once:
        raise MpiStateError(
            "MPIX_Prequest_create before the first MPIX_Pbuf_prepare: remote "
            "rkeys are not available yet"
        )
    if mode is CopyMode.KERNEL_COPY:
        target = sreq.rkey_data.target
        if target.gpu is None or not sreq.rt.fabric.topo.can_peer_map(device.gpu_id, target.gpu):
            msg = (
                "Kernel-Copy mode requires an IPC-mappable (P2P-reachable) "
                "device-memory peer; use PROGRESSION_ENGINE otherwise"
            )
            record.guard("ipc-misuse", ("host", sreq.rt.world_rank), msg)
            raise MpiUsageError(msg)

    rt = sreq.rt
    cost = device.cost
    # cudaMalloc for the device request + counters.
    yield rt.engine.timeout(cost.cuda_malloc_cost)
    # cudaMallocHost for the pinned progression flags.
    yield rt.engine.timeout(cost.cuda_host_alloc_cost)
    # Register the flag region so the progression engine / NIC can see it.
    yield rt.engine.timeout(rt.params.ucp_mem_map_per_call)
    preq = Prequest(sreq, device, agg, mode)
    if mode is CopyMode.KERNEL_COPY:
        # Resolve the device-mapped remote pointer (cuda_ipc rkey_ptr).
        preq.mapped_remote = yield from rkey_ptr(rt.worker, sreq.rkey_data, device.gpu_id)
    # Populate the host-side staging struct and copy it to the device.
    yield rt.engine.timeout(cost.memcpy_api_cost)
    staging = Buffer.alloc(64, np.int8, MemSpace.PINNED, node=rt.node)
    dev_struct = Buffer.alloc(64, np.int8, MemSpace.DEVICE, node=device.node, gpu=device.gpu_id)
    yield rt.fabric.dataplane.put(
        staging, dev_struct, traffic_class="part", name="preq_h2d"
    )

    sreq.preq = preq
    if sreq.active:
        preq.arm_epoch()
    return preq
