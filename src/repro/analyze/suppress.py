"""Inline suppressions: ``# repro: ignore[rule-id]``.

Grammar (one marker per line, anywhere in a comment)::

    x = risky()                # repro: ignore[det-unordered-iter]
    y = risky2()               # repro: ignore[rule-a, rule-b]
    # repro: ignore[hb-read-unordered]   <- suppresses the *next* line too
    z = risky3()
    w = anything()             # repro: ignore

A bare ``ignore`` (no bracket list) suppresses every rule on that line —
reserved for generated code; prefer naming the rule so the suppression
dies with it.  The scanner is regex-based on raw source lines, so it
works on files the AST passes cannot parse.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Set

_MARKER = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s-]*)\])?"
)


def scan_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """1-based line -> None (all rules) | set of suppressed rule ids."""
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "repro:" not in line:
            continue
        m = _MARKER.search(line)
        if m is None:
            continue
        rules = m.group("rules")
        if rules is None:
            table[lineno] = None
        else:
            ids = {r.strip() for r in rules.split(",") if r.strip()}
            if not ids:
                table[lineno] = None
            else:
                prev = table.get(lineno)
                if prev is None and lineno in table:
                    continue  # an ignore-all already covers this line
                table[lineno] = (prev or set()) | ids
    return table
