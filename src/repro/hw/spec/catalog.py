"""Canonical machine specs: the paper's testbed and other fabrics.

``gh200_spec`` re-expresses the hard-coded GH200 testbed of the seed as a
:class:`~repro.hw.spec.schema.MachineSpec` — byte-identical behaviour is
pinned by ``tests/sim/test_determinism.py``.  The other entries describe
machines from the related work (PAPERS.md): an NVSwitch-routed DGX-style
node ("Demystifying NVSHMEM") where intra-node D2D serializes through
shared switch ports, and a no-P2P PCIe box where D2D stages through host
memory and all ranks of a node share one NIC (Slingshot-style
stream-triggered systems are closer to this shape than to a GH200).
"""

from __future__ import annotations

from typing import Dict, Union

from repro.hw.params import GH200Params, TestbedConfig
from repro.hw.spec.schema import (
    GpuSpec,
    Interconnect,
    LinkClass,
    MachineSpec,
    NodeSpec,
    SpecError,
)
from repro.units import GBps, us

#: Fixed port latency of a local memory controller (HBM / DRAM port).
_MEM_PORT_LATENCY = 0.05 * us


def gh200_node(gpus_per_node: int, p: GH200Params) -> NodeSpec:
    """One GH200 node: NVLink pair mesh, C2C host links, NIC per superchip."""
    return NodeSpec(
        gpus=(GpuSpec(),) * gpus_per_node,
        interconnect=Interconnect.PAIR_MESH,
        hbm=LinkClass("hbm", p.hbm_bw, _MEM_PORT_LATENCY),
        d2d=LinkClass("nvlink", p.nvlink_bw, p.nvlink_latency),
        d2h=LinkClass("c2c_d2h", p.c2c_bw, p.c2c_latency),
        h2d=LinkClass("c2c_h2d", p.c2c_bw, p.c2c_latency),
        hostmem=LinkClass("hostmem", p.host_mem_bw, _MEM_PORT_LATENCY),
        nic_per_gpu=True,
    )


def gh200_spec(
    n_nodes: int = 2, gpus_per_node: int = 4, params: GH200Params = None
) -> MachineSpec:
    """The paper's testbed (Section V) as a declarative spec."""
    p = params or GH200Params()
    return MachineSpec(
        name=f"gh200-{n_nodes}x{gpus_per_node}",
        nodes=(gh200_node(gpus_per_node, p),) * n_nodes,
        nic_out=LinkClass("nic_out", p.ib_bw, p.ib_latency / 2),
        nic_in=LinkClass("nic_in", p.ib_bw, p.ib_latency / 2),
        params=p,
    )


def dgx_nvswitch_spec(n_nodes: int = 1, gpus_per_node: int = 8) -> MachineSpec:
    """A DGX/NVSwitch-style machine: switch-routed symmetric D2D.

    Every intra-node D2D transfer takes two hops — the source GPU's switch
    up-port and the destination's down-port — so transfers from one GPU to
    many peers serialize on the shared up-port instead of fanning out over
    a pair mesh.  Per-GPU NICs, H100-class devices.
    """
    p = GH200Params().with_overrides(
        # PCIe-attached host path instead of NVLink-C2C.
        c2c_bw=55 * GBps,
        c2c_latency=1.4 * us,
    )
    node = NodeSpec(
        gpus=(GpuSpec(),) * gpus_per_node,
        interconnect=Interconnect.SWITCH,
        hbm=LinkClass("hbm", p.hbm_bw, _MEM_PORT_LATENCY),
        d2d=LinkClass("switch", 300 * GBps, 2.0 * us),
        d2h=LinkClass("pcie_d2h", p.c2c_bw, p.c2c_latency),
        h2d=LinkClass("pcie_h2d", p.c2c_bw, p.c2c_latency),
        hostmem=LinkClass("hostmem", p.host_mem_bw, _MEM_PORT_LATENCY),
        nic_per_gpu=True,
    )
    return MachineSpec(
        name=f"dgx-nvswitch-{n_nodes}x{gpus_per_node}",
        nodes=(node,) * n_nodes,
        nic_out=LinkClass("nic_out", p.ib_bw, p.ib_latency / 2),
        nic_in=LinkClass("nic_in", p.ib_bw, p.ib_latency / 2),
        params=p,
    )


def pcie_nop2p_spec(n_nodes: int = 2, gpus_per_node: int = 2) -> MachineSpec:
    """A commodity PCIe box without peer-to-peer: the anti-GH200.

    No device P2P at all — intra-node D2D stages through host memory over
    PCIe, peers cannot IPC-map each other (so Kernel-Copy and the UCX
    cuda_ipc transport are rejected by capability, not by node distance),
    and each node's ranks share a single NIC hanging off the host bridge.
    A100-class devices with fewer SMs than the GH200's Hopper.
    """
    p = GH200Params().with_overrides(
        c2c_bw=24 * GBps,        # PCIe gen4 x16 effective
        c2c_latency=1.8 * us,
        ib_bw=25 * GBps,         # 200 Gbit shared HCA
        ib_latency=4.5 * us,
        hbm_bw=1500 * GBps,      # A100-class HBM2e
    )
    node = NodeSpec(
        gpus=(GpuSpec(sm_count=108, hbm_bw=1500 * GBps),) * gpus_per_node,
        interconnect=Interconnect.HOST_STAGED,
        hbm=LinkClass("hbm", p.hbm_bw, _MEM_PORT_LATENCY),
        d2d=None,
        d2h=LinkClass("pcie_d2h", p.c2c_bw, p.c2c_latency),
        h2d=LinkClass("pcie_h2d", p.c2c_bw, p.c2c_latency),
        hostmem=LinkClass("hostmem", p.host_mem_bw, _MEM_PORT_LATENCY),
        nic_per_gpu=False,
    )
    return MachineSpec(
        name=f"pcie-nop2p-{n_nodes}x{gpus_per_node}",
        nodes=(node,) * n_nodes,
        nic_out=LinkClass("nic_out", p.ib_bw, p.ib_latency / 2),
        nic_in=LinkClass("nic_in", p.ib_bw, p.ib_latency / 2),
        params=p,
    )


#: Named specs for the ``python -m repro topo`` CLI and tests.
SPECS: Dict[str, MachineSpec] = {
    "gh200-2x4": gh200_spec(2, 4),
    "gh200-1x4": gh200_spec(1, 4),
    "gh200-2x1": gh200_spec(2, 1),
    "dgx-nvswitch": dgx_nvswitch_spec(),
    "pcie-nop2p": pcie_nop2p_spec(),
}


def named_spec(name: str) -> MachineSpec:
    spec = SPECS.get(name)
    if spec is None:
        raise SpecError(f"unknown machine spec {name!r}; known: {sorted(SPECS)}")
    return spec


def as_spec(config: Union[MachineSpec, TestbedConfig]) -> MachineSpec:
    """Coerce a legacy :class:`TestbedConfig` (or pass through a spec)."""
    if isinstance(config, MachineSpec):
        return config
    if isinstance(config, TestbedConfig):
        return gh200_spec(config.n_nodes, config.gpus_per_node, config.params)
    raise TypeError(
        f"expected MachineSpec or TestbedConfig, got {type(config).__name__}"
    )
