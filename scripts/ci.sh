#!/usr/bin/env bash
# Tier-1 gate: tests + benchmark smoke + repo-invariant lint + (when
# available) ruff.  Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q -m "not smoke"

echo "== benchmark smoke (one small-grid point per paper figure) =="
PYTHONPATH=src python -m pytest -x -q -m smoke

echo "== bench smoke (event-loop traffic vs recorded ceiling) =="
# --against auto gates against the newest checked-in BENCH_pr*.json
# (excluding the one this run would write), so new PRs need no edit here.
PYTHONPATH=src python -m repro bench \
    --against auto --out /tmp/repro_bench_smoke.json

echo "== bench-cluster smoke (512-GPU fat-tree, sharded executor) =="
# The same cluster point through the multiprocessing path: every digest
# and counter must match the sequential entry recorded in the baseline.
PYTHONPATH=src python -m repro bench --suite cluster-fattree-512 --shards 2 \
    --against auto --out /tmp/repro_bench_cluster.json
PYTHONPATH=src python - <<'EOF'
import json
from repro.perf.bench import resolve_baseline
base = json.load(open(resolve_baseline("auto", current_pr=10)))["suite"]["cluster-fattree-512"]
got = json.load(open("/tmp/repro_bench_cluster.json"))["suite"]["cluster-fattree-512"]
for key in ("msg_digest", "messages", "windows", "cluster_events_popped",
            "per_shard_popped", "t_end_us"):
    assert got[key] == base[key], f"{key}: {got[key]!r} != baseline {base[key]!r}"
assert got["mode"] == "mp" and got["workers"] == 2, got["mode"]
print("bench-cluster smoke: --shards 2 bit-identical to recorded sequential run")
EOF

echo "== graph-replay smoke (captured transfer graphs, DESIGN.md §16) =="
# The same graph bench entry with capture on and off (REPRO_NO_GRAPHS=1):
# digests and simulated end time must be bit-identical — graphs may only
# move pops off the host heap, never change what the simulation computes.
PYTHONPATH=src python -m repro bench --suite graph-replay-jacobi \
    --out /tmp/repro_bench_graphs_on.json
REPRO_NO_GRAPHS=1 PYTHONPATH=src python -m repro bench \
    --suite graph-replay-jacobi --out /tmp/repro_bench_graphs_off.json
PYTHONPATH=src python - <<'EOF'
import json
on = json.load(open("/tmp/repro_bench_graphs_on.json"))["suite"]["graph-replay-jacobi"]
off = json.load(open("/tmp/repro_bench_graphs_off.json"))["suite"]["graph-replay-jacobi"]
for key in ("msg_digest", "t_end_us"):
    assert on[key] == off[key], f"{key}: {on[key]!r} != eager {off[key]!r}"
ratio = off["cluster_events_popped"] / on["cluster_events_popped"]
assert ratio >= 3.0, f"graph replay popped only {ratio:.2f}x fewer host events"
assert on["events_graphed"] == off["cluster_events_popped"], \
    "graphed pop count must equal the eager pop count exactly"
print(f"graph-replay smoke: digests identical, {ratio:.1f}x fewer host pops")
EOF

echo "== fault-smoke (dynamic fabric: mid-run link loss, DESIGN.md §17) =="
# One node-scoped NVLink loss halfway through the 512-GPU halo exhibit:
# the faulted run must agree bit-for-bit between the sequential driver
# and --shards 2, and must differ from the healthy recorded digest (the
# healthy baseline itself is still gated by the bench-cluster tier above).
PYTHONPATH=src python -m repro fault examples/schedules/faults_fattree512.jsonl \
    --workload halo --machine fat-tree-512 \
    --param iters=4 --param chunks=2 > /tmp/repro_fault_seq.txt
PYTHONPATH=src python -m repro fault examples/schedules/faults_fattree512.jsonl \
    --workload halo --machine fat-tree-512 --shards 2 \
    --param iters=4 --param chunks=2 > /tmp/repro_fault_mp.txt
PYTHONPATH=src python - <<'EOF'
import json, re
from repro.perf.bench import resolve_baseline

def rows(path):
    text = open(path).read()
    return re.findall(r"^(?:popped|  class|  digest).*$", text, re.M)

seq, mp = rows("/tmp/repro_fault_seq.txt"), rows("/tmp/repro_fault_mp.txt")
assert seq and seq == mp, "faulted run: sequential vs --shards 2 diverged"
msg = re.search(r"digest msg\s+(\S+)", open("/tmp/repro_fault_seq.txt").read()).group(1)
base = json.load(open(resolve_baseline("auto", current_pr=10)))
healthy = base["suite"]["cluster-fattree-512"]["msg_digest"]
assert msg != healthy[:len(msg)], "fault schedule did not perturb the halo digest"
print(f"fault-smoke: {len(seq)} rows identical across modes, digest differs from healthy")
EOF

echo "== profile smoke (Chrome trace_event export) =="
PYTHONPATH=src python -m repro profile examples/pingpong_partitioned.py \
    --chrome /tmp/repro_trace.json
PYTHONPATH=src python - <<'EOF'
import json
from repro.obs.chrome import validate_trace
obj = json.load(open("/tmp/repro_trace.json"))
validate_trace(obj)
assert len(obj["traceEvents"]) > 100, "suspiciously small trace"
print(f"profile smoke: {len(obj['traceEvents'])} valid trace events")
EOF

echo "== workload smoke (trace replay x sweep cache, DESIGN.md §15) =="
# Replay the checked-in 16-rank LLM schedule on the 512-GPU fat-tree
# under both path policies, twice: the first sweep populates the
# content-addressed cache, the second must be 100% cache hits.
rm -rf /tmp/repro_sweep_cache
PYTHONPATH=src python -m repro sweep \
    --workloads replay:examples/schedules/llm16.jsonl \
    --machines fat-tree-512 --policies single,multi --shards 2 \
    --cache-dir /tmp/repro_sweep_cache --out /tmp/repro_sweep_first.json
PYTHONPATH=src python -m repro sweep \
    --workloads replay:examples/schedules/llm16.jsonl \
    --machines fat-tree-512 --policies single,multi --shards 2 \
    --cache-dir /tmp/repro_sweep_cache --out /tmp/repro_sweep_second.json
PYTHONPATH=src python - <<'EOF'
import json
first = json.load(open("/tmp/repro_sweep_first.json"))
second = json.load(open("/tmp/repro_sweep_second.json"))
assert first["misses"] == len(first["cells"]) and first["hits"] == 0, first
assert second["hits"] == len(second["cells"]) and second["misses"] == 0, \
    f"sweep re-run not 100% cached: {second['hits']}/{len(second['cells'])}"
for a, b in zip(first["cells"], second["cells"]):
    assert a["key"] == b["key"] and a["result"] == b["result"], a["key"]
print(f"workload smoke: {len(second['cells'])} cells, 100% cache hits on re-run")
EOF

echo "== repo-invariant lint (scripts/lint_repro.py) =="
python scripts/lint_repro.py src/repro

echo "== static analysis (python -m repro analyze) =="
# Fails on any finding that is neither inline-suppressed nor in
# analyze-baseline.json; also exports SARIF for CI annotation upload.
PYTHONPATH=src python -m repro analyze --sarif /tmp/repro_analyze.sarif
PYTHONPATH=src python - <<'EOF'
import json
from repro.analyze.sarif import validate_sarif
validate_sarif(json.load(open("/tmp/repro_analyze.sarif")))
print("analyze smoke: SARIF export valid")
EOF

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src scripts tests examples
else
    echo "== ruff not installed; skipping (config lives in pyproject.toml) =="
fi

echo "CI OK"
