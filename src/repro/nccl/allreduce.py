"""ncclAllReduce: fused-kernel ring allreduce.

Per-rank flow (all inside one stream-enqueued "kernel"):

1. rendezvous — NCCL kernels spin until every peer's kernel is resident;
2. ring reduce-scatter: 2(P-1) steps; each step puts one chunk into the
   right neighbour's staging slot over NVLink/IB (GPUDirect) and reduces
   the chunk arriving from the left in device memory;
3. completion — the kernel exits; the application synchronizes the stream
   once (not per step).

All coordination is device-side (flags in GPU memory), which is exactly
the advantage the paper attributes to NCCL over host-progressed
partitioned collectives.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Generator, List, Optional

import numpy as np

from repro.hw.memory import Buffer, MemSpace
from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import MpiOp, SUM
from repro.sim.events import Event
from repro.sim.resources import Counter, Flag
from repro.units import us

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.world import RankCtx

#: One-time ncclCommInitRank cost per rank (connection setup, IPC opens).
NCCL_INIT_COST = 120.0 * us
#: Fixed in-kernel cost per ring step (flag spin + copy issue).
NCCL_STEP_OVERHEAD = 0.35 * us
#: Parallel ring channels (NCCL runs many independent pipelines so the
#: wire never idles behind a reduction; production uses up to 32).
NCCL_CHANNELS = 8
#: Minimum elements per channel per ring chunk before splitting channels.
NCCL_MIN_CHUNK = 1024


def _pick_channels(chunk_elems: int) -> int:
    """Largest channel count <= NCCL_CHANNELS that divides the ring chunk
    and keeps slices above the minimum granularity."""
    c = min(NCCL_CHANNELS, max(1, chunk_elems // NCCL_MIN_CHUNK))
    while c > 1 and chunk_elems % c != 0:
        c -= 1
    return max(1, c)


class _CliqueState:
    """Shared state of one NCCL communicator (all ranks, one per comm)."""

    def __init__(self, engine, n_ranks: int) -> None:
        self.engine = engine
        self.n_ranks = n_ranks
        self.members: Dict[int, "NcclComm"] = {}
        self.op_states: Dict[int, "_OpState"] = {}
        self.init_count = Counter(engine)

    def op_state(
        self, seq: int, n_ranks: int, chunk_elems: int, n_channels: int, dtype
    ) -> "_OpState":
        st = self.op_states.get(seq)
        if st is None:
            st = _OpState(self.engine, n_ranks, chunk_elems, n_channels, dtype)
            self.op_states[seq] = st
        return st


class _OpState:
    """Rendezvous + per-channel/per-step arrival flags for one call."""

    def __init__(self, engine, n_ranks: int, chunk_elems: int, n_channels: int, dtype) -> None:
        self.arrived = Counter(engine)
        self.n_ranks = n_ranks
        n_steps = 2 * (n_ranks - 1)
        self.n_steps = n_steps
        self.n_channels = n_channels
        # flags[rank][channel][step]: channel data landed in rank's slot.
        self.flags: List[List[List[Flag]]] = [
            [[Flag(engine) for _ in range(n_steps)] for _ in range(n_channels)]
            for _ in range(n_ranks)
        ]
        # staging[rank]: one slot per step (channel slices sub-divide it),
        # so a fast sender can never overwrite an unconsumed chunk.
        self.staging: List[Optional[Buffer]] = [None] * n_ranks
        self.chunk_elems = chunk_elems
        self.dtype = dtype

    def slot(self, rank: int, channel: int, step: int) -> Buffer:
        buf = self.staging[rank]
        assert buf is not None, "peer kernel not resident yet"
        sub = self.chunk_elems // self.n_channels
        return buf.view(step * self.chunk_elems + channel * sub, sub)


class NcclComm:
    """Per-rank NCCL communicator handle."""

    def __init__(self, ctx: "RankCtx", clique: _CliqueState, rank: int) -> None:
        self.ctx = ctx
        self.clique = clique
        self.rank = rank
        self.engine = ctx.engine
        self.device = ctx.gpu
        self._op_seq = itertools.count()

    # -- init (collective) ---------------------------------------------------
    @classmethod
    def init(cls, ctx: "RankCtx") -> Generator:
        """ncclCommInitRank over ``ctx.comm``; every rank must call it."""
        comm = ctx.comm
        registry = ctx.world.__dict__.setdefault("_nccl_cliques", {})
        clique = registry.get(comm.comm_id)
        if clique is None:
            clique = _CliqueState(ctx.engine, comm.size)
            registry[comm.comm_id] = clique
        nccl = cls(ctx, clique, comm.rank)
        clique.members[comm.rank] = nccl
        yield ctx.engine.timeout(NCCL_INIT_COST)
        clique.init_count.add(1)
        yield clique.init_count.wait_for(clique.n_ranks)
        return nccl

    # -- ncclAllReduce ----------------------------------------------------------
    def all_reduce(
        self,
        sendbuf: Buffer,
        recvbuf: Buffer,
        op: MpiOp = SUM,
        stream=None,
    ) -> Event:
        """Enqueue the fused allreduce kernel; returns its completion event.

        In-place (sendbuf is recvbuf) is supported and preferred, like
        NCCL.  The element count must divide by the communicator size
        (ring chunking).
        """
        if len(sendbuf.data) != len(recvbuf.data):
            raise MpiUsageError("ncclAllReduce: buffer length mismatch")
        if sendbuf.space is not MemSpace.DEVICE or recvbuf.space is not MemSpace.DEVICE:
            raise MpiUsageError("ncclAllReduce requires device buffers")
        P = self.clique.n_ranks
        n = len(sendbuf.data)
        if n % P != 0:
            raise MpiUsageError(f"count {n} not divisible by {P} ranks")
        if P == 1:
            def solo():
                yield self.engine.timeout(self.device.cost.launch_latency)
                recvbuf.copy_from(sendbuf)
            stream = stream or self.device.default_stream
            return stream.enqueue(solo, label="ncclAllReduce")

        stream = stream or self.device.default_stream
        # The op sequence number is drawn when the op *starts executing*,
        # not at enqueue: stream FIFO order makes both equivalent eagerly,
        # and a stream-captured op then draws a fresh number per graph
        # replay (per-seq clique state is one-shot, so replaying a baked
        # number would rendezvous against spent flags).
        return stream.enqueue(
            lambda: self._ring_kernel(next(self._op_seq), sendbuf, recvbuf, op),
            label="ncclAllReduce",
        )

    # -- the fused ring kernel ------------------------------------------------------
    def _ring_kernel(self, seq: int, sendbuf: Buffer, recvbuf: Buffer, op: MpiOp) -> Generator:
        P = self.clique.n_ranks
        r = self.rank
        n = len(sendbuf.data)
        chunk = n // P
        n_channels = _pick_channels(chunk)
        state = self.clique.op_state(seq, P, chunk, n_channels, sendbuf.data.dtype)

        # Kernel launch + local staging slot registration.
        yield self.engine.timeout(self.device.cost.launch_latency)
        if not recvbuf.same_allocation(sendbuf):
            recvbuf.copy_from(sendbuf)  # local pass handled inside the kernel
            yield self.engine.timeout(sendbuf.nbytes * 2 / self.device.cost.hbm_bw)
        state.staging[r] = Buffer.alloc(
            chunk * state.n_steps, sendbuf.data.dtype, MemSpace.DEVICE,
            node=self.device.node, gpu=self.device.gpu_id, label=f"nccl_stage{r}",
        )

        # Rendezvous: spin until all peers' kernels are resident.
        state.arrived.add(1)
        yield state.arrived.wait_for(P)

        fabric = self.ctx.world.fabric
        hbm_bw = self.device.cost.hbm_bw
        sub = chunk // n_channels

        def channel_ring(c: int):
            for i in range(2 * (P - 1)):
                send_chunk = (r - i) % P
                recv_chunk = (r - i - 1) % P
                reduce_phase = i < (P - 1)
                yield self.engine.timeout(NCCL_STEP_OVERHEAD)

                # Put my channel-slice into the right neighbour's staging
                # slot; raise its flag when the data lands (device flag).
                src = recvbuf.view(send_chunk * chunk + c * sub, sub)
                dst = state.slot((r + 1) % P, c, i)
                put = fabric.dataplane.put(
                    src, dst, traffic_class="nccl", initiator="device",
                    name=f"nccl_c{c}s{i}",
                )
                flag = state.flags[(r + 1) % P][c][i]
                put.add_callback(lambda _ev, flag=flag: flag.set())

                # Wait for the slice arriving from my left neighbour.
                my_flag = state.flags[r][c][i]
                if not my_flag.is_set:
                    yield my_flag.wait()
                slot = state.slot(r, c, i)
                target = recvbuf.view(recv_chunk * chunk + c * sub, sub)
                if reduce_phase:
                    op.reduce_into(target.data, slot.data)
                    yield self.engine.timeout(target.nbytes * 3 / hbm_bw)
                else:
                    target.data[:] = slot.data
                    yield self.engine.timeout(target.nbytes * 2 / hbm_bw)

        channels = [
            self.engine.process(channel_ring(c), name=f"nccl_ch{c}")
            for c in range(n_channels)
        ]
        from repro.sim.events import AllOf

        yield AllOf(self.engine, channels)
        return None
