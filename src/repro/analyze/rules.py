"""The pluggable rule framework: rules, findings, and the run driver.

A *rule* is a catalogue entry (id, family, summary) owned by one *pass*
— a function ``run(project, enabled_ids) -> [Finding]`` that may emit
findings for any of its rules.  Passes share the :class:`Project` model
(symbol tables, call graph, CFGs are built once and memoized), which is
what makes whole-program rules affordable.

Findings feed one post-processing chain, identical for every rule:
inline ``# repro: ignore[rule]`` suppressions (:mod:`.suppress`), the
checked-in baseline (:mod:`.baseline`), then rendering / SARIF export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analyze.model import Project

#: Pass families, in report order.
FAMILIES = ("invariant", "effects", "determinism", "hb-static")


@dataclass(frozen=True)
class Rule:
    """Catalogue entry for one rule id."""

    id: str
    family: str
    summary: str


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule fired at a source location."""

    rule: str
    path: str
    line: int
    message: str
    function: str = ""          # qualname of the enclosing function, if any

    def render(self) -> str:
        where = f" (in {self.function})" if self.function else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{where}"

    def key(self) -> Tuple[str, str, int]:
        """Baseline identity: exact (rule, path, line)."""
        return (self.rule, self.path, self.line)


#: A pass: emits findings for the subset of its rules that are enabled.
PassFn = Callable[[Project, Sequence[str]], List[Finding]]


@dataclass
class Pass:
    """One pass family: its rules plus the function that runs them."""

    family: str
    rules: Dict[str, Rule]
    run: PassFn = field(repr=False, default=None)


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))


def run_passes(
    project: Project,
    passes: Sequence[Pass],
    only: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run every pass with its enabled rule subset; sorted findings."""
    known = {rid for p in passes for rid in p.rules}
    if only is not None:
        unknown = sorted(set(only) - known)
        if unknown:
            raise ValueError(f"unknown analyzer rules: {unknown}")
    findings: List[Finding] = []
    for p in passes:
        enabled = [
            rid for rid in p.rules if only is None or rid in only
        ]
        if enabled:
            findings += p.run(project, enabled)
    return sort_findings(findings)


def apply_suppressions(
    project: Project, findings: Iterable[Finding]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (kept, suppressed) using inline markers.

    A finding is suppressed when its own line — or the line directly
    above it (comment-only suppressions) — carries a matching
    ``# repro: ignore[...]`` marker in the finding's module.
    """
    by_path = {m.path: m for m in project.modules}
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for f in findings:
        mod = by_path.get(f.path)
        if mod is not None and _suppressed_at(mod.suppressions, f.line, f.rule):
            suppressed.append(f)
        else:
            kept.append(f)
    return kept, suppressed


def _suppressed_at(suppressions, line: int, rule: str) -> bool:
    for probe in (line, line - 1):
        entry = suppressions.get(probe, False)
        if entry is False:
            continue
        if entry is None or rule in entry:
            return True
    return False
