"""Typed link graph built from a :class:`MachineSpec` + route search.

Ports (graph vertices) are locations a byte stream can start, end, or pass
through::

    ("gpu", g)   device memory of global GPU g
    ("pin", n)   pinned / registered host memory on node n (wire-visible)
    ("pag", n)   pageable host memory on node n (behind the DRAM port)
    ("sw",  n)   node n's intra-node switch (SWITCH interconnect only)
    ("net",)     the inter-node wire

Edges carry one or two :class:`~repro.hw.links.Link` objects (a pageable
endpoint reaches the wire through its DRAM port *and* the NIC).  Routes
are resolved by uniform-cost search minimizing the number of links, with
ties broken by adjacency insertion order — fully deterministic.  The
:class:`~repro.hw.topology.Fabric` memoizes resolved routes per
(src-port, dst-port) pair, so the hot transfer path never re-searches.

Every link gets a ``stage`` rank from the spec schema; by construction
each route's stages are strictly increasing (the deadlock-freedom ladder
``tx < nic_out < nic_in < rx``), which the property tests sweep.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.hw.links import Link
from repro.hw.spec.schema import (
    Interconnect,
    LinkClass,
    MachineSpec,
    STAGE_D2D,
    STAGE_DST_LOCAL,
    STAGE_FABRIC_DOWN,
    STAGE_FABRIC_UP,
    STAGE_HOSTMEM_RX,
    STAGE_HOSTMEM_TX,
    STAGE_NIC_IN,
    STAGE_NIC_OUT,
    STAGE_SRC_LOCAL,
    STAGE_SWITCH_DOWN,
)
from repro.sim.engine import Engine

#: A graph vertex (see module docstring).
Port = Tuple
#: An adjacency entry: (destination port, links acquired crossing the edge).
Edge = Tuple[Port, Tuple[Link, ...]]


class RouteSearchError(Exception):
    """No path exists between the requested ports."""


class LinkGraph:
    """All links of one machine, wired into a routable directed graph."""

    def __init__(self, engine: Engine, spec: MachineSpec) -> None:
        self.engine = engine
        self.spec = spec
        self.adj: Dict[Port, List[Edge]] = {}
        #: Route used when source and destination ports coincide.
        self.self_routes: Dict[Port, Tuple[Link, ...]] = {}
        #: Every link, in registration order (telemetry iterates this).
        self.links: List[Link] = []

        # Structured registries (Fabric re-exports these as attributes).
        self.hbm: Dict[int, Link] = {}
        self.d2d: Dict[Tuple[int, int], Link] = {}
        self.switch_up: Dict[int, Link] = {}
        self.switch_down: Dict[int, Link] = {}
        self.d2h: Dict[int, Link] = {}
        self.h2d: Dict[int, Link] = {}
        self.hostmem_tx: Dict[int, Link] = {}
        self.hostmem_rx: Dict[int, Link] = {}
        #: NIC links, keyed by GPU (per-GPU NICs) or by node (shared NIC).
        self.nic_out: Dict[int, Link] = {}
        self.nic_in: Dict[int, Link] = {}
        #: Fabric trunks: (rail, leaf, spine) / (rail, spine, leaf) /
        #: (rail, src_group, dst_group) — empty without a FabricSpec.
        self.trunk_up: Dict[Tuple[int, int, int], Link] = {}
        self.trunk_down: Dict[Tuple[int, int, int], Link] = {}
        self.dfly_global: Dict[Tuple[int, int, int], Link] = {}

        self._build()

    # -- construction --------------------------------------------------------
    def _link(self, cls: LinkClass, name: str, stage: int, bandwidth: float = None) -> Link:
        link = Link(
            self.engine,
            name,
            bandwidth if bandwidth is not None else cls.bandwidth,
            cls.latency,
            cls.overhead,
            kind=cls.kind,
            stage=stage,
        )
        self.links.append(link)
        return link

    def _edge(self, src: Port, dst: Port, *links: Link) -> None:
        self.adj.setdefault(src, []).append((dst, links))

    def _build_fabric(self) -> None:
        """Switch ports + trunk wiring for generated fabrics.

        Replaces the single ("net",) vertex with per-rail leaf/spine (or
        dragonfly router) ports; NICs attach via :meth:`_nic_attach`.
        Wired before the node loop so trunk registration order is stable.
        """
        spec, fabric = self.spec, self.spec.fabric
        if fabric.kind == "fat-tree":
            leaves = spec.n_nodes // fabric.nodes_per_leaf
            for r in range(fabric.rails):
                for lf in range(leaves):
                    for s in range(fabric.spines_per_rail):
                        up = self.trunk_up[(r, lf, s)] = self._link(
                            fabric.trunk_up, f"r{r}up{lf}.{s}", STAGE_FABRIC_UP
                        )
                        down = self.trunk_down[(r, s, lf)] = self._link(
                            fabric.trunk_down, f"r{r}dn{s}.{lf}", STAGE_FABRIC_DOWN
                        )
                        self._edge(("leaf", r, lf), ("spine", r, s), up)
                        self._edge(("spine", r, s), ("leaf", r, lf), down)
        else:  # dragonfly: all-to-all global links per rail
            groups = spec.n_nodes // fabric.nodes_per_group
            for r in range(fabric.rails):
                for ga in range(groups):
                    for gb in range(groups):
                        if ga == gb:
                            continue
                        link = self.dfly_global[(r, ga, gb)] = self._link(
                            fabric.global_link, f"r{r}g{ga}->{gb}", STAGE_FABRIC_UP
                        )
                        self._edge(("rtr", r, ga), ("rtr", r, gb), link)

    def _nic_attach(self, node: int, local: int) -> Port:
        """The wire-side port a NIC plugs into (flat net or fabric switch)."""
        fabric = self.spec.fabric
        if fabric is None:
            return ("net",)
        rail = local % fabric.rails
        if fabric.kind == "fat-tree":
            return ("leaf", rail, node // fabric.nodes_per_leaf)
        return ("rtr", rail, node // fabric.nodes_per_group)

    def _build(self) -> None:
        spec = self.spec
        if spec.fabric is not None:
            self._build_fabric()
        for n, node in enumerate(spec.nodes):
            base = spec.gpu_base(n)
            gpus = range(base, base + node.n_gpus)

            # Local ports: HBM self-copy and the pageable DRAM tx/rx pair.
            for g in gpus:
                bw = spec.gpu_spec(g).hbm_bw
                self.hbm[g] = self._link(node.hbm, f"hbm{g}", STAGE_SRC_LOCAL, bandwidth=bw)
                self.self_routes[("gpu", g)] = (self.hbm[g],)
            tx = self.hostmem_tx[n] = self._link(node.hostmem, f"hostmem_tx{n}", STAGE_HOSTMEM_TX)
            rx = self.hostmem_rx[n] = self._link(node.hostmem, f"hostmem_rx{n}", STAGE_HOSTMEM_RX)
            self.self_routes[("pin", n)] = (tx, rx)
            self.self_routes[("pag", n)] = (tx, rx)
            self._edge(("pag", n), ("pin", n), tx, rx)
            self._edge(("pin", n), ("pag", n), tx, rx)

            # Intra-node D2D wiring (listed first so equally-short host
            # detours never win a tie against the direct device path).
            if node.interconnect is Interconnect.PAIR_MESH:
                for a in gpus:
                    for b in gpus:
                        if a != b:
                            self.d2d[(a, b)] = self._link(
                                node.d2d, f"nvl{a}->{b}", STAGE_D2D
                            )
                            self._edge(("gpu", a), ("gpu", b), self.d2d[(a, b)])
            elif node.interconnect is Interconnect.SWITCH:
                for g in gpus:
                    up = self.switch_up[g] = self._link(node.d2d, f"swup{g}", STAGE_D2D)
                    down = self.switch_down[g] = self._link(
                        node.d2d, f"swdn{g}", STAGE_SWITCH_DOWN
                    )
                    self._edge(("gpu", g), ("sw", n), up)
                    self._edge(("sw", n), ("gpu", g), down)
            # HOST_STAGED: no device edges; BFS stages D2D through the host.

            # Host <-> device links (C2C or PCIe, per direction per GPU).
            for g in gpus:
                d2h = self.d2h[g] = self._link(node.d2h, f"{node.d2h.kind}{g}", STAGE_SRC_LOCAL)
                h2d = self.h2d[g] = self._link(node.h2d, f"{node.h2d.kind}{g}", STAGE_DST_LOCAL)
                for host in (("pin", n), ("pag", n)):
                    self._edge(("gpu", g), host, d2h)
                    self._edge(host, ("gpu", g), h2d)

            # NIC placement: per GPU (GPUDirect) or one shared per node.
            if node.nic_per_gpu:
                for g in gpus:
                    att = self._nic_attach(n, g - base)
                    out = self.nic_out[g] = self._link(spec.nic_out, f"ib_out{g}", STAGE_NIC_OUT)
                    inn = self.nic_in[g] = self._link(spec.nic_in, f"ib_in{g}", STAGE_NIC_IN)
                    self._edge(("gpu", g), att, out)
                    self._edge(att, ("gpu", g), inn)
                # Host traffic rides a bootstrap NIC.  With a multi-rail
                # fabric the host bridge reaches every rail plane through
                # that rail's first NIC (host PCIe sees all HCAs); on the
                # flat wire this is exactly one attach via nic_out[base].
                rails = spec.fabric.rails if spec.fabric is not None else 1
                for r in range(min(rails, node.n_gpus)):
                    att = self._nic_attach(n, r)
                    self._edge(("pin", n), att, self.nic_out[base + r])
                    self._edge(att, ("pin", n), self.nic_in[base + r])
                    self._edge(("pag", n), att, tx, self.nic_out[base + r])
                    self._edge(att, ("pag", n), self.nic_in[base + r], rx)
            else:
                att = self._nic_attach(n, 0)
                out = self.nic_out[n] = self._link(spec.nic_out, f"ib_out_n{n}", STAGE_NIC_OUT)
                inn = self.nic_in[n] = self._link(spec.nic_in, f"ib_in_n{n}", STAGE_NIC_IN)
                # The shared NIC hangs off the host bridge: device traffic
                # reaches it through the pinned-host port.
                self._edge(("pin", n), att, out)
                self._edge(att, ("pin", n), inn)
                self._edge(("pag", n), att, tx, out)
                self._edge(att, ("pag", n), inn, rx)

    # -- search --------------------------------------------------------------
    def search(self, src: Port, dst: Port, exclude=()) -> Tuple[Link, ...]:
        """Fewest-links path ``src -> dst`` (deterministic tie-break).

        Uniform-cost search over the adjacency lists; cost is the number
        of links acquired, ties resolved by insertion order.  Same-port
        routes use the port's self-route (HBM copy, DRAM tx/rx bounce).

        ``exclude`` is a collection of links the path may not acquire —
        the dataplane's multi-path discovery peels link-disjoint routes
        by re-searching with every previously claimed link excluded.

        Downed links (``link.up`` False, see
        :class:`~repro.hw.links.LinkState`) are never traversed; on a
        healthy fabric every link is up and the search is unchanged.
        """
        if src == dst:
            route = self.self_routes.get(src)
            if route is None:
                raise RouteSearchError(f"port {src} has no self-route")
            return route
        seq = 0
        heap: List[Tuple[int, int, Port, Tuple[Link, ...]]] = [(0, 0, src, ())]
        settled = set()
        while heap:
            cost, _s, port, route = heapq.heappop(heap)
            if port in settled:
                continue
            settled.add(port)
            if port == dst:
                return route
            for nxt, links in self.adj.get(port, ()):
                if nxt in settled:
                    continue
                if exclude and any(link in exclude for link in links):
                    continue
                if any(not link.up for link in links):
                    continue
                seq += 1
                heapq.heappush(heap, (cost + len(links), seq, nxt, route + links))
        raise RouteSearchError(
            f"no path from {src} to {dst} in machine spec {self.spec.name!r}"
            + (" avoiding excluded links" if exclude else "")
        )
