"""Parameter plumbing: defaults, overrides, immutability."""

import dataclasses

import pytest

from repro.hw.params import GH200Params, ONE_NODE, PAPER_TESTBED, TestbedConfig
from repro.units import GBps, us


def test_paper_testbed_shape():
    assert PAPER_TESTBED.n_nodes == 2
    assert PAPER_TESTBED.gpus_per_node == 4
    assert PAPER_TESTBED.n_gpus == 8
    assert ONE_NODE.n_gpus == 4


def test_link_constants_match_section_v():
    p = GH200Params()
    assert p.nvlink_bw == pytest.approx(150 * GBps)
    assert p.c2c_bw == pytest.approx(450 * GBps)   # 900 GB/s total, per direction
    assert p.ib_bw == pytest.approx(50e9)          # 400 Gbit
    assert p.hbm_bw > p.c2c_bw > p.nvlink_bw > p.ib_bw


def test_params_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        GH200Params().nvlink_bw = 1.0


def test_with_overrides_returns_copy():
    base = GH200Params()
    fast = base.with_overrides(progress_poll_latency=0.1 * us)
    assert fast.progress_poll_latency == pytest.approx(0.1 * us)
    assert base.progress_poll_latency != fast.progress_poll_latency
    assert fast.nvlink_bw == base.nvlink_bw


def test_config_overrides_compose():
    cfg = PAPER_TESTBED.with_overrides(
        params=PAPER_TESTBED.params.with_overrides(ib_latency=10 * us)
    )
    assert cfg.params.ib_latency == pytest.approx(10 * us)
    assert cfg.n_nodes == 2


def test_fig3_ratio_constants():
    """flag_write_base/flag_write_host encode the paper's Fig 3 ratios."""
    p = GH200Params()
    block = p.flag_write_host + p.flag_write_base
    thread = 1024 * p.flag_write_host + p.flag_write_base
    warp = 32 * p.flag_write_host + p.flag_write_base
    assert 240 < thread / block < 300       # paper: 271.5x
    assert 8 < warp / block < 11            # paper: 9.4x


def test_config_spec_roundtrip():
    """TestbedConfig.spec() is the canonical GH200 spec with the same
    shape and constants."""
    spec = PAPER_TESTBED.spec()
    assert spec.name == "gh200-2x4"
    assert spec.n_gpus == PAPER_TESTBED.n_gpus
    assert spec.params is PAPER_TESTBED.params
    tuned = PAPER_TESTBED.with_overrides(
        params=PAPER_TESTBED.params.with_overrides(ib_latency=10 * us)
    )
    assert tuned.spec().params.ib_latency == pytest.approx(10 * us)
