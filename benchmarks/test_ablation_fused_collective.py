"""Extension bench: the paper's proposed relaxed device-Pready semantics.

Section VI-B: "we suggest that this should be relaxed to allow for
computation and communication within the call as that would allow the
execution of an entire allreduce operation within a kernel ...
[reducing] the performance differential between MPI and NCCL."

We implemented that proposal (repro.pcoll.fused): the ring runs on the
device with rkey_ptr-mapped peer windows, in-kernel reductions, and no
host progression.  This bench verifies the prediction: the fused
partitioned allreduce reaches NCCL-class time, well under the
host-progressed partitioned collective.
"""

import numpy as np
from conftest import within

from repro.bench.coll import measure_allreduce
from repro.bench.series import Series, render
from repro.cuda import UniformKernel, WorkSpec
from repro.hw.params import ONE_NODE
from repro.mpi.world import World
from repro.partitioned import device as pdev
from repro.pcoll.fused import fused_pallreduce_init
from repro.units import us

GRIDS = (1024, 8192)


def _measure_fused(grid: int, iters: int = 3) -> float:
    def main(ctx):
        comm = ctx.comm
        n = grid * 1024
        w = ctx.gpu.alloc(n)
        req = yield from fused_pallreduce_init(comm, w, w, partitions=8, device=ctx.gpu)
        preq = None
        times = []
        for _ in range(iters):
            w.data[:] = float(ctx.rank + 1)
            yield from req.start()
            yield from req.pbuf_prepare()
            if preq is None:
                preq = yield from req.prequest_create(ctx.gpu, grid=grid, block=1024)
            yield from comm.barrier()
            t0 = ctx.now
            k = UniformKernel(grid, 1024, WorkSpec.vector_add(),
                              wave_hook=lambda kc, wv: pdev.pready_wave(kc, preq, wv))
            yield from ctx.gpu.launch_h(k)
            yield from req.wait()
            times.append(ctx.now - t0)
            assert np.allclose(w.data, 10.0)
        return times

    per_rank = World(ONE_NODE).run(main, nprocs=4)
    windows = [max(col) for col in zip(*per_rank)][1:]
    return sum(windows) / len(windows)


def test_ablation_fused_collective(benchmark):
    def run():
        s = Series(
            "Ablation A5",
            "Relaxed device MPIX_Pready: fused vs host-progressed vs NCCL (4 GH200)",
            ["grid", "fused_us", "pe_collective_us", "nccl_us"],
        )
        for grid in GRIDS:
            s.add(
                grid=grid,
                fused_us=_measure_fused(grid) / us,
                pe_collective_us=measure_allreduce(grid, "partitioned", ONE_NODE, 4) / us,
                nccl_us=measure_allreduce(grid, "nccl", ONE_NODE, 4) / us,
            )
        s.note("paper section VI-B: relaxing the binding should close the NCCL gap")
        return s

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render(series))

    for row in series.rows:
        # The fused collective must close most of the PE-vs-NCCL gap...
        assert row["fused_us"] < row["pe_collective_us"] * 0.8, (
            f"fused must clearly beat the host-progressed path at grid {row['grid']}"
        )
        # ...landing within ~15% of NCCL (same mechanism, MPI-native API).
        within(row["fused_us"] / row["nccl_us"], 0.7, 1.15,
               f"fused/NCCL ratio at grid {row['grid']}")
