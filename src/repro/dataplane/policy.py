"""Path policies: how a validated descriptor becomes wire transfers.

A policy turns one :class:`~repro.dataplane.descriptor.TransferDescriptor`
plus its primary route into a list of :class:`Stripe` plans; the
:class:`~repro.dataplane.plane.Dataplane` spawns one transfer process per
stripe and completes the submission at the max of the stripe arrivals.

The contract every policy must honour (DESIGN.md §12):

* **determinism** — the plan is a pure function of the descriptor, the
  link graph, and the policy's own constants (no wall-clock, no RNG);
* **payload integrity** — the union of payload stripes covers the
  destination exactly once (each stripe copies its own element range at
  its own arrival instant);
* **single-stripe transparency** — a one-stripe plan must execute exactly
  like the pre-dataplane ``start_transfer`` call (same process name, same
  link acquisitions), which is how :class:`SinglePathPolicy` keeps pinned
  step hashes and sanitizer digests byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.units import MiB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataplane.descriptor import TransferDescriptor
    from repro.dataplane.plane import Dataplane
    from repro.hw.links import Link


@dataclass
class Stripe:
    """One planned wire transfer: a route, its bytes, its arrival action."""

    route: Tuple["Link", ...]
    nbytes: int
    on_wire_done: Optional[Callable[[], None]] = None


def _whole_payload_cb(desc: "TransferDescriptor") -> Optional[Callable[[], None]]:
    if not desc.payload:
        return None
    src, dst = desc.src, desc.dst
    return lambda: dst.copy_from(src)


class PathPolicy:
    """Base class; subclasses override :meth:`plan`."""

    name = "abstract"

    def plan(
        self,
        dp: "Dataplane",
        desc: "TransferDescriptor",
        primary: Tuple["Link", ...],
    ) -> List[Stripe]:
        raise NotImplementedError


class SinglePathPolicy(PathPolicy):
    """Today's behaviour: the whole transfer rides the fewest-links route."""

    name = "single"

    def plan(self, dp, desc, primary) -> List[Stripe]:
        return [Stripe(primary, desc.wire_bytes, _whole_payload_cb(desc))]


class MultiPathPolicy(PathPolicy):
    """Stripe large transfers across link-disjoint routes.

    Route discovery walks the link graph repeatedly, excluding every link
    already claimed by a chosen route, so stripes never queue behind each
    other on a shared port (Sojoodi et al.: parallel NVLink paths
    intra-node; dual IB rails inter-node).  Chunk sizes are proportional
    to each route's bottleneck bandwidth — all stripes finish serializing
    at roughly the same instant — with a deterministic largest-remainder
    split at element granularity for payload and byte granularity for
    control traffic.  Transfers below ``min_stripe_bytes`` (or with a
    single usable route) fall back to the single-path plan untouched.
    """

    name = "multi"

    def __init__(self, min_stripe_bytes: int = 4 * MiB, max_stripes: int = 4) -> None:
        if min_stripe_bytes < 2:
            raise ValueError("min_stripe_bytes must be >= 2")
        if max_stripes < 2:
            raise ValueError("max_stripes must be >= 2")
        self.min_stripe_bytes = min_stripe_bytes
        self.max_stripes = max_stripes

    def plan(self, dp, desc, primary) -> List[Stripe]:
        single = [Stripe(primary, desc.wire_bytes, _whole_payload_cb(desc))]
        if desc.wire_bytes < self.min_stripe_bytes:
            return single
        routes = dp.disjoint_routes(desc.src, desc.dst, self.max_stripes)
        if len(routes) < 2:
            return single
        weights = [min(link.bandwidth for link in route) for route in routes]
        if desc.payload:
            total = desc.splittable_elems()
            if total < len(routes):
                return single
            shares = _largest_remainder(total, weights)
            return self._payload_stripes(desc, routes, shares)
        shares = _largest_remainder(desc.wire_bytes, weights)
        return [
            Stripe(route, nbytes, None)
            for route, nbytes in zip(routes, shares)
            if nbytes > 0
        ]

    @staticmethod
    def _payload_stripes(desc, routes, shares) -> List[Stripe]:
        stripes: List[Stripe] = []
        offset = 0
        for route, count in zip(routes, shares):
            if count == 0:
                continue
            src_view = desc.src.view(offset, count)
            dst_view = desc.dst.view(offset, count)
            stripes.append(Stripe(
                route,
                count * desc.src.itemsize,
                lambda s=src_view, d=dst_view: d.copy_from(s),
            ))
            offset += count
        return stripes


class CongestionAwarePolicy(PathPolicy):
    """Pick the least-loaded of the link-disjoint candidate routes.

    Scores each candidate by its estimated completion: the worst per-link
    drain time ``(outstanding_bytes + wire_bytes) / bandwidth`` plus the
    route's fixed costs (max overhead + total latency).  The congestion
    signal is the dataplane-maintained outstanding-bytes counter — pure
    simulated state sampled at submit time — and ties break by candidate
    order (primary first), so the choice is fully deterministic.
    Successive submissions between one endpoint pair spread across the
    candidate routes because each pick raises its own route's load.

    Unlike :class:`MultiPathPolicy` the transfer is not split: one stripe
    rides the winning route, so small transfers also benefit and payload
    geometry is untouched.
    """

    name = "congestion"

    def __init__(self, max_candidates: int = 4) -> None:
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        self.max_candidates = max_candidates

    def plan(self, dp, desc, primary) -> List[Stripe]:
        routes = dp.disjoint_routes(desc.src, desc.dst, self.max_candidates)
        best = None
        best_cost = math.inf
        for route in routes:
            if any(not link.up for link in route):
                continue
            drain = max(
                (link.outstanding_bytes + desc.wire_bytes) / link.bandwidth
                for link in route
            )
            cost = (
                drain
                + max(link.overhead for link in route)
                + sum(link.latency for link in route)
            )
            if cost < best_cost:  # strict: earlier candidate wins ties
                best = route
                best_cost = cost
        if best is None:
            # Every candidate crosses a downed link; hand back the primary
            # and let the guarded execution path re-route or fault it.
            best = primary
        return [Stripe(best, desc.wire_bytes, _whole_payload_cb(desc))]


def _largest_remainder(total: int, weights: Sequence[float]) -> List[int]:
    """Split ``total`` integer units proportionally to ``weights``.

    Floors every share, then hands the leftover units out one each in
    route order — fully deterministic, sums exactly to ``total``.
    """
    denom = sum(weights)
    shares = [math.floor(total * w / denom) for w in weights]
    leftover = total - sum(shares)
    for i in range(leftover):
        shares[i % len(shares)] += 1
    return shares


def policy_from_env(value: Optional[str]) -> PathPolicy:
    """Map ``REPRO_PATH_POLICY`` to a policy instance ('' / None -> single)."""
    if not value or value == "single":
        return SinglePathPolicy()
    if value == "multi":
        return MultiPathPolicy()
    if value == "congestion":
        return CongestionAwarePolicy()
    raise ValueError(
        f"REPRO_PATH_POLICY={value!r} is not a known policy "
        "(single|multi|congestion)"
    )
