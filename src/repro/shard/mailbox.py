"""The deterministic mailbox: window queues + recv rendezvous slots.

Two halves, split by who owns the state:

* :class:`WindowQueue` lives **driver-side** (the sequential driver or
  the multiprocessing coordinator — one queue per shard).  Routed
  :class:`~repro.shard.message.ShardMessage`s are posted here; at each
  window the driver *takes* the batch with ``deliver <= horizon``,
  **sorted by the merge key** ``(deliver, src_shard, seq)``.  Because the
  take happens in the coordinating process for every execution mode, the
  injection schedule — and therefore each shard's ``(time, priority,
  seq)`` step stream — is independent of how shards are grouped onto
  workers.

* :class:`Mailbox` lives **shard-side**.  :meth:`Mailbox.schedule` turns
  a taken batch into absolute-time delivery events on the shard engine
  (allocating heap seq numbers in batch order), and :meth:`Mailbox.recv`
  gives workload processes a rendezvous event per ``(dst_gpu, tag)`` key.
  Delivery and recv commute at the same instant with the same pop count
  (arrival-first queues the payload; recv-first parks a waiter), which
  keeps ``events_popped`` identical between windowed and single-heap
  runs (DESIGN.md §14).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.shard.message import ShardMessage
from repro.sim.engine import Engine
from repro.sim.events import Event


class MailboxError(Exception):
    """A cross-shard message was malformed or misaddressed."""


class WindowQueue:
    """Driver-side pending messages for one destination shard."""

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        self._pending: List[ShardMessage] = []

    def post(self, msg: ShardMessage) -> None:
        self._pending.append(msg)

    def next_deliver(self) -> float:
        """Earliest pending delivery time, +inf when empty."""
        return min((m.deliver for m in self._pending), default=float("inf"))

    def take(self, horizon: float) -> List[ShardMessage]:
        """Remove and return the merge-ordered batch with deliver <= horizon."""
        if not self._pending:
            return []
        self._pending.sort(key=lambda m: m.merge_key)
        cut = 0
        for msg in self._pending:
            if msg.deliver > horizon:
                break
            cut += 1
        batch, self._pending = self._pending[:cut], self._pending[cut:]
        return batch

    def __len__(self) -> int:
        return len(self._pending)


class Mailbox:
    """Shard-side delivery scheduling + (gpu, tag) rendezvous slots."""

    def __init__(self, engine: Engine, shard_id: int) -> None:
        self.engine = engine
        self.shard_id = shard_id
        #: (dst_gpu, tag) -> payloads that arrived before their recv.
        self._arrived: Dict[Tuple, Deque[ShardMessage]] = {}
        #: (dst_gpu, tag) -> recv events parked before their arrival.
        self._waiting: Dict[Tuple, Deque[Event]] = {}
        #: Messages scheduled over the shard's lifetime (tests assert this).
        self.injected = 0

    def schedule(self, batch: List[ShardMessage]) -> None:
        """Turn a taken window batch into delivery events, in batch order.

        Each message becomes one absolute-time event; the heap sequence
        numbers allocated here are what the step-hash stream pins, so the
        caller must pass batches exactly as :meth:`WindowQueue.take`
        produced them.
        """
        engine = self.engine
        for msg in batch:
            ev = engine.timeout_at(msg.deliver, value=msg)
            ev.add_callback(self._deliver)
        self.injected += len(batch)

    def _deliver(self, ev: Event) -> None:
        msg: ShardMessage = ev.value
        key = (msg.dst_gpu, msg.tag)
        waiters = self._waiting.get(key)
        if waiters:
            waiters.popleft().succeed(msg)
            if not waiters:
                del self._waiting[key]
        else:
            self._arrived.setdefault(key, deque()).append(msg)

    def recv(self, dst_gpu: int, tag: Tuple) -> Event:
        """An event firing when a message for ``(dst_gpu, tag)`` lands.

        The event value is the :class:`ShardMessage`.  Multiple recvs of
        the same key match arrivals in delivery order (FIFO).
        """
        key = (dst_gpu, tag)
        ev = Event(self.engine)
        arrived = self._arrived.get(key)
        if arrived:
            ev.succeed(arrived.popleft())
            if not arrived:
                del self._arrived[key]
        else:
            self._waiting.setdefault(key, deque()).append(ev)
        return ev

    def unmatched(self) -> Tuple[int, int]:
        """(arrived-but-never-received, recvs-still-waiting) — leak check."""
        return (
            sum(len(d) for d in self._arrived.values()),
            sum(len(d) for d in self._waiting.values()),
        )
