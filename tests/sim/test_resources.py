"""Flags, counters, channels, resources — incl. property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.resources import Channel, Counter, Flag, Resource


# --------------------------------------------------------------------------
# Flag
# --------------------------------------------------------------------------

def test_flag_wait_after_set(engine):
    f = Flag(engine)
    f.set()

    def proc():
        yield f.wait()
        return engine.now

    assert engine.run(engine.process(proc())) == 0.0


def test_flag_wakes_all_waiters(engine):
    f = Flag(engine)
    woken = []

    def waiter(k):
        yield f.wait()
        woken.append(k)

    for k in range(5):
        engine.process(waiter(k))

    def setter():
        yield engine.timeout(1)
        f.set()

    engine.process(setter())
    engine.run()
    assert sorted(woken) == list(range(5))


def test_flag_detect_latency(engine):
    f = Flag(engine, detect_latency=0.5)
    seen = []

    def waiter():
        yield f.wait()
        seen.append(engine.now)

    engine.process(waiter())

    def setter():
        yield engine.timeout(1.0)
        f.set()

    engine.process(setter())
    engine.run()
    assert seen == [1.5]


def test_flag_idempotent_set(engine):
    f = Flag(engine)
    f.set()
    f.set()
    assert f.set_count == 1


def test_flag_clear_rearms(engine):
    f = Flag(engine)
    f.set()
    assert f.is_set
    f.clear()
    assert not f.is_set
    f.set()
    assert f.set_count == 2


# --------------------------------------------------------------------------
# Counter
# --------------------------------------------------------------------------

def test_counter_wait_for_threshold(engine):
    c = Counter(engine)
    times = []

    def waiter():
        yield c.wait_for(3)
        times.append(engine.now)

    engine.process(waiter())

    def adder():
        for _ in range(3):
            yield engine.timeout(1)
            c.add(1)

    engine.process(adder())
    engine.run()
    assert times == [3.0]
    assert c.value == 3


def test_counter_wait_already_satisfied(engine):
    c = Counter(engine, initial=5)

    def proc():
        v = yield c.wait_for(3)
        return v

    assert engine.run(engine.process(proc())) == 5


def test_counter_negative_add_rejected(engine):
    with pytest.raises(ValueError):
        Counter(engine).add(-1)


def test_counter_reset_for_new_epoch(engine):
    c = Counter(engine)
    c.add(4)
    c.reset()
    assert c.value == 0


def test_counter_multiple_thresholds(engine):
    c = Counter(engine)
    hits = []

    def waiter(threshold):
        yield c.wait_for(threshold)
        hits.append((threshold, engine.now))

    for t in (2, 4, 1):
        engine.process(waiter(t))

    def adder():
        for _ in range(4):
            yield engine.timeout(1)
            c.add(1)

    engine.process(adder())
    engine.run()
    assert sorted(hits) == [(1, 1.0), (2, 2.0), (4, 4.0)]


# --------------------------------------------------------------------------
# Channel
# --------------------------------------------------------------------------

def test_channel_fifo(engine):
    ch = Channel(engine)
    got = []

    def consumer():
        for _ in range(3):
            item = yield ch.get()
            got.append(item)

    engine.process(consumer())
    for v in ("a", "b", "c"):
        ch.put(v)
    engine.run()
    assert got == ["a", "b", "c"]


def test_channel_get_blocks_until_put(engine):
    ch = Channel(engine)

    def consumer():
        item = yield ch.get()
        return (item, engine.now)

    p = engine.process(consumer())

    def producer():
        yield engine.timeout(2)
        ch.put("late")

    engine.process(producer())
    assert engine.run(p) == ("late", 2.0)


def test_channel_try_get(engine):
    ch = Channel(engine)
    assert ch.try_get() is None
    ch.put(1)
    assert ch.try_get() == 1
    assert len(ch) == 0


def test_channel_getters_fifo(engine):
    ch = Channel(engine)
    order = []

    def consumer(k):
        item = yield ch.get()
        order.append((k, item))

    for k in range(3):
        engine.process(consumer(k))

    def producer():
        yield engine.timeout(1)
        for v in range(3):
            ch.put(v)

    engine.process(producer())
    engine.run()
    assert order == [(0, 0), (1, 1), (2, 2)]


# --------------------------------------------------------------------------
# Resource
# --------------------------------------------------------------------------

def test_resource_serializes(engine):
    res = Resource(engine, capacity=1)
    spans = []

    def user(k):
        yield res.acquire()
        start = engine.now
        yield engine.timeout(1)
        res.release()
        spans.append((k, start, engine.now))

    for k in range(3):
        engine.process(user(k))
    engine.run()
    assert spans == [(0, 0.0, 1.0), (1, 1.0, 2.0), (2, 2.0, 3.0)]


def test_resource_capacity(engine):
    res = Resource(engine, capacity=2)
    ends = []

    def user():
        yield res.acquire()
        yield engine.timeout(1)
        res.release()
        ends.append(engine.now)

    for _ in range(4):
        engine.process(user())
    engine.run()
    assert ends == [1.0, 1.0, 2.0, 2.0]


def test_resource_release_without_acquire(engine):
    with pytest.raises(RuntimeError):
        Resource(engine).release()


def test_resource_invalid_capacity(engine):
    with pytest.raises(ValueError):
        Resource(engine, capacity=0)


# --------------------------------------------------------------------------
# property-based
# --------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_property_timeouts_complete_in_sorted_order(delays):
    """Any bag of timeouts completes in non-decreasing time order."""
    eng = Engine()
    completions = []

    def proc(d):
        yield eng.timeout(d)
        completions.append(eng.now)

    for d in delays:
        eng.process(proc(d))
    eng.run()
    assert completions == sorted(completions)
    assert len(completions) == len(delays)


@given(st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_property_counter_thresholds_fire_exactly_once(amounts):
    """Every waiter below the final total fires exactly once."""
    eng = Engine()
    c = Counter(eng)
    total = sum(amounts)
    fired = []

    def waiter(threshold):
        yield c.wait_for(threshold)
        fired.append(threshold)

    thresholds = list(range(1, total + 1, max(1, total // 10)))
    for t in thresholds:
        eng.process(waiter(t))

    def adder():
        for a in amounts:
            yield eng.timeout(1)
            c.add(a)

    eng.process(adder())
    eng.run()
    assert sorted(fired) == thresholds


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_property_channel_preserves_order_and_content(items):
    eng = Engine()
    ch = Channel(eng)
    got = []

    def consumer():
        for _ in items:
            got.append((yield ch.get()))

    eng.process(consumer())
    for it in items:
        ch.put(it)
    eng.run()
    assert got == items
