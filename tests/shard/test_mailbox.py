"""Mailbox layer: window queues, rendezvous slots, bridge edges, wire model."""

import numpy as np
import pytest

from repro.dataplane.descriptor import DescriptorError
from repro.hw.memory import Buffer, MemSpace
from repro.hw.spec.generators import (
    min_internode_latency,
    resolve_machine,
    wire_bandwidth,
    wire_latency,
)
from repro.shard import (
    Mailbox,
    MailboxError,
    RemoteBuffer,
    Shard,
    WindowQueue,
    WireModel,
    local_spec,
)
from repro.shard.message import ShardMessage
from repro.sim.engine import Engine
from repro.units import us


def _msg(deliver, src_shard=1, seq=1, dst_gpu=0, tag=("t",)):
    return ShardMessage(
        deliver, src_shard, seq, 0, dst_gpu, 8, tag, 64, "shard", "m"
    )


# -- WindowQueue --------------------------------------------------------------

def test_window_queue_merge_order_and_horizon_split():
    q = WindowQueue()
    late = _msg(3 * us)
    tie_b = _msg(1 * us, src_shard=2, seq=1)
    tie_a = _msg(1 * us, src_shard=1, seq=2)
    first = _msg(1 * us, src_shard=1, seq=1)
    for m in (late, tie_b, tie_a, first):
        q.post(m)
    assert q.next_deliver() == 1 * us
    batch = q.take(2 * us)
    # Sorted by (deliver, src_shard, seq); deliver > horizon stays queued.
    assert batch == [first, tie_a, tie_b]
    assert len(q) == 1 and q.next_deliver() == 3 * us
    assert q.take(10 * us) == [late]
    assert q.take(10 * us) == [] and q.next_deliver() == float("inf")


def test_window_queue_take_is_horizon_inclusive():
    q = WindowQueue()
    q.post(_msg(2 * us))
    assert q.take(2 * us) == [_msg(2 * us)]


# -- Mailbox ------------------------------------------------------------------

def test_recv_after_arrival():
    engine = Engine()
    mb = Mailbox(engine, 0)
    msg = _msg(1 * us)
    mb.schedule([msg])
    engine.run()
    assert mb.injected == 1
    assert mb.unmatched() == (1, 0)
    ev = mb.recv(0, ("t",))
    assert ev.triggered and ev.value == msg
    assert mb.unmatched() == (0, 0)


def test_recv_before_arrival():
    engine = Engine()
    mb = Mailbox(engine, 0)
    got = []

    def waiter():
        got.append((yield mb.recv(0, ("t",))))

    engine.process(waiter())
    msg = _msg(1 * us)
    mb.schedule([msg])
    engine.run()
    assert got == [msg]
    assert engine.now == pytest.approx(1 * us)
    assert mb.unmatched() == (0, 0)


def test_recv_matches_fifo_in_delivery_order():
    engine = Engine()
    mb = Mailbox(engine, 0)
    early = _msg(1 * us, seq=1)
    late = _msg(2 * us, seq=2)
    mb.schedule([early, late])
    engine.run()
    assert mb.recv(0, ("t",)).value == early
    assert mb.recv(0, ("t",)).value == late


def test_distinct_tags_do_not_match():
    engine = Engine()
    mb = Mailbox(engine, 0)
    mb.schedule([_msg(1 * us, tag=("a",))])
    engine.run()
    ev = mb.recv(0, ("b",))
    assert not ev.triggered
    assert mb.unmatched() == (1, 1)


# -- Shard + bridge edges -----------------------------------------------------

SPEC = resolve_machine("fat-tree-32-r2-l2")


def _empty_build(shard, cfg):
    return []


def _make_shard(sid=0):
    return Shard(SPEC, sid, _empty_build, {})


def _dev_buf(nbytes, gpu=0):
    return Buffer.alloc_virtual(nbytes, np.uint8, MemSpace.DEVICE, 0, gpu)


def test_remote_buffer_rejects_negative_size():
    with pytest.raises(MailboxError, match="negative"):
        RemoteBuffer(9, -1, ("t",))


def test_bridge_rejects_remote_source_pull():
    shard = _make_shard()
    with pytest.raises(MailboxError, match="cannot pull"):
        shard.fabric.dataplane.put(shard.remote(9, 64, ("t",)), _dev_buf(64))


def test_bridge_rejects_shard_local_remote_dst():
    shard = _make_shard()  # shard 0 owns global gpus 0..7
    with pytest.raises(MailboxError, match="shard-local"):
        shard.put(_dev_buf(64), shard.remote(3, 64, ("t",)))


def test_bridge_rejects_payload_size_mismatch():
    shard = _make_shard()
    with pytest.raises(DescriptorError, match="size mismatch"):
        shard.put(_dev_buf(64), shard.remote(9, 128, ("t",)))


def test_bridge_emits_wire_priced_message():
    shard = _make_shard()
    nbytes = 1 << 16
    ev = shard.put(_dev_buf(nbytes), shard.remote(9, nbytes, ("t",)))
    out = shard.bridge.drain()
    assert len(out) == 1
    msg = out[0]
    assert (msg.src_shard, msg.dst_shard) == (0, 1)
    assert (msg.src_gpu, msg.dst_gpu) == (0, 9)
    assert msg.deliver == pytest.approx(
        wire_latency(SPEC, 0, 9) + nbytes / wire_bandwidth(SPEC, 0, 9)
    )
    assert shard.bridge.bytes_by_class == {"shard": nbytes}
    # Local completion fires at the delivery time, beyond any window that
    # could have produced the send (the conservative-lookahead invariant).
    assert not ev.processed
    shard.engine.run()
    assert ev.processed and shard.engine.now == pytest.approx(msg.deliver)


def test_to_local_rejects_foreign_gpu():
    shard = _make_shard()
    with pytest.raises(MailboxError, match="not hosted"):
        shard.recv(9, ("t",))
    assert shard.owns_gpu(7) and not shard.owns_gpu(8)


def test_local_spec_is_a_single_node_cut():
    cut = local_spec(SPEC, 2)
    assert cut.n_nodes == 1
    assert cut.fabric is None
    assert cut.nodes[0] == SPEC.nodes[2]
    assert cut.nic_out == SPEC.nic_out and cut.nic_in == SPEC.nic_in


# -- Engine.t_busy ------------------------------------------------------------

def test_t_busy_tracks_last_pop_not_horizon():
    engine = Engine()
    assert engine.t_busy == 0.0
    engine.timeout_at(1 * us)
    engine.run(5 * us)
    assert engine.now == pytest.approx(5 * us)
    assert engine.t_busy == pytest.approx(1 * us)
    # An empty window advances now but never t_busy.
    engine.run(9 * us)
    assert engine.t_busy == pytest.approx(1 * us)


# -- WireModel ----------------------------------------------------------------

def test_wire_model_caches_by_relationship():
    wire = WireModel(SPEC)
    # gpus 0 and 2 sit on node 0 rail 0; 8 and 10 on node 1 rail 0.
    assert wire.price(0, 8) == wire.price(2, 10)
    assert len(wire._cache) == 1
    wire.price(0, 9)  # cross-rail: a second relationship class
    assert len(wire._cache) == 2


def test_wire_model_deliver_time_and_lookahead():
    wire = WireModel(SPEC)
    lat, bw = wire.price(0, 8)
    nbytes = 1 << 20
    assert wire.deliver_time(3 * us, 0, 8, nbytes) == pytest.approx(
        3 * us + lat + nbytes / bw
    )
    assert wire.lookahead() == pytest.approx(min_internode_latency(SPEC))
    assert wire.lookahead() <= lat
