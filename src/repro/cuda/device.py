"""The simulated GPU device: allocation, launch, synchronize, memcpy.

Host-side API methods ending in ``_h`` are generator helpers meant to be
delegated to from a rank's host process via ``yield from``; they charge the
host-visible API cost there (launch call, sync call, memcpy call), while
the device-side work runs asynchronously in the device's streams.
"""

from __future__ import annotations

import math
from typing import Any, Generator, Optional

import numpy as np

from repro.cuda.devapi import BlockCtx, KernelCtx
from repro.cuda.kernel import BlockKernel, KernelBase, UniformKernel, Wave
from repro.cuda.timing import CostModel
from repro.hw.memory import Buffer, MemSpace
from repro.hw.topology import Fabric
from repro.san import record
from repro.sim.events import AllOf, Event
from repro.sim.resources import Resource


class Device:
    """One Hopper GPU of a GH200 superchip."""

    def __init__(
        self,
        fabric: Fabric,
        gpu_id: int,
        cost: Optional[CostModel] = None,
        name: Optional[str] = None,
    ) -> None:
        fabric.topo._check(gpu_id)
        self.fabric = fabric
        self.engine = fabric.engine
        self.gpu_id = gpu_id
        self.node = fabric.topo.node_of(gpu_id)
        self.cost = cost or self._spec_cost(fabric, gpu_id)
        self.name = name or f"gpu{gpu_id}"
        #: The TransferGraph an open stream capture on this device is
        #: recording into, or None.  Capture-mode-global semantics: while
        #: set, enqueues on any *other* stream of this device are
        #: unrepresentable cross-stream dependencies (repro.dataplane.graph).
        self.active_capture = None
        from repro.cuda.stream import Stream  # local import to avoid cycle

        self.default_stream = Stream(self, name=f"{self.name}.s0")
        self._stream_count = 1

    @staticmethod
    def _spec_cost(fabric: Fabric, gpu_id: int) -> CostModel:
        """Cost model for this device, honouring the machine spec's per-GPU
        constants (SM count, HBM bandwidth) when the spec sets them."""
        gs = fabric.spec.gpu_spec(gpu_id)
        overrides = {}
        if gs.sm_count is not None:
            overrides["sm_count"] = gs.sm_count
        if gs.hbm_bw is not None:
            overrides["hbm_bw"] = gs.hbm_bw
        return CostModel().with_overrides(**overrides) if overrides else CostModel()

    # -- allocation --------------------------------------------------------------
    def alloc(self, n: int, dtype=np.float64, fill: Optional[float] = None, label: str = "") -> Buffer:
        """cudaMalloc: device global memory."""
        return Buffer.alloc(n, dtype, MemSpace.DEVICE, self.node, self.gpu_id, fill, label)

    def alloc_virtual(self, n: int, dtype=np.float64, label: str = "") -> Buffer:
        """Geometry-only device allocation (see Buffer.alloc_virtual).

        For benchmark payloads whose bytes are never checked: protocol
        sizes and timings are identical to a real allocation, but no
        GiB-scale NumPy arrays are materialized or memcpy'd.
        """
        return Buffer.alloc_virtual(n, dtype, MemSpace.DEVICE, self.node, self.gpu_id, label)

    def alloc_pinned(self, n: int, dtype=np.float64, fill: Optional[float] = None, label: str = "") -> Buffer:
        """cudaMallocHost: page-locked host memory on this superchip."""
        return Buffer.alloc(n, dtype, MemSpace.PINNED, self.node, None, fill, label)

    def alloc_unified(self, n: int, dtype=np.float64, fill: Optional[float] = None, label: str = "") -> Buffer:
        """cudaMallocManaged: unified memory homed on this GPU."""
        return Buffer.alloc(n, dtype, MemSpace.UNIFIED, self.node, self.gpu_id, fill, label)

    def new_stream(self) -> "Any":
        from repro.cuda.stream import Stream

        self._stream_count += 1
        return Stream(self, name=f"{self.name}.s{self._stream_count - 1}")

    # -- kernel launch ------------------------------------------------------------
    def launch(self, kernel: KernelBase, stream=None) -> Event:
        """Asynchronously enqueue a kernel; returns its completion event.

        This is the zero-host-cost primitive; host code should prefer
        ``yield from device.launch_h(kernel)`` which also charges the
        host-side launch API cost.
        """
        kernel.validate(self.cost)
        stream = stream or self.default_stream
        obs = self.engine.obs
        if obs is not None:
            obs.instant(
                "cuda", "launch", ("host", self.gpu_id),
                kernel=kernel.name, grid=kernel.grid, block=kernel.block,
                stream=stream.name,
            )
        return stream.enqueue(lambda: self._exec_kernel(kernel, stream), label=kernel.name)

    def launch_h(self, kernel: KernelBase, stream=None) -> Generator:
        """Host helper: charge launch API cost, then enqueue (returns event)."""
        yield self.engine.timeout(self.cost.launch_api_cost)
        return self.launch(kernel, stream)

    def graph_launch_h(self, graph, stream=None) -> Generator:
        """Host helper: charge the (single) launch API cost, then replay
        a captured graph on ``stream``; returns the completion event.

        One API charge covers the whole graph — the batching win CUDA
        graphs exist for — versus one charge per kernel in the eager
        ``launch_h`` path.
        """
        stream = stream or self.default_stream
        yield self.engine.timeout(self.cost.launch_api_cost)
        return stream.graph_launch(graph)

    def sync_h(self, stream=None) -> Generator:
        """``cudaStreamSynchronize``: block until drained + fixed API cost."""
        stream = stream or self.default_stream
        obs = self.engine.obs
        t0 = self.engine.now
        yield stream.drained()
        record.acquire(("host", self.gpu_id), ("drain", stream.name))
        yield self.engine.timeout(self.cost.stream_sync_cost)
        if obs is not None:
            obs.span(
                "cuda", "sync", ("host", self.gpu_id),
                t0, self.engine.now, stream=stream.name,
            )

    def device_sync_h(self) -> Generator:
        """``cudaDeviceSynchronize`` over this device's default stream."""
        yield from self.sync_h(self.default_stream)

    # -- memcpy ------------------------------------------------------------------
    def memcpy_async(self, dst: Buffer, src: Buffer, stream=None) -> Event:
        """cudaMemcpyAsync: queue a copy on a stream; returns completion."""
        stream = stream or self.default_stream

        def op():
            yield self.fabric.dataplane.put(
                src, dst, traffic_class="cuda", name="memcpy"
            )

        return stream.enqueue(op, label="memcpy", buffers=(src, dst))

    def memcpy_h(self, dst: Buffer, src: Buffer, stream=None) -> Generator:
        """Host helper: synchronous cudaMemcpy (API cost + wait for copy)."""
        yield self.engine.timeout(self.cost.memcpy_api_cost)
        done = self.memcpy_async(dst, src, stream)
        yield done

    # -- kernel execution internals ---------------------------------------------------
    def _exec_kernel(self, kernel: KernelBase, stream=None) -> Generator:
        launcher = stream.actor if stream is not None else ("host", self.gpu_id)
        yield self.engine.timeout(self.cost.launch_latency)
        obs = self.engine.obs
        t0 = self.engine.now
        record.release(launcher, ("kstart", id(kernel)))
        if kernel.apply is not None:
            # Materialize the kernel's numerical result now (see kernel.py
            # docstring for the visibility argument).
            kernel.apply()
            record.mark("apply", actor=launcher, gpu=self.gpu_id, kernel=kernel.name)
        if isinstance(kernel, UniformKernel):
            yield from self._exec_uniform(kernel)
        elif isinstance(kernel, BlockKernel):
            yield from self._exec_blocks(kernel)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown kernel flavour: {type(kernel).__name__}")
        if obs is not None:
            obs.span(
                "kernel", kernel.name, ("gpu", self.name),
                t0, self.engine.now, grid=kernel.grid, block=kernel.block,
            )
        record.acquire(launcher, ("kdone", id(kernel)))

    def _exec_uniform(self, kernel: UniformKernel) -> Generator:
        kctx = KernelCtx(self, kernel)
        record.acquire(kctx.actor, ("kstart", id(kernel)))
        plan = self.cost.wave_plan(kernel.grid, kernel.block, kernel.work)
        engine = self.engine

        # Coalesced fast path (DESIGN.md §11): with nothing observing
        # individual pops, waves whose hook effects are invisible collapse
        # into one heap event per wake point.  Wake times are folded with
        # the same left-to-right float additions the exact loop performs,
        # and scheduled at those *absolute* times, so every externally
        # observable action lands on a byte-identical simulated timestamp.
        if len(plan) > 1 and engine.coalescing:
            if kernel.wave_hook is None:
                t = engine.now
                for _blocks, dt in plan:
                    t = t + dt
                engine.events_coalesced += len(plan) - 1
                yield engine.timeout_at(t)
                record.release(kctx.actor, ("kdone", id(kernel)))
                return
            wave_batches = getattr(kernel.wave_hook, "wave_batches", None)
            if wave_batches is not None:
                batches = wave_batches(kctx, plan)
                if batches is not None:
                    for n_waves, t_end, fire in batches:
                        if n_waves > 1:
                            engine.events_coalesced += n_waves - 1
                        yield engine.timeout_at(t_end)
                        if fire is not None:
                            fire(kctx)
                    record.release(kctx.actor, ("kdone", id(kernel)))
                    return

        for index, (blocks, dt) in enumerate(plan):
            start = engine.now
            yield engine.timeout(dt)
            if kernel.wave_hook is not None:
                kernel.wave_hook(
                    kctx,
                    Wave(index=index, blocks=blocks, start_time=start, end_time=engine.now),
                )
        record.release(kctx.actor, ("kdone", id(kernel)))

    def _exec_blocks(self, kernel: BlockKernel) -> Generator:
        resident = self.cost.resident_blocks(kernel.block)
        slots = Resource(
            self.engine, capacity=min(resident, kernel.grid), name=f"{self.name}.sm"
        )

        def run_block(block_id: int):
            yield slots.acquire()
            try:
                blk = BlockCtx(self, kernel, block_id)
                record.acquire(blk.actor, ("kstart", id(kernel)))
                yield self.engine.process(
                    kernel.body(blk), name=f"{kernel.name}.b{block_id}"
                )
                record.release(blk.actor, ("kdone", id(kernel)))
            finally:
                slots.release()

        blocks = [
            self.engine.process(run_block(b), name=f"{kernel.name}.blk{b}")
            for b in range(kernel.grid)
        ]
        yield AllOf(self.engine, blocks)

    # -- misc ----------------------------------------------------------------------
    def exec_time(self, kernel: UniformKernel) -> float:
        """Closed-form execution time of a uniform kernel on this device."""
        return self.cost.kernel_exec_time(kernel.grid, kernel.block, kernel.work)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Device {self.name} node={self.node}>"
