"""Seeded determinism hazards: route selection driven by set hash order.

Dynamically invisible — any single run picks *some* route and completes;
only comparing runs across ``PYTHONHASHSEED`` values would expose the
divergence, which the trace sanitizer never does.  The determinism lint
flags all four shapes statically.
"""


def pick_route(width):
    lanes = {f"lane{i}" for i in range(width)}
    for lane in lanes:              # det-unordered-iter: hash-order choice
        return lane
    return None


def total_latency(samples):
    observed = {float(s) for s in samples}
    return sum(observed)            # det-float-accum: hash-order accumulation


def make_rng():
    from random import Random

    return Random()                 # det-unseeded-random


def stable_order(requests):
    return sorted(requests, key=lambda r: id(r))   # det-id-order
