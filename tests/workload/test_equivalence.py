"""Ports stay byte-identical: every workload vs the pre-refactor fixture.

``fixtures/seed_outputs.json`` was captured from the legacy drivers
(``figures.ALL_EXHIBITS``, a raw ``World`` pingpong, direct
``ClusterJob`` runs) immediately before the repro.workload port.  These
tests replay the same points through the registry and require identical
rows, notes, byte ledgers, and ``events_popped`` — in both the
sequential and ``shards=2`` cluster executors.
"""

import json
import os

import pytest

from repro.workload import canonical_json, get

FIXTURE_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "seed_outputs.json"
)
with open(FIXTURE_PATH) as _fh:
    FIXTURE = json.load(_fh)


def _norm(obj):
    """JSON-normalize (tuples -> lists, int keys -> str) for comparison."""
    return json.loads(canonical_json(obj))


# -- paper exhibits -----------------------------------------------------------

@pytest.mark.parametrize("name", sorted(FIXTURE["exhibits"]))
def test_exhibit_pinned(name):
    pinned = FIXTURE["exhibits"][name]
    params = {
        k: tuple(v) if isinstance(v, list) else v
        for k, v in pinned["params"].items()
    }
    res = get(name).run(**params)
    assert res.series.exhibit == pinned["exhibit"]
    assert list(res.series.columns) == pinned["columns"]
    assert _norm(res.series.rows) == _norm(pinned["rows"])
    assert _norm(res.series.notes) == _norm(pinned["notes"])
    assert res.events_popped == pinned["events_popped"]
    assert "series" in res.digests


# -- bench pingpong -----------------------------------------------------------

def test_pingpong_pinned():
    pinned = FIXTURE["pingpong"]
    res = get("pingpong").run()
    assert _norm(res.class_bytes) == _norm(pinned["class_bytes"])
    assert res.events_popped == pinned["events_popped"]


# -- cluster workloads, both executors ---------------------------------------

CLUSTER_CFG = {
    "halo": {"iters": 2, "chunks": 2, "chunk_bytes": 1 << 16, "face_bytes": 1 << 16},
    "allreduce-node": {"iters": 2, "elems": 256, "ring_bytes": 1 << 12},
}


@pytest.mark.parametrize("mode", ["sequential", "shards2"])
@pytest.mark.parametrize("name", sorted(CLUSTER_CFG))
def test_cluster_pinned(name, mode):
    pinned = FIXTURE["cluster"][name][mode]
    shards = 2 if mode == "shards2" else None
    res = get(name).run(
        machine="fat-tree-32-r2-l2", shards=shards, **CLUSTER_CFG[name]
    )
    assert _norm(res.extra["signature"]) == _norm(pinned)
    assert res.events_popped == pinned["events_popped"]
    assert res.digests["msg"] == pinned["msg_digest"]


def test_cluster_sequential_and_sharded_digests_agree():
    a = get("halo").run(machine="fat-tree-32-r2-l2", **CLUSTER_CFG["halo"])
    b = get("halo").run(
        machine="fat-tree-32-r2-l2", shards=2, **CLUSTER_CFG["halo"]
    )
    assert a.digests == b.digests
    assert a.events_popped == b.events_popped
