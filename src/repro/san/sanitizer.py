"""The Sanitizer context manager: record a window, then analyze it.

::

    with Sanitizer() as san:
        World(ONE_NODE).run(main, nprocs=2)
    if not san.report.ok:
        print(san.report.render())

A sanitizer is global while active (exactly one at a time): every Engine
built inside the window registers itself, so multi-``World`` programs —
e.g. ``examples/jacobi_halo.py`` running six solves — are sanitized end
to end.  Analysis (the happens-before detector plus the partitioned-
semantics checks) runs once, at ``__exit__``; the report is also computed
when the body raises, so guard-tripped runs still yield findings.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.obs import bus as obs_bus
from repro.san import record
from repro.san.checks import run_checks
from repro.san.report import Finding, Report


class Sanitizer:
    """Records one window of simulation and checks it.

    Recording rides the :mod:`repro.obs` bus: entering subscribes a fresh
    :class:`~repro.san.record.Recorder` to the ambient bus (installing a
    private one when no profiler already installed theirs), so sanitizing
    and profiling the same run compose.

    Parameters
    ----------
    checks:
        Check ids to run (default: every dynamic check).  See
        ``python -m repro san --list-checks``.
    """

    def __init__(self, checks: Optional[Sequence[str]] = None) -> None:
        self.checks = list(checks) if checks is not None else None
        self.recorder: Optional[record.Recorder] = None
        self.report: Optional[Report] = None
        self._bus: Optional[obs_bus.Bus] = None
        self._own_bus = False

    # -- context management -------------------------------------------------
    def __enter__(self) -> "Sanitizer":
        self.recorder = record.Recorder()
        record.install(self.recorder)
        bus = obs_bus.active()
        if bus is None:
            bus = obs_bus.Bus()
            obs_bus.install(bus)
            self._own_bus = True
        self._bus = bus
        bus.subscribe(self.recorder)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._bus is not None
        self._bus.unsubscribe(self.recorder)
        if self._own_bus:
            obs_bus.uninstall()
        self._bus = None
        self._own_bus = False
        rec = record.uninstall()
        self.report = Report(
            findings=run_checks(rec.events, rec.allocs, only=self.checks),
            trace=rec.events,
        )
        return False  # never swallow the body's exception

    # -- results ------------------------------------------------------------
    @property
    def findings(self) -> List[Finding]:
        if self.report is None:
            raise RuntimeError("sanitizer window still open (or never entered)")
        return self.report.findings

    def trace_bytes(self) -> bytes:
        """Deterministic serialization of the recorded trace."""
        if self.recorder is None:
            raise RuntimeError("sanitizer was never entered")
        return self.recorder.trace_bytes()
