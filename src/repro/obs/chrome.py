"""Chrome ``trace_event``-format export (loads in Perfetto / about:tracing).

One track (tid) per actor, named with the sanitizer's actor formatting;
spans become complete events (``ph="X"``), instants become thread-scoped
instant events (``ph="i"``), counters become ``ph="C"`` series.  Simulated
seconds map to trace microseconds.

``validate_trace`` is the schema check ``scripts/ci.sh`` runs against the
exported JSON.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.bus import COUNTER, INSTANT, SPAN, ObsEvent
from repro.san.record import fmt_actor

#: Trace pid for the single simulated process.
_PID = 0

#: Categories excluded by default: per-step engine instants are one event
#: per heap pop and drown every other track.
_NOISY = frozenset({"engine"})


def _json_safe(value: Any) -> Any:
    """Payload values for the ``args`` dict: scalars pass through, simulation
    objects (Buffers, sync tuples) degrade to short labels."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple) and all(
        v is None or isinstance(v, (bool, int, float, str)) for v in value
    ):
        return list(value)
    label = getattr(value, "label", None)
    if isinstance(label, str) and label:
        return f"<{label}>"
    return f"<{type(value).__name__}>"


def _track_name(ev: ObsEvent) -> str:
    if ev.actor is not None:
        return fmt_actor(ev.actor)
    # Anonymous events group by category so links/copies get their own track.
    return ev.cat


def chrome_trace(
    events: Iterable[ObsEvent], include: Optional[Iterable[str]] = None
) -> Dict[str, Any]:
    """Build a ``{"traceEvents": [...]}`` object from a stream of events.

    ``include``: extra categories to keep that are noisy by default
    (currently just ``"engine"``, the per-step heap instants).
    """
    keep_noisy = frozenset(include or ())
    tids: Dict[str, int] = {}
    out: List[Dict[str, Any]] = []

    def tid_for(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = len(tids)
            tids[track] = tid
            out.append({
                "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
                "args": {"name": track},
            })
        return tid

    for ev in events:
        if ev.cat in _NOISY and ev.cat not in keep_noisy:
            continue
        args = {k: _json_safe(v) for k, v in ev.payload}
        ts = ev.t0 * 1e6
        if ev.kind == SPAN:
            out.append({
                "name": ev.name, "cat": ev.cat, "ph": "X",
                "ts": ts, "dur": (ev.t1 - ev.t0) * 1e6,
                "pid": _PID, "tid": tid_for(_track_name(ev)), "args": args,
            })
        elif ev.kind == INSTANT:
            out.append({
                "name": ev.name, "cat": ev.cat, "ph": "i", "s": "t",
                "ts": ts, "pid": _PID, "tid": tid_for(_track_name(ev)),
                "args": args,
            })
        elif ev.kind == COUNTER:
            numeric = {
                k: v for k, v in args.items() if isinstance(v, (int, float))
            }
            out.append({
                "name": ev.name, "cat": ev.cat, "ph": "C",
                "ts": ts, "pid": _PID, "args": numeric,
            })
    return {
        "traceEvents": out,
        "displayTimeUnit": "ns",
        "otherData": {"source": "repro.obs", "clock": "simulated-seconds*1e6"},
    }


def validate_trace(obj: Any) -> None:
    """Raise ``ValueError`` unless ``obj`` is a well-formed trace_event JSON
    object (the subset this exporter emits)."""
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        raise ValueError("trace must be an object with a 'traceEvents' list")
    for i, ev in enumerate(obj["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "C", "M"):
            raise ValueError(f"{where}: unknown phase {ph!r}")
        if not isinstance(ev.get("name"), str):
            raise ValueError(f"{where}: missing event name")
        if "pid" not in ev:
            raise ValueError(f"{where}: missing pid")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: complete event needs dur >= 0")
        if ph == "i" and ev.get("s") not in ("t", "p", "g", None):
            raise ValueError(f"{where}: bad instant scope {ev.get('s')!r}")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            raise ValueError(f"{where}: counter event needs an args dict")


class ChromeTraceExporter:
    """Bus subscriber accumulating events for later export."""

    def __init__(self) -> None:
        self.events: List[ObsEvent] = []

    def on_event(self, ev: ObsEvent) -> None:
        self.events.append(ev.compact())

    def to_obj(self, include: Optional[Iterable[str]] = None) -> Dict[str, Any]:
        return chrome_trace(self.events, include=include)

    def write(self, path: str, include: Optional[Iterable[str]] = None) -> None:
        obj = self.to_obj(include=include)
        validate_trace(obj)
        with open(path, "w") as fh:
            json.dump(obj, fh)
