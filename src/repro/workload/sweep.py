"""(workload × machine × policy) sweep grid with a content-addressed cache.

:func:`run_sweep` crosses workload specs (registry names or
``replay:<file>`` schedules), machine names, and path policies, running
every cell through the one :class:`~repro.workload.base.Workload`
contract.  Each cell's result is cached under a content-addressed key::

    sha256(canonical_json({
        "spec":     sha256(canonical_json(asdict(machine_spec))),
        "workload": sha256(canonical_json(workload.fingerprint(**params))),
        "policy":   policy or "default",
    }))

so a cache hit means *this exact machine shape, workload content, and
policy* already ran — renaming a spec file or tweaking a parameter
misses, editing whitespace in a schedule's JSONL does not (the replay
fingerprint hashes the parsed schedule, not the file).  ``shards`` is
deliberately absent from the key: sharded execution is pinned
bit-identical to sequential (DESIGN.md §14), so both executors share
cache entries.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.hw.spec.catalog import as_spec
from repro.workload.base import (
    Workload,
    WorkloadError,
    WorkloadResult,
    canonical_json,
    resolve_machine_arg,
    sha256_hex,
)
from repro.workload.registry import resolve_spec


def spec_hash(machine: Union[str, Any]) -> str:
    """SHA-256 of the resolved machine spec's canonical content."""
    spec = as_spec(resolve_machine_arg(machine))
    return sha256_hex(canonical_json(dataclasses.asdict(spec)))


def workload_hash(workload: Workload, params: Optional[dict] = None) -> str:
    return sha256_hex(canonical_json(workload.fingerprint(**(params or {}))))


def cell_key(
    machine: Union[str, Any],
    workload: Workload,
    policy: Optional[str],
    params: Optional[dict] = None,
) -> str:
    """The content-addressed cache key for one sweep cell."""
    return sha256_hex(canonical_json({
        "spec": spec_hash(machine),
        "workload": workload_hash(workload, params),
        "policy": policy if policy is not None else "default",
    }))


class SweepCache:
    """One JSON file per cell, named by its content-addressed key."""

    def __init__(self, root: str) -> None:
        self.root = root

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str) -> Optional[WorkloadResult]:
        path = self._path(key)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError) as exc:
            raise WorkloadError(f"corrupt sweep cache entry {path}: {exc}") from exc
        return WorkloadResult.from_dict(doc)

    def store(self, key: str, result: WorkloadResult) -> None:
        os.makedirs(self.root, exist_ok=True)
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(result.as_dict(), fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)


DEFAULT_CACHE_DIR = ".sweep-cache"


def run_sweep(
    workloads: Sequence[Union[str, Workload]],
    machines: Sequence[str],
    policies: Sequence[Optional[str]] = (None,),
    shards: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    printer: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the full (workload × machine × policy) grid.

    Returns ``{"cells": [...], "hits": n, "misses": n}`` where each cell
    carries its key, coordinates, cache status, and the full
    ``WorkloadResult.as_dict()``.  ``cache_dir=None`` disables caching.
    ``shards`` applies only to shard-capable workloads; others run on
    their single engine regardless.
    """
    say = printer if printer is not None else (lambda _msg: None)
    cache = SweepCache(cache_dir) if cache_dir else None
    resolved: List[Workload] = [
        wl if isinstance(wl, Workload) else resolve_spec(wl) for wl in workloads
    ]
    if not resolved:
        raise WorkloadError("sweep needs at least one workload")
    if not machines:
        raise WorkloadError("sweep needs at least one machine")
    cells: List[dict] = []
    hits = misses = 0
    for wl in resolved:
        wl_params = params or {}
        for machine in machines:
            for policy in policies:
                key = cell_key(machine, wl, policy, wl_params)
                label = f"{wl.name} × {machine} × {policy or 'default'}"
                cached = cache.load(key) if cache is not None else None
                if cached is not None:
                    hits += 1
                    say(f"HIT  {label}  [{key[:12]}]")
                    result = cached
                else:
                    misses += 1
                    say(f"MISS {label}  [{key[:12]}] -> running")
                    use_shards = shards if wl.supports_shards else None
                    result = wl.run(
                        machine=machine, policy=policy, shards=use_shards,
                        **wl_params,
                    )
                    if cache is not None:
                        cache.store(key, result)
                cells.append({
                    "key": key,
                    "workload": wl.name,
                    "machine": machine,
                    "policy": policy if policy is not None else "default",
                    "cached": cached is not None,
                    "result": result.as_dict(),
                })
    return {"cells": cells, "hits": hits, "misses": misses}
