"""The one rule registry.

Every static rule in the repo — the migrated ``repro.san.lint``
invariants and the three new pass families — registers here and nowhere
else.  ``python -m repro analyze --list``, ``python -m repro san
--list-checks`` and ``scripts/lint_repro.py --list`` all enumerate this
table, so the catalogues cannot drift (tests/analyze/test_registry.py
pins it).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analyze.passes import determinism, effects, graphcap, hbstatic, invariants
from repro.analyze.rules import Pass, Rule


def all_passes() -> List[Pass]:
    """Pass families in report order (matches rules.FAMILIES)."""
    return [invariants.PASS, effects.PASS, determinism.PASS, hbstatic.PASS,
            graphcap.PASS]


def all_rules() -> Dict[str, Rule]:
    """rule id -> Rule, ordered family-by-family."""
    table: Dict[str, Rule] = {}
    for p in all_passes():
        for rid, rule in p.rules.items():
            if rid in table:
                raise ValueError(f"duplicate analyzer rule id: {rid}")
            table[rid] = rule
    return table


def render_rules() -> str:
    lines = []
    for rule in all_rules().values():
        lines.append(f"{rule.id:22s} [{rule.family}] {rule.summary}")
    return "\n".join(lines)
