"""``python -m repro topo``: print and validate a machine spec's link table.

    python -m repro topo --list            # known spec names
    python -m repro topo gh200-2x4         # link table + route validation
    python -m repro topo pcie-nop2p --routes  # also dump resolved routes
    python -m repro topo fat-tree-512      # generated fabric + metrics

Validation builds the full link graph and resolves routes, checking that
each resolved route acquires links in strictly increasing stage (the
deadlock-freedom ladder) — the same invariant the property tests sweep.
Small specs validate every (src-port, dst-port) pair; generated fabrics
(hundreds of GPUs) validate a deterministic sample covering every
relationship class (same node, same leaf/group, cross leaf/group, cross
rail, host ports) and report analytic shape metrics — diameter, bisection
bandwidth, rail count, conservative lookahead.
"""

from __future__ import annotations

import argparse
from typing import Iterable, List, Tuple

from repro.hw.spec.catalog import SPECS
from repro.hw.spec.generators import fabric_metrics, format_metrics, resolve_machine
from repro.hw.spec.graph import LinkGraph, Port, RouteSearchError
from repro.hw.spec.schema import MachineSpec, SpecError
from repro.sim.engine import Engine
from repro.units import GBps, us

#: Above this many GPUs, validation samples pairs instead of sweeping all.
_EXHAUSTIVE_GPU_LIMIT = 32


def _ports(spec: MachineSpec) -> List[Port]:
    ports: List[Port] = [("gpu", g) for g in range(spec.n_gpus)]
    for n in range(spec.n_nodes):
        ports.append(("pin", n))
        ports.append(("pag", n))
    return ports


def _sample_ports(spec: MachineSpec) -> List[Port]:
    """A small deterministic port set hitting every relationship class.

    Picks GPUs of the first and last node, of a same-leaf (same-group)
    neighbour node, and of the first node of a different leaf/group —
    covering same-node, same-leaf, cross-leaf and (via per-node GPU
    spread) cross-rail pairs, plus one node's host ports.
    """
    fabric = spec.fabric
    span = fabric.nodes_per_leaf if fabric is not None and fabric.kind == "fat-tree" \
        else fabric.nodes_per_group if fabric is not None else 1
    nodes = sorted({0, 1 % spec.n_nodes, span % spec.n_nodes, spec.n_nodes - 1})
    gpus: List[int] = []
    for n in nodes:
        base = spec.gpu_base(n)
        count = spec.nodes[n].n_gpus
        rails = fabric.rails if fabric is not None else 1
        # One GPU per rail (capped) so cross-rail pairs are represented.
        gpus.extend(base + r for r in range(min(rails, count)))
        gpus.append(base + count - 1)
    ports: List[Port] = [("gpu", g) for g in sorted(set(gpus))]
    ports.append(("pin", 0))
    ports.append(("pag", 0))
    return ports


def _route_rows(
    graph: LinkGraph, ports: List[Port] = None
) -> Iterable[Tuple[Port, Port, Tuple]]:
    if ports is None:
        ports = _ports(graph.spec)
    for src in ports:
        for dst in ports:
            yield src, dst, graph.search(src, dst)


def validate_spec(spec: MachineSpec) -> List[str]:
    """Return a list of problems (empty = valid).

    Checks the schema invariants, then resolves endpoint-pair routes
    (exhaustive for small specs, relationship-class sample for generated
    fabrics) and verifies the hierarchical acquisition order.
    """
    problems: List[str] = []
    try:
        spec.validate()
    except SpecError as exc:
        return [f"schema: {exc}"]
    graph = LinkGraph(Engine(), spec)
    sampled = spec.n_gpus > _EXHAUSTIVE_GPU_LIMIT
    ports = _sample_ports(spec) if sampled else _ports(spec)
    try:
        for src, dst, route in _route_rows(graph, ports):
            if not route:
                problems.append(f"route {src} -> {dst}: empty")
                continue
            stages = [link.stage for link in route]
            if src != dst and stages != sorted(set(stages)):
                problems.append(
                    f"route {src} -> {dst}: stages not strictly increasing: "
                    f"{[(l.name, l.stage) for l in route]}"
                )
    except RouteSearchError as exc:
        problems.append(f"routing: {exc}")
    return problems


def _fmt_link(link) -> str:
    return (
        f"{link.name:<14} {link.kind:<10} stage={link.stage} "
        f"{link.bandwidth / GBps:8.1f} GB/s {link.latency / us:7.2f} us"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro topo",
        description="Print and validate a machine spec's link table.",
    )
    parser.add_argument(
        "spec", nargs="?",
        help="spec name (see --list) or generator name (fat-tree-512)",
    )
    parser.add_argument("--machine", help="alias for the positional spec name")
    parser.add_argument("--list", action="store_true", help="list known specs")
    parser.add_argument("--routes", action="store_true", help="dump resolved routes")
    args = parser.parse_args(argv)

    name = args.machine or args.spec
    if args.list or name is None:
        for spec_name, spec in SPECS.items():
            print(f"{spec_name:<14} {spec.n_nodes} node(s) x {spec.uniform_gpus_per_node} gpu(s)")
        print("generators     fat-tree-<gpus>[-r#-n#-l#-s#], dragonfly-<gpus>[-r#-n#-g#]")
        return 0

    try:
        spec = resolve_machine(name)
    except SpecError as exc:
        parser.error(str(exc))

    graph = LinkGraph(Engine(), spec)
    print(f"machine {spec.name}: {spec.n_nodes} node(s), {spec.n_gpus} gpu(s)")
    small = spec.n_gpus <= _EXHAUSTIVE_GPU_LIMIT
    if small:
        for n, node in enumerate(spec.nodes):
            print(f"  node {n}: {node.n_gpus} gpu(s), {node.interconnect.value} interconnect, "
                  f"{'NIC per GPU' if node.nic_per_gpu else 'shared node NIC'}")
        print(f"\n{len(graph.links)} links:")
        for link in graph.links:
            print(f"  {_fmt_link(link)}")
    else:
        node = spec.nodes[0]
        print(f"  uniform nodes: {node.n_gpus} gpu(s), {node.interconnect.value} "
              f"interconnect, {'NIC per GPU' if node.nic_per_gpu else 'shared node NIC'}")
        print(f"  {len(graph.links)} links total (table elided; see --routes sample)")
    print()
    for line in format_metrics(fabric_metrics(spec)):
        print(line)

    if args.routes:
        ports = _ports(spec) if small else _sample_ports(spec)
        print("\nroutes:")
        for src, dst, route in _route_rows(graph, ports):
            names = " -> ".join(link.name for link in route)
            print(f"  {src} -> {dst}: {names}")

    problems = validate_spec(spec)
    if problems:
        print(f"\nINVALID: {len(problems)} problem(s)")
        for p in problems:
            print(f"  {p}")
        return 1
    scope = "all endpoint-pair" if small else "sampled relationship-class"
    print(f"\nvalid: {scope} routes resolve with hierarchical link order")
    return 0
