"""Fig 2: the cost of cudaStreamSynchronize (Section III motivation).

Paper claims reproduced here:

* sync cost is constant (7.8 +- 0.1 us) regardless of kernel size;
* for grids up to 256, synchronization is 71.6-78.9 % of launch+sync;
* at a 128K grid only ~0.8 % of total time is synchronization, i.e. the
  CPU idles for >99 % of a large kernel's execution.
"""

from conftest import run_exhibit, within

from repro.bench import figures


def test_fig2_motivation(benchmark):
    series = run_exhibit(benchmark, figures.fig2)

    sync_times = series.column("sync_us")
    assert max(sync_times) - min(sync_times) < 0.2, "sync cost must be size-independent"
    within(sync_times[0], 7.7, 7.9, "sync cost (us)")

    for row in series.rows:
        if row["grid"] <= 256:
            within(row["sync_pct"], 68.0, 82.0, f"sync fraction at grid {row['grid']}")
    largest = series.rows[-1]
    assert largest["grid"] >= 65536
    within(largest["sync_pct"], 0.4, 1.2, "sync fraction at the largest grid")

    # Lost overlap potential grows monotonically with kernel size.
    lost = series.column("lost_overlap_us")
    assert all(b >= a * 0.99 for a, b in zip(lost, lost[1:])), "lost overlap must grow"
