"""Blocking synchronization/queueing primitives built on events.

All primitives wake waiters through events — there is no busy polling.
Where the modelled hardware *would* poll (e.g. an MPI progression engine
watching a flag in host memory), the model charges a detection latency via
``Flag(detect_latency=...)`` instead of spinning the event loop.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generic, List, Optional, TypeVar

from repro.sim.engine import Engine
from repro.sim.events import Event, PRIORITY_NORMAL

T = TypeVar("T")


class Flag:
    """A level-triggered boolean with event-based waiting.

    ``wait()`` returns an event that fires when the flag is (or becomes)
    set.  ``detect_latency`` models the delay between the flag being set in
    memory and a polling observer noticing it.  ``clear()`` re-arms the flag
    for the next epoch (used by persistent partitioned channels).
    """

    __slots__ = ("engine", "_set", "_waiters", "detect_latency", "set_count")

    def __init__(self, engine: Engine, detect_latency: float = 0.0) -> None:
        self.engine = engine
        self._set = False
        self._waiters: List[Event] = []
        self.detect_latency = detect_latency
        self.set_count = 0  # total number of set() calls (telemetry)

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self) -> None:
        if self._set:
            return
        self._set = True
        self.set_count += 1
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            if self.detect_latency:
                self.engine.timeout(self.detect_latency).add_callback(
                    lambda _t, ev=ev: ev.succeed(True) if not ev.triggered else None
                )
            else:
                ev.succeed(True)

    def clear(self) -> None:
        self._set = False

    def wait(self) -> Event:
        ev = Event(self.engine)
        if self._set:
            if self.detect_latency:
                self.engine.timeout(self.detect_latency).add_callback(
                    lambda _t: ev.succeed(True)
                )
            else:
                ev.succeed(True)
        else:
            self._waiters.append(ev)
        return ev


class Counter:
    """A monotone counter supporting ``wait_for(threshold)``.

    Used for partition-aggregation counters (device atomics) and for
    completion counting (e.g. MPI_Wait counting arrived partitions).
    """

    __slots__ = ("engine", "_value", "_waiters")

    def __init__(self, engine: Engine, initial: int = 0) -> None:
        self.engine = engine
        self._value = initial
        self._waiters: List[tuple] = []  # (threshold, event)

    @property
    def value(self) -> int:
        return self._value

    def add(self, amount: int = 1) -> int:
        """Atomically add; returns the new value; wakes satisfied waiters."""
        if amount < 0:
            raise ValueError("Counter is monotone; use reset() to rewind")
        self._value += amount
        if self._waiters:
            still: List[tuple] = []
            for threshold, ev in self._waiters:
                if self._value >= threshold:
                    ev.succeed(self._value)
                else:
                    still.append((threshold, ev))
            self._waiters = still
        return self._value

    def reset(self, value: int = 0) -> None:
        """Rewind for a new epoch; outstanding waiters stay armed."""
        self._value = value

    def wait_for(self, threshold: int) -> Event:
        ev = Event(self.engine)
        if self._value >= threshold:
            ev.succeed(self._value)
        else:
            self._waiters.append((threshold, ev))
        return ev


class Channel(Generic[T]):
    """Unbounded FIFO message queue between processes.

    ``put`` never blocks; ``get`` returns an event yielding the next item.
    Getters are served in FIFO order.
    """

    __slots__ = ("engine", "_items", "_getters", "name")

    def __init__(self, engine: Engine, name: str = "chan") -> None:
        self.engine = engine
        self._items: Deque[T] = deque()
        self._getters: Deque[Event] = deque()
        self.name = name

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: T) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.engine)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[T]:
        """Non-blocking get; None when empty."""
        if self._items:
            return self._items.popleft()
        return None


class Store(Channel[T]):
    """Alias of Channel kept for SimPy familiarity."""


class Resource:
    """Counted resource (semaphore) with FIFO grant order.

    Models serialized hardware ports: e.g. a link's injection port or the
    single MPI progression thread.  ``name`` labels contention spans on
    the instrumentation bus (``cat="resource"``): one span per *queued*
    acquire, covering request-to-grant — uncontended grants stay silent.
    """

    __slots__ = ("engine", "capacity", "name", "_in_use", "_queue")

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def acquire(self) -> Event:
        ev = Event(self.engine)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            obs = self.engine.obs
            if obs is not None:
                t0 = self.engine.now
                label = self.name or "resource"
                ev.add_callback(
                    lambda _ev: obs.span(
                        "resource", label, None, t0, self.engine.now,
                        queued=True,
                    )
                )
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError("release() without acquire()")
        if self._queue:
            # Hand the slot directly to the next waiter.
            self._queue.popleft().succeed(self)
        else:
            self._in_use -= 1

    def locked(self):
        """Context-manager style usage inside a process::

            with (yield res.acquire()) and res.locked():  # not supported
        Use explicit acquire/release in generator code instead.
        """
        raise NotImplementedError(
            "generator processes must use explicit acquire()/release()"
        )
