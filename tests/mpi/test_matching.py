"""Tag matching: wildcards, ordering, keyed FIFO matcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.matching import ANY, KeyedMatcher, TagMatcher, envelope_matches
from repro.sim.engine import Engine


def test_envelope_matches_exact():
    assert envelope_matches(2, 5, 2, 5)
    assert not envelope_matches(2, 5, 3, 5)
    assert not envelope_matches(2, 5, 2, 6)


def test_envelope_wildcards():
    assert envelope_matches(ANY, 5, 9, 5)
    assert envelope_matches(2, ANY, 2, 99)
    assert envelope_matches(ANY, ANY, 0, 0)


def test_posted_matches_arrival():
    m = TagMatcher()
    assert m.post_recv(0, 1, 7, "rreq") is None
    assert m.deliver(0, 1, 7, "msg") == "rreq"
    assert m.n_posted == 0


def test_unexpected_then_post():
    m = TagMatcher()
    assert m.deliver(0, 1, 7, "early") is None
    assert m.n_unexpected == 1
    assert m.post_recv(0, 1, 7, "rreq") == "early"
    assert m.n_unexpected == 0


def test_comm_isolation():
    m = TagMatcher()
    m.post_recv(0, 1, 7, "rreq_comm0")
    assert m.deliver(1, 1, 7, "msg_comm1") is None  # different communicator
    assert m.n_unexpected == 1


def test_non_overtaking_same_envelope():
    """Two messages with identical envelopes match posted recvs in order."""
    m = TagMatcher()
    m.post_recv(0, 1, 7, "first")
    m.post_recv(0, 1, 7, "second")
    assert m.deliver(0, 1, 7, "m1") == "first"
    assert m.deliver(0, 1, 7, "m2") == "second"


def test_wildcard_source_takes_any_sender():
    m = TagMatcher()
    m.post_recv(0, ANY, 7, "rreq")
    assert m.deliver(0, 3, 7, "from3") == "rreq"


def test_specific_posted_before_wildcard():
    m = TagMatcher()
    m.post_recv(0, 2, 7, "specific")
    m.post_recv(0, ANY, 7, "wild")
    assert m.deliver(0, 2, 7, "x") == "specific"
    assert m.deliver(0, 9, 7, "y") == "wild"


def test_unexpected_fifo_for_wildcard_post():
    m = TagMatcher()
    m.deliver(0, 1, 7, "a")
    m.deliver(0, 2, 7, "b")
    assert m.post_recv(0, ANY, 7, "r") == "a"  # earliest unexpected wins


def test_keyed_matcher_fifo(engine):
    km = KeyedMatcher(engine)
    km.put("k", 1)
    km.put("k", 2)
    got = []

    def getter():
        got.append((yield km.get("k")))
        got.append((yield km.get("k")))

    engine.run(engine.process(getter()))
    assert got == [1, 2]


def test_keyed_matcher_blocks_until_put(engine):
    km = KeyedMatcher(engine)

    def getter():
        return (yield km.get("x"))

    p = engine.process(getter())

    def putter():
        yield engine.timeout(1)
        km.put("x", "late")

    engine.process(putter())
    assert engine.run(p) == "late"


def test_keyed_matcher_key_isolation(engine):
    km = KeyedMatcher(engine)
    km.put("a", 1)
    assert km.pending("a") == 1
    assert km.pending("b") == 0


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_property_every_message_pairs_exactly_once(envelopes):
    """Deliver each message then post an exactly-matching recv: every
    message is consumed exactly once, FIFO per envelope."""
    m = TagMatcher()
    for i, (src, tag) in enumerate(envelopes):
        assert m.deliver(0, src, tag, ("msg", i)) is None
    got = []
    for src, tag in envelopes:
        matched = m.post_recv(0, src, tag, "r")
        assert matched is not None
        got.append(matched[1])
    assert m.n_unexpected == 0
    # Per-envelope FIFO: indices for identical envelopes appear in order.
    from collections import defaultdict

    per_env = defaultdict(list)
    for i, env in enumerate(envelopes):
        per_env[env].append(i)
    picked = defaultdict(list)
    for env, idx in zip(envelopes, got):
        picked[env].append(idx)
    for env in per_env:
        assert picked[env] == per_env[env]
