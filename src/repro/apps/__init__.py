"""Application kernels of the paper's Section VI-D.

* :mod:`repro.apps.jacobi` — the NVIDIA MPI+CUDA Jacobi solver adapted to
  MPI Partitioned halo exchange (Figures 8 and 9);
* :mod:`repro.apps.dl` — the data-parallel deep-learning proxy: a binary
  cross-entropy kernel whose gradients are combined with a traditional
  ``MPI_Allreduce``, the partitioned allreduce, or ``ncclAllReduce``
  (Figures 10 and 11).
"""

from repro.apps.jacobi import JacobiConfig, JacobiResult, run_jacobi, serial_jacobi
from repro.apps.dl import DlConfig, DlResult, run_dl

__all__ = [
    "DlConfig",
    "DlResult",
    "JacobiConfig",
    "JacobiResult",
    "run_dl",
    "run_jacobi",
    "serial_jacobi",
]
