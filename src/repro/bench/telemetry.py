"""Link-level telemetry: what actually moved over the simulated fabric.

Every :class:`~repro.hw.links.Link` counts bytes and transfers; this
module aggregates those counters per link class so tests can assert
*conservation* properties (e.g. a partitioned send moves exactly the
payload over NVLink, the Kernel-Copy path moves zero bytes through the
copy-engine path) and benchmarks can report utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.hw.topology import Fabric


@dataclass
class LinkStats:
    bytes: int = 0
    transfers: int = 0


@dataclass
class FabricSnapshot:
    """Aggregate per-class byte/transfer counters at one instant."""

    classes: Dict[str, LinkStats] = field(default_factory=dict)

    def delta(self, later: "FabricSnapshot") -> "FabricSnapshot":
        out = FabricSnapshot()
        for name, after in later.classes.items():
            before = self.classes.get(name, LinkStats())
            out.classes[name] = LinkStats(
                bytes=after.bytes - before.bytes,
                transfers=after.transfers - before.transfers,
            )
        return out

    def __getitem__(self, name: str) -> LinkStats:
        return self.classes.get(name, LinkStats())


_CLASSES = ("hbm", "nvlink", "c2c_h2d", "c2c_d2h", "nic_out", "nic_in", "hostmem")


def snapshot(fabric: Fabric) -> FabricSnapshot:
    """Aggregate all link counters by class."""
    snap = FabricSnapshot({c: LinkStats() for c in _CLASSES})

    def acc(cls: str, links) -> None:
        st = snap.classes[cls]
        for link in links:
            st.bytes += link.bytes_carried
            st.transfers += link.n_transfers

    acc("hbm", fabric.hbm.values())
    acc("nvlink", fabric.nvlink.values())
    acc("c2c_h2d", fabric.c2c_h2d.values())
    acc("c2c_d2h", fabric.c2c_d2h.values())
    acc("nic_out", fabric.nic_out.values())
    acc("nic_in", fabric.nic_in.values())
    acc("hostmem", list(fabric.hostmem_tx.values()) + list(fabric.hostmem_rx.values()))
    return snap


def report(fabric: Fabric) -> str:
    """Human-readable per-class utilization summary."""
    from repro.units import fmt_bytes

    snap = snapshot(fabric)
    lines = ["link class   bytes        transfers"]
    for name in _CLASSES:
        st = snap[name]
        lines.append(f"{name:<12} {fmt_bytes(st.bytes):<12} {st.transfers}")
    return "\n".join(lines)
