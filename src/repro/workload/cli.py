"""CLI frontends: ``python -m repro sweep`` / ``replay`` / ``fault``.

    python -m repro sweep --workloads pingpong,halo --machines gh200-2x4
    python -m repro sweep --workloads replay:sched.jsonl \\
        --machines fat-tree-512 --policies single,multi --shards 2
    python -m repro replay sched.jsonl --machine gh200-2x4 --policy multi
    python -m repro replay --gen-llm dp=2,tp=4,pp=2 --out sched.jsonl
    python -m repro replay --from-nccl run.log --out sched.jsonl
    python -m repro fault faults.jsonl                    # validate + print
    python -m repro fault faults.jsonl --workload halo \\
        --machine fat-tree-512 --shards 2                 # faulted run
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.workload.base import WorkloadError
from repro.workload.sweep import DEFAULT_CACHE_DIR, run_sweep


def _split(csv: Optional[str]) -> List[str]:
    return [item for item in (csv or "").split(",") if item]


def _parse_params(pairs: List[str]) -> dict:
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise WorkloadError(f"--param wants k=v, got {pair!r}")
        key, value = pair.split("=", 1)
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


def main_sweep(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Run a (workload × machine × policy) grid with a "
        "content-addressed result cache.",
    )
    parser.add_argument(
        "--workloads", required=True,
        help="comma-separated registry names or replay:<schedule.jsonl>",
    )
    parser.add_argument(
        "--machines", required=True,
        help="comma-separated machine names (catalog or generator grammar)",
    )
    parser.add_argument(
        "--policies", default="default",
        help="comma-separated path policies: single, multi, congestion, default",
    )
    parser.add_argument("--shards", type=int, default=None,
                        help="worker count for shard-capable workloads")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument("--cache-max-mb", type=float, default=None,
                        help="cap the cell cache at this many MiB with "
                        "least-recently-used eviction (default: unbounded)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always run; do not read or write the cache")
    parser.add_argument("--param", action="append", default=[],
                        help="k=v workload parameter (repeatable; JSON values)")
    parser.add_argument("--out", help="write the full grid result as JSON")
    args = parser.parse_args(argv)

    policies = [None if p == "default" else p for p in _split(args.policies)]
    try:
        grid = run_sweep(
            workloads=_split(args.workloads),
            machines=_split(args.machines),
            policies=policies or (None,),
            shards=args.shards,
            params=_parse_params(args.param),
            cache_dir=None if args.no_cache else args.cache_dir,
            cache_max_bytes=(
                int(args.cache_max_mb * 1024 * 1024)
                if args.cache_max_mb is not None else None
            ),
            printer=print,
        )
    except WorkloadError as exc:
        print(f"sweep error: {exc}", file=sys.stderr)
        return 1
    print(f"{len(grid['cells'])} cells: {grid['hits']} hits, "
          f"{grid['misses']} misses")
    for cell in grid["cells"]:
        res = cell["result"]
        print(f"  {cell['workload']:24s} {cell['machine']:20s} "
              f"{cell['policy']:8s} popped={res['events_popped']:>8d} "
              f"series={res['digests']['series'][:12]}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(grid, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


def main_replay(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro replay",
        description="Replay a JSONL communication schedule, or generate one "
        "from an LLM training pattern / NCCL-style log.",
    )
    parser.add_argument("schedule", nargs="?",
                        help="schedule JSONL file to replay")
    parser.add_argument("--machine", default=None)
    parser.add_argument("--policy", default=None,
                        choices=("single", "multi", "congestion"))
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--gen-llm", metavar="K=V,...",
                        help="generate an LLM training schedule "
                        "(dp,tp,pp,layers,hidden,seq,microbatches,steps)")
    parser.add_argument("--from-nccl", metavar="LOG",
                        help="convert an NCCL-style log into a schedule")
    parser.add_argument("--out", help="write the schedule as JSONL")
    args = parser.parse_args(argv)

    from repro.workload.replay import ReplayError, ReplayWorkload, parse_jsonl

    try:
        if args.gen_llm is not None:
            from repro.workload.generators import llm_schedule

            kwargs = {}
            for pair in _split(args.gen_llm):
                if "=" not in pair:
                    raise ReplayError(f"--gen-llm wants k=v, got {pair!r}")
                key, value = pair.split("=", 1)
                kwargs[key] = value if key == "name" else int(value)
            sched = llm_schedule(**kwargs)
        elif args.from_nccl is not None:
            from repro.workload.generators import parse_nccl_log

            with open(args.from_nccl) as fh:
                sched = parse_nccl_log(fh.read(), source=args.from_nccl)
        elif args.schedule is not None:
            with open(args.schedule) as fh:
                sched = parse_jsonl(fh.read(), source=args.schedule)
        else:
            parser.error("give a schedule file, --gen-llm, or --from-nccl")

        if args.out:
            with open(args.out, "w") as fh:
                fh.write(sched.to_jsonl())
            print(f"wrote {args.out}  (ranks={sched.ranks} "
                  f"steps={len(sched.steps)} digest={sched.digest[:12]})")
            if args.schedule is None:
                return 0

        result = ReplayWorkload(sched).run(
            machine=args.machine, policy=args.policy, shards=args.shards,
        )
    except (ReplayError, WorkloadError, FileNotFoundError) as exc:
        print(f"replay error: {exc}", file=sys.stderr)
        return 1

    print(f"schedule  {sched.name}  ranks={sched.ranks} "
          f"steps={len(sched.steps)} digest={sched.digest[:12]}")
    print(f"machine   {result.machine}  policy={result.policy} "
          f"mode={result.mode}")
    print(f"popped    {result.events_popped}")
    for cls in sorted(result.class_bytes):
        entry = result.class_bytes[cls]
        nbytes = entry["bytes"] if isinstance(entry, dict) else entry
        print(f"  class {cls:20s} {nbytes} bytes")
    for key in sorted(result.digests):
        print(f"  digest {key:18s} {result.digests[key][:16]}")
    return 0


def main_fault(argv=None) -> int:
    """Validate a fault schedule; optionally drive a workload under it."""
    parser = argparse.ArgumentParser(
        prog="python -m repro fault",
        description="Validate a link-fault schedule (JSONL: one "
        '{"t": ..., "link": ..., "action": "down|restore|degrade"} per '
        "line) and optionally run a workload with it installed.",
    )
    parser.add_argument("schedule", help="fault schedule JSONL file")
    parser.add_argument("--workload", default=None,
                        help="registry name or replay:<schedule.jsonl>; "
                        "omit to only validate and print the schedule")
    parser.add_argument("--machine", default=None)
    parser.add_argument("--policy", default=None,
                        choices=("single", "multi", "congestion"))
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--param", action="append", default=[],
                        help="k=v workload parameter (repeatable; JSON values)")
    args = parser.parse_args(argv)

    from repro.hw.faults import FaultError, FaultSchedule
    from repro.workload.registry import resolve_spec

    try:
        sched = FaultSchedule.load(args.schedule)
    except (FaultError, FileNotFoundError) as exc:
        print(f"fault error: {exc}", file=sys.stderr)
        return 1
    print(f"schedule  {args.schedule}  events={len(sched)}")
    for ev in sched:
        scope = f" node={ev.node}" if ev.node is not None else ""
        extra = f" factor={ev.factor}" if ev.factor is not None else ""
        print(f"  t={ev.t:<12g} {ev.action:8s} {ev.link}{extra}{scope}")
    if args.workload is None:
        return 0

    from repro.hw.spec.schema import SpecError

    try:
        result = resolve_spec(args.workload).run(
            machine=args.machine, policy=args.policy, shards=args.shards,
            faults=sched, **_parse_params(args.param),
        )
    except (WorkloadError, FaultError, SpecError, KeyError) as exc:
        print(f"fault error: {exc}", file=sys.stderr)
        return 1
    print(f"workload  {result.workload}  machine={result.machine} "
          f"policy={result.policy} mode={result.mode}")
    print(f"popped    {result.events_popped}")
    for cls in sorted(result.class_bytes):
        entry = result.class_bytes[cls]
        nbytes = entry["bytes"] if isinstance(entry, dict) else entry
        print(f"  class {cls:20s} {nbytes} bytes")
    for key in sorted(result.digests):
        print(f"  digest {key:18s} {result.digests[key][:16]}")
    return 0
