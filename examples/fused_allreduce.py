#!/usr/bin/env python3
"""The paper's future-work proposal, working: a fused device allreduce.

Section VI-B argues the device MPIX_Pready binding should be relaxed so
"an entire allreduce operation [executes] within a kernel", closing the
gap to NCCL.  This example runs all three mechanisms on the same gradient
buffer and prints the gap closing.

    python examples/fused_allreduce.py
"""

import numpy as np

from repro import ONE_NODE, World
from repro.bench.coll import measure_allreduce
from repro.cuda import UniformKernel, WorkSpec
from repro.partitioned import device as pdev
from repro.units import us

GRID = 1024  # 8 MiB of gradients across 1024 blocks


def run_fused():
    def main(ctx):
        comm = ctx.comm
        n = GRID * 1024
        w = ctx.gpu.alloc(n)
        req = yield from comm.pallreduce_init(
            w, w, partitions=8, device=ctx.gpu, fused=True
        )
        preq = None
        times = []
        for _ in range(3):
            w.data[:] = float(ctx.rank + 1)
            yield from req.start()
            yield from req.pbuf_prepare()
            if preq is None:
                preq = yield from req.prequest_create(ctx.gpu, grid=GRID, block=1024)
            yield from comm.barrier()
            t0 = ctx.now
            kernel = UniformKernel(
                GRID, 1024, WorkSpec.vector_add(),
                wave_hook=pdev.PreadyWaveHook(preq),
            )
            yield from ctx.gpu.launch_h(kernel)
            yield from req.wait()
            times.append(ctx.now - t0)
            assert np.allclose(w.data, 10.0)
        return times

    per_rank = World(ONE_NODE).run(main, nprocs=4)
    windows = [max(col) for col in zip(*per_rank)][1:]
    return sum(windows) / len(windows)


def main() -> None:
    pe = measure_allreduce(GRID, "partitioned", ONE_NODE, 4)
    nccl = measure_allreduce(GRID, "nccl", ONE_NODE, 4)
    fused = run_fused()
    print("allreduce of 8 MiB on 4 GH200 (kernel + communication):\n")
    print(f"  partitioned (host progression engine): {pe / us:8.1f} us")
    print(f"  ncclAllReduce (fused vendor kernel)  : {nccl / us:8.1f} us")
    print(f"  partitioned, relaxed device Pready   : {fused / us:8.1f} us")
    print(f"\nthe MPI-native fused collective is within "
          f"{abs(fused - nccl) / nccl * 100:.0f}% of NCCL — the gap the paper "
          "asks the MPI Forum to make closable.")


if __name__ == "__main__":
    main()
