"""Graph-captured replay: A/B equivalence with eager, wildcard recv tags."""

import pytest

from repro.workload.generators import jacobi_schedule, llm_schedule
from repro.workload.replay import ReplayError, ReplayWorkload, parse_jsonl

HEADER = '{"schema": "repro.workload.replay/1", "ranks": %d, "name": "t"}\n'


def _sched(ranks, *lines):
    return parse_jsonl(HEADER % ranks + "\n".join(lines) + "\n", source="t.jsonl")


# -- wildcard recv tags -------------------------------------------------------

def test_wildcard_tag_send_side_rejected():
    with pytest.raises(ReplayError, match="recv-only"):
        _sched(2, '{"rank": 0, "op": "send", "peer": 1, "bytes": 8, "tag": "*"}')


def test_wildcard_and_tagged_recvs_cannot_mix():
    with pytest.raises(ReplayError, match="ambiguous"):
        _sched(
            2,
            '{"rank": 0, "op": "send", "peer": 1, "bytes": 8, "tag": "a"}',
            '{"rank": 0, "op": "send", "peer": 1, "bytes": 8, "tag": "b"}',
            '{"rank": 1, "op": "recv", "peer": 0, "tag": "a"}',
            '{"rank": 1, "op": "recv", "peer": 0, "tag": "*"}',
        )


def test_wildcard_count_mismatch_rejected():
    with pytest.raises(ReplayError, match="counts must match"):
        _sched(
            2,
            '{"rank": 0, "op": "send", "peer": 1, "bytes": 8, "tag": "a"}',
            '{"rank": 1, "op": "recv", "peer": 0, "tag": "*"}',
            '{"rank": 1, "op": "recv", "peer": 0, "tag": "*"}',
        )


def test_wildcard_bytes_disagreement_rejected():
    with pytest.raises(ReplayError, match="matched\nsend|matched send"):
        _sched(
            2,
            '{"rank": 0, "op": "send", "peer": 1, "bytes": 8, "tag": "a"}',
            '{"rank": 1, "op": "recv", "peer": 0, "tag": "*", "bytes": 16}',
        )


def test_wildcard_matches_sends_in_schedule_order():
    """Wildcard recvs replay bit-identically to the tagged schedule."""
    tagged = _sched(
        2,
        '{"rank": 0, "op": "send", "peer": 1, "bytes": 4096, "tag": "a", "class": "w"}',
        '{"rank": 0, "op": "send", "peer": 1, "bytes": 8192, "tag": "b", "class": "w"}',
        '{"rank": 1, "op": "recv", "peer": 0, "tag": "a"}',
        '{"rank": 1, "op": "recv", "peer": 0, "tag": "b"}',
    )
    wild = _sched(
        2,
        '{"rank": 0, "op": "send", "peer": 1, "bytes": 4096, "tag": "a", "class": "w"}',
        '{"rank": 0, "op": "send", "peer": 1, "bytes": 8192, "tag": "b", "class": "w"}',
        '{"rank": 1, "op": "recv", "peer": 0, "tag": "*"}',
        '{"rank": 1, "op": "recv", "peer": 0, "tag": "*"}',
    )
    a = ReplayWorkload(tagged).run(machine="gh200-1x4")
    b = ReplayWorkload(wild).run(machine="gh200-1x4")
    assert a.extra["t_end"] == b.extra["t_end"]
    assert a.class_bytes == b.class_bytes
    assert a.events_popped == b.events_popped


def test_wildcard_works_in_cluster_mode():
    wild = _sched(
        8,
        *[f'{{"rank": {r}, "op": "send", "peer": {(r + 1) % 8}, '
          f'"bytes": 65536, "tag": "ring", "class": "ring"}}' for r in range(8)],
        *[f'{{"rank": {r}, "op": "recv", "peer": {(r - 1) % 8}, "tag": "*"}}'
          for r in range(8)],
    )
    tagged = _sched(
        8,
        *[f'{{"rank": {r}, "op": "send", "peer": {(r + 1) % 8}, '
          f'"bytes": 65536, "tag": "ring", "class": "ring"}}' for r in range(8)],
        *[f'{{"rank": {r}, "op": "recv", "peer": {(r - 1) % 8}, "tag": "ring"}}'
          for r in range(8)],
    )
    a = ReplayWorkload(tagged).run(machine="gh200-2x4")
    b = ReplayWorkload(wild).run(machine="gh200-2x4")
    assert a.digests["msg"] == b.digests["msg"]
    assert a.events_popped == b.events_popped


# -- jacobi_schedule generator ------------------------------------------------

def test_jacobi_schedule_validates_and_shapes():
    sched = jacobi_schedule(py=2, px=2, iters=3)
    assert sched.ranks == 4
    assert sched.name == "jacobi-2x2"
    # interior exchanges: each rank has 2 neighbours on a 2x2 torus-free grid
    sends = [s for s in sched.steps if s.op == "send"]
    recvs = [s for s in sched.steps if s.op == "recv"]
    assert len(sends) == len(recvs) == 3 * 8


def test_jacobi_schedule_deterministic_digest():
    assert (jacobi_schedule(py=4, px=2, iters=10).digest
            == jacobi_schedule(py=4, px=2, iters=10).digest)
    assert (jacobi_schedule(py=4, px=2, iters=10).digest
            != jacobi_schedule(py=4, px=2, iters=9).digest)


# -- A/B equivalence: world mode ----------------------------------------------

def _world_run(monkeypatch, graphs):
    if graphs:
        monkeypatch.delenv("REPRO_NO_GRAPHS", raising=False)
    else:
        monkeypatch.setenv("REPRO_NO_GRAPHS", "1")
    wl = ReplayWorkload(llm_schedule(dp=1, tp=2, pp=2, microbatches=2))
    return wl.run(machine="gh200-1x4")


def test_world_graph_replay_bit_identical(monkeypatch):
    on = _world_run(monkeypatch, graphs=True)
    off = _world_run(monkeypatch, graphs=False)
    assert on.mode == off.mode == "world"
    assert on.extra["t_end"] == off.extra["t_end"]
    assert on.class_bytes == off.class_bytes
    assert on.digests == off.digests
    g = on.extra["graphs"]
    assert "graphs" not in off.extra
    assert g["graph_launches"] == 1
    # every simulated pop moved off the host heap, none were lost
    assert g["events_graphed"] == off.events_popped
    assert g["captured_plans"] > 0 and g["replayed_descriptors"] > 0
    # ISSUE acceptance: >= 3x fewer host pops per replayed iteration
    assert on.events_popped * 3 <= off.events_popped


# -- A/B equivalence: cluster mode --------------------------------------------

def _cluster_run(monkeypatch, graphs, shards=None):
    if graphs:
        monkeypatch.delenv("REPRO_NO_GRAPHS", raising=False)
    else:
        monkeypatch.setenv("REPRO_NO_GRAPHS", "1")
    wl = ReplayWorkload(jacobi_schedule(py=4, px=2, iters=10))
    return wl.run(machine="gh200-2x4", shards=shards)


def test_cluster_graph_replay_bit_identical(monkeypatch):
    on = _cluster_run(monkeypatch, graphs=True)
    off = _cluster_run(monkeypatch, graphs=False)
    assert on.digests == off.digests               # msg + per-shard step hashes
    assert on.class_bytes == off.class_bytes
    assert (on.extra["signature"]["t_end"]
            == off.extra["signature"]["t_end"])    # bit-identical clock
    g = on.extra["graphs"]
    assert g["events_graphed"] == off.events_popped
    assert g["graph_launches"] > 0
    assert on.events_popped * 3 <= off.events_popped


def test_cluster_graph_replay_shards_bit_identical(monkeypatch):
    seq = _cluster_run(monkeypatch, graphs=True)
    par = _cluster_run(monkeypatch, graphs=True, shards=2)
    assert seq.mode == "sequential" and par.mode == "mp"
    assert seq.digests == par.digests
    assert seq.events_popped == par.events_popped
    assert seq.extra["graphs"] == par.extra["graphs"]


def test_cluster_shards_no_graphs_still_identical(monkeypatch):
    seq = _cluster_run(monkeypatch, graphs=False)
    par = _cluster_run(monkeypatch, graphs=False, shards=2)
    assert seq.digests == par.digests
    assert seq.events_popped == par.events_popped


def test_cluster_replay_digest_invariant_across_all_knobs(monkeypatch):
    """One digest set across {graphs on/off} x {coalescing on/off} under
    the multi-path policy: the perf knobs and the striping policy must
    never change what the simulation computes (DESIGN.md §11, §16)."""
    results = []
    for no_graphs in (False, True):
        for no_coalesce in (False, True):
            if no_graphs:
                monkeypatch.setenv("REPRO_NO_GRAPHS", "1")
            else:
                monkeypatch.delenv("REPRO_NO_GRAPHS", raising=False)
            if no_coalesce:
                monkeypatch.setenv("REPRO_NO_COALESCE", "1")
            else:
                monkeypatch.delenv("REPRO_NO_COALESCE", raising=False)
            wl = ReplayWorkload(jacobi_schedule(py=4, px=2, iters=10))
            results.append(wl.run(machine="gh200-2x4", policy="multi"))
    base = results[0]
    for res in results[1:]:
        assert res.digests == base.digests
        assert res.class_bytes == base.class_bytes
        assert (res.extra["signature"]["t_end"]
                == base.extra["signature"]["t_end"])
