"""Hardware models: GH200 testbed topology, links, memory spaces, routes.

This package provides the *physical* substrate under the GPU and network
simulators: where buffers live, which links connect which components, and
how long a byte-stream takes to traverse a path.  All constants live in
:mod:`repro.hw.params` and mirror the testbed of the paper's Section V.
"""

from repro.hw.params import GH200Params, TestbedConfig
from repro.hw.memory import Buffer, MemSpace
from repro.hw.links import Link
from repro.hw.topology import Fabric, GpuId, Topology

__all__ = [
    "Buffer",
    "Fabric",
    "GH200Params",
    "GpuId",
    "Link",
    "MemSpace",
    "TestbedConfig",
    "Topology",
]
