"""The determinism lint family."""

import textwrap

from .conftest import FIXTURES, rules_of


def src(body):
    return {"src/repro/sim/m.py": textwrap.dedent(body)}


def test_for_over_set_flagged(analyze):
    findings = analyze(src("""
        def pick(n):
            lanes = {i * 2 for i in range(n)}
            for lane in lanes:
                return lane
    """), only=["det-unordered-iter"])
    assert rules_of(findings) == ["det-unordered-iter"]


def test_set_pop_flagged(analyze):
    findings = analyze(src("""
        def one(xs):
            s = set(xs)
            return s.pop()
    """), only=["det-unordered-iter"])
    assert rules_of(findings) == ["det-unordered-iter"]


def test_order_sinks_over_sets_flagged(analyze):
    findings = analyze(src("""
        def sinks(xs):
            s = set(xs)
            a = list(s)
            b = min(s)
            return a, b
    """), only=["det-unordered-iter"])
    assert len(findings) == 2


def test_sorted_set_membership_and_dict_iteration_clean(analyze):
    findings = analyze(src("""
        def ok(xs, table):
            s = set(xs)
            ordered = sorted(s)
            hit = 3 in s
            eq = s == set(ordered)
            for key in table:          # dict: insertion-ordered, fine
                pass
            lst = [1, 2]
            lst.pop()                  # list.pop is deterministic
            return ordered, hit, eq
    """))
    assert findings == []


def test_set_algebra_keeps_setness(analyze):
    findings = analyze(src("""
        def diff(a, b):
            s = set(a)
            for x in s - set(b):
                return x
    """), only=["det-unordered-iter"])
    assert rules_of(findings) == ["det-unordered-iter"]


def test_unseeded_rng_flagged_seeded_clean(analyze):
    findings = analyze(src("""
        def make(seed):
            bad = Random()
            also_bad = default_rng()
            good = Random(seed)
            return bad, also_bad, good
    """), only=["det-unseeded-random"])
    assert len(findings) == 2


def test_id_as_ordering_key_flagged(analyze):
    findings = analyze(src("""
        def order(reqs):
            a = sorted(reqs, key=lambda r: id(r))
            b = sorted(reqs, key=id)
            c = sorted(reqs, key=lambda r: r.seq)
            return a, b, c
    """), only=["det-id-order"])
    assert len(findings) == 2


def test_float_accum_over_set_flagged(analyze):
    findings = analyze(src("""
        def total(samples):
            seen = {float(s) for s in samples}
            direct = sum(seen)
            acc = 0.0
            for s in seen:
                acc += s
            return direct, acc
    """), only=["det-float-accum"])
    assert len(findings) == 2


def test_sum_over_list_clean(analyze):
    findings = analyze(src("""
        def total(samples):
            return sum([float(s) for s in samples])
    """), only=["det-float-accum"])
    assert findings == []


def test_fixture_route_selection_bugs(analyze_path):
    findings = analyze_path(FIXTURES / "determinism_bug.py")
    assert rules_of(findings) == [
        "det-float-accum", "det-id-order",
        "det-unordered-iter", "det-unseeded-random",
    ]
