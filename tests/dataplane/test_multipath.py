"""MultiPathPolicy: disjointness, reassembly, determinism, goodput gain."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane import MultiPathPolicy
from repro.dataplane.bench import measure_stripe_goodput, stripe_sweep
from repro.hw.memory import Buffer, MemSpace
from repro.hw.params import ONE_NODE
from repro.hw.spec import gh200_spec
from repro.hw.topology import Fabric
from repro.sim.engine import Engine
from repro.units import MiB


def _mk(config=ONE_NODE):
    engine = Engine()
    return engine, Fabric(engine, config)


def dev(fab, gpu, n=8, fill=None, virtual=False):
    node = fab.topo.node_of(gpu)
    if virtual:
        return Buffer.alloc_virtual(n, space=MemSpace.DEVICE, node=node, gpu=gpu)
    return Buffer.alloc(n, space=MemSpace.DEVICE, node=node, gpu=gpu, fill=fill)


# -- link-disjointness property ----------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    n_nodes=st.integers(1, 2),
    gpus_per_node=st.integers(1, 4),
    src=st.integers(0, 7),
    dst=st.integers(0, 7),
    max_paths=st.integers(2, 4),
)
def test_disjoint_routes_share_no_links(n_nodes, gpus_per_node, src, dst, max_paths):
    """Wherever the LinkGraph offers alternatives, the peeled routes are
    pairwise link-disjoint, led by the primary (fewest-links) route."""
    n_gpus = n_nodes * gpus_per_node
    src, dst = src % n_gpus, dst % n_gpus
    _e, fab = _mk(gh200_spec(n_nodes, gpus_per_node))
    a, b = dev(fab, src, virtual=True), dev(fab, dst, virtual=True)
    routes = fab.dataplane.disjoint_routes(a, b, max_paths)
    assert 1 <= len(routes) <= max_paths
    assert routes[0] == fab.route(a, b)
    if src != dst:
        seen = set()
        for route in routes:
            for link in route:
                assert link not in seen, f"link {link.name} on two routes"
                seen.add(link)


def test_mesh_pair_has_four_disjoint_routes():
    """GH200 4-GPU mesh: direct NVLink, two NVLink detours, C2C host path."""
    _e, fab = _mk()
    a, b = dev(fab, 0, virtual=True), dev(fab, 1, virtual=True)
    routes = fab.dataplane.disjoint_routes(a, b, 4)
    assert len(routes) == 4
    assert [l.name for l in routes[0]] == ["nvl0->1"]
    assert all(len(r) >= 2 for r in routes[1:])


def test_dual_rail_inter_node_routes():
    """2 GPUs/node with per-GPU NICs: a second, fully disjoint rail exists
    through the peer GPU's NIC (Sojoodi-style multi-rail)."""
    _e, fab = _mk(gh200_spec(2, 2))
    a, b = dev(fab, 0, virtual=True), dev(fab, 2, virtual=True)
    routes = fab.dataplane.disjoint_routes(a, b, 4)
    assert len(routes) >= 2
    rails = {tuple(l.name for l in r if l.name.startswith("ib_")) for r in routes}
    assert len(rails) == len(routes), "each route must use its own NIC rail"


def test_multi_route_cache_hits():
    _e, fab = _mk()
    a, b = dev(fab, 0, virtual=True), dev(fab, 1, virtual=True)
    first = fab.dataplane.disjoint_routes(a, b, 4)
    searches = fab.route_computations
    assert fab.dataplane.disjoint_routes(a, b, 4) is first
    assert fab.route_computations == searches


# -- striped payload reassembly ----------------------------------------------

def test_striped_payload_reassembles_exactly():
    """Real (non-virtual) buffers: every element lands exactly once even
    though the stripes arrive at different instants."""
    engine, fab = _mk()
    fab.dataplane.policy = MultiPathPolicy()
    n = MiB  # 8 MiB of f64 -> stripes engage
    src = dev(fab, 0, n=n)
    src.data[:] = np.arange(n, dtype=np.float64)
    dst = dev(fab, 1, n=n)

    def body():
        yield fab.dataplane.put(src, dst, traffic_class="bench", name="stripe")

    done = engine.process(body(), name="t")
    engine.run()
    assert done.ok, done.value
    assert np.array_equal(dst.data, src.data)
    assert fab.dataplane.ledger["bench"].stripes >= 2


def test_small_transfers_do_not_stripe():
    engine, fab = _mk()
    fab.dataplane.policy = MultiPathPolicy()
    src, dst = dev(fab, 0, fill=1.0), dev(fab, 1)

    def body():
        yield fab.dataplane.put(src, dst, traffic_class="bench")

    engine.process(body(), name="t")
    engine.run()
    assert fab.dataplane.ledger["bench"].stripes == 1
    assert np.all(dst.data == 1.0)


# -- determinism --------------------------------------------------------------

def _multi_step_stream():
    steps = []
    engine = Engine()
    engine.on_step = lambda t, prio, seq: steps.append((t, prio, seq))
    fab = Fabric(engine, ONE_NODE)
    fab.dataplane.policy = MultiPathPolicy()
    src = dev(fab, 0, n=2 * MiB, virtual=True)
    dst = dev(fab, 1, n=2 * MiB, virtual=True)

    def body():
        yield fab.dataplane.put(src, dst, traffic_class="bench", name="stripe")

    engine.process(body(), name="t")
    engine.run()
    return steps


def test_multipath_is_bit_equal_across_runs():
    first, second = _multi_step_stream(), _multi_step_stream()
    assert first == second
    assert len(first) > 10


def test_multipath_times_survive_no_coalesce(monkeypatch):
    monkeypatch.delenv("REPRO_NO_COALESCE", raising=False)
    base = measure_stripe_goodput(64 * MiB, "multi")
    monkeypatch.setenv("REPRO_NO_COALESCE", "1")
    nocoal = measure_stripe_goodput(64 * MiB, "multi")
    assert base["elapsed_s"] == nocoal["elapsed_s"]
    assert base["stripes"] == nocoal["stripes"]


def test_multipath_sweep_digest_stable(monkeypatch):
    """The whole sweep's simulated numbers are a pure function of the
    code: two runs hash identically (no RNG, no wall-clock leakage)."""
    def digest():
        series = stripe_sweep(sizes=(2 * MiB, 16 * MiB))
        blob = repr([sorted(r.items()) for r in series.rows]).encode()
        return hashlib.sha256(blob).hexdigest()

    assert digest() == digest()


# -- the acceptance point ------------------------------------------------------

def test_striping_goodput_gain_on_largest_intranode_point():
    """>= 1.5x goodput on the largest intra-node D2D point with >= 2
    link-disjoint NVLink routes (the PR's acceptance criterion)."""
    single = measure_stripe_goodput(512 * MiB, "single")
    multi = measure_stripe_goodput(512 * MiB, "multi")
    assert multi["stripes"] >= 2
    assert multi["goodput_Bps"] >= 1.5 * single["goodput_Bps"]
