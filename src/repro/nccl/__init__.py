"""NCCL-like baseline library.

Models what makes NCCL fast relative to the paper's partitioned allreduce
(Section VI-B): ``ncclAllReduce`` runs as **one fused kernel** that moves
chunks peer-to-peer with intra-kernel load/store copies and reduces in
device memory — no per-step kernel launches, no ``cudaStreamSynchronize``
inside the collective, no host progression round-trips.

The ring algorithm, data movement, and reductions are actually executed
(NumPy payloads over the simulated fabric), so results are verifiable and
contention is modelled; only the intra-kernel scheduling is abstracted to
a per-step pipeline.
"""

from repro.nccl.allreduce import NcclComm

__all__ = ["NcclComm"]
