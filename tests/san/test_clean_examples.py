"""The shipped examples must sanitize clean (zero findings)."""

from pathlib import Path

import pytest

from repro.san.cli import list_checks, main, resolve_target, sanitize_script

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize("name", ["quickstart", "jacobi_halo"])
def test_example_sanitizes_clean(name):
    report = sanitize_script(EXAMPLES / f"{name}.py")
    assert report.ok, report.render()
    assert report.findings == []
    assert len(report.trace) > 0


def test_cli_list_checks(capsys):
    assert main(["--list-checks"]) == 0
    out = capsys.readouterr().out
    for check in ("double-pready", "data-race", "send-overwrite", "wallclock"):
        assert check in out


def test_list_checks_covers_both_kinds():
    text = list_checks()
    assert "dynamic checks" in text and "static rules" in text
    # Static section comes from the unified analyzer registry.
    assert "det-unordered-iter" in text and "effect-leaked-waiter" in text


def test_resolve_target_rejects_unknown():
    with pytest.raises(FileNotFoundError):
        resolve_target("no-such-example")


def test_cli_clean_run_exits_zero(capsys, monkeypatch):
    monkeypatch.chdir(EXAMPLES.parent)
    assert main(["quickstart"]) == 0
    assert "san: 0 findings" in capsys.readouterr().out
