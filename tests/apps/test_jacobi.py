"""Jacobi solver: distributed == serial, both exchange variants."""

import numpy as np
import pytest

from repro.apps.jacobi import (
    JacobiConfig,
    process_grid,
    run_jacobi,
    serial_jacobi,
)
from repro.hw.params import ONE_NODE, PAPER_TESTBED
from repro.mpi.errors import MpiUsageError
from repro.mpi.world import World


def _main(ctx, cfg):
    return (yield from run_jacobi(ctx, cfg))


def _assemble(results, tile, nprocs):
    py, px = process_grid(nprocs)
    glob = np.zeros((py * tile + 2, px * tile + 2))
    for res in results:
        ry, rx = res.coords
        glob[1 + ry * tile:1 + (ry + 1) * tile, 1 + rx * tile:1 + (rx + 1) * tile] = (
            res.local[1:-1, 1:-1]
        )
    return glob


def test_process_grid_shapes():
    assert process_grid(1) == (1, 1)
    assert process_grid(2) == (2, 1)
    assert process_grid(4) == (2, 2)     # paper: 2x2 on four GPUs
    assert process_grid(8) == (4, 2)     # paper: 4x2 on eight
    assert process_grid(6) == (3, 2)
    assert process_grid(16) == (4, 4)


@pytest.mark.parametrize("variant,copy_mode", [
    ("traditional", "pe"),
    ("partitioned", "pe"),
    ("partitioned", "kc_auto"),
])
def test_matches_serial_4_ranks(variant, copy_mode):
    cfg = JacobiConfig(multiplier=1, base_tile=16, iters=10, variant=variant,
                       copy_mode=copy_mode)
    results = World(ONE_NODE).run(_main, nprocs=4, args=(cfg,))
    glob = _assemble(results, cfg.tile, 4)
    ref = serial_jacobi(2 * cfg.tile, 2 * cfg.tile, cfg.iters)
    assert np.allclose(glob[1:-1, 1:-1], ref[1:-1, 1:-1])


@pytest.mark.parametrize("variant", ["traditional", "partitioned"])
def test_matches_serial_8_ranks_two_nodes(variant):
    cfg = JacobiConfig(multiplier=1, base_tile=8, iters=8, variant=variant,
                       copy_mode="kc_auto")
    results = World(PAPER_TESTBED).run(_main, nprocs=8, args=(cfg,))
    glob = _assemble(results, cfg.tile, 8)
    ref = serial_jacobi(4 * cfg.tile, 2 * cfg.tile, cfg.iters)
    assert np.allclose(glob[1:-1, 1:-1], ref[1:-1, 1:-1])


def test_two_ranks_1d_decomposition():
    cfg = JacobiConfig(multiplier=1, base_tile=8, iters=6, variant="partitioned")
    results = World(ONE_NODE).run(_main, nprocs=2, args=(cfg,))
    glob = _assemble(results, cfg.tile, 2)
    ref = serial_jacobi(2 * cfg.tile, cfg.tile, cfg.iters)
    assert np.allclose(glob[1:-1, 1:-1], ref[1:-1, 1:-1])


def test_gflops_accounting():
    cfg = JacobiConfig(multiplier=1, base_tile=16, iters=4)
    results = World(ONE_NODE).run(_main, nprocs=4, args=(cfg,))
    r = results[0]
    points = cfg.tile * cfg.tile
    assert r.gflops == pytest.approx(points * cfg.iters * 5.0 / r.time / 1e9 * 4)
    assert r.time > 0


def test_norm_computed_when_requested():
    cfg = JacobiConfig(multiplier=1, base_tile=8, iters=4, norm_every=2)
    results = World(ONE_NODE).run(_main, nprocs=4, args=(cfg,))
    assert all(r.norm is not None and r.norm >= 0 for r in results)
    # all ranks agree on the global norm
    norms = {round(r.norm, 12) for r in results}
    assert len(norms) == 1


def test_unknown_variant_rejected():
    cfg = JacobiConfig(variant="bogus")

    def main(ctx):
        with pytest.raises(MpiUsageError):
            yield from run_jacobi(ctx, cfg)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_boundary_conditions_preserved():
    """Top Dirichlet row stays 1.0; solution bounded by [0, 1]."""
    cfg = JacobiConfig(multiplier=1, base_tile=16, iters=20, variant="partitioned")
    results = World(ONE_NODE).run(_main, nprocs=4, args=(cfg,))
    for r in results:
        ry, _rx = r.coords
        if ry == 0:
            assert np.all(r.local[0, :] == 1.0)
        assert r.local.min() >= 0.0
        assert r.local.max() <= 1.0


def test_solution_progresses_toward_equilibrium():
    """More iterations move the interior closer to the boundary value."""
    def mean_interior(iters):
        cfg = JacobiConfig(multiplier=1, base_tile=8, iters=iters)
        results = World(ONE_NODE).run(_main, nprocs=4, args=(cfg,))
        glob = _assemble(results, cfg.tile, 4)
        return glob[1:-1, 1:-1].mean()

    assert mean_interior(20) > mean_interior(4) > 0.0
