"""Command-line entry point: regenerate paper exhibits.

    python -m repro list                 # show available exhibits
    python -m repro fig4                 # regenerate one exhibit
    python -m repro fig4 --grids 1,256   # custom sweep
    python -m repro all [--fast]         # everything -> RESULTS.md
    python -m repro san <script>         # sanitize a run (see repro.san)
    python -m repro san --list-checks
    python -m repro analyze [--sarif out.sarif]   # static analysis (repro.analyze)
    python -m repro topo <spec>          # print/validate a machine spec
    python -m repro topo --machine fat-tree-512    # generated cluster fabrics
    python -m repro topo --list
    python -m repro profile <script> --chrome out.json --util --critical-path
    python -m repro bench [--against auto]   # simulator wall-clock suite
    python -m repro bench --suite cluster-fattree-512 --shards 4   # sharded engine
    python -m repro sweep --workloads pingpong --machines gh200-2x4 \
        --policies single,multi          # cached (workload x machine x policy) grid
    python -m repro replay sched.jsonl --machine fat-tree-512   # trace replay
    python -m repro replay --gen-llm dp=2,tp=4,pp=2 --out sched.jsonl
    python -m repro fault faults.jsonl --workload halo \
        --machine fat-tree-512           # run a workload under link faults
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import figures, render


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "san":
        from repro.san.cli import main as san_main

        return san_main(argv[1:])
    if argv and argv[0] == "analyze":
        from repro.analyze.cli import main as analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "topo":
        from repro.hw.spec.cli import main as topo_main

        return topo_main(argv[1:])
    if argv and argv[0] == "profile":
        from repro.obs.cli import main as profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.perf.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "sweep":
        from repro.workload.cli import main_sweep

        return main_sweep(argv[1:])
    if argv and argv[0] == "replay":
        from repro.workload.cli import main_replay

        return main_replay(argv[1:])
    if argv and argv[0] == "fault":
        from repro.workload.cli import main_fault

        return main_fault(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate exhibits of the GPU-initiated MPI Partitioned paper.",
    )
    parser.add_argument("exhibit", help="'list', 'all', or one of: "
                        + ", ".join(figures.ALL_EXHIBITS))
    parser.add_argument("--grids", help="comma-separated grid sizes (p2p/coll/dl exhibits)")
    parser.add_argument("--multipliers", help="comma-separated multipliers (Jacobi exhibits)")
    parser.add_argument("--fast", action="store_true", help="decimate 'all' sweeps")
    args = parser.parse_args(argv)

    if args.exhibit == "list":
        for name, fn in figures.ALL_EXHIBITS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0

    if args.exhibit == "all":
        from scripts import regenerate_results  # pragma: no cover - thin wrapper

        sys.argv = ["regenerate_results"] + (["--fast"] if args.fast else [])
        regenerate_results.main()
        return 0

    fn = figures.ALL_EXHIBITS.get(args.exhibit)
    if fn is None:
        parser.error(f"unknown exhibit {args.exhibit!r}; try 'list'")
    kwargs = {}
    if args.grids:
        kwargs["grids"] = tuple(int(g) for g in args.grids.split(","))
    if args.multipliers:
        kwargs["multipliers"] = tuple(int(m) for m in args.multipliers.split(","))
    print(render(fn(**kwargs)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
