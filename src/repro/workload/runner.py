"""The single rank-launch choke point for world-mode workloads.

Every workload that runs MPI-style rank coroutines goes through
:func:`run_ranks` — the only place outside :mod:`repro.mpi` that builds a
:class:`~repro.mpi.world.World` (the ``workload-bypass`` lint enforces
this).  It does exactly what the hand-rolled drivers used to do —
construct the world, run the ranks, hand back the results — so every
counter and timestamp stays pinned; it additionally keeps the world
around so callers can read the dataplane ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.hw.topology import MachineLike
from repro.mpi.world import World


@dataclass
class RankRun:
    """One completed rank job: per-rank return values + the world."""

    world: World
    results: List[Any]

    @property
    def t_end(self) -> float:
        return self.world.engine.now

    @property
    def class_bytes(self) -> dict:
        """Per-traffic-class ledger snapshot for the run's dataplane."""
        return self.world.fabric.dataplane.ledger.as_dict()


def run_ranks(
    machine: MachineLike,
    main: Callable,
    nprocs: Optional[int] = None,
    args: Sequence[Any] = (),
    cost=None,
) -> RankRun:
    """Build one World on ``machine`` and run ``nprocs`` ranks of ``main``."""
    world = World(machine, cost=cost)
    results = world.run(main, nprocs=nprocs, args=args)
    return RankRun(world=world, results=results)
