"""``python -m repro bench``: the pinned simulator benchmark suite.

Each suite entry runs a fixed workload under ``time.perf_counter`` and
records the engine's event-loop counters:

* ``wall_s`` — host wall-clock seconds (informational; never gated,
  machines differ);
* ``events_popped`` — heap events actually dispatched.  Deterministic for
  a given code state, so it is the regression metric: ``--against`` fails
  when an entry pops more than ``tolerance`` above its recorded baseline;
* ``events_coalesced`` — per-wave events the coalescing fast path avoided
  scheduling (DESIGN.md §11);
* ``peak_heap`` — high-water mark of the pending-event heap.

The suite mirrors the paper exhibits that dominate ``regenerate_results``:
a host ping-pong, decimated Fig 4/5 goodput sweeps, the single
131072-partition Fig 5 point (the ISSUE's headline O(waves) target), and
the Fig 8 Jacobi solve.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import time
from typing import Dict, Iterable, Optional

from repro.sim.engine import STATS

#: Default tolerance for the --against gate: events_popped is exactly
#: reproducible, but small headroom keeps unrelated cost-model tweaks from
#: tripping the CI step.
DEFAULT_TOLERANCE = 0.05


def _workload(name: str):
    from repro.workload.registry import get

    return get(name)


def _pingpong() -> dict:
    # Per-traffic-class accounting from the dataplane ledger: which
    # subsystem moved how many bytes over this workload (deterministic).
    return {"class_bytes": _workload("pingpong").run().class_bytes}


def _fig4_decimated() -> None:
    _workload("fig4").run(grids=(1, 256, 32768))


def _fig5_decimated() -> None:
    _workload("fig5").run(grids=(1, 256, 131072))


def _fig5_131072() -> None:
    _workload("p2p-point").run(grid=131072, model="progression")


def _fig8_jacobi() -> None:
    _workload("fig8").run(multipliers=(1, 4), iters=60)


def _striping() -> dict:
    """Single-path vs link-disjoint striped goodput, one large D2D point.

    The 64 MiB intra-node point has four link-disjoint routes on the
    GH200 mesh (direct NVLink, two NVLink detours, the C2C host path);
    the recorded speedup is deterministic simulated goodput, not wall
    clock, so it is stable across machines.
    """
    res = _workload("striping").run()
    return {
        "single_GBps": res.extra["single_GBps"],
        "multi_GBps": res.extra["multi_GBps"],
        "stripes": res.extra["stripes"],
        "stripe_speedup": res.extra["stripe_speedup"],
        "class_bytes": res.class_bytes,
    }


#: Worker processes for cluster suite entries; set by ``--shards``.
#: None = the pinned in-process sequential driver.
_CLUSTER_SHARDS: Optional[int] = None


def _cluster_fattree_512() -> dict:
    """512-GPU rail-optimized fat-tree halo under the sharded engine.

    64 node shards driven by conservative lookahead windows.  All digest
    and counter fields are bit-identical for every ``--shards`` value
    (DESIGN.md §14), so the entry gates like any other; only ``wall_s``
    responds to the worker count.
    """
    from repro.hw.spec.generators import fabric_metrics, resolve_machine

    spec = resolve_machine("fat-tree-512")
    res = _workload("halo").run(
        machine=spec, shards=_CLUSTER_SHARDS, iters=4, chunks=2
    )
    sig = res.extra["signature"]
    metrics = fabric_metrics(spec)
    return {
        "mode": res.mode,
        "workers": res.extra["workers"],
        "windows": res.extra["windows"],
        "messages": sig["messages"],
        "msg_digest": sig["msg_digest"],
        "t_end_us": round(sig["t_end"] * 1e6, 3),
        "lookahead_us": round(metrics["lookahead_s"] * 1e6, 3),
        "bisection_bw_GBps": round(metrics["bisection_bw"] / 1e9, 1),
        "cluster_events_popped": sig["events_popped"],
        "per_shard_popped": sig["per_shard_popped"],
    }


def _graph_replay(schedule, machine: str) -> dict:
    """Shared shape of the captured-transfer-graph replay entries.

    The replay runs in cluster graph mode: per-shard simulation happens
    on private graph engines (``events_graphed``) behind one pre-priced
    graph-launch host event per active window, so ``events_popped``
    collapses by the per-iteration batching factor.  Digests and
    ``t_end_us`` are bit-identical under ``REPRO_NO_GRAPHS=1``; the CI
    smoke re-runs one entry that way and asserts exactly that.
    """
    from repro.workload.replay import ReplayWorkload

    res = ReplayWorkload(schedule).run(machine=machine, shards=_CLUSTER_SHARDS)
    sig = res.extra["signature"]
    g = res.extra["graphs"]
    eager_equiv = g["events_graphed"] if g["events_graphed"] else sig["events_popped"]
    return {
        "mode": res.mode,
        "msg_digest": sig["msg_digest"],
        "t_end_us": round(sig["t_end"] * 1e6, 3),
        "cluster_events_popped": sig["events_popped"],
        "events_graphed": g["events_graphed"],
        "graph_launches": g["graph_launches"],
        "pop_batching_factor": round(eager_equiv / sig["events_popped"], 2),
    }


def _graph_replay_jacobi() -> dict:
    """10-iteration 4x2 Jacobi halo pattern, graph-captured replay."""
    from repro.workload.generators import jacobi_schedule

    return _graph_replay(jacobi_schedule(py=4, px=2, iters=10), "gh200-2x4")


def _graph_replay_llm16() -> dict:
    """16-rank 3D-parallel LLM step on a 16-GPU fat-tree, graph replay."""
    from repro.workload.generators import llm_schedule

    return _graph_replay(
        llm_schedule(dp=2, tp=2, pp=4, microbatches=2), "fat-tree-16-n4-l2"
    )


def _fault_reroute() -> dict:
    """Mid-run NVLink loss under a plan-cached 512 MiB chunk pipeline.

    Records the dynamic-fabric acceptance bounds (DESIGN.md §17): the
    faulted run lands strictly between the healthy multipath and
    single-path timings, recovers via both tiers (stripe re-routes and
    a plan re-bind), and no chunk is lost to a FabricFault.
    """
    from repro.dataplane.bench import measure_fault_reroute

    r = measure_fault_reroute()
    assert r["healthy_s"] < r["faulted_s"] < r["single_s"], r
    assert r["reroutes"] > 0 and r["replanned"] > 0, r
    assert r["faults"] == 0 and r["faulted_chunks"] == 0, r
    return {
        "healthy_us": round(r["healthy_s"] * 1e6, 3),
        "faulted_us": round(r["faulted_s"] * 1e6, 3),
        "single_us": round(r["single_s"] * 1e6, 3),
        "reroutes": r["reroutes"],
        "plan_hits": r["plan_hits"],
    }


def _congestion_vs_single() -> dict:
    """Eight concurrent same-pair 16 MiB puts: congestion-aware routing
    spreads them over the disjoint candidates and must beat the
    serialized single-path baseline by at least 2x (asserted)."""
    from repro.dataplane.bench import measure_congestion_goodput

    single = measure_congestion_goodput("single")
    cong = measure_congestion_goodput("congestion")
    speedup = single["elapsed_s"] / cong["elapsed_s"]
    assert speedup >= 2.0, (single, cong)
    return {
        "single_GBps": round(single["goodput_Bps"] / 1e9, 2),
        "congestion_GBps": round(cong["goodput_Bps"] / 1e9, 2),
        "congestion_speedup": round(speedup, 3),
    }


SUITE = {
    "pingpong": _pingpong,
    "fig4-decimated": _fig4_decimated,
    "fig5-decimated": _fig5_decimated,
    "fig5-131072-pe": _fig5_131072,
    "fig8-jacobi": _fig8_jacobi,
    "striping-64MiB": _striping,
    "cluster-fattree-512": _cluster_fattree_512,
    "graph-replay-jacobi": _graph_replay_jacobi,
    "graph-replay-llm16": _graph_replay_llm16,
    "fault-reroute-512MiB": _fault_reroute,
    "congestion-vs-single": _congestion_vs_single,
}


def run_suite(names: Optional[Iterable[str]] = None) -> Dict[str, dict]:
    """Run the selected entries; returns ``{entry: counters}``.

    An entry may return a dict of extra deterministic metrics (per-class
    byte ledgers, striping goodput); they are merged into its row.
    """
    from repro.dataplane.graph import GRAPHS

    results: Dict[str, dict] = {}
    for name in names or SUITE:
        fn = SUITE.get(name)
        if fn is None:
            raise KeyError(f"unknown bench suite entry {name!r}; have {sorted(SUITE)}")
        STATS.reset()
        GRAPHS.reset()
        t0 = time.perf_counter()
        extra = fn()
        wall = time.perf_counter() - t0
        snap = STATS.snapshot()
        snap.pop("events_cancelled", None)
        if not snap.get("events_graphed"):
            snap.pop("events_graphed", None)
        row = {"wall_s": round(wall, 3), **snap,
               "graph_launches": GRAPHS.launches}
        if GRAPHS.replanned:
            row["events_replanned"] = GRAPHS.replanned
        if isinstance(extra, dict):
            row.update(extra)
        results[name] = row
    return results


def _totals(results: Dict[str, dict]) -> dict:
    total = {"wall_s": 0.0, "events_popped": 0, "events_coalesced": 0, "peak_heap": 0}
    for row in results.values():
        total["wall_s"] = round(total["wall_s"] + row["wall_s"], 3)
        total["events_popped"] += row["events_popped"]
        total["events_coalesced"] += row["events_coalesced"]
        total["peak_heap"] = max(total["peak_heap"], row["peak_heap"])
    return total


def _check_against(results: Dict[str, dict], baseline: dict, tolerance: float) -> int:
    """Gate events_popped against a recorded baseline; returns exit code."""
    failures = 0
    recorded = baseline.get("suite", {})
    for name, row in results.items():
        base = recorded.get(name)
        if base is None:
            print(f"  {name}: no baseline entry (skipped)")
            continue
        ceiling = base["events_popped"] * (1.0 + tolerance)
        verdict = "ok" if row["events_popped"] <= ceiling else "REGRESSED"
        print(
            f"  {name}: events_popped {row['events_popped']} vs "
            f"baseline {base['events_popped']} (ceiling {ceiling:.0f}) -> {verdict}"
        )
        if verdict != "ok":
            failures += 1
    return 1 if failures else 0


def resolve_baseline(spec: Optional[str], current_pr: int) -> Optional[str]:
    """Resolve an ``--against`` value to a baseline path.

    ``auto`` (or an explicit directory) picks the newest checked-in
    ``BENCH_pr<N>.json`` by PR number, excluding the file this run is
    about to write, so CI needs no hard-coded baseline name.
    """
    if spec is None:
        return None
    directory = "."
    if spec != "auto":
        if not os.path.isdir(spec):
            return spec
        directory = spec
    candidates = []
    for path in glob.glob(os.path.join(directory, "BENCH_pr*.json")):
        m = re.fullmatch(r"BENCH_pr(\d+)\.json", os.path.basename(path))
        if m and int(m.group(1)) != current_pr:
            candidates.append((int(m.group(1)), path))
    if not candidates:
        raise FileNotFoundError(
            f"--against {spec}: no BENCH_pr*.json baseline found in {directory!r}"
        )
    return max(candidates)[1]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the pinned simulator benchmark suite (DESIGN.md §11).",
    )
    parser.add_argument("--pr", type=int, default=10, help="PR number for the output filename")
    parser.add_argument("--out", help="output JSON path (default BENCH_pr<N>.json)")
    parser.add_argument("--suite", help="comma-separated subset of suite entries")
    parser.add_argument(
        "--against",
        help="baseline BENCH_pr<N>.json to gate events_popped against; "
             "'auto' picks the newest checked-in BENCH_pr*.json",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed events_popped growth over the baseline (fraction)",
    )
    parser.add_argument(
        "--shards", type=int,
        help="worker processes for cluster suite entries "
             "(default: in-process sequential driver; results are identical)",
    )
    args = parser.parse_args(argv)

    global _CLUSTER_SHARDS
    _CLUSTER_SHARDS = args.shards

    names = args.suite.split(",") if args.suite else None
    results = run_suite(names)
    doc = {
        "pr": args.pr,
        "metric_note": "events_popped is deterministic; wall_s is informational",
        "suite": results,
        "total": _totals(results),
    }

    for name, row in results.items():
        print(
            f"{name:16s} wall {row['wall_s']:8.3f}s  popped {row['events_popped']:9d}  "
            f"coalesced {row['events_coalesced']:9d}  peak_heap {row['peak_heap']:6d}"
        )
    total = doc["total"]
    print(
        f"{'TOTAL':16s} wall {total['wall_s']:8.3f}s  popped {total['events_popped']:9d}  "
        f"coalesced {total['events_coalesced']:9d}"
    )

    out = args.out or f"BENCH_pr{args.pr}.json"
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")

    baseline_path = resolve_baseline(args.against, args.pr)
    if baseline_path:
        print(f"gating against {baseline_path}")
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        return _check_against(results, baseline, args.tolerance)
    return 0
