"""Recursive-doubling allreduce schedule (extension algorithm).

The paper fixes the Ring algorithm "to maximize bandwidth for large
messages" (Section VI-B); recursive doubling is the classic latency-
optimal alternative for small messages: ``log2(P)`` steps, each
exchanging the *entire* working buffer with partner ``rank XOR 2^k`` and
reducing.  Expressing it in the same generic ``(I, R, op, O, A)`` schedule
demonstrates the paper's schedule-generality argument, and the ablation
bench shows the textbook ring/RD crossover.

Power-of-two communicator sizes only (the standard restriction).
"""

from __future__ import annotations

from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import MpiOp, SUM
from repro.pcoll.schedule import Schedule, Step


def recursive_doubling_allreduce_schedule(
    rank: int, n_ranks: int, op: MpiOp = SUM
) -> Schedule:
    """Build rank ``rank``'s recursive-doubling schedule."""
    if n_ranks < 2:
        raise MpiUsageError("recursive doubling needs at least 2 ranks")
    if n_ranks & (n_ranks - 1):
        raise MpiUsageError(
            f"recursive doubling requires a power-of-two size, got {n_ranks}"
        )
    if not 0 <= rank < n_ranks:
        raise MpiUsageError(f"rank {rank} out of range for P={n_ranks}")
    steps = []
    k = 0
    while (1 << k) < n_ranks:
        partner = rank ^ (1 << k)
        steps.append(Step((partner,), 0, op, (partner,), 0))
        k += 1
    return Schedule(
        rank, n_ranks, n_chunks=1, steps=tuple(steps), name="recursive_doubling"
    )


def verify_rd_completion(n_ranks: int) -> bool:
    """Static check: every rank ends holding every rank's contribution."""
    contributions = {r: {r} for r in range(n_ranks)}
    schedules = [recursive_doubling_allreduce_schedule(r, n_ranks) for r in range(n_ranks)]
    for i in range(schedules[0].n_steps):
        before = {r: set(c) for r, c in contributions.items()}
        for r in range(n_ranks):
            partner = schedules[r].steps[i].incoming[0]
            contributions[r] |= before[partner]
    full = set(range(n_ranks))
    return all(contributions[r] == full for r in range(n_ranks))
