"""Multi-GPU Jacobi solver with traditional vs partitioned halo exchange.

Reproduces the paper's Section VI-D1 (Figures 8, 9): the NVIDIA MPI+CUDA
Jacobi example adapted to MPI Partitioned.  The domain decomposes over a
2-D process grid (2x2 on four GPUs, 4x2 on eight — the paper's layout);
each rank iterates a 5-point stencil on its tile and exchanges halo rows/
columns with its neighbours every iteration.

Variants:

* ``traditional`` — launch stencil kernel, ``cudaStreamSynchronize``, then
  nonblocking MPI send/recv of all halos, wait, repeat (Listing 1 model);
* ``partitioned`` — persistent partitioned channels per neighbour; the
  stencil kernel's wave hook marks each halo ready as soon as its
  producing blocks complete (device ``MPIX_Pready``), so boundary data
  moves while the interior is still computing and the stream is never
  synchronized for communication;
* ``graphed`` — the per-iteration device work (stencil kernel plus one
  stream-ordered halo push per neighbour, addressed directly into the
  neighbour's published receive buffer) is stream-captured once into a
  :class:`~repro.dataplane.graph.TransferGraph` and replayed as a single
  graph launch per iteration — no per-op host enqueues and no MPI
  send/recv calls in the timed loop (``REPRO_NO_GRAPHS=1`` degrades the
  launch to per-op enqueues with identical timing and numerics).

The numerics are real: tiles are NumPy arrays, and the distributed solve
matches :func:`serial_jacobi` on the same global problem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.cuda.kernel import UniformKernel
from repro.cuda.timing import WorkSpec
from repro.hw.memory import Buffer
from repro.mpi.errors import MpiUsageError
from repro.partitioned.prequest import CopyMode

#: Direction codes; a message's tag is the direction it travels.
NORTH, SOUTH, EAST, WEST = 0, 1, 2, 3
_OPPOSITE = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}

#: Flops per stencil point (4 adds + 1 multiply, NVIDIA's counting).
FLOPS_PER_POINT = 5.0


class _HaloWaveHook:
    """Wave hook raising each halo's device MPIX_Pready when the wave
    containing its last producing block retires: kernel-copy halos store
    directly into the neighbour (posted; the host completion is gated on
    the copy) and all halos signal the progression engine.

    Speaks the executor's coalescing protocol (DESIGN.md §11): a wave
    containing no halo's last producing block has zero externally visible
    effects, so on an unobserved engine those waves collapse into the
    next firing wave's heap event.
    """

    __slots__ = ("fire_at", "preqs")

    def __init__(self, fire_at: List[Tuple[int, int]], preqs: Dict) -> None:
        self.fire_at = fire_at  # (last producing block, direction) pairs
        self.preqs = preqs

    def _fire_halo(self, kc, d: int) -> None:
        preq = self.preqs[d]
        if preq.mode is CopyMode.KERNEL_COPY:
            preq.kc_copy_events[0] = kc.copy(preq.src_slice(0), preq.mapped_slice(0))
        kc.bulk_host_flag_writes(1, preq.host_signals[0])

    def __call__(self, kc, wave) -> None:
        for last_block, d in self.fire_at:
            if wave.blocks[0] <= last_block <= wave.blocks[-1]:
                self._fire_halo(kc, d)

    def wave_batches(self, kc, plan):
        t = kc.now
        n_acc = 0
        for blocks, dt in plan:
            t = t + dt
            n_acc += 1
            hits = [
                d for last_block, d in self.fire_at
                if blocks[0] <= last_block <= blocks[-1]
            ]
            if hits:
                def fire(kctx, hits=hits):
                    for d in hits:
                        self._fire_halo(kctx, d)

                yield n_acc, t, fire
                n_acc = 0
        if n_acc:
            yield n_acc, t, None


def process_grid(nprocs: int) -> Tuple[int, int]:
    """(py, px) decomposition: 4 -> 2x2, 8 -> 4x2 (paper Section VI-D1).

    Chooses the most-square factorization with py >= px.
    """
    for py in range(1, nprocs + 1):
        if nprocs % py == 0:
            px = nprocs // py
            if py >= px:
                return (py, px)
    return (nprocs, 1)  # pragma: no cover - unreachable


@dataclass(frozen=True)
class JacobiConfig:
    """One Jacobi run's shape."""

    multiplier: int = 1            # the paper's swept parameter (1..32)
    base_tile: int = 64            # local tile edge = base_tile * multiplier
    iters: int = 10
    variant: str = "traditional"   # 'traditional' | 'partitioned'
    copy_mode: str = "pe"          # 'pe' | 'kc_auto' (kernel copy intra-node)
    block: int = 1024
    norm_every: int = 0            # 0 = skip global norm (paper's timed loop)
    dtype: type = np.float64

    @property
    def tile(self) -> int:
        return self.base_tile * self.multiplier


@dataclass
class JacobiResult:
    """Per-rank outcome."""

    time: float                    # simulated seconds for the timed loop
    gflops: float
    local: np.ndarray              # final tile incl. halo ring
    coords: Tuple[int, int]
    norm: Optional[float] = None


def _global_boundary_value(gy: int, gx: int, gny: int, gnx: int) -> float:
    """Dirichlet condition: top edge held at 1, other edges at 0."""
    return 1.0 if gy == 0 else 0.0


def serial_jacobi(gny: int, gnx: int, iters: int, dtype=np.float64) -> np.ndarray:
    """Reference single-process solve on the (gny x gnx) interior."""
    a = np.zeros((gny + 2, gnx + 2), dtype=dtype)
    a[0, :] = 1.0  # top boundary
    a_new = a.copy()
    for _ in range(iters):
        a_new[1:-1, 1:-1] = 0.25 * (
            a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:]
        )
        a, a_new = a_new, a
    return a


def run_jacobi(ctx, cfg: JacobiConfig) -> Generator:
    """Rank-process generator: distributed Jacobi per ``cfg``.

    Every rank of the communicator must call this.  Returns a
    :class:`JacobiResult`.
    """
    if cfg.variant not in ("traditional", "partitioned", "graphed"):
        raise MpiUsageError(f"unknown Jacobi variant {cfg.variant!r}")
    comm = ctx.comm
    py, px = process_grid(comm.size)
    ry, rx = comm.rank // px, comm.rank % px
    tile = cfg.tile
    gny, gnx = py * tile, px * tile

    # Local tile with halo ring; global Dirichlet boundaries baked in.
    a = np.zeros((tile + 2, tile + 2), dtype=cfg.dtype)
    a_new = np.zeros_like(a)
    if ry == 0:
        a[0, :] = 1.0
        a_new[0, :] = 1.0

    neighbours: Dict[int, int] = {}
    if ry > 0:
        neighbours[NORTH] = (ry - 1) * px + rx
    if ry < py - 1:
        neighbours[SOUTH] = (ry + 1) * px + rx
    if rx < px - 1:
        neighbours[EAST] = ry * px + (rx + 1)
    if rx > 0:
        neighbours[WEST] = ry * px + (rx - 1)

    # Device halo buffers (registered once; persistent across iterations).
    sbuf = {d: ctx.gpu.alloc(tile, cfg.dtype, label=f"halo_s{d}") for d in neighbours}
    rbuf = {d: ctx.gpu.alloc(tile, cfg.dtype, label=f"halo_r{d}") for d in neighbours}

    points = tile * tile
    grid_blocks = max(1, math.ceil(points / cfg.block))
    work = WorkSpec.jacobi_stencil(elem_bytes=np.dtype(cfg.dtype).itemsize)

    def stencil_apply() -> None:
        a_new[1:-1, 1:-1] = 0.25 * (
            a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:]
        )
        # Stage the fresh boundary into the registered send buffers.
        for d in neighbours:
            if d == NORTH:
                sbuf[d].data[:] = a_new[1, 1:-1]
            elif d == SOUTH:
                sbuf[d].data[:] = a_new[-2, 1:-1]
            elif d == EAST:
                sbuf[d].data[:] = a_new[1:-1, -2]
            else:
                sbuf[d].data[:] = a_new[1:-1, 1]

    def consume_halos() -> None:
        for d in neighbours:
            if d == NORTH:
                a_new[0, 1:-1] = rbuf[d].data
            elif d == SOUTH:
                a_new[-1, 1:-1] = rbuf[d].data
            elif d == EAST:
                a_new[1:-1, -1] = rbuf[d].data
            else:
                a_new[1:-1, 0] = rbuf[d].data

    # Block ranges producing each boundary (row-major point -> block map).
    blocks_per_row = max(1, math.ceil(tile / cfg.block))
    producing_last_block = {
        NORTH: min(grid_blocks, blocks_per_row) - 1,
        SOUTH: grid_blocks - 1,
        EAST: grid_blocks - 1,   # column data spans all rows
        WEST: grid_blocks - 1,
    }

    if cfg.variant == "partitioned":
        sreqs, rreqs, preqs, modes = {}, {}, {}, {}
        topo = ctx.world.fabric.topo
        for d, nbr in neighbours.items():
            sreqs[d] = yield from comm.psend_init(sbuf[d], 1, nbr, tag=d)
            rreqs[d] = yield from comm.precv_init(rbuf[d], 1, nbr, tag=_OPPOSITE[d])
            # Best copy mechanism per link (paper Section VI-A2): direct
            # kernel stores over NVLink within a node, progression-engine
            # RMA puts across the IB fabric.
            modes[d] = (
                CopyMode.KERNEL_COPY
                if cfg.copy_mode == "kc_auto" and topo.same_node(ctx.gpu.gpu_id, nbr)
                else CopyMode.PROGRESSION_ENGINE
            )

    if cfg.variant == "graphed":
        # Publish receive halos so neighbours can address them with
        # stream-ordered copies, then capture one iteration's device
        # work — stencil kernel plus one halo push per neighbour — into
        # a transfer graph.  Capture records without executing; every
        # iteration of the timed loop is then a single graph launch.
        registry = getattr(ctx.world, "_jacobi_halo_registry", None)
        if registry is None:
            registry = {}
            ctx.world._jacobi_halo_registry = registry
        for d in neighbours:
            registry[(comm.rank, d)] = rbuf[d]
        yield from comm.barrier()  # every rank's rbufs are published
        kernel = UniformKernel(
            grid_blocks, cfg.block, work, name="jacobi_g", apply=stencil_apply
        )
        stream = ctx.gpu.default_stream
        stream.begin_capture()
        ctx.gpu.launch(kernel)
        for d, nbr in sorted(neighbours.items()):
            ctx.gpu.memcpy_async(registry[(nbr, _OPPOSITE[d])], sbuf[d])
        jgraph = stream.end_capture()

    norm_val: Optional[float] = None
    t0 = ctx.now

    for it in range(cfg.iters):
        if cfg.variant == "traditional":
            kernel = UniformKernel(
                grid_blocks, cfg.block, work, name="jacobi", apply=stencil_apply
            )
            yield from ctx.gpu.launch_h(kernel)
            yield from ctx.gpu.sync_h()
            reqs = []
            for d, nbr in neighbours.items():
                rr = yield from comm.irecv(rbuf[d], nbr, tag=_OPPOSITE[d])
                reqs.append(rr)
            for d, nbr in neighbours.items():
                sr = yield from comm.isend(sbuf[d], nbr, tag=d)
                reqs.append(sr)
            from repro.mpi.requests import waitall

            yield from waitall(ctx.mpi, reqs)
            consume_halos()
        elif cfg.variant == "graphed":
            # One pre-priced submission replays the captured iteration;
            # the barrier is the only host-side synchronization (it
            # guarantees every neighbour's halo push has landed — each
            # rank reaches it only after draining its own stream).
            yield from ctx.gpu.graph_launch_h(jgraph)
            yield from ctx.gpu.sync_h()
            yield from comm.barrier()
            consume_halos()
        else:
            for d in neighbours:
                yield from sreqs[d].start()
                yield from rreqs[d].start()
            # Prepare all channels concurrently: a sender-side prepare
            # blocks on its peer's receiver-side prepare, so sequential
            # preparation of multiple neighbours can cycle-deadlock.
            from repro.sim.events import AllOf

            preps = [
                ctx.engine.process(sreqs[d].pbuf_prepare(), name=f"prep_s{d}")
                for d in neighbours
            ] + [
                ctx.engine.process(rreqs[d].pbuf_prepare(), name=f"prep_r{d}")
                for d in neighbours
            ]
            yield AllOf(ctx.engine, preps)
            if it == 0:
                for d in neighbours:
                    preqs[d] = yield from sreqs[d].prequest_create(
                        ctx.gpu, grid=1, block=cfg.block, mode=modes[d],
                    )

            fire_at = [(producing_last_block[d], d) for d in neighbours]
            hook = _HaloWaveHook(fire_at, preqs)

            kernel = UniformKernel(
                grid_blocks, cfg.block, work, name="jacobi_p",
                apply=stencil_apply, wave_hook=hook,
            )
            yield from ctx.gpu.launch_h(kernel)
            # MPI_Waitall over all halo channels: one call overhead.
            yield ctx.engine.timeout(ctx.params.mpi_call_overhead)
            for d in neighbours:
                yield from sreqs[d].wait(charge_overhead=False)
            for d in neighbours:
                yield from rreqs[d].wait(charge_overhead=False)
            consume_halos()

        if cfg.norm_every and (it + 1) % cfg.norm_every == 0:
            local_sq = float(np.sum((a_new[1:-1, 1:-1] - a[1:-1, 1:-1]) ** 2))
            sloc = Buffer.alloc(1, np.float64, node=ctx.mpi.node, fill=local_sq)
            rglob = Buffer.alloc(1, np.float64, node=ctx.mpi.node)
            yield from comm.allreduce(sloc, rglob)
            norm_val = math.sqrt(float(rglob.data[0]))

        a, a_new = a_new, a

    elapsed = ctx.now - t0
    gflops = (points * cfg.iters * FLOPS_PER_POINT) / elapsed / 1e9 * comm.size
    return JacobiResult(
        time=elapsed, gflops=gflops, local=a, coords=(ry, rx), norm=norm_val
    )
