"""Fig 9: Jacobi solver GFLOP/s on eight GH200 (4x2, two nodes).

Paper claims reproduced here:

* the two-node speedup (best 1.30x) exceeds the single-node one (1.06x) —
  inter-node communication is costlier, so overlap pays more;
* gains are largest for smaller problems and shrink as the multiplier
  grows (compute swamps communication).
"""

from conftest import run_exhibit, within

from repro.bench import figures

MULTIPLIERS = (1, 4, 16)


def test_fig9_jacobi_2node(benchmark):
    series = run_exhibit(benchmark, figures.fig9, multipliers=MULTIPLIERS, iters=120)

    best_kc = max(series.column("kc_speedup"))
    within(best_kc, 1.15, 1.45, "best two-node speedup (paper 1.30x)")

    for row in series.rows:
        assert row["kc_speedup"] > 1.0

    # The PE-variant gap between two-node and one-node follows the paper's
    # direction: inter-node communication is costlier, so the partitioned
    # overlap recovers relatively more of it (Fig 5 > Fig 4 peaks); at the
    # application level the PE speedup ordering is within noise, so we
    # assert the weaker envelope claim: KC strictly wins on two nodes and
    # the paper's 1.30x is reachable within the [PE, KC] envelope at
    # longer runs (see EXPERIMENTS.md).
    assert all(row["kc_speedup"] > row["pe_speedup"] for row in series.rows)

    for col in ("traditional", "partitioned_kc"):
        vals = series.column(col)
        assert all(b > a for a, b in zip(vals, vals[1:])), f"{col} must scale with size"
