#!/usr/bin/env python3
"""Regenerate every paper exhibit and write RESULTS.md.

    python scripts/regenerate_results.py [--fast]

``--fast`` decimates the sweeps further (CI-friendly, ~1 minute); the
default takes a few minutes and matches the benchmarks' resolution.
"""

import sys
import time

from repro.bench import figures, render
from repro.sim.engine import STATS

FAST = "--fast" in sys.argv

PLANS = {
    "fig2": {},
    "fig3": {"threads": (1, 32, 1024)} if FAST else {},
    "fig4": {"grids": (1, 16, 256, 2048, 32768)},
    "fig5": {"grids": (1, 16, 256, 8192, 131072)},
    "fig6": {"grids": (1024, 4096) if FAST else (1024, 4096, 16384, 32768)},
    "fig7": {"grids": (1024,) if FAST else (1024, 4096, 16384)},
    "table1": {},
    "fig8": {"multipliers": (1, 4) if FAST else (1, 4, 16), "iters": 60 if FAST else 120},
    "fig9": {"multipliers": (1, 4) if FAST else (1, 4, 16), "iters": 60 if FAST else 120},
    "fig10": {"grids": (256, 1024) if FAST else (256, 1024, 4096)},
    "fig11": {"grids": (256, 1024) if FAST else (256, 1024, 4096)},
}


def main() -> None:
    blocks = ["# Regenerated exhibits", "",
              "Produced by `python scripts/regenerate_results.py`.", ""]
    for name, kwargs in PLANS.items():
        STATS.reset()
        t0 = time.time()
        series = figures.ALL_EXHIBITS[name](**kwargs)
        wall = time.time() - t0
        text = render(series)
        print(text)
        # Heap-traffic counters are deterministic: future PRs can spot
        # DES-level regressions here without a profiler.
        print(
            f"  [{name} regenerated in {wall:.1f}s wall, "
            f"{STATS.events_popped} events popped, "
            f"{STATS.events_coalesced} coalesced]\n"
        )
        blocks += ["```", text, "```", ""]
    with open("RESULTS.md", "w") as fh:
        fh.write("\n".join(blocks))
    print("wrote RESULTS.md")


if __name__ == "__main__":
    main()
