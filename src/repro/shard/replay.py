"""The "replay" resident shard workload: lowered trace micro-ops per node.

:mod:`repro.workload.replay` validates a JSONL schedule and lowers it to
per-rank micro-op lists (picklable tuples); this build executes one
shard's slice of that plan.  It lives in the shard package — like the
halo and allreduce-node builds — because resident builds are the one
place allowed to drive ``shard.engine`` / ``shard.fabric`` directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple


def build_replay(shard, cfg: dict) -> list:
    """Shard build: replay lowered ops on one node shard.

    ``cfg["ops"]`` maps *global* GPU id -> micro-op list.  Local sends
    use the shard dataplane + rendezvous board; cross-shard sends become
    bridge-priced ``Shard.put`` messages keyed by the send key, which the
    receiving rank drains from its mailbox.

    ``cfg["graphs"]`` (default False) asks the shard to replay as a
    captured transfer graph: the identical rank generators run on a
    private :class:`~repro.dataplane.graph.GraphEngine` behind one host
    graph-launch event per window, with descriptor plans cached after
    the first iteration.  Shards that cannot graph (shared reference
    engine, observers, ``REPRO_NO_GRAPHS``) fall back to eager replay —
    timestamps and digests are identical either way.
    """
    from repro.hw.memory import Buffer, MemSpace
    from repro.workload.replay import _Board

    import numpy as np

    if cfg.get("graphs"):
        shard.enter_graph_mode()
    engine = shard.run_engine
    board = _Board(engine)
    dataplane = shard.fabric.dataplane
    srcs: Dict[Tuple[int, int], Any] = {}

    def src_buf(local: int, nbytes: int):
        buf = srcs.get((local, nbytes))
        if buf is None:
            buf = Buffer.alloc_virtual(
                nbytes, np.uint8, MemSpace.DEVICE, 0, local,
                label=f"replay.g{local}",
            )
            srcs[(local, nbytes)] = buf
        return buf

    def anchor(local: int, side: str):
        if side == "src":
            return src_buf(local, 1)
        buf = srcs.get(("dst", local))
        if buf is None:
            buf = Buffer.alloc_virtual(
                1, np.uint8, MemSpace.DEVICE, 0, local, label=f"replay.g{local}d"
            )
            srcs[("dst", local)] = buf
        return buf

    def rank_proc(local: int, g: int, my_ops: List[tuple]):
        for i, op in enumerate(my_ops):
            kind = op[0]
            if kind == "compute":
                yield engine.timeout(op[1])
            elif kind == "send":
                _, dst, nbytes, cls, key = op
                if shard.owns_gpu(dst):
                    yield dataplane.control(
                        anchor(local, "src"), anchor(dst - shard.gpu_base, "dst"),
                        nbytes, traffic_class=cls, name=f"replay.g{g}.{i}",
                    )
                    if key is not None:
                        board.signal(key)
                else:
                    yield shard.put(
                        src_buf(local, nbytes),
                        shard.remote(dst, nbytes, key if key is not None else ("put", g, i)),
                        traffic_class=cls, name=f"replay.g{g}.{i}",
                    )
            elif kind == "wait":
                _, src, key = op
                if shard.owns_gpu(src):
                    yield board.wait(key)
                else:
                    yield shard.recv(g, key)
        return (g, engine.now)

    procs = []
    for g, my_ops in sorted(cfg["ops"].items()):
        if shard.owns_gpu(g) and my_ops:
            local = g - shard.gpu_base
            procs.append(engine.process(
                rank_proc(local, g, my_ops), name=f"replay.n{shard.id}.g{local}"
            ))
    return procs


REPLAY_CLUSTER_DEFAULTS: Dict[str, Any] = {"ops": {}, "graphs": False}
