"""Point-to-point protocol: eager + rendezvous, CUDA-aware.

Wire protocol (all control messages are active messages on AM id
``AM_P2P``; bulk data moves as fabric transfers, i.e. RMA puts):

* **eager** (host buffers <= eager threshold): RTS carries the payload;
  the receiver unpacks into the user buffer on match.
* **rendezvous** (everything else, including all device buffers):
  RTS (envelope only) -> receiver matches and answers CTS naming the
  target region -> sender puts the data directly (GPUDirect-style for
  device memory) -> FIN completes the receiver's request.

The receiver-side state machine runs in the rank's progression engine
(:mod:`repro.mpi.progress`); the functions here are the sender/receiver
API-side generators called from rank processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.hw.memory import Buffer, MemSpace
from repro.mpi.errors import MpiMatchError, MpiUsageError
from repro.mpi.requests import PersistentRequest, Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import Communicator
    from repro.mpi.runtime import MpiRuntime

AM_P2P = 1

RTS = "rts"
CTS = "cts"
FIN = "fin"

#: Extra wire bytes for any control envelope.
ENVELOPE_BYTES = 64


@dataclass
class Envelope:
    """A p2p control message."""

    kind: str
    comm_id: int
    src: int                 # communicator ranks
    dst: int
    tag: int
    nbytes: int
    send_seq: int = 0
    recv_seq: int = 0
    payload: Optional[np.ndarray] = field(default=None, repr=False)  # eager copy
    target: Optional[Buffer] = field(default=None, repr=False)       # CTS target


class SendRequest(Request):
    def __init__(self, rt: "MpiRuntime", buf: Buffer, dest: int, tag: int) -> None:
        super().__init__(rt, "send")
        self.buf = buf
        self.dest = dest
        self.tag = tag


class RecvRequest(Request):
    def __init__(self, rt: "MpiRuntime", buf: Buffer, source: int, tag: int) -> None:
        super().__init__(rt, "recv")
        self.buf = buf
        self.source = source
        self.tag = tag


def _is_eager(rt: "MpiRuntime", buf: Buffer) -> bool:
    return (
        buf.space.host_accessible
        and buf.nbytes <= rt.params.eager_threshold_bytes
    )


# --------------------------------------------------------------------------
# sender side
# --------------------------------------------------------------------------

def _post_send(comm: "Communicator", sreq, buf: Buffer, dest: int, tag: int) -> Generator:
    """Shared send-protocol start: eager injection or rendezvous RTS."""
    rt = comm.rt
    ep = yield from rt.ep_to(comm, dest)
    if _is_eager(rt, buf):
        env = Envelope(
            RTS, comm.comm_id, comm.rank, dest, tag, buf.nbytes,
            send_seq=sreq.seq, payload=buf.data.copy(),
        )
        # Eager completes locally once the message is injected.
        yield ep.am_send(AM_P2P, env, nbytes=ENVELOPE_BYTES + buf.nbytes)
        sreq._complete({"protocol": "eager"})
    else:
        rt.pending_sends[sreq.seq] = (sreq, buf, comm)
        env = Envelope(
            RTS, comm.comm_id, comm.rank, dest, tag, buf.nbytes, send_seq=sreq.seq
        )
        yield ep.am_send(AM_P2P, env, nbytes=ENVELOPE_BYTES)


def isend(comm: "Communicator", buf: Buffer, dest: int, tag: int) -> Generator:
    """MPI_Isend. Returns a SendRequest; call as ``req = yield from ...``."""
    rt = comm.rt
    if not 0 <= dest < comm.size:
        raise MpiUsageError(f"isend: dest {dest} out of range for size {comm.size}")
    yield rt.engine.timeout(rt.params.mpi_call_overhead)
    sreq = SendRequest(rt, buf, dest, tag)
    yield from _post_send(comm, sreq, buf, dest, tag)
    return sreq


def send(comm: "Communicator", buf: Buffer, dest: int, tag: int) -> Generator:
    """MPI_Send (blocking)."""
    sreq = yield from isend(comm, buf, dest, tag)
    yield from sreq.wait()


# --------------------------------------------------------------------------
# receiver side
# --------------------------------------------------------------------------

def irecv(comm: "Communicator", buf: Buffer, source: int, tag: int) -> Generator:
    """MPI_Irecv. Returns a RecvRequest."""
    rt = comm.rt
    yield rt.engine.timeout(rt.params.mpi_call_overhead + rt.params.mpi_match_cost)
    rreq = RecvRequest(rt, buf, source, tag)
    rt.recv_by_seq[rreq.seq] = rreq
    matched = rt.matcher.post_recv(comm.comm_id, source, tag, rreq)
    if matched is not None:
        env, sender_addr = matched
        rt.progress.satisfy_recv(comm, rreq, env, sender_addr)
    return rreq


def recv(comm: "Communicator", buf: Buffer, source: int, tag: int) -> Generator:
    """MPI_Recv (blocking)."""
    rreq = yield from irecv(comm, buf, source, tag)
    return (yield from rreq.wait())


def sendrecv(
    comm: "Communicator",
    sendbuf: Buffer,
    dest: int,
    recvbuf: Buffer,
    source: int,
    sendtag: int = 0,
    recvtag: int = 0,
) -> Generator:
    """MPI_Sendrecv: concurrent send+recv, both complete before returning."""
    rreq = yield from irecv(comm, recvbuf, source, recvtag)
    sreq = yield from isend(comm, sendbuf, dest, sendtag)
    yield from sreq.wait()
    yield from rreq.wait()


# --------------------------------------------------------------------------
# persistent requests (MPI_Send_init / MPI_Recv_init)
# --------------------------------------------------------------------------

class PersistentSendRequest(PersistentRequest):
    """MPI_Send_init: a reusable send; each MPI_Start runs one send."""

    def __init__(self, comm: "Communicator", buf: Buffer, dest: int, tag: int) -> None:
        super().__init__(comm.rt, "psend_std")
        if not 0 <= dest < comm.size:
            raise MpiUsageError(f"send_init: dest {dest} out of range")
        self.comm = comm
        self.buf = buf
        self.dest = dest
        self.tag = tag

    def start(self) -> Generator:
        rt = self.rt
        yield rt.engine.timeout(rt.params.mpi_call_overhead)
        self._begin_epoch()
        # The protocol completes *this* request object; seq must be fresh
        # per epoch for pending-send bookkeeping.
        from repro.mpi import requests as _req

        self.seq = next(_req._req_seq)
        yield from _post_send(self.comm, self, self.buf, self.dest, self.tag)


class PersistentRecvRequest(PersistentRequest):
    """MPI_Recv_init: a reusable receive posting."""

    def __init__(self, comm: "Communicator", buf: Buffer, source: int, tag: int) -> None:
        super().__init__(comm.rt, "precv_std")
        self.comm = comm
        self.buf = buf
        self.source = source
        self.tag = tag

    def start(self) -> Generator:
        rt = self.rt
        yield rt.engine.timeout(rt.params.mpi_call_overhead + rt.params.mpi_match_cost)
        self._begin_epoch()
        from repro.mpi import requests as _req

        self.seq = next(_req._req_seq)
        rt.recv_by_seq[self.seq] = self
        matched = rt.matcher.post_recv(self.comm.comm_id, self.source, self.tag, self)
        if matched is not None:
            env, sender_addr = matched
            rt.progress.satisfy_recv(self.comm, self, env, sender_addr)


def send_init(comm: "Communicator", buf: Buffer, dest: int, tag: int = 0) -> Generator:
    """MPI_Send_init (local, non-blocking)."""
    yield comm.rt.engine.timeout(comm.rt.params.mpi_call_overhead)
    return PersistentSendRequest(comm, buf, dest, tag)


def recv_init(comm: "Communicator", buf: Buffer, source: int, tag: int = 0) -> Generator:
    """MPI_Recv_init (local, non-blocking)."""
    yield comm.rt.engine.timeout(comm.rt.params.mpi_call_overhead)
    return PersistentRecvRequest(comm, buf, source, tag)


def check_truncation(env: Envelope, rreq: RecvRequest) -> None:
    if env.nbytes > rreq.buf.nbytes:
        raise MpiMatchError(
            f"message truncation: incoming {env.nbytes}B > posted {rreq.buf.nbytes}B "
            f"(src={env.src}, tag={env.tag})"
        )
