"""Calibration constants for the GH200 testbed (paper Section V).

Every latency/bandwidth knob in the simulation lives here or in
:class:`repro.cuda.timing.CostModel`.  Defaults are calibrated so the
paper's reported *ratios* re-emerge; absolute values are in the right
order of magnitude for a GH200 node but are not claimed to be exact.

Sources for the defaults:

* NVLink 4: 6 links per GPU pair -> 150 GB/s unidirectional per neighbour.
* NVLink-C2C: 900 GB/s total, 450 GB/s per direction.
* ConnectX-7: 400 Gbit/s -> 50 GB/s; ~3.5 us end-to-end small-message latency
  (typical RC verbs put latency across one switch).
* HBM3: 96 GB at ~3.35 TB/s (H100-class device bandwidth, derated to a
  realistic achievable STREAM-like fraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.units import GBps, Gbps, us, ns


@dataclass(frozen=True)
class GH200Params:
    """Link/memory constants for one GH200 node and the IB interconnect."""

    # --- intra-node GPU<->GPU (NVLink 4, 6 links/pair) ---
    nvlink_bw: float = 150 * GBps          # unidirectional, per GPU pair
    nvlink_latency: float = 2.7 * us       # first-byte latency GPU->GPU (IPC put)

    # --- CPU<->GPU within a superchip (NVLink-C2C) ---
    c2c_bw: float = 450 * GBps             # per direction
    c2c_latency: float = 0.6 * us          # host<->device first-byte latency

    # --- inter-node (ConnectX-7 InfiniBand NDR) ---
    ib_bw: float = 400 * Gbps              # 50 GB/s per NIC
    ib_latency: float = 3.5 * us           # one-way put latency via one switch
    ib_rndv_handshake: float = 2.0 * us    # rendezvous RTS/CTS extra cost

    # --- device memory ---
    hbm_bw: float = 3000 * GBps            # achievable HBM3 stream bandwidth
    host_mem_bw: float = 400 * GBps        # LPDDR5X achievable

    # --- fine-grained signalling costs ---
    # A single device-thread store into pinned *host* memory (over C2C,
    # uncoalesced, fenced). Calibrated with flag_write_base so Fig 3's
    # 271.5x (1024 writes vs 1) and 9.4x (32 vs 1) ratios emerge.
    flag_write_host: float = 0.46 * us
    flag_write_base: float = 1.24 * us     # fixed cost of the signalling path
    # A device-thread store to its *own* GPU global memory (atomics etc.).
    gmem_atomic: float = 12 * ns
    # Host store observed by device (progress flags H2D visibility).
    host_to_dev_flag: float = 0.9 * us

    # --- progression engine ---
    # Delay between a flag being written and the polling progression thread
    # observing it (average poll interval / 2 + pipeline cost).
    progress_poll_latency: float = 0.9 * us
    # CPU cost for the progression engine to handle one pready dispatch.
    progress_dispatch_cost: float = 0.5 * us

    # --- software/protocol constants (UCX-level, host CPU work) ---
    ucp_context_create: float = 6.0 * us
    ucp_worker_create: float = 4.0 * us
    ucp_ep_create: float = 2.5 * us
    ucp_mem_map_per_call: float = 18.0 * us     # registration (pin + MR)
    ucp_rkey_pack: float = 1.5 * us
    ucp_rkey_unpack: float = 2.0 * us
    ucp_rkey_ptr: float = 9.0 * us              # cuIpcOpenMemHandle path
    # ucp_put_nbx on the cuda_ipc transport is a *host-mediated* async
    # device copy (cuMemcpyDtoDAsync + completion tracking), so every
    # host-issued intra-node device-to-device put pays this on top of the
    # wire time.  The Kernel-Copy path's direct stores avoid it — a key
    # part of why KC wins intra-node (Fig 4).
    cuda_ipc_put_overhead: float = 4.5 * us
    # Intra-kernel remote stores must be fenced (__threadfence_system) and
    # made peer-visible before the copying threads may raise counters;
    # charged once per kernel-copy transport partition.
    kc_fence_overhead: float = 1.3 * us
    am_send_overhead: float = 1.2 * us          # active-message injection
    mca_module_init: float = 140.0 * us         # first-touch MCA component init

    # --- MPI software layer ---
    mpi_call_overhead: float = 0.4 * us         # per-call bookkeeping
    mpi_match_cost: float = 0.3 * us            # tag-matching on the receiver
    eager_threshold_bytes: int = 8192           # eager/rendezvous switch (host bufs)
    cpu_reduce_bw: float = 30 * GBps            # host-side reduction throughput
    # Traditional MPI_Allreduce on *device* buffers stages through small
    # host bounce buffers with blocking per-chunk copies (the production
    # Open MPI behaviour the paper benchmarks against in Fig 6/7/10/11).
    allreduce_bounce_bytes: int = 64 * 1024
    allreduce_bounce_penalty: float = 11.0 * us  # memcpy pair + sync per chunk

    def with_overrides(self, **kw) -> "GH200Params":
        """Return a copy with selected constants replaced (ablations)."""
        return replace(self, **kw)


@dataclass(frozen=True)
class TestbedConfig:
    """Shape of the simulated machine (paper: 2 nodes x 4 GH200)."""

    n_nodes: int = 2
    gpus_per_node: int = 4
    params: GH200Params = field(default_factory=GH200Params)

    @property
    def n_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node

    def with_overrides(self, **kw) -> "TestbedConfig":
        return replace(self, **kw)

    def spec(self):
        """This config re-expressed as the canonical GH200
        :class:`~repro.hw.spec.schema.MachineSpec` (what the fabric
        builds; byte-identical behaviour is pinned by the determinism
        regression)."""
        from repro.hw.spec.catalog import gh200_spec  # local: avoids cycle

        return gh200_spec(self.n_nodes, self.gpus_per_node, self.params)


#: The testbed of the paper: two nodes, four GH200 superchips each.
PAPER_TESTBED = TestbedConfig()

#: Single-node variant used by the intra-node experiments.
ONE_NODE = TestbedConfig(n_nodes=1)
