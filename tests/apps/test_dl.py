"""DL proxy: gradient agreement across variants, loss descent, timing."""

import numpy as np
import pytest

from repro.apps.dl import DlConfig, run_dl
from repro.hw.params import ONE_NODE, PAPER_TESTBED
from repro.mpi.errors import MpiUsageError
from repro.mpi.world import World


def _main(ctx, cfg):
    return (yield from run_dl(ctx, cfg))


def _run(variant, grid=16, steps=3, nprocs=4, config=ONE_NODE, partitions=8):
    cfg = DlConfig(grid=grid, block=1024, steps=steps, variant=variant,
                   partitions=partitions)
    return World(config).run(_main, nprocs=nprocs, args=(cfg,))


@pytest.mark.parametrize("variant", ["traditional", "partitioned", "nccl"])
def test_loss_decreases(variant):
    results = _run(variant)
    for r in results:
        assert len(r.losses) == 3
        assert all(b <= a + 1e-12 for a, b in zip(r.losses, r.losses[1:]))


def test_all_variants_compute_identical_gradients():
    """Communication mechanism must not change the numerics."""
    grads = {v: _run(v)[0].grad for v in ("traditional", "partitioned", "nccl")}
    assert np.allclose(grads["traditional"], grads["partitioned"])
    assert np.allclose(grads["traditional"], grads["nccl"])


def test_all_ranks_agree_on_allreduced_gradient():
    for variant in ("traditional", "partitioned", "nccl"):
        results = _run(variant)
        base = results[0].grad
        for r in results[1:]:
            assert np.allclose(r.grad, base)


def test_losses_identical_across_ranks_given_seeded_shards():
    """Each rank trains on its own shard but shares weights, so losses
    differ across ranks yet evolve consistently (all decrease)."""
    results = _run("nccl")
    assert len({round(r.losses[1], 9) for r in results}) == len(results)


def test_variant_timing_ordering():
    # The paper evaluates large kernels (the app is collective-bound);
    # below ~256 blocks the partitioned path's fixed per-step costs
    # exceed the traditional staging penalty and the ordering flips.
    t = {v: max(r.time for r in _run(v, grid=256)) for v in
         ("traditional", "partitioned", "nccl")}
    assert t["traditional"] > t["partitioned"] > t["nccl"]


def test_goodput_reported():
    r = _run("nccl")[0]
    n_bytes = 16 * 1024 * 8 * 3
    assert r.goodput == pytest.approx(n_bytes / r.time)


def test_two_nodes_eight_ranks():
    results = _run("partitioned", nprocs=8, config=PAPER_TESTBED)
    base = results[0].grad
    for r in results[1:]:
        assert np.allclose(r.grad, base)


def test_unknown_variant_rejected():
    def main(ctx):
        with pytest.raises(MpiUsageError):
            yield from run_dl(ctx, DlConfig(variant="sgd"))
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))
