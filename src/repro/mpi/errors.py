"""MPI error hierarchy.

MPI's default error handler aborts; we raise instead so tests can assert
misuse (e.g. Pready before Start, partition index out of range, datatype
mismatches).
"""

from __future__ import annotations


class MpiError(Exception):
    """Base of all MPI-layer errors."""


class MpiUsageError(MpiError):
    """API misuse: bad arguments, wrong buffer space, count mismatch."""


class MpiStateError(MpiError):
    """Call sequence violation: e.g. MPI_Pready before MPI_Start."""


class MpiMatchError(MpiError):
    """Unmatchable communication (e.g. truncation on receive)."""
