"""Extension bench: ring vs recursive-doubling partitioned allreduce.

The paper fixes the Ring algorithm ("used to maximize bandwidth for large
messages", Section VI-B).  Expressing recursive doubling in the same
generic schedule quantifies that choice: RD's log2(P) steps win while the
collective is latency/overhead-bound, the Ring's pipelined 2(P-1)/P
traffic wins once it is bandwidth-bound — the classic crossover.
"""

import numpy as np
from conftest import within

from repro.bench.series import Series, render
from repro.hw.params import ONE_NODE
from repro.mpi.world import World
from repro.units import us

SIZES = (1 << 13, 1 << 21, 1 << 23)  # 64 KiB, 16 MiB, 64 MiB


def _measure(algorithm: str, n: int, iters: int = 2) -> float:
    def main(ctx):
        comm = ctx.comm
        w = ctx.gpu.alloc(n)
        req = yield from comm.pallreduce_init(
            w, w, partitions=8, algorithm=algorithm, device=ctx.gpu
        )
        times = []
        for _ in range(iters + 1):
            w.data[:] = float(ctx.rank + 1)
            yield from req.start()
            yield from req.pbuf_prepare()
            yield from comm.barrier()
            t0 = ctx.now
            for u in range(8):
                yield from req.pready(u)
            yield from req.wait()
            times.append(ctx.now - t0)
            assert np.allclose(w.data, 10.0)
        return times

    per_rank = World(ONE_NODE).run(main, nprocs=4)
    windows = [max(col) for col in zip(*per_rank)][1:]
    return sum(windows) / len(windows)


def test_ablation_allreduce_algorithm(benchmark):
    def run():
        s = Series(
            "Ablation A6",
            "Partitioned allreduce: ring vs recursive doubling (4 GH200)",
            ["bytes", "ring_us", "rd_us", "winner"],
        )
        for n in SIZES:
            ring = _measure("ring", n)
            rd = _measure("recursive_doubling", n)
            s.add(
                bytes=n * 8, ring_us=ring / us, rd_us=rd / us,
                winner="rd" if rd < ring else "ring",
            )
        s.note("RD wins while overhead-bound; ring wins once bandwidth-bound")
        return s

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render(series))

    assert series.rows[0]["winner"] == "rd", "RD must win small messages"
    assert series.rows[-1]["winner"] == "ring", "ring must win at 512 MiB payloads"
    # RD's small-message advantage is substantial (fewer serialized steps).
    within(series.rows[0]["ring_us"] / series.rows[0]["rd_us"], 1.5, 4.0,
           "ring/RD ratio at 64 KiB")
