"""GPU cost model: launch/sync overheads and the SM wave timing model.

Calibration targets (paper Fig 2, Section III):

* ``cudaStreamSynchronize`` costs 7.8 +- 0.1 us regardless of kernel size;
* for grids <= 256 (one wave at block=1024) synchronization is 71.6-78.9 %
  of total launch+sync time -> small-kernel execution ~2-3 us;
* a 128K-grid vector-add kernel runs ~1 ms (sync is ~0.8 % of total) —
  consistent with being HBM-bandwidth-bound (3 x 8 B/thread traffic).

The wave model: an H100-class device has ``sm_count`` SMs, each holding up
to ``max_threads_per_sm`` resident threads (and at most ``max_blocks_per_sm``
blocks).  A grid executes in ``ceil(grid / resident_blocks)`` waves; each
wave takes ``max(block_floor, wave_bytes / hbm_bw)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Tuple

from repro.units import us, GBps


@dataclass(frozen=True)
class WorkSpec:
    """Per-thread work of a uniform kernel body.

    ``bytes_per_thread`` counts *total HBM traffic* (reads + writes); the
    paper's vector add ``C = A + B`` with 8 B elements moves 24 B/thread.
    ``flops_per_thread`` is kept for compute-bound kernels (Jacobi, BCE).
    """

    flops_per_thread: float = 1.0
    bytes_per_thread: float = 24.0

    @classmethod
    def vector_add(cls, elem_bytes: int = 8) -> "WorkSpec":
        return cls(flops_per_thread=1.0, bytes_per_thread=3.0 * elem_bytes)

    @classmethod
    def jacobi_stencil(cls, elem_bytes: int = 4) -> "WorkSpec":
        # 5-point stencil: ~4 reads (cached) + 1 write + ~5 flops.
        return cls(flops_per_thread=5.0, bytes_per_thread=3.0 * elem_bytes)

    @classmethod
    def bce(cls, elem_bytes: int = 4) -> "WorkSpec":
        # log/exp heavy: ~20 flops, 3 streams of traffic.
        return cls(flops_per_thread=20.0, bytes_per_thread=3.0 * elem_bytes)


@dataclass(frozen=True)
class CostModel:
    """All host-visible and SM-level GPU timing constants."""

    # --- host API costs ---
    launch_latency: float = 0.95 * us      # kernel launch -> first wave starts
    launch_api_cost: float = 0.4 * us      # host-side cost of the async launch call
    stream_sync_cost: float = 7.8 * us     # cudaStreamSynchronize fixed cost (Fig 2)
    memcpy_api_cost: float = 1.2 * us      # cudaMemcpyAsync host-side cost
    event_record_cost: float = 0.4 * us
    cuda_malloc_cost: float = 60.0 * us    # cudaMalloc (driver allocation)
    cuda_host_alloc_cost: float = 25.0 * us  # cudaMallocHost (pin pages)

    # --- SM geometry (H100-class) ---
    sm_count: int = 132
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    warp_size: int = 32
    max_block_threads: int = 1024

    # --- block/wave timing ---
    block_floor: float = 1.15 * us         # min wave latency (issue + drain)
    hbm_bw: float = 3500 * GBps            # achievable device memory bandwidth
    flop_rate: float = 20e12               # achievable FP64-ish rate (flops/s)
    syncthreads_cost: float = 0.02 * us

    def with_overrides(self, **kw) -> "CostModel":
        return replace(self, **kw)

    # --- geometry ----------------------------------------------------------
    def resident_blocks(self, block_threads: int) -> int:
        """Max concurrently-resident blocks on the whole device."""
        if not 1 <= block_threads <= self.max_block_threads:
            raise ValueError(
                f"block size {block_threads} out of range 1..{self.max_block_threads}"
            )
        per_sm = min(self.max_threads_per_sm // block_threads, self.max_blocks_per_sm)
        per_sm = max(per_sm, 1)
        return per_sm * self.sm_count

    def n_waves(self, grid: int, block_threads: int) -> int:
        if grid < 1:
            raise ValueError("grid must be >= 1")
        return math.ceil(grid / self.resident_blocks(block_threads))

    # --- timing -------------------------------------------------------------
    def block_compute_time(self, block_threads: int, work: WorkSpec) -> float:
        """Time for one isolated block (no wave contention)."""
        mem = block_threads * work.bytes_per_thread / self.hbm_bw
        flops = block_threads * work.flops_per_thread / (self.flop_rate / self.sm_count)
        return max(self.block_floor, mem, flops)

    def wave_time(self, n_blocks: int, block_threads: int, work: WorkSpec) -> float:
        """Time for one wave of ``n_blocks`` concurrently-resident blocks.

        Memory traffic of the whole wave shares the device HBM bandwidth;
        compute shares the device flop rate across SMs.
        """
        mem = n_blocks * block_threads * work.bytes_per_thread / self.hbm_bw
        flops = n_blocks * block_threads * work.flops_per_thread / self.flop_rate
        return max(self.block_floor, mem, flops)

    def wave_plan(
        self, grid: int, block_threads: int, work: WorkSpec
    ) -> List[Tuple[range, float]]:
        """Analytic schedule: list of (block-id range, wave duration)."""
        resident = self.resident_blocks(block_threads)
        plan: List[Tuple[range, float]] = []
        start = 0
        while start < grid:
            n = min(resident, grid - start)
            plan.append((range(start, start + n), self.wave_time(n, block_threads, work)))
            start += n
        return plan

    def kernel_exec_time(self, grid: int, block_threads: int, work: WorkSpec) -> float:
        """Closed-form launch-to-completion time of a uniform kernel."""
        return self.launch_latency + sum(dt for _r, dt in self.wave_plan(grid, block_threads, work))
