"""MPIX_P<collective>_init entry points.

Generalized collective initialization (paper Section IV-B1): the current
proposals enumerate 21+ per-collective init functions; this module derives
each from a schedule builder plus the shared :class:`PcollRequest`
machinery, exactly the burden-reduction argument the paper makes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.hw.memory import Buffer
from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import MpiOp, SUM
from repro.pcoll.request import PcollRequest
from repro.pcoll.ring import ring_allreduce_schedule
from repro.pcoll.tree import binomial_bcast_schedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cuda.device import Device
    from repro.mpi.comm import Communicator


def pallreduce_init(
    comm: "Communicator",
    sendbuf: Buffer,
    recvbuf: Buffer,
    partitions: int,
    op: MpiOp = SUM,
    device: Optional["Device"] = None,
    algorithm: str = "ring",
    fused: bool = False,
) -> Generator:
    """MPIX_Pallreduce_init: ring reduce-scatter-allgather by default.

    The Ring algorithm maximizes bandwidth for large messages and is the
    one the paper evaluates (machine-learning context, Section VI-B).

    ``fused=True`` selects the paper's proposed relaxed device semantics
    (Section VI-B): the whole collective executes inside the kernel —
    NVLink-clique only.  See :mod:`repro.pcoll.fused`.
    """
    if algorithm not in ("ring", "recursive_doubling"):
        raise MpiUsageError(f"unknown allreduce algorithm {algorithm!r}")
    if fused:
        from repro.pcoll.fused import fused_pallreduce_init

        rt = comm.rt
        return (yield from fused_pallreduce_init(
            comm, sendbuf, recvbuf, partitions, op, device or rt.device
        ))
    if comm.size < 2:
        raise MpiUsageError("pallreduce needs at least 2 ranks")
    rt = comm.rt
    yield rt.engine.timeout(rt.params.mpi_call_overhead)
    if algorithm == "recursive_doubling":
        from repro.pcoll.rd import recursive_doubling_allreduce_schedule

        schedule = recursive_doubling_allreduce_schedule(comm.rank, comm.size, op)
    else:
        schedule = ring_allreduce_schedule(comm.rank, comm.size, op)
    req = PcollRequest(
        comm, sendbuf, recvbuf, partitions, op, schedule,
        device or rt.device, name="pallreduce",
    )
    yield from req._init_channels()
    return req


def pbcast_init(
    comm: "Communicator",
    buf: Buffer,
    partitions: int,
    root: int = 0,
    device: Optional["Device"] = None,
) -> Generator:
    """MPIX_Pbcast_init: binomial tree, all-NOP schedule."""
    rt = comm.rt
    yield rt.engine.timeout(rt.params.mpi_call_overhead)
    schedule = binomial_bcast_schedule(comm.rank, comm.size, root)
    req = PcollRequest(
        comm, buf, buf, partitions, SUM, schedule,
        device or rt.device, name="pbcast",
    )
    yield from req._init_channels()
    return req


def preduce_init(
    comm: "Communicator",
    buf: Buffer,
    partitions: int,
    op: MpiOp = SUM,
    root: int = 0,
    device: Optional["Device"] = None,
    algorithm: str = "binomial",
) -> Generator:
    """MPIX_Preduce_init: reduce to ``root`` (in place).

    ``binomial`` runs the bcast tree backwards (log rounds); ``flat`` is
    the one-step linear schedule whose root step has every other rank as
    an incoming neighbour — the multi-neighbour case of Algorithm 2.
    The buffer is both contribution and (at the root) result; non-root
    buffers hold partial reductions afterwards, like an in-place
    MPI_Reduce's send buffer.
    """
    from repro.pcoll.tree import binomial_reduce_schedule, flat_reduce_schedule

    if algorithm == "binomial":
        schedule = binomial_reduce_schedule(comm.rank, comm.size, op, root)
    elif algorithm == "flat":
        schedule = flat_reduce_schedule(comm.rank, comm.size, op, root)
    else:
        raise MpiUsageError(f"unknown reduce algorithm {algorithm!r}")
    rt = comm.rt
    yield rt.engine.timeout(rt.params.mpi_call_overhead)
    req = PcollRequest(
        comm, buf, buf, partitions, op, schedule,
        device or rt.device, name="preduce",
    )
    yield from req._init_channels()
    return req
