"""The repo-invariant rules, migrated from :mod:`repro.san.lint`.

The six historical checks (wallclock, raw-units, dropped-return,
obs-bypass, eager-obs-payload, fabric-bypass) keep their ids, their
summaries, and their exact findings — this pass calls the original
per-module checkers so ``scripts/lint_repro.py`` (now a shim over the
same code) and ``python -m repro analyze`` can never drift apart.  A
test pins the equivalence (tests/analyze/test_migration.py).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence

from repro.analyze.model import Project
from repro.analyze.rules import Finding, Pass, Rule
from repro.san.lint import STATIC_CHECKS, _in_core, lint_source

FAMILY = "invariant"

RULES: Dict[str, Rule] = {
    cid: Rule(cid, FAMILY, info.summary) for cid, info in STATIC_CHECKS.items()
}


def run(project: Project, enabled: Sequence[str]) -> List[Finding]:
    enabled_set = set(enabled)
    findings: List[Finding] = []
    for mod in project.modules:
        path = Path(mod.path)
        if path.name == "units.py":
            continue  # the units helpers *define* the raw literals
        for lf in lint_source(mod.source, mod.path, scoped=_in_core(path)):
            if lf.check in enabled_set:
                findings.append(
                    Finding(lf.check, lf.path, lf.line, lf.message)
                )
    return findings


PASS = Pass(family=FAMILY, rules=RULES, run=run)
