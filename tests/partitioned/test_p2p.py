"""Partitioned point-to-point: host bindings, epochs, protocol state."""

import numpy as np
import pytest

from repro.hw.params import ONE_NODE, TestbedConfig
from repro.mpi.errors import MpiStateError, MpiUsageError
from repro.mpi.world import World
from repro.units import us

INTER = TestbedConfig(n_nodes=2, gpus_per_node=1)


def _pair(sender_body, receiver_body):
    """Run a 2-rank job with distinct sender/receiver generators."""

    def main(ctx):
        if ctx.rank == 0:
            return (yield from sender_body(ctx))
        return (yield from receiver_body(ctx))

    return main


def test_host_pready_full_epoch():
    P = 4

    def sender(ctx):
        sbuf = ctx.gpu.alloc(64, fill=6.0)
        sreq = yield from ctx.comm.psend_init(sbuf, P, dest=1, tag=2)
        yield from sreq.start()
        yield from sreq.pbuf_prepare()
        for i in range(P):
            yield from sreq.pready(i)
        yield from sreq.wait()
        assert sreq.done
        return True

    def receiver(ctx):
        rbuf = ctx.gpu.alloc(64)
        rreq = yield from ctx.comm.precv_init(rbuf, P, source=0, tag=2)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        assert np.all(rbuf.data == 6.0)
        return True

    assert all(World(ONE_NODE).run(_pair(sender, receiver), nprocs=2))


def test_parrived_tracks_partitions_individually():
    P = 4
    observed = {}

    def sender(ctx):
        sbuf = ctx.gpu.alloc(4 * P, fill=1.0)
        sreq = yield from ctx.comm.psend_init(sbuf, P, dest=1, tag=0)
        yield from sreq.start()
        yield from sreq.pbuf_prepare()
        yield from sreq.pready(2)  # only partition 2 first
        yield ctx.engine.timeout(50 * us)
        for i in (0, 1, 3):
            yield from sreq.pready(i)
        yield from sreq.wait()

    def receiver(ctx):
        rbuf = ctx.gpu.alloc(4 * P)
        rreq = yield from ctx.comm.precv_init(rbuf, P, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield ctx.engine.timeout(30 * us)
        observed["early"] = [rreq.parrived(i) for i in range(P)]
        yield from rreq.wait()
        observed["late"] = [rreq.parrived(i) for i in range(P)]

    World(ONE_NODE).run(_pair(sender, receiver), nprocs=2)
    assert observed["early"] == [False, False, True, False]
    assert observed["late"] == [True] * 4


def test_persistent_reuse_three_epochs():
    P, N = 2, 32
    results = []

    def sender(ctx):
        sbuf = ctx.gpu.alloc(N)
        sreq = yield from ctx.comm.psend_init(sbuf, P, dest=1, tag=0)
        for epoch in range(3):
            sbuf.data[:] = float(epoch)
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            for i in range(P):
                yield from sreq.pready(i)
            yield from sreq.wait()

    def receiver(ctx):
        rbuf = ctx.gpu.alloc(N)
        rreq = yield from ctx.comm.precv_init(rbuf, P, source=0, tag=0)
        for epoch in range(3):
            yield from rreq.start()
            yield from rreq.pbuf_prepare()
            yield from rreq.wait()
            results.append(rbuf.data.copy())

    World(ONE_NODE).run(_pair(sender, receiver), nprocs=2)
    for epoch, snap in enumerate(results):
        assert np.all(snap == float(epoch))


def test_inter_node_partitioned():
    def sender(ctx):
        sbuf = ctx.gpu.alloc(1024, fill=2.5)
        sreq = yield from ctx.comm.psend_init(sbuf, 8, dest=1, tag=0)
        yield from sreq.start()
        yield from sreq.pbuf_prepare()
        for i in range(8):
            yield from sreq.pready(i)
        yield from sreq.wait()

    def receiver(ctx):
        rbuf = ctx.gpu.alloc(1024)
        rreq = yield from ctx.comm.precv_init(rbuf, 8, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        assert np.all(rbuf.data == 2.5)

    World(INTER).run(_pair(sender, receiver), nprocs=2)


def test_multiple_channels_same_peer_matched_in_order():
    """Two channels with identical (comm, ranks, tag) pair by init order."""
    out = {}

    def sender(ctx):
        b1 = ctx.gpu.alloc(8, fill=1.0)
        b2 = ctx.gpu.alloc(8, fill=2.0)
        s1 = yield from ctx.comm.psend_init(b1, 1, dest=1, tag=5)
        s2 = yield from ctx.comm.psend_init(b2, 1, dest=1, tag=5)
        for s in (s1, s2):
            yield from s.start()
        # Prepare concurrently to avoid ordering deadlock.
        from repro.sim.events import AllOf

        preps = [ctx.engine.process(s.pbuf_prepare()) for s in (s1, s2)]
        yield AllOf(ctx.engine, preps)
        yield from s1.pready(0)
        yield from s2.pready(0)
        yield from s1.wait()
        yield from s2.wait()

    def receiver(ctx):
        r1buf = ctx.gpu.alloc(8)
        r2buf = ctx.gpu.alloc(8)
        r1 = yield from ctx.comm.precv_init(r1buf, 1, source=0, tag=5)
        r2 = yield from ctx.comm.precv_init(r2buf, 1, source=0, tag=5)
        for r in (r1, r2):
            yield from r.start()
        from repro.sim.events import AllOf

        preps = [ctx.engine.process(r.pbuf_prepare()) for r in (r1, r2)]
        yield AllOf(ctx.engine, preps)
        yield from r1.wait()
        yield from r2.wait()
        out["r1"] = r1buf.data.copy()
        out["r2"] = r2buf.data.copy()

    World(ONE_NODE).run(_pair(sender, receiver), nprocs=2)
    assert np.all(out["r1"] == 1.0)
    assert np.all(out["r2"] == 2.0)


# ------------------------------------------------------------------
# error semantics (DESIGN.md section 7)
# ------------------------------------------------------------------

def test_pready_before_start_rejected():
    def sender(ctx):
        sbuf = ctx.gpu.alloc(8)
        sreq = yield from ctx.comm.psend_init(sbuf, 2, dest=1, tag=0)
        with pytest.raises(MpiStateError):
            sreq.issue_pready(0)
        # clean up: run the epoch properly
        yield from sreq.start()
        yield from sreq.pbuf_prepare()
        for i in range(2):
            yield from sreq.pready(i)
        yield from sreq.wait()
        return True

    def receiver(ctx):
        rbuf = ctx.gpu.alloc(8)
        rreq = yield from ctx.comm.precv_init(rbuf, 2, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        return True

    assert all(World(ONE_NODE).run(_pair(sender, receiver), nprocs=2))


def test_pready_before_prepare_rejected():
    def sender(ctx):
        sbuf = ctx.gpu.alloc(8)
        sreq = yield from ctx.comm.psend_init(sbuf, 2, dest=1, tag=0)
        yield from sreq.start()
        with pytest.raises(MpiStateError, match="Pbuf_prepare"):
            sreq.issue_pready(0)
        yield from sreq.pbuf_prepare()
        for i in range(2):
            yield from sreq.pready(i)
        yield from sreq.wait()
        return True

    def receiver(ctx):
        rbuf = ctx.gpu.alloc(8)
        rreq = yield from ctx.comm.precv_init(rbuf, 2, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        return True

    assert all(World(ONE_NODE).run(_pair(sender, receiver), nprocs=2))


def test_double_pready_rejected():
    def sender(ctx):
        sbuf = ctx.gpu.alloc(8)
        sreq = yield from ctx.comm.psend_init(sbuf, 2, dest=1, tag=0)
        yield from sreq.start()
        yield from sreq.pbuf_prepare()
        yield from sreq.pready(0)
        with pytest.raises(MpiStateError, match="twice"):
            yield from sreq.pready(0)
        yield from sreq.pready(1)
        yield from sreq.wait()
        return True

    def receiver(ctx):
        rbuf = ctx.gpu.alloc(8)
        rreq = yield from ctx.comm.precv_init(rbuf, 2, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        return True

    assert all(World(ONE_NODE).run(_pair(sender, receiver), nprocs=2))


def test_partition_index_out_of_range():
    def sender(ctx):
        sbuf = ctx.gpu.alloc(8)
        sreq = yield from ctx.comm.psend_init(sbuf, 2, dest=1, tag=0)
        yield from sreq.start()
        yield from sreq.pbuf_prepare()
        with pytest.raises(MpiUsageError):
            yield from sreq.pready(2)
        for i in range(2):
            yield from sreq.pready(i)
        yield from sreq.wait()
        return True

    def receiver(ctx):
        rbuf = ctx.gpu.alloc(8)
        rreq = yield from ctx.comm.precv_init(rbuf, 2, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        return True

    assert all(World(ONE_NODE).run(_pair(sender, receiver), nprocs=2))


def test_indivisible_buffer_rejected():
    def main(ctx):
        with pytest.raises(MpiUsageError):
            yield from ctx.comm.psend_init(ctx.gpu.alloc(10), 3, dest=1)
        with pytest.raises(MpiUsageError):
            yield from ctx.comm.precv_init(ctx.gpu.alloc(10), 3, source=1)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_partition_count_mismatch_detected():
    def sender(ctx):
        sbuf = ctx.gpu.alloc(8)
        sreq = yield from ctx.comm.psend_init(sbuf, 2, dest=1, tag=0)
        yield from sreq.start()
        with pytest.raises(MpiUsageError, match="mismatch"):
            yield from sreq.pbuf_prepare()
        return True

    def receiver(ctx):
        rbuf = ctx.gpu.alloc(8)
        rreq = yield from ctx.comm.precv_init(rbuf, 4, source=0, tag=0)
        yield from rreq.start()
        with pytest.raises(MpiUsageError, match="mismatch"):
            yield from rreq.pbuf_prepare()
        return True

    assert all(World(ONE_NODE).run(_pair(sender, receiver), nprocs=2))


def test_wait_without_pready_errors_not_hangs():
    def sender(ctx):
        sbuf = ctx.gpu.alloc(8)
        sreq = yield from ctx.comm.psend_init(sbuf, 2, dest=1, tag=0)
        yield from sreq.start()
        yield from sreq.pbuf_prepare()
        with pytest.raises(MpiStateError, match="never marked ready"):
            yield from sreq.wait()
        for i in range(2):
            yield from sreq.pready(i)
        yield from sreq.wait()
        return True

    def receiver(ctx):
        rbuf = ctx.gpu.alloc(8)
        rreq = yield from ctx.comm.precv_init(rbuf, 2, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        return True

    assert all(World(ONE_NODE).run(_pair(sender, receiver), nprocs=2))


def test_start_while_active_rejected():
    def sender(ctx):
        sbuf = ctx.gpu.alloc(8)
        sreq = yield from ctx.comm.psend_init(sbuf, 2, dest=1, tag=0)
        yield from sreq.start()
        with pytest.raises(MpiStateError, match="active"):
            yield from sreq.start()
        yield from sreq.pbuf_prepare()
        for i in range(2):
            yield from sreq.pready(i)
        yield from sreq.wait()
        return True

    def receiver(ctx):
        rbuf = ctx.gpu.alloc(8)
        rreq = yield from ctx.comm.precv_init(rbuf, 2, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        return True

    assert all(World(ONE_NODE).run(_pair(sender, receiver), nprocs=2))


def test_pbuf_prepare_first_call_carries_mca_cost():
    times = {}

    def sender(ctx):
        sbuf = ctx.gpu.alloc(8)
        sreq = yield from ctx.comm.psend_init(sbuf, 2, dest=1, tag=0)
        for epoch in range(2):
            yield from sreq.start()
            t0 = ctx.now
            yield from sreq.pbuf_prepare()
            times[epoch] = ctx.now - t0
            for i in range(2):
                yield from sreq.pready(i)
            yield from sreq.wait()
        return True

    def receiver(ctx):
        rbuf = ctx.gpu.alloc(8)
        rreq = yield from ctx.comm.precv_init(rbuf, 2, source=0, tag=0)
        for epoch in range(2):
            yield from rreq.start()
            yield from rreq.pbuf_prepare()
            yield from rreq.wait()
        return True

    World(ONE_NODE).run(_pair(sender, receiver), nprocs=2)
    assert times[0] > 150 * us          # MCA init + rkey handshake
    assert times[1] < 10 * us           # just the ready-to-receive signal
