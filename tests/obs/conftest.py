"""Fixtures for the instrumentation-bus tests."""

import pytest

from repro.obs import bus as obs_bus


@pytest.fixture(autouse=True)
def no_leaked_ambient_bus():
    """Every test starts and ends without an ambient bus installed."""
    if obs_bus.active() is not None:
        obs_bus.uninstall()
    yield
    if obs_bus.active() is not None:
        obs_bus.uninstall()
