"""repro.obs: the one instrumentation bus for the whole DES.

Every layer of the simulator — engine scheduling, resource waits, CUDA
streams and kernels, the MPI progression engine, UCX puts/rkeys, the
partitioned protocol, and per-link byte flow — publishes typed,
timestamped events onto a single :class:`~repro.obs.bus.Bus`.  Consumers
subscribe: the sanitizer's :class:`~repro.san.record.Recorder`, the Chrome
``trace_event`` exporter (:mod:`repro.obs.chrome`), and the utilization /
critical-path profiler (:mod:`repro.obs.profile`).

With zero subscribers every instrumentation hook is a single ``is None``
test on ``engine.obs`` — the hot path is unchanged.  See DESIGN.md §10.

Only the bus core is re-exported here; import the exporter and profiler
submodules explicitly (they depend on ``repro.san.record`` for actor
naming, which itself publishes through this package).
"""

from repro.obs.bus import (  # noqa: F401  (re-export surface)
    COUNTER,
    INSTANT,
    SPAN,
    Bus,
    ObsEvent,
    TextLog,
    active,
    install,
    note_engine,
    uninstall,
)
