"""One registry: ids, families, and the three CLI listings that share it."""

from repro.analyze.registry import all_passes, all_rules, render_rules
from repro.analyze.rules import FAMILIES
from repro.san.cli import list_checks
from repro.san.lint import STATIC_CHECKS

EXPECTED_RULES = {
    # migrated invariants
    "wallclock", "raw-units", "dropped-return",
    "obs-bypass", "eager-obs-payload", "fabric-bypass",
    "shard-shared-state", "workload-bypass",
    "fabric-mutation-bypass",
    # effects
    "effect-illegal-yield", "effect-leaked-waiter",
    # determinism
    "det-unordered-iter", "det-unseeded-random",
    "det-id-order", "det-float-accum",
    # static happens-before
    "hb-read-unordered", "hb-send-overwrite",
    # captured transfer graphs
    "graph-capture-mutation",
}


def test_registry_contents_and_families():
    rules = all_rules()
    assert set(rules) == EXPECTED_RULES
    assert {r.family for r in rules.values()} == set(FAMILIES)
    for p in all_passes():
        for rule in p.rules.values():
            assert rule.family == p.family


def test_migrated_ids_keep_their_summaries():
    rules = all_rules()
    for cid, info in STATIC_CHECKS.items():
        assert rules[cid].summary == info.summary


def test_lint_cli_list_matches_analyzer_list(capsys):
    from repro.analyze.cli import main as analyze_main
    from repro.san.lint import main as lint_main

    assert analyze_main(["--list"]) == 0
    analyze_out = capsys.readouterr().out
    assert lint_main(["--list"]) == 0
    lint_out = capsys.readouterr().out
    assert analyze_out == lint_out          # same registry, zero drift
    assert analyze_out.strip() == render_rules()


def test_san_list_checks_covers_every_static_rule():
    text = list_checks()
    for rule_id in EXPECTED_RULES:
        assert rule_id in text, f"{rule_id} missing from san --list-checks"


def test_lint_repro_script_lists_same_registry(tmp_path):
    import subprocess
    import sys

    from .conftest import REPO_ROOT

    proc = subprocess.run(
        [sys.executable, "scripts/lint_repro.py", "--list"],
        cwd=REPO_ROOT, capture_output=True, text=True, check=True,
    )
    for rule_id in EXPECTED_RULES:
        assert rule_id in proc.stdout
