"""Every paper exhibit and bench micro-workload as a Workload.

The series-building logic moved here verbatim from
``repro.bench.figures`` (which is now a shim over this registry); the
measurement layers — :mod:`repro.bench.p2p`, :mod:`repro.bench.coll`,
:mod:`repro.bench.apps`, :mod:`repro.dataplane.bench` — are unchanged
and still own the methodology, but they launch ranks through the
:mod:`repro.workload.runner` choke point.  Outputs are pinned
entry-for-entry against the pre-refactor seed
(``tests/workload/fixtures/seed_outputs.json``).

Exhibits whose figure spans several canonical machines (fig4 intra-node
vs fig5 inter-node, fig6 one-node vs fig7 two-node) honour a ``machine``
override by running *all* their measurements on it; with no override
they bind the paper's machines exactly as before.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench import apps as app_bench
from repro.bench import coll as coll_bench
from repro.bench import p2p as p2p_bench
from repro.bench.series import Series
from repro.hw.params import ONE_NODE, PAPER_TESTBED
from repro.hw.topology import MachineLike
from repro.partitioned.aggregation import SignalMode
from repro.units import us, GBps, MiB
from repro.workload.base import ExecOutcome, Workload
from repro.workload.registry import register
from repro.workload.runner import run_ranks

FIG2_GRIDS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 131072)
FIG3_THREADS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
FIG45_GRIDS = (1, 4, 16, 64, 256, 1024, 2048, 8192, 32768)
FIG67_GRIDS = (1024, 2048, 4096, 8192, 16384, 32768)
FIG89_MULTIPLIERS = (1, 2, 4, 8, 16, 32)
FIG1011_GRIDS = (256, 1024, 4096)


class ExhibitWorkload(Workload):
    """A paper exhibit: params are the sweep axes, result is one Series."""

    def _execute(self, machine: Optional[MachineLike], shards, **params) -> ExecOutcome:
        return ExecOutcome(series=self._series(machine, **params))

    def _series(self, machine: Optional[MachineLike], **params) -> Series:
        raise NotImplementedError


# --------------------------------------------------------------------------
# Figs 2/3: launch-sync motivation and Pready aggregation cost
# --------------------------------------------------------------------------

class Fig2(ExhibitWorkload):
    """Fig 2: cudaStreamSynchronize cost vs kernel launch+sync."""

    name = "fig2"
    defaults = {"grids": FIG2_GRIDS}

    def _series(self, machine, grids: Sequence[int]) -> Series:
        config = machine if machine is not None else ONE_NODE
        s = Series(
            "Fig 2",
            "cudaStreamSynchronize cost and launch+sync time (vector add, block=1024)",
            ["grid", "total_us", "sync_us", "sync_pct", "lost_overlap_us"],
        )
        for grid in grids:
            r = p2p_bench.measure_launch_sync(grid, config=config)
            sync = r["sync_only"]
            s.add(
                grid=grid,
                total_us=r["total"] / us,
                sync_us=sync / us,
                sync_pct=100.0 * sync / r["total"],
                lost_overlap_us=(r["total"] - r["launch_api"]) / us,
            )
        s.note("paper: sync 7.8us constant; 71.6-78.9% of total for grids <= 256; 0.8% at 128K")
        return s


class Fig3(ExhibitWorkload):
    """Fig 3: MPIX_Pready cost for thread/warp/block mappings."""

    name = "fig3"
    defaults = {"threads": FIG3_THREADS}

    def _series(self, machine, threads: Sequence[int]) -> Series:
        config = machine if machine is not None else ONE_NODE
        s = Series(
            "Fig 3",
            "Cost of mapping partitions to threads, warps and blocks (intra-node)",
            ["threads", "thread_us", "warp_us", "block_us"],
        )
        for n in threads:
            s.add(
                threads=n,
                thread_us=p2p_bench.measure_pready_cost(n, SignalMode.THREAD, config) / us,
                warp_us=p2p_bench.measure_pready_cost(n, SignalMode.WARP, config) / us,
                block_us=p2p_bench.measure_pready_cost(n, SignalMode.BLOCK, config) / us,
            )
        last = s.rows[-1]
        s.note(
            f"at 1024 threads: thread/block = {last['thread_us'] / last['block_us']:.1f}x "
            f"(paper 271.5x), warp/block = {last['warp_us'] / last['block_us']:.1f}x (paper 9.4x)"
        )
        return s


# --------------------------------------------------------------------------
# Figs 4/5: p2p goodput
# --------------------------------------------------------------------------

class Fig4(ExhibitWorkload):
    """Fig 4: intra-node goodput — Kernel Copy vs Progression Engine vs Send/Recv."""

    name = "fig4"
    defaults = {"grids": FIG45_GRIDS}

    def _series(self, machine, grids: Sequence[int]) -> Series:
        config = machine if machine is not None else ONE_NODE
        s = Series(
            "Fig 4",
            "Intra-node goodput, two GH200 on one node (GB/s)",
            ["grid", "sendrecv", "progression", "kernel_copy", "pe_speedup", "kc_speedup"],
        )
        for grid in grids:
            tr = p2p_bench.measure_p2p_goodput(grid, "sendrecv", config)
            pe = p2p_bench.measure_p2p_goodput(grid, "progression", config)
            kc = p2p_bench.measure_p2p_goodput(grid, "kernel_copy", config)
            s.add(
                grid=grid, sendrecv=tr / GBps, progression=pe / GBps,
                kernel_copy=kc / GBps, pe_speedup=pe / tr, kc_speedup=kc / tr,
            )
        s.note("paper: PE <= 1.28x (small), ~1.0x >= 2K grids; KC 2.34x small, 1.06x at 32K")
        return s


class Fig5(ExhibitWorkload):
    """Fig 5: inter-node goodput — Partitioned (PE) vs Send/Recv."""

    name = "fig5"
    defaults = {"grids": FIG45_GRIDS}

    def _series(self, machine, grids: Sequence[int]) -> Series:
        config = machine if machine is not None else p2p_bench.TWO_NODE_PAIR
        s = Series(
            "Fig 5",
            "Inter-node goodput, two GH200 on two nodes (GB/s)",
            ["grid", "sendrecv", "progression", "pe_speedup"],
        )
        for grid in grids:
            tr = p2p_bench.measure_p2p_goodput(grid, "sendrecv", config)
            pe = p2p_bench.measure_p2p_goodput(grid, "progression", config)
            s.add(grid=grid, sendrecv=tr / GBps, progression=pe / GBps, pe_speedup=pe / tr)
        s.note("paper: 2.80x at grid 1, 1.17x at the largest grid; 2 transport partitions best")
        return s


# --------------------------------------------------------------------------
# Figs 6/7 + Table I: collectives
# --------------------------------------------------------------------------

def _allreduce_series(exhibit: str, config, nprocs: int, grids: Sequence[int]) -> Series:
    s = Series(
        exhibit,
        f"Allreduce kernel+communication time, {nprocs} GH200 ({config.n_nodes} node(s))",
        ["grid", "traditional_us", "partitioned_us", "nccl_us", "trad_over_part", "part_minus_nccl_us"],
    )
    for grid in grids:
        tr = coll_bench.measure_allreduce(grid, "traditional", config, nprocs)
        pa = coll_bench.measure_allreduce(grid, "partitioned", config, nprocs)
        nc = coll_bench.measure_allreduce(grid, "nccl", config, nprocs)
        s.add(
            grid=grid, traditional_us=tr / us, partitioned_us=pa / us, nccl_us=nc / us,
            trad_over_part=tr / pa, part_minus_nccl_us=(pa - nc) / us,
        )
    s.note("paper: partitioned orders of magnitude under MPI_Allreduce; NCCL best (~226us gap at 1K)")
    return s


class Fig6(ExhibitWorkload):
    """Fig 6: allreduce on four GH200 (one node)."""

    name = "fig6"
    defaults = {"grids": FIG67_GRIDS}

    def _series(self, machine, grids: Sequence[int]) -> Series:
        config = machine if machine is not None else ONE_NODE
        return _allreduce_series("Fig 6", config, 4, grids)


class Fig7(ExhibitWorkload):
    """Fig 7: allreduce on eight GH200 (two nodes, ranks 0-3 / 4-7 per node).

    Default sweep stops at 16K grids: eight ranks x 256 MiB working sets
    plus ring staging exceed a 16 GB host at 32K (simulator memory, not a
    modelled limit).
    """

    name = "fig7"
    defaults = {"grids": FIG67_GRIDS[:-1]}

    def _series(self, machine, grids: Sequence[int]) -> Series:
        config = machine if machine is not None else PAPER_TESTBED
        return _allreduce_series("Fig 7", config, 8, grids)


class Table1(ExhibitWorkload):
    """Table I: overheads of the partitioned API calls."""

    name = "table1"

    def _series(self, machine) -> Series:
        config = machine if machine is not None else ONE_NODE
        o = coll_bench.measure_overheads(config=config)
        s = Series(
            "Table I",
            "Overheads for different MPI calls",
            ["call", "measured_us", "paper_us"],
        )
        s.add(call="MPI_Psend_init", measured_us=o["psend_init"] / us, paper_us=17.2)
        s.add(call="MPI_Precv_init", measured_us=o["precv_init"] / us, paper_us=17.2)
        s.add(call="MPIX_Pallreduce_init", measured_us=o["pallreduce_init"] / us, paper_us=62.3)
        s.add(call="MPIX_Prequest_create", measured_us=o["prequest_create"] / us, paper_us=110.7)
        s.add(call="MPIX_Pbuf_prepare (first)", measured_us=o["pbuf_prepare_first"] / us, paper_us=193.4)
        s.add(call="MPIX_Pbuf_prepare (avg)", measured_us=o["pbuf_prepare_avg"] / us, paper_us=3.4)
        return s


# --------------------------------------------------------------------------
# Figs 8-11: applications
# --------------------------------------------------------------------------

def _jacobi_series(exhibit: str, config, nprocs: int, multipliers: Sequence[int],
                   iters: int, base_tile: int) -> Series:
    s = Series(
        exhibit,
        f"Jacobi solver GFLOP/s, {nprocs} GH200 ({config.n_nodes} node(s))",
        ["multiplier", "traditional", "partitioned_pe", "partitioned_kc", "pe_speedup", "kc_speedup"],
    )
    for m in multipliers:
        tr = app_bench.measure_jacobi_gflops(m, "traditional", config, nprocs, base_tile, iters)
        pe = app_bench.measure_jacobi_gflops(m, "partitioned", config, nprocs, base_tile, iters, "pe")
        kc = app_bench.measure_jacobi_gflops(m, "partitioned", config, nprocs, base_tile, iters, "kc_auto")
        s.add(
            multiplier=m, traditional=tr, partitioned_pe=pe, partitioned_kc=kc,
            pe_speedup=pe / tr, kc_speedup=kc / tr,
        )
    s.note("paper: best 1.06x on one node, 1.30x on two nodes; gains shrink as size grows")
    s.note("we report both copy modes; the paper's figure lies inside the [PE, KC] envelope")
    return s


class Fig8(ExhibitWorkload):
    """Fig 8: Jacobi GFLOP/s on four GH200 (2x2 decomposition)."""

    name = "fig8"
    defaults = {"multipliers": FIG89_MULTIPLIERS, "iters": 150, "base_tile": 16}

    def _series(self, machine, multipliers, iters, base_tile) -> Series:
        config = machine if machine is not None else ONE_NODE
        return _jacobi_series("Fig 8", config, 4, multipliers, iters, base_tile)


class Fig9(ExhibitWorkload):
    """Fig 9: Jacobi GFLOP/s on eight GH200 (4x2 decomposition)."""

    name = "fig9"
    defaults = {"multipliers": FIG89_MULTIPLIERS, "iters": 150, "base_tile": 16}

    def _series(self, machine, multipliers, iters, base_tile) -> Series:
        config = machine if machine is not None else PAPER_TESTBED
        return _jacobi_series("Fig 9", config, 8, multipliers, iters, base_tile)


def _dl_series(exhibit: str, config, nprocs: int, grids: Sequence[int]) -> Series:
    s = Series(
        exhibit,
        f"Deep-learning kernel (BCE + gradient allreduce) per-step time, {nprocs} GH200",
        ["grid", "traditional_us", "partitioned_us", "nccl_us"],
    )
    for grid in grids:
        s.add(
            grid=grid,
            traditional_us=app_bench.measure_dl_step_time(grid, "traditional", config, nprocs) / us,
            partitioned_us=app_bench.measure_dl_step_time(grid, "partitioned", config, nprocs) / us,
            nccl_us=app_bench.measure_dl_step_time(grid, "nccl", config, nprocs) / us,
        )
    s.note("paper: partitioned well under MPI_Allreduce; NCCL still best (collective-bound)")
    return s


class Fig10(ExhibitWorkload):
    """Fig 10: DL kernel on four GH200."""

    name = "fig10"
    defaults = {"grids": FIG1011_GRIDS}

    def _series(self, machine, grids: Sequence[int]) -> Series:
        config = machine if machine is not None else ONE_NODE
        return _dl_series("Fig 10", config, 4, grids)


class Fig11(ExhibitWorkload):
    """Fig 11: DL kernel on eight GH200."""

    name = "fig11"
    defaults = {"grids": FIG1011_GRIDS}

    def _series(self, machine, grids: Sequence[int]) -> Series:
        config = machine if machine is not None else PAPER_TESTBED
        return _dl_series("Fig 11", config, 8, grids)


# --------------------------------------------------------------------------
# Bench micro-workloads: pingpong, single p2p point, striping
# --------------------------------------------------------------------------

def _pingpong_main(ctx, iters: int):
    comm = ctx.comm
    buf = ctx.gpu.alloc(1024)
    peer = 1 - ctx.rank
    for _ in range(iters):
        if ctx.rank == 0:
            yield from comm.send(buf, dest=peer, tag=1)
            yield from comm.recv(buf, source=peer, tag=2)
        else:
            yield from comm.recv(buf, source=peer, tag=1)
            yield from comm.send(buf, dest=peer, tag=2)


class Pingpong(Workload):
    """Two-rank host ping-pong: the bench suite's ledger smoke point."""

    name = "pingpong"
    default_machine = ONE_NODE
    defaults = {"iters": 50}

    def _execute(self, machine, shards, iters: int) -> ExecOutcome:
        run = run_ranks(machine, _pingpong_main, nprocs=2, args=(iters,))
        class_bytes = run.class_bytes
        s = Series("pingpong", "two-rank host ping-pong, per-class ledger",
                   ["traffic_class", "bytes", "transfers"])
        for cls in sorted(class_bytes):
            row = class_bytes[cls]
            s.add(traffic_class=cls, bytes=row["bytes"], transfers=row["transfers"])
        return ExecOutcome(
            series=s, class_bytes=class_bytes, extra={"t_end": run.t_end},
        )


class P2pPoint(Workload):
    """One (grid, model) goodput point — the Fig 5 131072-partition entry."""

    name = "p2p-point"
    default_machine = p2p_bench.TWO_NODE_PAIR
    defaults = {"grid": 131072, "model": "progression"}

    def _execute(self, machine, shards, grid: int, model: str) -> ExecOutcome:
        goodput = p2p_bench.measure_p2p_goodput(grid, model, machine)
        s = Series("p2p-point", "single p2p goodput point",
                   ["grid", "model", "goodput_GBps"])
        s.add(grid=grid, model=model, goodput_GBps=goodput / GBps)
        return ExecOutcome(series=s, extra={"goodput_Bps": goodput})


class Striping(Workload):
    """Single-path vs link-disjoint striped goodput, one large D2D point."""

    name = "striping"
    default_machine = ONE_NODE
    defaults = {"nbytes": 64 * MiB}

    def _execute(self, machine, shards, nbytes: int) -> ExecOutcome:
        from repro.dataplane.bench import measure_stripe_goodput

        single = measure_stripe_goodput(nbytes, "single", machine)
        multi = measure_stripe_goodput(nbytes, "multi", machine)
        s = Series("striping", "single vs multi path goodput, one D2D transfer",
                   ["policy", "goodput_GBps", "stripes"])
        s.add(policy="single", goodput_GBps=round(single["goodput_Bps"] / 1e9, 2),
              stripes=single["stripes"])
        s.add(policy="multi", goodput_GBps=round(multi["goodput_Bps"] / 1e9, 2),
              stripes=multi["stripes"])
        return ExecOutcome(
            series=s,
            class_bytes=multi["ledger"],
            extra={
                "single_GBps": round(single["goodput_Bps"] / 1e9, 2),
                "multi_GBps": round(multi["goodput_Bps"] / 1e9, 2),
                "stripes": multi["stripes"],
                "stripe_speedup": round(
                    multi["goodput_Bps"] / single["goodput_Bps"], 3
                ),
            },
        )


# --------------------------------------------------------------------------
# App-level single-point workloads (the sweepable Jacobi / DL scenarios)
# --------------------------------------------------------------------------

class Jacobi(Workload):
    """One Jacobi solve configuration as a sweepable scenario."""

    name = "jacobi"
    default_machine = ONE_NODE
    defaults = {
        "multiplier": 1, "variant": "partitioned", "copy_mode": "pe",
        "iters": 30, "base_tile": 16, "nprocs": 4,
    }

    def _execute(self, machine, shards, multiplier, variant, copy_mode,
                 iters, base_tile, nprocs) -> ExecOutcome:
        gflops = app_bench.measure_jacobi_gflops(
            multiplier, variant, machine, nprocs, base_tile, iters, copy_mode,
        )
        s = Series("jacobi", "Jacobi solver GFLOP/s (slowest rank)",
                   ["multiplier", "variant", "gflops"])
        s.add(multiplier=multiplier, variant=variant, gflops=gflops)
        return ExecOutcome(series=s)


class Dl(Workload):
    """One DL training-step configuration as a sweepable scenario."""

    name = "dl"
    default_machine = ONE_NODE
    defaults = {"grid": 256, "variant": "partitioned", "steps": 3,
                "partitions": 8, "nprocs": 4}

    def _execute(self, machine, shards, grid, variant, steps,
                 partitions, nprocs) -> ExecOutcome:
        step_s = app_bench.measure_dl_step_time(
            grid, variant, machine, nprocs, steps, partitions,
        )
        s = Series("dl", "DL kernel per-step time",
                   ["grid", "variant", "step_us"])
        s.add(grid=grid, variant=variant, step_us=step_s / us)
        return ExecOutcome(series=s)


EXHIBIT_WORKLOADS = [
    Fig2(), Fig3(), Fig4(), Fig5(), Fig6(), Fig7(), Table1(),
    Fig8(), Fig9(), Fig10(), Fig11(),
]

for _wl in EXHIBIT_WORKLOADS:
    register(_wl)
for _wl in (Pingpong(), P2pPoint(), Striping(), Jacobi(), Dl()):
    register(_wl)
