"""Schedule construction: Algorithm 1 ring, binomial tree, validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import NOP, SUM
from repro.pcoll.ring import ring_allreduce_schedule, verify_ring_completion
from repro.pcoll.schedule import Schedule, Step
from repro.pcoll.tree import binomial_bcast_schedule, verify_bcast_coverage


# -- Step / Schedule validation ------------------------------------------------

def test_step_requires_chunks_when_neighboured():
    with pytest.raises(MpiUsageError):
        Step(incoming=(1,), send_chunk=0, op=NOP, outgoing=(), recv_chunk=-1)
    with pytest.raises(MpiUsageError):
        Step(incoming=(), send_chunk=-1, op=NOP, outgoing=(1,), recv_chunk=0)


def test_schedule_rejects_bad_neighbours():
    s = Step((1,), 0, NOP, (), 0)
    with pytest.raises(MpiUsageError):
        Schedule(rank=0, n_ranks=1, n_chunks=1, steps=(s,))  # neighbour 1 >= P
    self_step = Step((0,), 0, NOP, (), 0)
    with pytest.raises(MpiUsageError):
        Schedule(rank=0, n_ranks=2, n_chunks=1, steps=(self_step,))


def test_schedule_rejects_bad_chunks():
    s = Step((), 5, NOP, (1,), 0)
    with pytest.raises(MpiUsageError):
        Schedule(rank=0, n_ranks=2, n_chunks=2, steps=(s,))


def test_neighbour_enumeration():
    sched = ring_allreduce_schedule(1, 4)
    assert sched.all_incoming() == [0]
    assert sched.all_outgoing() == [2]
    assert sched.sends_to(2) == 6
    assert sched.recvs_from(0) == 6
    assert sched.sends_to(3) == 0


# -- Algorithm 1 ring ------------------------------------------------------------

def test_ring_matches_algorithm_1():
    """Direct transcription check of the paper's Algorithm 1 for rank 2, P=4."""
    P, rank = 4, 2
    sched = ring_allreduce_schedule(rank, P)
    assert sched.n_steps == 2 * (P - 1)
    assert sched.n_chunks == P
    for i, step in enumerate(sched.steps):
        assert step.incoming == ((rank - 1) % P,)
        assert step.outgoing == ((rank + 1) % P,)
        assert step.send_chunk == (rank + 2 * P - i) % P
        assert step.recv_chunk == (rank + 2 * P - i - 1) % P
        if i < P - 1:
            assert step.op is SUM
        else:
            assert step.op is NOP


def test_ring_requires_two_ranks():
    with pytest.raises(MpiUsageError):
        ring_allreduce_schedule(0, 1)


@pytest.mark.parametrize("p", [2, 3, 4, 5, 8, 16])
def test_ring_completion_static(p):
    assert verify_ring_completion(p)


def test_ring_send_recv_chunks_pipeline():
    """Chunk sent at step i+1 is the chunk received (and reduced) at step i."""
    sched = ring_allreduce_schedule(3, 8)
    for i in range(sched.n_steps - 1):
        assert sched.steps[i + 1].send_chunk == sched.steps[i].recv_chunk


# -- binomial bcast ------------------------------------------------------------

@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8, 16])
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_coverage(p, root):
    if root >= p:
        pytest.skip("root out of range")
    assert verify_bcast_coverage(p, root)


def test_bcast_all_nop():
    for r in range(8):
        sched = binomial_bcast_schedule(r, 8)
        assert all(s.op is NOP for s in sched.steps)
        assert sched.n_chunks == 1


def test_bcast_root_never_receives():
    sched = binomial_bcast_schedule(0, 8, root=0)
    assert sched.all_incoming() == []
    assert len(sched.all_outgoing()) == 3  # log2(8) children


def test_bcast_leaf_never_sends():
    sched = binomial_bcast_schedule(7, 8, root=0)
    assert sched.all_outgoing() == []
    assert len(sched.all_incoming()) == 1


# -- property-based ---------------------------------------------------------------

@given(p=st.integers(min_value=2, max_value=24))
@settings(max_examples=30, deadline=None)
def test_property_ring_completion_any_p(p):
    assert verify_ring_completion(p)


@given(p=st.integers(min_value=1, max_value=32), root_frac=st.floats(0, 0.999))
@settings(max_examples=50, deadline=None)
def test_property_bcast_coverage_any_root(p, root_frac):
    root = int(root_frac * p)
    assert verify_bcast_coverage(p, root)


@given(p=st.integers(min_value=2, max_value=16), rank_frac=st.floats(0, 0.999))
@settings(max_examples=50, deadline=None)
def test_property_ring_schedules_globally_consistent(p, rank_frac):
    """If rank r sends chunk c to rank o at step i, then o expects to
    receive chunk c from r at step i (A of o == R of r)."""
    r = int(rank_frac * p)
    mine = ring_allreduce_schedule(r, p)
    succ = ring_allreduce_schedule((r + 1) % p, p)
    for i in range(mine.n_steps):
        assert mine.steps[i].send_chunk == succ.steps[i].recv_chunk
        assert succ.steps[i].incoming == (r,)
