"""Vector clocks for the happens-before race detector.

Classic epoch-based formulation (FastTrack lineage): every actor keeps a
vector clock; a ``release`` on a sync object merges the releaser's clock
into the object and advances the releaser's own component; an ``acquire``
merges the object's clock into the acquirer.  An access stamped with the
accessor's own component ``c`` happens-before a later observer iff the
observer's clock for that actor is ``>= c``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional


class VectorClock:
    """A sparse vector clock: actor -> logical time (missing = 0)."""

    __slots__ = ("_c",)

    def __init__(self, init: Optional[Dict[Hashable, int]] = None) -> None:
        self._c: Dict[Hashable, int] = dict(init) if init else {}

    def get(self, actor: Hashable) -> int:
        return self._c.get(actor, 0)

    def tick(self, actor: Hashable) -> int:
        """Advance ``actor``'s own component; returns the new value."""
        v = self._c.get(actor, 0) + 1
        self._c[actor] = v
        return v

    def join(self, other: Optional["VectorClock"]) -> "VectorClock":
        """Component-wise max, in place; returns self."""
        if other is not None:
            for actor, v in other._c.items():
                if v > self._c.get(actor, 0):
                    self._c[actor] = v
        return self

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def dominates(self, other: "VectorClock") -> bool:
        """True when every component of ``other`` is <= ours."""
        return all(self.get(a) >= v for a, v in other._c.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{a}:{v}" for a, v in sorted(self._c.items(), key=str))
        return f"<VC {inner}>"
