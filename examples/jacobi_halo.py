#!/usr/bin/env python3
"""Multi-GPU Jacobi solver with partitioned halo exchange (paper Fig 8/9).

Solves the Laplace problem on four simulated GH200s (2x2 decomposition)
with both halo-exchange variants, verifies the distributed solution
against a serial solve, and reports GFLOP/s.

    python examples/jacobi_halo.py
"""

import numpy as np

from repro.apps.jacobi import JacobiConfig, process_grid, run_jacobi, serial_jacobi
from repro.hw.params import ONE_NODE, PAPER_TESTBED
from repro.mpi.world import World


def run(config, nprocs, variant, copy_mode="pe", multiplier=2):
    cfg = JacobiConfig(
        multiplier=multiplier, base_tile=32, iters=60,
        variant=variant, copy_mode=copy_mode,
    )

    def main(ctx):
        return (yield from run_jacobi(ctx, cfg))

    results = World(config).run(main, nprocs=nprocs, args=())
    # ^ args are baked into cfg via closure

    # Verify against the serial reference.
    py, px = process_grid(nprocs)
    tile = cfg.tile
    glob = np.zeros((py * tile + 2, px * tile + 2))
    for res in results:
        ry, rx = res.coords
        glob[1 + ry * tile:1 + (ry + 1) * tile,
             1 + rx * tile:1 + (rx + 1) * tile] = res.local[1:-1, 1:-1]
    ref = serial_jacobi(py * tile, px * tile, cfg.iters)
    assert np.allclose(glob[1:-1, 1:-1], ref[1:-1, 1:-1]), "solution mismatch!"
    return min(r.gflops for r in results)


def main() -> None:
    for config, nprocs, label in ((ONE_NODE, 4, "4 GPUs / 1 node (2x2)"),
                                  (PAPER_TESTBED, 8, "8 GPUs / 2 nodes (4x2)")):
        trad = run(config, nprocs, "traditional")
        pe = run(config, nprocs, "partitioned", "pe")
        kc = run(config, nprocs, "partitioned", "kc_auto")
        print(f"{label}:")
        print(f"  traditional            : {trad:8.2f} GFLOP/s")
        print(f"  partitioned (PE)       : {pe:8.2f} GFLOP/s ({pe / trad:.2f}x)")
        print(f"  partitioned (KernelCpy): {kc:8.2f} GFLOP/s ({kc / trad:.2f}x)")
        print("  (all variants verified against the serial solver)")


if __name__ == "__main__":
    main()
