"""Machine topology and the Fabric route/transfer facade.

:class:`Topology` answers shape queries (which node owns a GPU, who is a
peer) over a :class:`~repro.hw.spec.schema.MachineSpec` — or over a legacy
:class:`~repro.hw.params.TestbedConfig`, which is coerced to the canonical
GH200 spec (paper Section V: ``n_nodes`` nodes of NVLink-meshed GH200
superchips with one ConnectX-7 NIC each).

:class:`Fabric` compiles the spec into a typed link graph
(:class:`~repro.hw.spec.graph.LinkGraph`), resolves a route for any
(source buffer, destination buffer) pair by graph search — memoized per
(src-port, dst-port) in a route cache, so the hot transfer path never
re-searches — and runs transfers with real payload copies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.dataplane.plane import Dataplane
from repro.hw import faults as hw_faults
from repro.hw.links import Link, LinkState
from repro.hw.memory import Buffer, MemSpace
from repro.hw.params import TestbedConfig
from repro.hw.spec.catalog import as_spec
from repro.hw.spec.graph import LinkGraph, Port, RouteSearchError
from repro.hw.spec.schema import MachineSpec
from repro.sim.engine import Engine
from repro.sim.events import Event

#: Global GPU index (0 .. n_gpus-1); node-local index is position on the node.
GpuId = int

#: Anything that describes a machine: a declarative spec or the legacy config.
MachineLike = Union[MachineSpec, TestbedConfig]


class Topology:
    """Pure shape and capability queries over a machine description."""

    def __init__(self, config: MachineLike) -> None:
        self.config = config
        self.spec = as_spec(config)

    @property
    def n_nodes(self) -> int:
        return self.spec.n_nodes

    @property
    def gpus_per_node(self) -> int:
        uniform = self.spec.uniform_gpus_per_node
        if uniform is None:
            raise ValueError(
                f"machine {self.spec.name!r} has heterogeneous nodes; "
                "use gpus_on_node(node) instead"
            )
        return uniform

    @property
    def n_gpus(self) -> int:
        return self.spec.n_gpus

    def node_of(self, gpu: GpuId) -> int:
        self._check(gpu)
        return self.spec.node_of(gpu)

    def local_index(self, gpu: GpuId) -> int:
        self._check(gpu)
        return gpu - self.spec.gpu_base(self.spec.node_of(gpu))

    def same_node(self, a: GpuId, b: GpuId) -> bool:
        return self.node_of(a) == self.node_of(b)

    def can_peer_map(self, a: GpuId, b: GpuId) -> bool:
        """May GPU ``a`` map GPU ``b``'s memory (cudaIpcOpenMemHandle)?

        Derived from the spec's interconnect, not from node distance: a
        host-staged (no-P2P PCIe) node refuses even same-node mappings.
        """
        self._check(a)
        self._check(b)
        return self.spec.can_peer_map(a, b)

    def gpus_on_node(self, node: int) -> List[GpuId]:
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range (n_nodes={self.n_nodes})")
        base = self.spec.gpu_base(node)
        return list(range(base, base + self.spec.nodes[node].n_gpus))

    def _check(self, gpu: GpuId) -> None:
        if not 0 <= gpu < self.n_gpus:
            raise IndexError(f"gpu {gpu} out of range (n_gpus={self.n_gpus})")


class RouteError(Exception):
    """No path exists between the requested buffer locations."""


class Fabric:
    """All links of one machine plus route resolution and transfers."""

    #: Optional cross-run route persistence hook (see
    #: :class:`repro.workload.sweep.RouteCacheStore`): an object with
    #: ``preload(fabric)`` called at construction and
    #: ``record(fabric, key, links)`` called on every route-cache miss.
    #: Class-level so sweeps can install it once for every fabric a
    #: workload builds internally; None = no persistence.
    route_store = None

    def __init__(
        self,
        engine: Engine,
        config: MachineLike,
        fault_scope: "int | None" = None,
    ) -> None:
        self.engine = engine
        self.config = config
        #: Node id this fabric simulates when it is a shard-local cut
        #: (scopes node-targeted fault events); None = whole machine.
        #: Falls back to ``engine.shard_id`` so multiprocess shards are
        #: scoped even through legacy construction paths.
        self.fault_scope = (
            fault_scope if fault_scope is not None
            else getattr(engine, "shard_id", None)
        )
        self.spec = as_spec(config)
        self.topo = Topology(config)
        self.graph = LinkGraph(engine, self.spec)
        #: The one mutation surface for link health (DESIGN.md §17);
        #: every mutation bumps its epoch and invalidates route caches.
        self.link_state = LinkState(engine, self.graph.links)
        #: (src-port, dst-port) -> resolved link tuple; hit on every
        #: transfer after the first between a location pair.
        self._route_cache: Dict[Tuple[Port, Port], Tuple[Link, ...]] = {}
        #: Fabric epoch the route cache was filled under.
        self._route_epoch = 0
        #: Number of cache-miss route computations (asserted by tests).
        self.route_computations = 0
        #: Pending fault-schedule heap events (cancelled on rebuild).
        self.fault_events: List[Event] = []

        # Structured link registries (views into the graph's registries;
        # keyed and named exactly like the original hard-coded testbed).
        self.hbm: Dict[GpuId, Link] = self.graph.hbm
        self.nvlink: Dict[Tuple[GpuId, GpuId], Link] = self.graph.d2d
        self.switch_up: Dict[GpuId, Link] = self.graph.switch_up
        self.switch_down: Dict[GpuId, Link] = self.graph.switch_down
        self.d2h: Dict[GpuId, Link] = self.graph.d2h
        self.h2d: Dict[GpuId, Link] = self.graph.h2d
        self.c2c_d2h: Dict[GpuId, Link] = self.graph.d2h  # legacy GH200 alias
        self.c2c_h2d: Dict[GpuId, Link] = self.graph.h2d  # legacy GH200 alias
        self.nic_out: Dict[int, Link] = self.graph.nic_out
        self.nic_in: Dict[int, Link] = self.graph.nic_in
        self.hostmem_tx: Dict[int, Link] = self.graph.hostmem_tx
        self.hostmem_rx: Dict[int, Link] = self.graph.hostmem_rx

        # Copy engine per GPU: host-initiated peer copies (UCX cuda_ipc
        # puts = cuMemcpyDtoDAsync) serialize through it with a per-op
        # setup cost, which caps their aggregate NVLink efficiency below
        # what SM-driven stores (Kernel-Copy, NCCL) achieve.
        from repro.sim.resources import Resource

        self.copy_engine: Dict[GpuId, Resource] = {
            g: Resource(engine, capacity=1, name=f"gpu{g}.ce")
            for g in range(self.topo.n_gpus)
        }

        #: The single submission point for every simulated byte; the
        #: legacy transfer methods below delegate here.  Path selection
        #: (single route vs link-disjoint striping) is the dataplane
        #: policy's call — see repro.dataplane and DESIGN.md §12.
        self.dataplane = Dataplane(self)

        sched = hw_faults.active()
        if sched is not None:
            self.fault_events = hw_faults.install_on_fabric(self, sched)

        if Fabric.route_store is not None:
            Fabric.route_store.preload(self)

    # -- link registry ---------------------------------------------------------
    def iter_links(self):
        """Every link of the machine, in registration order."""
        return iter(self.graph.links)

    def link_kinds(self) -> List[str]:
        """Distinct link kinds, in first-registration order."""
        seen: Dict[str, None] = {}
        for link in self.graph.links:
            seen.setdefault(link.kind, None)
        return list(seen)

    def d2h_link(self, gpu: GpuId) -> Link:
        """The device->host egress link of ``gpu`` (C2C down / PCIe d2h).

        Device-thread flag stores into pinned host memory serialize here.
        """
        return self.graph.d2h[gpu]

    # -- route resolution ------------------------------------------------------
    @staticmethod
    def _endpoint(buf: Buffer) -> Port:
        space, node, gpu = buf.location()
        if space in (MemSpace.DEVICE, MemSpace.UNIFIED) and gpu is not None:
            return ("gpu", gpu)
        if space is MemSpace.HOST:
            return ("pag", node)
        return ("pin", node)

    def route(self, src: Buffer, dst: Buffer) -> Tuple[Link, ...]:
        """Resolve (or fetch the cached) link path from ``src`` to ``dst``.

        The NIC used for an inter-node hop is the one the spec attaches to
        the source/destination location (GPUDirect-RDMA-style per-GPU NICs
        move device memory without host staging; a shared node NIC funnels
        everything through the host bridge).

        Routes are valid for one fabric epoch: a link mutation bumps
        :attr:`LinkState.epoch` and the next resolution drops the whole
        cache, so downed links never leak out of a stale entry.  On a
        healthy fabric the epoch never moves and this is one int compare.
        """
        epoch = self.link_state.epoch
        if epoch != self._route_epoch:
            self._route_cache.clear()
            self._route_epoch = epoch
        key = (self._endpoint(src), self._endpoint(dst))
        cached = self._route_cache.get(key)
        if cached is None:
            self.route_computations += 1
            try:
                cached = self.graph.search(*key)
            except RouteSearchError as exc:
                raise RouteError(str(exc)) from exc
            self._route_cache[key] = cached
            if Fabric.route_store is not None and not self.link_state.armed:
                # Routes found under mutated fabric state are epoch-local;
                # only healthy-fabric routes are worth persisting.
                Fabric.route_store.record(self, key, cached)
        return cached

    # -- route-cache persistence ------------------------------------------------
    @staticmethod
    def route_key_str(key: Tuple[Port, Port]) -> str:
        """Serialize a route-cache key: ``('gpu', 0), ('pag', 1)`` -> ``gpu:0|pag:1``."""
        (skind, sid), (dkind, did) = key
        return f"{skind}:{sid}|{dkind}:{did}"

    def export_routes(self) -> Dict[str, List[str]]:
        """JSON-serializable snapshot of the resolved route cache."""
        return {
            self.route_key_str(key): [link.name for link in links]
            for key, links in self._route_cache.items()
        }

    def preload_routes(self, doc: Dict[str, List[str]]) -> int:
        """Seed the route cache from an :meth:`export_routes` snapshot.

        The snapshot must come from a fabric with the *same machine
        spec* (callers key stores by spec hash); entries naming unknown
        links or malformed keys are skipped — they simply recompute on
        first use.  Returns the number of entries loaded.
        """
        by_name: Dict[str, Link] = {}
        for link in self.graph.links:
            if link.name in by_name:  # ambiguous registry: refuse to guess
                return 0
            by_name[link.name] = link
        loaded = 0
        for key_str, names in doc.items():
            try:
                s, d = key_str.split("|")
                skind, sid = s.split(":")
                dkind, did = d.split(":")
                links = tuple(by_name[n] for n in names)
            except (ValueError, KeyError):
                continue
            key = ((skind, int(sid)), (dkind, int(did)))
            if key not in self._route_cache:
                self._route_cache[key] = links
                loaded += 1
        return loaded

    # -- transfers --------------------------------------------------------------
    # Compatibility shims: the dataplane owns execution (descriptor
    # validation, path policy, per-class ledger).  Producers inside
    # repro.* submit descriptors with their own traffic classes; these
    # keep the historic Fabric surface for tests and external callers.
    def transfer(self, src: Buffer, dst: Buffer, name: str = "xfer") -> Event:
        """Move ``src``'s payload into ``dst``; event fires when data landed.

        The payload copy happens exactly at arrival time, so a reader that
        waits for the event observes the new data and a reader that races
        observes the old data — matching RMA visibility semantics.
        """
        return self.dataplane.put(src, dst, name=name)

    def host_initiated_transfer(self, src: Buffer, dst: Buffer, name: str = "hxfer") -> Event:
        """A transfer issued by *host* software (UCX put, MPI rendezvous).

        Device-to-device payloads between peers that can IPC-map each
        other ride the cuda_ipc path: a host-mediated async copy through
        the source GPU's copy engine, paying the per-op setup cost — the
        mechanism the Kernel-Copy design bypasses (paper Section IV-A4).
        Everything else (host buffers, same-GPU, inter-node GPUDirect,
        no-P2P staging) is a plain transfer.
        """
        return self.dataplane.rma_put(src, dst, name=name)

    def transfer_bytes(self, src: Buffer, dst: Buffer, nbytes: int, name: str = "ctrl") -> Event:
        """Timed transfer of ``nbytes`` along src->dst route without payload.

        Used for control messages (flags, setup packets) whose logical
        content is applied by the caller on completion.
        """
        return self.dataplane.control(src, dst, nbytes, name=name)

    def gpu_distance(self, a: GpuId, b: GpuId) -> str:
        """'local' | 'nvlink' | 'ib' — used by protocol selection."""
        if a == b:
            return "local"
        return "nvlink" if self.topo.same_node(a, b) else "ib"
