"""End-to-end CLI behaviour: suppressions, baseline, SARIF, exit codes."""

import json
import textwrap

import pytest

from repro.analyze.cli import main
from repro.analyze.sarif import validate_sarif
from repro.analyze.suppress import scan_suppressions

from .conftest import FIXTURES


def write_buggy(tmp_path, name="buggy.py", suppress=""):
    src = textwrap.dedent(f"""
        def pick(n):
            lanes = {{i * 2 for i in range(n)}}
            for lane in lanes:{suppress}
                return lane
    """)
    path = tmp_path / name
    path.write_text(src)
    return path


def run(capsys, *argv):
    code = main([str(a) for a in argv])
    return code, capsys.readouterr().out


def test_findings_exit_one_with_summary(capsys, tmp_path):
    path = write_buggy(tmp_path)
    code, out = run(capsys, path, "--no-baseline")
    assert code == 1
    assert "[det-unordered-iter]" in out
    assert "analyze: 1 finding(s)" in out


def test_inline_suppression_and_count(capsys, tmp_path):
    path = write_buggy(
        tmp_path, suppress="  # repro: ignore[det-unordered-iter]"
    )
    code, out = run(capsys, path, "--no-baseline")
    assert code == 0
    assert "1 suppressed" in out


def test_rule_filter_and_unknown_rule(capsys, tmp_path):
    path = write_buggy(tmp_path)
    code, _ = run(capsys, path, "--rule", "det-unseeded-random",
                  "--no-baseline")
    assert code == 0                      # other rules not run
    assert main([str(path), "--rule", "no-such-rule"]) == 2


def test_write_baseline_then_green(capsys, tmp_path):
    path = write_buggy(tmp_path)
    bl = tmp_path / "bl.json"
    code, out = run(capsys, path, "--baseline", bl, "--write-baseline")
    assert code == 0 and bl.is_file()
    code, out = run(capsys, path, "--baseline", bl)
    assert code == 0
    assert "(1 baselined" in out
    # --no-baseline surfaces everything again
    code, out = run(capsys, path, "--baseline", bl, "--no-baseline")
    assert code == 1


def test_stale_baseline_warns(capsys, tmp_path):
    buggy = write_buggy(tmp_path)
    bl = tmp_path / "bl.json"
    run(capsys, buggy, "--baseline", bl, "--write-baseline")
    clean = tmp_path / "clean.py"
    clean.write_text("def ok():\n    return 1\n")
    code, out = run(capsys, clean, "--baseline", bl)
    assert code == 0
    assert "stale baseline entry" in out


def test_sarif_export_is_valid(capsys, tmp_path):
    path = write_buggy(tmp_path)
    out_file = tmp_path / "out.sarif"
    code, _ = run(capsys, path, "--no-baseline", "--sarif", out_file)
    assert code == 1
    obj = json.loads(out_file.read_text())
    validate_sarif(obj)
    results = obj["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["det-unordered-iter"]
    assert results[0]["locations"][0]["physicalLocation"]["region"][
        "startLine"] == 4


def test_fixture_dir_reports_every_family(capsys):
    code, out = run(capsys, FIXTURES, "--no-baseline")
    assert code == 1
    for family_rule in (
        "effect-illegal-yield", "effect-leaked-waiter",
        "det-unordered-iter", "hb-read-unordered", "hb-send-overwrite",
    ):
        assert family_rule in out


def test_repo_analyzes_clean_with_checked_in_baseline(capsys):
    from .conftest import REPO_ROOT, REPRO_SRC

    code, out = run(
        capsys, REPRO_SRC, "--baseline", REPO_ROOT / "analyze-baseline.json"
    )
    assert code == 0, out
    assert "analyze: 0 finding(s)" in out


# -- suppression scanner unit cases -----------------------------------------

def test_scan_suppressions_grammar():
    table = scan_suppressions(textwrap.dedent("""\
        x = 1  # repro: ignore[rule-a]
        y = 2  # repro: ignore[rule-a, rule-b]
        z = 3  # repro: ignore
        w = 4  # repro: ignore[]
        plain = 5
    """))
    assert table[1] == {"rule-a"}
    assert table[2] == {"rule-a", "rule-b"}
    assert table[3] is None
    assert table[4] is None
    assert 5 not in table


def test_suppression_on_line_above(analyze):
    findings = analyze({"src/repro/sim/m.py": textwrap.dedent("""
        def one(xs):
            s = set(xs)
            # repro: ignore[det-unordered-iter]
            return s.pop()
    """)}, only=["det-unordered-iter"])
    assert findings == []


def test_suppression_is_rule_specific(analyze):
    findings = analyze({"src/repro/sim/m.py": textwrap.dedent("""
        def one(xs):
            s = set(xs)
            return s.pop()  # repro: ignore[some-other-rule]
    """)}, only=["det-unordered-iter"])
    assert len(findings) == 1
