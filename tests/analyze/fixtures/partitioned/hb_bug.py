"""Seeded happens-before bugs in a partitioned-style request class.

``consume`` reads a partition without waiting on its hot path;
``refill`` overwrites a partition right after ``pready`` with no
completion wait.  A dynamic run only trips these when the hot branch is
actually taken and the race actually lands — the static approximation
flags the *shape* on every path.
"""


class LeakyRequest:
    def __init__(self, buf, arrived, n):
        self.buf = buf
        self.arrived = arrived
        self.n = n
        self.hot = False

    def consume(self, i):
        if self.hot:
            return self.buf.partition(i, self.n)   # hb-read-unordered
        self.arrived.wait_for(i)
        return self.buf.partition(i, self.n)       # dominated: clean

    def consume_ok(self, i):
        self.arrived.wait_for(i)
        return self.buf.partition(i, self.n)

    def pready(self, i):
        pass

    def refill(self, i, data):
        self.pready(i)
        self.buf.data[i] = data                    # hb-send-overwrite

    def refill_ok(self, i, data):
        self.pready(i)
        self.arrived.wait_for(i)
        self.buf.data[i] = data
