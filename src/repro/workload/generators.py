"""Schedule generators: NCCL-style per-step logs and LLM training patterns.

Two frontends that produce validated :class:`~repro.workload.replay.
Schedule` objects ready to replay or serialize:

* :func:`parse_nccl_log` ingests the per-rank communication log format
  collective tracers dump (one op per line, ``key=value`` fields);
* :func:`llm_schedule` synthesizes the canonical 3D-parallel LLM
  training pattern — tensor-parallel allreduces inside every layer,
  pipeline-parallel activation/gradient point-to-points between stages,
  and the end-of-step data-parallel gradient allreduce.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.workload.replay import (
    ReplayError,
    SCHEMA,
    Schedule,
    Step,
    _validate,
)

# --------------------------------------------------------------------------
# NCCL-style per-step logs
# --------------------------------------------------------------------------
#
#   <rank> AllReduce bytes=N [group=0,1,2,3] [class=dp]
#   <rank> Send peer=P bytes=N [tag=T] [class=...]
#   <rank> Recv peer=P [bytes=N] [tag=T]
#   <rank> Broadcast root=R bytes=N [group=...]
#   <rank> Compute us=X
#
# '#' starts a comment; blank lines are skipped.

_NCCL_OPS = {"allreduce", "send", "recv", "broadcast", "compute"}
_INT_FIELDS = {"bytes", "peer", "root"}


def _parse_kv(token: str, source: str, lineno: int) -> Tuple[str, str]:
    if "=" not in token:
        raise ReplayError(
            f"{source}:{lineno}: expected key=value token, got {token!r}"
        )
    key, value = token.split("=", 1)
    return key, value


def parse_nccl_log(text: str, source: str = "<nccl-log>",
                   name: str = "nccl-log") -> Schedule:
    """Parse an NCCL-style per-step log into a replay schedule."""
    steps: List[Step] = []
    max_rank = -1
    # Broadcasts lower to sends/recvs.  Tags pair by per-(rank, root)
    # occurrence: every rank's k-th Broadcast line with root R belongs to
    # the same logical collective, mirroring the per-rank log order.
    bcast_seen: Dict[Tuple[int, int], int] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if len(tokens) < 2:
            raise ReplayError(
                f"{source}:{lineno}: expected '<rank> <Op> key=value...', got {line!r}"
            )
        try:
            rank = int(tokens[0])
        except ValueError:
            raise ReplayError(
                f"{source}:{lineno}: first token must be the rank, got {tokens[0]!r}"
            ) from None
        op = tokens[1].lower()
        if op not in _NCCL_OPS:
            raise ReplayError(
                f"{source}:{lineno}: unknown op {tokens[1]!r}; known: "
                f"{', '.join(sorted(_NCCL_OPS))}"
            )
        fields: Dict[str, object] = {}
        for token in tokens[2:]:
            key, value = _parse_kv(token, source, lineno)
            if key in _INT_FIELDS:
                try:
                    fields[key] = int(value)
                except ValueError:
                    raise ReplayError(
                        f"{source}:{lineno}: field {key!r} must be an "
                        f"integer, got {value!r}"
                    ) from None
            elif key == "us":
                try:
                    fields[key] = float(value)
                except ValueError:
                    raise ReplayError(
                        f"{source}:{lineno}: field 'us' must be a number, "
                        f"got {value!r}"
                    ) from None
            elif key == "group":
                try:
                    fields[key] = [int(g) for g in value.split(",") if g]
                except ValueError:
                    raise ReplayError(
                        f"{source}:{lineno}: field 'group' must be "
                        f"comma-separated ranks, got {value!r}"
                    ) from None
            else:
                fields[key] = value
        max_rank = max(max_rank, rank)

        if op == "compute":
            if "us" not in fields:
                raise ReplayError(f"{source}:{lineno}: Compute needs us=<number>")
            steps.append(Step(rank, "compute", lineno, {"us": fields["us"]}))
        elif op in ("send", "recv"):
            if "peer" not in fields:
                raise ReplayError(f"{source}:{lineno}: {tokens[1]} needs peer=<rank>")
            if op == "send" and "bytes" not in fields:
                raise ReplayError(f"{source}:{lineno}: Send needs bytes=<N>")
            steps.append(Step(rank, op, lineno, fields))
        elif op == "allreduce":
            if "bytes" not in fields:
                raise ReplayError(f"{source}:{lineno}: AllReduce needs bytes=<N>")
            steps.append(Step(rank, "allreduce", lineno, fields))
        elif op == "broadcast":
            if "root" not in fields or "bytes" not in fields:
                raise ReplayError(
                    f"{source}:{lineno}: Broadcast needs root=<rank> bytes=<N>"
                )
            root = fields["root"]
            members = fields.get("group")
            occ = bcast_seen.get((rank, root), 0)
            bcast_seen[(rank, root)] = occ + 1
            tag = f"bcast.{root}.{occ}"
            cls = fields.get("class", "broadcast")
            if rank == root:
                targets = members if members is not None else None
                # Root emits one send per (eventual) member; non-root lines
                # supply the recvs, so fan-out follows the log's own ranks.
                steps.append(Step(rank, "_bcast_root", lineno, {
                    "bytes": fields["bytes"], "tag": tag, "class": cls,
                    "group": targets,
                }))
            else:
                steps.append(Step(rank, "recv", lineno, {
                    "peer": root, "bytes": fields["bytes"], "tag": tag,
                }))
    if max_rank < 0:
        raise ReplayError(f"{source}:1: empty log: no steps found")
    ranks = max_rank + 1

    # Expand broadcast roots now that the rank count is known.
    expanded: List[Step] = []
    for s in steps:
        if s.op != "_bcast_root":
            expanded.append(s)
            continue
        members = s.fields["group"]
        targets = [r for r in (members if members is not None else range(ranks))
                   if r != s.rank]
        for t in targets:
            expanded.append(Step(s.rank, "send", s.line, {
                "peer": t, "bytes": s.fields["bytes"],
                "tag": s.fields["tag"], "class": s.fields["class"],
            }))
    sched = Schedule(ranks=ranks, steps=expanded, name=name, source=source)
    _validate(sched)
    return sched


# --------------------------------------------------------------------------
# LLM 3D-parallel training pattern
# --------------------------------------------------------------------------

def llm_schedule(
    dp: int = 2,
    tp: int = 2,
    pp: int = 2,
    layers: int = 4,
    hidden: int = 1024,
    seq: int = 512,
    microbatches: int = 2,
    steps: int = 1,
    dtype_bytes: int = 2,
    compute_us_per_layer: float = 50.0,
    name: Optional[str] = None,
) -> Schedule:
    """Synthesize a (dp × tp × pp)-parallel training step schedule.

    Rank layout: ``rank = tp_i + tp * (dp_i + dp * pp_i)`` — tensor
    groups innermost (they allreduce every layer), pipeline stages
    outermost (they exchange activations/gradients).  Per microbatch,
    each stage runs its layers forward (compute + tensor-parallel
    allreduce of the ``seq × hidden`` activation), ships activations to
    the next stage, then mirrors the pattern backward with gradients;
    each optimizer step ends with the data-parallel gradient allreduce
    (``layers × hidden² / tp`` bytes per rank) and a global barrier.
    """
    for label, v in (("dp", dp), ("tp", tp), ("pp", pp), ("layers", layers),
                     ("hidden", hidden), ("seq", seq),
                     ("microbatches", microbatches), ("steps", steps),
                     ("dtype_bytes", dtype_bytes)):
        if not isinstance(v, int) or v < 1:
            raise ReplayError(f"llm_schedule: {label} must be a positive integer, got {v!r}")
    ranks = dp * tp * pp
    layers_per_stage = max(layers // pp, 1)
    act_bytes = seq * hidden * dtype_bytes
    grad_bytes = layers_per_stage * hidden * hidden * dtype_bytes // tp

    def rank_of(tp_i: int, dp_i: int, pp_i: int) -> int:
        return tp_i + tp * (dp_i + dp * pp_i)

    out: List[Step] = []

    def add(rank: int, op: str, **fields) -> None:
        out.append(Step(rank, op, len(out) + 2, fields))

    for step in range(steps):
        for mb in range(microbatches):
            # forward
            for pp_i in range(pp):
                for dp_i in range(dp):
                    tp_group = [rank_of(t, dp_i, pp_i) for t in range(tp)]
                    for tp_i in range(tp):
                        r = rank_of(tp_i, dp_i, pp_i)
                        for _layer in range(layers_per_stage):
                            add(r, "compute", us=compute_us_per_layer)
                            if tp > 1:
                                add(r, "allreduce", bytes=act_bytes,
                                    group=sorted(tp_group), **{"class": "tp-allreduce"})
                        if pp_i + 1 < pp:
                            nxt = rank_of(tp_i, dp_i, pp_i + 1)
                            tag = f"act.s{step}.m{mb}.p{pp_i}"
                            add(r, "send", peer=nxt, bytes=act_bytes,
                                tag=tag, **{"class": "pp-activation"})
                        if pp_i > 0:
                            prev = rank_of(tp_i, dp_i, pp_i - 1)
                            tag = f"act.s{step}.m{mb}.p{pp_i - 1}"
                            add(r, "recv", peer=prev, tag=tag)
            # backward (stages reversed, gradients flow down)
            for pp_i in reversed(range(pp)):
                for dp_i in range(dp):
                    tp_group = [rank_of(t, dp_i, pp_i) for t in range(tp)]
                    for tp_i in range(tp):
                        r = rank_of(tp_i, dp_i, pp_i)
                        for _layer in range(layers_per_stage):
                            add(r, "compute", us=2.0 * compute_us_per_layer)
                            if tp > 1:
                                add(r, "allreduce", bytes=act_bytes,
                                    group=sorted(tp_group), **{"class": "tp-allreduce"})
                        if pp_i > 0:
                            prev = rank_of(tp_i, dp_i, pp_i - 1)
                            tag = f"grad.s{step}.m{mb}.p{pp_i}"
                            add(r, "send", peer=prev, bytes=act_bytes,
                                tag=tag, **{"class": "pp-gradient"})
                        if pp_i + 1 < pp:
                            nxt = rank_of(tp_i, dp_i, pp_i + 1)
                            tag = f"grad.s{step}.m{mb}.p{pp_i + 1}"
                            add(r, "recv", peer=nxt, tag=tag)
        # optimizer step: data-parallel gradient allreduce + barrier
        if dp > 1 and grad_bytes >= 1:
            for pp_i in range(pp):
                for tp_i in range(tp):
                    dp_group = sorted(rank_of(tp_i, d, pp_i) for d in range(dp))
                    for dp_i in range(dp):
                        add(rank_of(tp_i, dp_i, pp_i), "allreduce",
                            bytes=grad_bytes, group=dp_group,
                            **{"class": "dp-allreduce"})
        for r in range(ranks):
            add(r, "barrier")

    label = name or f"llm-dp{dp}-tp{tp}-pp{pp}"
    sched = Schedule(ranks=ranks, steps=out, name=label,
                     source=f"<{label}>")
    _validate(sched)
    return sched


# --------------------------------------------------------------------------
# Jacobi halo-exchange pattern
# --------------------------------------------------------------------------

def jacobi_schedule(
    py: int = 4,
    px: int = 2,
    iters: int = 10,
    halo_bytes: int = 64 * 1024,
    compute_us: float = 80.0,
    name: Optional[str] = None,
) -> Schedule:
    """Synthesize the Jacobi solver's iteration pattern on a py × px grid.

    Each of the ``py * px`` ranks runs ``iters`` iterations of: stencil
    compute, one halo send per neighbour (north/south/east/west, tagged
    by the direction the message travels), then the matching receives.
    The same four channels repeat every iteration, which is exactly the
    shape the dataplane's capture plan cache and graph replay amortize.
    """
    for label_, v in (("py", py), ("px", px), ("iters", iters),
                      ("halo_bytes", halo_bytes)):
        if not isinstance(v, int) or v < 1:
            raise ReplayError(
                f"jacobi_schedule: {label_} must be a positive integer, got {v!r}"
            )
    ranks = py * px
    # Direction codes and their reverses (matches repro.apps.jacobi).
    north, south, east, west = 0, 1, 2, 3
    opposite = {north: south, south: north, east: west, west: east}

    def neighbours(r: int):
        ry, rx = divmod(r, px)
        out_ = {}
        if ry > 0:
            out_[north] = (ry - 1) * px + rx
        if ry < py - 1:
            out_[south] = (ry + 1) * px + rx
        if rx < px - 1:
            out_[east] = ry * px + (rx + 1)
        if rx > 0:
            out_[west] = ry * px + (rx - 1)
        return out_

    out: List[Step] = []

    def add(rank: int, op: str, **fields) -> None:
        out.append(Step(rank, op, len(out) + 2, fields))

    for _it in range(iters):
        for r in range(ranks):
            add(r, "compute", us=compute_us)
        # All sends of the iteration precede all receives so every recv's
        # matching send occurrence sits at an earlier schedule line.
        for r in range(ranks):
            for d in sorted(neighbours(r)):
                add(r, "send", peer=neighbours(r)[d], bytes=halo_bytes,
                    tag=f"halo.{d}", **{"class": "halo"})
        for r in range(ranks):
            for d in sorted(neighbours(r)):
                add(r, "recv", peer=neighbours(r)[d], tag=f"halo.{opposite[d]}")

    label = name or f"jacobi-{py}x{px}"
    sched = Schedule(ranks=ranks, steps=out, name=label, source=f"<{label}>")
    _validate(sched)
    return sched


# --------------------------------------------------------------------------
# parameter-server training pattern
# --------------------------------------------------------------------------

def parameter_server_schedule(
    workers: int = 4,
    servers: int = 2,
    steps: int = 2,
    grad_bytes: int = 1024 * 1024,
    compute_us: float = 120.0,
    update_us: float = 40.0,
    name: Optional[str] = None,
) -> Schedule:
    """Synthesize the classic parameter-server training loop.

    Rank layout: servers first (``0 .. servers-1``), then workers.  Per
    optimizer step every worker computes its gradient, *pushes* one
    even shard of it to each server (tagged per step and worker, so
    pushes never cross steps), the servers apply the update, and every
    worker *pulls* its refreshed parameter shards back.  The fan-in at
    the servers is the pattern's signature hotspot — the reason this
    generator exists as a congestion-policy exhibit.
    """
    for label_, v in (("workers", workers), ("servers", servers),
                      ("steps", steps), ("grad_bytes", grad_bytes)):
        if not isinstance(v, int) or v < 1:
            raise ReplayError(
                f"parameter_server_schedule: {label_} must be a positive "
                f"integer, got {v!r}"
            )
    if grad_bytes < servers:
        raise ReplayError(
            f"parameter_server_schedule: grad_bytes={grad_bytes} cannot "
            f"shard across {servers} servers"
        )
    ranks = servers + workers
    shard = grad_bytes // servers
    # The first server's shard absorbs the remainder, so every step moves
    # exactly grad_bytes per worker in each direction.
    first_shard = shard + (grad_bytes - shard * servers)

    out: List[Step] = []

    def add(rank: int, op: str, **fields) -> None:
        out.append(Step(rank, op, len(out) + 2, fields))

    for step in range(steps):
        # Workers compute, then push gradient shards (all sends of the
        # phase precede the servers' receives).
        for w in range(workers):
            add(servers + w, "compute", us=compute_us)
        for w in range(workers):
            for s in range(servers):
                add(servers + w, "send", peer=s,
                    bytes=first_shard if s == 0 else shard,
                    tag=f"push.s{step}.w{w}", **{"class": "ps-push"})
        for s in range(servers):
            for w in range(workers):
                add(s, "recv", peer=servers + w, tag=f"push.s{step}.w{w}")
        # Servers apply the update, then fan the fresh shards back out.
        for s in range(servers):
            add(s, "compute", us=update_us)
        for s in range(servers):
            for w in range(workers):
                add(s, "send", peer=servers + w,
                    bytes=first_shard if s == 0 else shard,
                    tag=f"pull.s{step}.w{w}", **{"class": "ps-pull"})
        for w in range(workers):
            for s in range(servers):
                add(servers + w, "recv", peer=s, tag=f"pull.s{step}.w{w}")

    label = name or f"ps-w{workers}-s{servers}"
    sched = Schedule(ranks=ranks, steps=out, name=label, source=f"<{label}>")
    _validate(sched)
    return sched


# --------------------------------------------------------------------------
# expert-parallel (MoE) all-to-all pattern
# --------------------------------------------------------------------------

def expert_parallel_schedule(
    ranks: int = 8,
    steps: int = 2,
    token_bytes: int = 256 * 1024,
    expert_us: float = 90.0,
    router_us: float = 30.0,
    name: Optional[str] = None,
) -> Schedule:
    """Synthesize the Mixture-of-Experts dispatch/combine pattern.

    Per step every rank routes its tokens (compute), *dispatches*
    ``token_bytes`` to every other rank's experts (a full all-to-all),
    runs its expert layer, and *combines* the processed tokens back with
    the mirror all-to-all.  Each phase's sends precede its receives and
    tags carry (step, sender), so the two all-to-alls of one step — and
    neighbouring steps — cannot cross-match.
    """
    for label_, v in (("ranks", ranks), ("steps", steps),
                      ("token_bytes", token_bytes)):
        if not isinstance(v, int) or v < 1:
            raise ReplayError(
                f"expert_parallel_schedule: {label_} must be a positive "
                f"integer, got {v!r}"
            )
    if ranks < 2:
        raise ReplayError(
            f"expert_parallel_schedule: ranks must be >= 2, got {ranks}"
        )

    out: List[Step] = []

    def add(rank: int, op: str, **fields) -> None:
        out.append(Step(rank, op, len(out) + 2, fields))

    def all_to_all(step: int, phase: str, cls: str) -> None:
        for r in range(ranks):
            for peer in range(ranks):
                if peer != r:
                    add(r, "send", peer=peer, bytes=token_bytes,
                        tag=f"{phase}.s{step}.r{r}", **{"class": cls})
        for r in range(ranks):
            for peer in range(ranks):
                if peer != r:
                    add(r, "recv", peer=peer, tag=f"{phase}.s{step}.r{peer}")

    for step in range(steps):
        for r in range(ranks):
            add(r, "compute", us=router_us)
        all_to_all(step, "disp", "moe-dispatch")
        for r in range(ranks):
            add(r, "compute", us=expert_us)
        all_to_all(step, "comb", "moe-combine")

    label = name or f"moe-{ranks}r"
    sched = Schedule(ranks=ranks, steps=out, name=label, source=f"<{label}>")
    _validate(sched)
    return sched
