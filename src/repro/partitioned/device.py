"""Device bindings: MPIX_Pready / MPIX_Parrived callable from kernels.

Exact (per-block) forms for :class:`~repro.cuda.kernel.BlockKernel` bodies —
each returns a process event the body may ``yield`` (wait) or post::

    def body(blk):
        yield blk.compute(work)
        yield pready_block(blk, preq)

and the bulk form :func:`pready_wave` for
:class:`~repro.cuda.kernel.UniformKernel` wave hooks (O(1) events per wave
regardless of grid size).

Signal aggregation (paper Section IV-A4, Fig 3):

* ``pready_thread`` — every thread stores a flag into pinned host memory
  (the MPI-ACX-style baseline): ``block_threads`` serialized C2C writes;
* ``pready_warp`` — ``__shfl_sync`` within each warp, lane 0 writes:
  ``ceil(block_threads/32)`` writes;
* ``pready_block`` — ``__syncthreads()``, thread 0 writes once; with
  multi-block transport partitions, global-memory counters aggregate and
  only the threshold-crossing block writes to the host.

In Kernel-Copy mode the threshold-crossing block also performs the direct
NVLink store of the transport partition through the ``rkey_ptr``-mapped
remote buffer before signalling the host for the completion path.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Generator

from repro.cuda.devapi import BlockCtx, KernelCtx
from repro.cuda.kernel import Wave
from repro.mpi.errors import MpiStateError, MpiUsageError
from repro.partitioned.aggregation import SignalMode
from repro.partitioned.prequest import CopyMode, Prequest
from repro.san import record

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.partitioned.p2p import PrecvRequest


def _check_device_call(blk_device, preq: Prequest, actor=None) -> None:
    if preq.freed:
        msg = "device MPIX_Pready on a freed MPIX_Prequest"
        record.guard("pready-freed", actor, msg)
        raise MpiStateError(msg)
    if not preq.sreq.active:
        msg = "device MPIX_Pready outside an active epoch"
        record.guard("pready-inactive", actor, msg)
        raise MpiStateError(msg)
    if blk_device is not preq.device:
        msg = "MPIX_Prequest was created for a different device than the kernel runs on"
        record.guard("pready-wrong-device", actor, msg)
        raise MpiUsageError(msg)


# --------------------------------------------------------------------------
# exact per-block bindings (BlockKernel bodies)
# --------------------------------------------------------------------------

def _signal_then_maybe_copy(blk: BlockCtx, preq: Prequest, host_writes: int):
    """Shared tail: gmem aggregation, optional kernel copy, host signal."""
    tp = preq.agg.tp_of_block(blk.block_id)
    count = yield blk.atomic_add(preq.gmem_counters[tp])
    crossing = count == preq.agg.gmem_threshold()
    if preq.mode is CopyMode.KERNEL_COPY:
        if crossing:
            # The crossing block stores the whole transport partition over
            # NVLink.  Stores are *posted*: the block proceeds to raise
            # the host completion signal immediately, and the progression
            # engine gates the flag-only completion on the copy event.
            preq.kc_copy_events[tp] = blk.copy(preq.src_slice(tp), preq.mapped_slice(tp))
            yield blk.write_host_flag(preq.host_signals[tp])
    else:
        if preq.agg.signal_mode is SignalMode.BLOCK:
            if crossing:
                yield blk.write_host_flags(1, preq.host_signals[tp])
        else:
            # Thread/warp modes: every actor writes (no cross-block gating).
            yield blk.write_host_flags(host_writes, preq.host_signals[tp], amount=host_writes)


def _mark_block_pready(blk: BlockCtx, preq: Prequest) -> None:
    record.mark(
        "pready",
        actor=blk.actor,
        preq=record.ident(preq),
        epoch=preq.sreq.epoch,
        block=blk.block_id,
        tp=preq.agg.tp_of_block(blk.block_id),
        mode=preq.agg.signal_mode.value,
    )


def pready_thread(blk: BlockCtx, preq: Prequest):
    """MPIX_Pready_thread: each of the block's threads signals the host."""
    _check_device_call(blk.device, preq, actor=blk.actor)
    if preq.agg.signal_mode is not SignalMode.THREAD:
        raise MpiUsageError("prequest was not created with SignalMode.THREAD")
    _mark_block_pready(blk, preq)

    def proc() -> Generator:
        yield from _signal_then_maybe_copy(blk, preq, blk.block_threads)

    return blk.engine.process(proc(), name=f"pready_t.b{blk.block_id}")


def pready_warp(blk: BlockCtx, preq: Prequest):
    """MPIX_Pready_warp: warps __shfl_sync-reduce, lane 0 signals."""
    _check_device_call(blk.device, preq, actor=blk.actor)
    if preq.agg.signal_mode is not SignalMode.WARP:
        raise MpiUsageError("prequest was not created with SignalMode.WARP")
    _mark_block_pready(blk, preq)

    def proc() -> Generator:
        # Intra-warp shuffle reduction cost (cheap, on-SM).
        yield blk.engine.timeout(blk.device.cost.syncthreads_cost / 2)
        yield from _signal_then_maybe_copy(blk, preq, preq.agg.warps_per_block)

    return blk.engine.process(proc(), name=f"pready_w.b{blk.block_id}")


def pready_block(blk: BlockCtx, preq: Prequest):
    """MPIX_Pready_block: __syncthreads(), thread 0 signals once."""
    _check_device_call(blk.device, preq, actor=blk.actor)
    if preq.agg.signal_mode is not SignalMode.BLOCK:
        raise MpiUsageError("prequest was not created with SignalMode.BLOCK")
    _mark_block_pready(blk, preq)

    def proc() -> Generator:
        yield blk.syncthreads()
        yield from _signal_then_maybe_copy(blk, preq, 1)

    return blk.engine.process(proc(), name=f"pready_b.b{blk.block_id}")


def pready(blk: BlockCtx, preq: Prequest):
    """Generic device MPIX_Pready: dispatch on the prequest's signal mode."""
    mode = preq.agg.signal_mode
    if mode is SignalMode.THREAD:
        return pready_thread(blk, preq)
    if mode is SignalMode.WARP:
        return pready_warp(blk, preq)
    return pready_block(blk, preq)


def parrived_device(blk: BlockCtx, rreq: "PrecvRequest", partition: int):
    """Device MPIX_Parrived: spin on the device-visible mirror flag.

    The receive-side completion flags live in pinned host memory; the
    device polls a global-memory mirror that the host refreshes (paper:
    "we issue a memory copy to the device in MPI_Wait as partitions
    arrive").  We charge that H2D visibility latency on the wait.
    """
    flag = rreq.arrived_flags[partition]

    def proc() -> Generator:
        if not flag.is_set:
            yield flag.wait()
        yield blk.engine.timeout(blk.device.fabric.config.params.host_to_dev_flag)
        # Import the sender's published history, then record the read this
        # call licenses (the partition's bytes are now safe to consume).
        record.acquire(blk.actor, ("arr", rreq.key, partition))
        record.access(
            blk.actor,
            # Ordered by the is_set fast path above, which the CFG cannot see.
            rreq.buf.partition(partition, rreq.partitions),  # repro: ignore[hb-read-unordered]
            write=False,
            note="parrived",
        )
        return True

    return blk.engine.process(proc(), name=f"parrived.b{blk.block_id}")


# --------------------------------------------------------------------------
# bulk binding (UniformKernel wave hooks)
# --------------------------------------------------------------------------

def pready_wave(kctx: KernelCtx, preq: Prequest, wave: Wave) -> None:
    """Apply a whole wave's MPIX_Pready effects in O(transport partitions).

    Equivalent to every block in ``wave.blocks`` executing the exact
    binding matching ``preq.agg.signal_mode``: global counters advance by
    the per-partition block counts, crossings trigger the kernel copy
    and/or host signal, and thread/warp modes charge their full write
    storms (serialized on the C2C link).
    """
    _check_device_call(kctx.device, preq, actor=kctx.actor)
    agg = preq.agg
    # Group the wave's blocks by transport partition (contiguous ranges).
    first_tp = agg.tp_of_block(wave.blocks[0])
    last_tp = agg.tp_of_block(wave.blocks[-1])
    for tp in range(first_tp, last_tp + 1):
        lo = max(wave.blocks[0], tp * agg.blocks_per_partition)
        hi = min(wave.blocks[-1] + 1, (tp + 1) * agg.blocks_per_partition)
        n_blocks = hi - lo
        if n_blocks <= 0:
            continue
        record.mark(
            "pready",
            actor=kctx.actor,
            preq=record.ident(preq),
            epoch=preq.sreq.epoch,
            blocks=(lo, hi),
            tp=tp,
            mode=agg.signal_mode.value,
        )
        counter = preq.gmem_counters[tp]
        before = counter.value
        kctx.bulk_atomic_adds(counter, n_blocks)
        crossed = before < agg.gmem_threshold() <= before + n_blocks

        if preq.mode is CopyMode.KERNEL_COPY:
            if crossed:
                kctx.engine.process(
                    _kc_copy_then_signal(kctx, preq, tp), name=f"kc_tp{tp}"
                )
        elif agg.signal_mode is SignalMode.BLOCK:
            if crossed:
                kctx.bulk_host_flag_writes(1, preq.host_signals[tp])
        else:
            per_block = agg.host_writes_per_block()
            kctx.bulk_host_flag_writes(
                n_blocks * per_block, preq.host_signals[tp], amount=n_blocks * per_block
            )


def _kc_copy_then_signal(kctx: KernelCtx, preq: Prequest, tp: int) -> Generator:
    # Post the direct store; signal the host concurrently (the progression
    # engine gates the completion flag on the copy event).
    preq.kc_copy_events[tp] = kctx.copy(preq.src_slice(tp), preq.mapped_slice(tp))
    yield kctx.bulk_host_flag_writes(1, preq.host_signals[tp])


class PreadyWaveHook:
    """Reusable ``UniformKernel`` wave hook binding a kernel to MPIX_Pready.

    ``wave_hook=PreadyWaveHook(preq)`` behaves exactly like the bare
    ``lambda kc, wv: pready_wave(kc, preq, wv)`` — and additionally speaks
    the coalescing protocol of ``Device._exec_uniform`` (DESIGN.md §11):
    on an unobserved engine, runs of waves whose only effect is advancing
    a global-memory aggregation counter (which nothing waits on) collapse
    into one aggregate heap event per threshold crossing, carrying the
    whole partition range's block counts.  Heap traffic drops from
    O(waves x 4) to O(crossings) = O(transport partitions) while every
    externally observable action — counter state at any later read, host
    signal wire times, kernel-copy issue times — lands on bit-identical
    simulated timestamps.

    Only Kernel-Copy mode and BLOCK signal aggregation are coalescible;
    thread/warp signal storms write the C2C link on every wave, so
    :meth:`wave_batches` returns ``None`` and the executor falls back to
    the exact per-wave loop.
    """

    __slots__ = ("preq",)

    def __init__(self, preq: Prequest) -> None:
        self.preq = preq

    def __call__(self, kctx: KernelCtx, wave: Wave) -> None:
        pready_wave(kctx, self.preq, wave)

    def wave_batches(self, kctx: KernelCtx, plan):
        preq = self.preq
        if preq.mode is not CopyMode.KERNEL_COPY and preq.agg.signal_mode is not SignalMode.BLOCK:
            return None  # every wave signals the host: nothing to coalesce
        _check_device_call(kctx.device, preq, actor=kctx.actor)
        return self._batches(kctx, plan)

    def _batches(self, kctx: KernelCtx, plan):
        """Yield ``(n_waves, t_end, fire)`` batches for the executor.

        Crossing detection replicates the exact path bit-for-bit,
        including its deferred-visibility semantics: the exact hook reads
        ``counter.value`` at wave end, but each wave's aggregate atomic
        lands ``gmem_atomic`` later (and, on an exact time tie, *after*
        the next wave's hook), so ``before`` may lag the true count.  We
        model that with a visibility queue instead of reading live
        counters, and apply the real ``Counter.add`` in bulk at each
        fire point — legal because the aggregation counters are
        kernel-internal (no ``wait_for`` waiters, nothing samples them
        between waves).
        """
        preq = self.preq
        agg = preq.agg
        bpp = agg.blocks_per_partition
        threshold = agg.gmem_threshold()
        counters = preq.gmem_counters
        ga = kctx.device.fabric.config.params.gmem_atomic
        base: dict = {}       # tp -> counter value when first touched
        vis: dict = {}        # tp -> adds visible per exact-path semantics
        unapplied: dict = {}  # tp -> adds not yet pushed to the Counter
        pending = deque()     # (visible_time, wave_index, tp, n_blocks)
        t = kctx.now
        n_acc = 0
        for k, (blocks, dt) in enumerate(plan):
            t = t + dt
            n_acc += 1
            # Adds from wave j are visible to wave k's hook when their
            # landing time is strictly earlier, or equal with j <= k-2
            # (the tie-break: wave j's atomic timeout is enqueued after
            # wave j+1's wave timeout but before wave j+2's).
            while pending:
                vt, j, ptp, n = pending[0]
                if vt < t or (vt == t and j <= k - 2):
                    vis[ptp] = vis.get(ptp, 0) + n
                    pending.popleft()
                else:
                    break
            first_tp = blocks[0] // bpp
            last_tp = blocks[-1] // bpp
            crossed = []
            for tp in range(first_tp, last_tp + 1):
                lo = max(blocks[0], tp * bpp)
                hi = min(blocks[-1] + 1, (tp + 1) * bpp)
                n_blocks = hi - lo
                if n_blocks <= 0:
                    continue
                if tp not in base:
                    base[tp] = counters[tp].value
                before = base[tp] + vis.get(tp, 0)
                if before < threshold <= before + n_blocks:
                    crossed.append(tp)
                pending.append((t + ga, k, tp, n_blocks))
                unapplied[tp] = unapplied.get(tp, 0) + n_blocks
            if crossed:
                yield n_acc, t, self._make_fire(dict(unapplied), crossed)
                unapplied.clear()
                n_acc = 0
        if n_acc:
            fire = self._make_fire(dict(unapplied), []) if unapplied else None
            unapplied.clear()
            yield n_acc, t, fire

    def _make_fire(self, adds: dict, crossed: list):
        preq = self.preq

        def fire(kctx: KernelCtx) -> None:
            counters = preq.gmem_counters
            for tp, n in adds.items():
                counters[tp].add(n)
            if preq.mode is CopyMode.KERNEL_COPY:
                for tp in crossed:
                    kctx.engine.process(
                        _kc_copy_then_signal(kctx, preq, tp), name=f"kc_tp{tp}"
                    )
            elif len(crossed) == 1:
                kctx.bulk_host_flag_writes(1, preq.host_signals[crossed[0]])
            elif crossed:
                # One aggregate process replays the whole range's FIFO-
                # serialized crossing signals (one C2C store each).
                kctx.bulk_crossing_signals([preq.host_signals[tp] for tp in crossed])

        return fire
