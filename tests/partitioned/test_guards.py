"""Negative paths for the device-binding guards: the runtime raises AND the
sanitizer preserves each trip as a finding with actor/time provenance."""

import pytest

from repro.cuda.device import Device
from repro.cuda.kernel import BlockKernel
from repro.cuda.timing import WorkSpec
from repro.hw.params import ONE_NODE
from repro.mpi.errors import MpiStateError, MpiUsageError
from repro.mpi.world import World
from repro.partitioned import device as pdev
from repro.san import Sanitizer

WORK = WorkSpec.vector_add()


def _recv(ctx, epochs=1):
    rbuf = ctx.gpu.alloc(64)
    rreq = yield from ctx.comm.precv_init(rbuf, 1, source=0, tag=0)
    for _ in range(epochs):
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()


def test_pready_on_freed_prequest():
    errors = []

    def main(ctx):
        if ctx.rank != 0:
            yield from _recv(ctx, epochs=2)
            return
        sbuf = ctx.gpu.alloc(64)
        sreq = yield from ctx.comm.psend_init(sbuf, 1, dest=1, tag=0)
        yield from sreq.start()
        yield from sreq.pbuf_prepare()
        preq = yield from sreq.prequest_create(ctx.gpu, grid=1, block=64)

        def good(blk):
            yield pdev.pready_block(blk, preq)

        yield from ctx.gpu.launch_h(BlockKernel(1, 64, good))
        yield from sreq.wait()
        yield from preq.free()

        # Second epoch: the kernel still holds the freed device request.
        yield from sreq.start()
        yield from sreq.pbuf_prepare()

        def stale(blk):
            try:
                pdev.pready_block(blk, preq)
            except MpiStateError as exc:
                errors.append(exc)
            yield blk.compute(WORK)

        yield from ctx.gpu.launch_h(BlockKernel(1, 64, stale))
        yield from ctx.gpu.sync_h()
        yield from sreq.pready(0)  # finish the epoch host-side
        yield from sreq.wait()

    with Sanitizer(checks=["pready-freed"]) as san:
        World(ONE_NODE).run(main, nprocs=2)

    assert len(errors) == 1 and "freed" in str(errors[0])
    assert [f.check for f in san.findings] == ["pready-freed"]
    assert san.findings[0].actor[0] == "block"
    assert san.findings[0].time > 0.0


def test_pready_outside_active_epoch():
    errors = []

    def main(ctx):
        if ctx.rank != 0:
            yield from _recv(ctx)
            return
        sbuf = ctx.gpu.alloc(64)
        sreq = yield from ctx.comm.psend_init(sbuf, 1, dest=1, tag=0)
        yield from sreq.start()
        yield from sreq.pbuf_prepare()
        preq = yield from sreq.prequest_create(ctx.gpu, grid=1, block=64)

        def good(blk):
            yield pdev.pready_block(blk, preq)

        yield from ctx.gpu.launch_h(BlockKernel(1, 64, good))
        yield from sreq.wait()

        # The epoch completed: a straggler kernel calls pready anyway.
        def late(blk):
            try:
                pdev.pready_block(blk, preq)
            except MpiStateError as exc:
                errors.append(exc)
            yield blk.compute(WORK)

        yield from ctx.gpu.launch_h(BlockKernel(1, 64, late))
        yield from ctx.gpu.sync_h()

    with Sanitizer(checks=["pready-inactive"]) as san:
        World(ONE_NODE).run(main, nprocs=2)

    assert len(errors) == 1 and "active epoch" in str(errors[0])
    assert [f.check for f in san.findings] == ["pready-inactive"]
    assert san.findings[0].actor[0] == "block"


def test_pready_from_wrong_device():
    errors = []

    def main(ctx):
        if ctx.rank != 0:
            yield from _recv(ctx)
            return
        sbuf = ctx.gpu.alloc(64)
        sreq = yield from ctx.comm.psend_init(sbuf, 1, dest=1, tag=0)
        yield from sreq.start()
        yield from sreq.pbuf_prepare()
        preq = yield from sreq.prequest_create(ctx.gpu, grid=1, block=64)
        other = Device(ctx.gpu.fabric, ctx.gpu.gpu_id)

        def misplaced(blk):
            try:
                pdev.pready_block(blk, preq)
            except MpiUsageError as exc:
                errors.append(exc)
            yield blk.compute(WORK)

        yield from other.launch_h(BlockKernel(1, 64, misplaced))
        yield from other.sync_h()

        def good(blk):
            yield pdev.pready_block(blk, preq)

        yield from ctx.gpu.launch_h(BlockKernel(1, 64, good))
        yield from sreq.wait()

    with Sanitizer(checks=["pready-wrong-device"]) as san:
        World(ONE_NODE).run(main, nprocs=2)

    assert len(errors) == 1 and "different device" in str(errors[0])
    assert [f.check for f in san.findings] == ["pready-wrong-device"]
    assert san.findings[0].actor[0] == "block"


def test_host_pready_before_start_guarded():
    def main(ctx):
        if ctx.rank != 0:
            yield from _recv(ctx)
            return
        sbuf = ctx.gpu.alloc(64)
        sreq = yield from ctx.comm.psend_init(sbuf, 1, dest=1, tag=0)
        with pytest.raises(MpiStateError, match="active epoch"):
            yield from sreq.pready(0)
        yield from sreq.start()
        yield from sreq.pbuf_prepare()
        yield from sreq.pready(0)
        yield from sreq.wait()

    with Sanitizer(checks=["pready-inactive"]) as san:
        World(ONE_NODE).run(main, nprocs=2)

    assert [f.check for f in san.findings] == ["pready-inactive"]
    assert san.findings[0].actor == ("host", 0)
