"""GPU-initiated MPIX_Pready: thread/warp/block bindings, both copy modes,
bulk wave path, MPIX_Prequest lifecycle."""

import numpy as np
import pytest

from repro.cuda.kernel import BlockKernel, UniformKernel
from repro.cuda.timing import WorkSpec
from repro.hw.params import ONE_NODE, TestbedConfig
from repro.mpi.errors import MpiStateError, MpiUsageError
from repro.mpi.world import World
from repro.partitioned import device as pdev
from repro.partitioned.aggregation import AggregationSpec, SignalMode
from repro.partitioned.prequest import CopyMode
from repro.units import us

INTER = TestbedConfig(n_nodes=2, gpus_per_node=1)
WORK = WorkSpec.vector_add()


def _device_pair(mode, signal_mode=SignalMode.BLOCK, grid=4, block=256, tps=None,
                 config=ONE_NODE, epochs=1, uniform=False):
    """Standard device-initiated send test: returns receiver's final data."""
    tps = tps or grid
    n = grid * block
    snaps = []

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(n)
            sreq = yield from comm.psend_init(sbuf, tps, dest=1, tag=0)
            preq = None
            for epoch in range(epochs):
                sbuf.data[:] = float(epoch + 1)
                yield from sreq.start()
                yield from sreq.pbuf_prepare()
                if preq is None:
                    agg = AggregationSpec(grid, block, grid // tps, signal_mode)
                    preq = yield from sreq.prequest_create(ctx.gpu, agg=agg, mode=mode)
                if uniform:
                    k = UniformKernel(
                        grid, block, WORK,
                        wave_hook=lambda kc, wv: pdev.pready_wave(kc, preq, wv),
                    )
                else:
                    def body(blk):
                        yield blk.compute(WORK)
                        yield pdev.pready(blk, preq)

                    k = BlockKernel(grid, block, body)
                yield from ctx.gpu.launch_h(k)
                yield from sreq.wait()
            return preq
        else:
            rbuf = ctx.gpu.alloc(n)
            rreq = yield from comm.precv_init(rbuf, tps, source=0, tag=0)
            for epoch in range(epochs):
                yield from rreq.start()
                yield from rreq.pbuf_prepare()
                yield from rreq.wait()
                snaps.append(rbuf.data.copy())
            return None

    World(config).run(main, nprocs=2)
    return snaps


@pytest.mark.parametrize("signal_mode", [SignalMode.THREAD, SignalMode.WARP, SignalMode.BLOCK])
def test_pe_mode_all_signal_modes(signal_mode):
    snaps = _device_pair(CopyMode.PROGRESSION_ENGINE, signal_mode)
    assert np.all(snaps[0] == 1.0)


def test_kernel_copy_mode():
    snaps = _device_pair(CopyMode.KERNEL_COPY)
    assert np.all(snaps[0] == 1.0)


def test_multi_block_aggregation_two_tps():
    snaps = _device_pair(CopyMode.PROGRESSION_ENGINE, grid=8, tps=2)
    assert np.all(snaps[0] == 1.0)


def test_single_transport_partition():
    snaps = _device_pair(CopyMode.KERNEL_COPY, grid=8, tps=1)
    assert np.all(snaps[0] == 1.0)


def test_uniform_kernel_bulk_path():
    snaps = _device_pair(CopyMode.PROGRESSION_ENGINE, grid=600, block=1024, tps=2,
                         uniform=True)
    assert np.all(snaps[0] == 1.0)


def test_uniform_kernel_bulk_kernel_copy():
    snaps = _device_pair(CopyMode.KERNEL_COPY, grid=600, block=1024, tps=2, uniform=True)
    assert np.all(snaps[0] == 1.0)


def test_multi_epoch_device_initiated():
    snaps = _device_pair(CopyMode.KERNEL_COPY, epochs=3)
    assert [s[0] for s in snaps] == [1.0, 2.0, 3.0]


def test_kernel_copy_rejected_inter_node():
    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(64)
            sreq = yield from comm.psend_init(sbuf, 1, dest=1, tag=0)
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            with pytest.raises(MpiUsageError, match="Kernel-Copy"):
                yield from sreq.prequest_create(
                    ctx.gpu, grid=1, block=64, mode=CopyMode.KERNEL_COPY
                )
            # finish the epoch via host pready
            yield from sreq.pready(0)
            yield from sreq.wait()
            return True
        rbuf = ctx.gpu.alloc(64)
        rreq = yield from comm.precv_init(rbuf, 1, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        return True

    assert all(World(INTER).run(main, nprocs=2))


def test_prequest_create_before_prepare_rejected():
    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(64)
            sreq = yield from comm.psend_init(sbuf, 1, dest=1, tag=0)
            yield from sreq.start()
            with pytest.raises(MpiStateError, match="Pbuf_prepare"):
                yield from sreq.prequest_create(ctx.gpu, grid=1, block=64)
            yield from sreq.pbuf_prepare()
            yield from sreq.pready(0)
            yield from sreq.wait()
            return True
        rbuf = ctx.gpu.alloc(64)
        rreq = yield from comm.precv_init(rbuf, 1, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_prequest_geometry_must_match_channel():
    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(64)
            sreq = yield from comm.psend_init(sbuf, 4, dest=1, tag=0)
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            with pytest.raises(MpiUsageError, match="transport partitions"):
                agg = AggregationSpec(4, 16, 2)  # n_transport=2 != 4
                yield from sreq.prequest_create(ctx.gpu, agg=agg)
            for i in range(4):
                yield from sreq.pready(i)
            yield from sreq.wait()
            return True
        rbuf = ctx.gpu.alloc(64)
        rreq = yield from comm.precv_init(rbuf, 4, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_signal_mode_mismatch_rejected(engine, gpu):
    """Calling pready_thread on a BLOCK-mode prequest raises."""

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(64)
            sreq = yield from comm.psend_init(sbuf, 1, dest=1, tag=0)
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            preq = yield from sreq.prequest_create(
                ctx.gpu, grid=1, block=64, signal_mode=SignalMode.BLOCK
            )
            errors = []

            def body(blk):
                try:
                    pdev.pready_thread(blk, preq)
                except MpiUsageError as exc:
                    errors.append(exc)
                yield pdev.pready_block(blk, preq)

            yield from ctx.gpu.launch_h(BlockKernel(1, 64, body))
            yield from sreq.wait()
            return len(errors)
        rbuf = ctx.gpu.alloc(64)
        rreq = yield from comm.precv_init(rbuf, 1, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        return 0

    res = World(ONE_NODE).run(main, nprocs=2)
    assert res[0] == 1


def test_prequest_free():
    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(64)
            sreq = yield from comm.psend_init(sbuf, 1, dest=1, tag=0)
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            preq = yield from sreq.prequest_create(ctx.gpu, grid=1, block=64)

            def body(blk):
                yield pdev.pready(blk, preq)

            yield from ctx.gpu.launch_h(BlockKernel(1, 64, body))
            yield from sreq.wait()
            yield from preq.free()
            assert preq.freed
            assert sreq.preq is None
            with pytest.raises(MpiStateError):
                preq.arm_epoch()
            return True
        rbuf = ctx.gpu.alloc(64)
        rreq = yield from comm.precv_init(rbuf, 1, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_parrived_device_binding():
    observed = {}

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(64, fill=1.0)
            sreq = yield from comm.psend_init(sbuf, 1, dest=1, tag=0)
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            yield from sreq.pready(0)
            yield from sreq.wait()
        else:
            rbuf = ctx.gpu.alloc(64)
            rreq = yield from comm.precv_init(rbuf, 1, source=0, tag=0)
            yield from rreq.start()
            yield from rreq.pbuf_prepare()

            def body(blk):
                arrived = yield pdev.parrived_device(blk, rreq, 0)
                observed["arrived"] = arrived
                observed["t"] = blk.now

            yield from ctx.gpu.launch_h(BlockKernel(1, 64, body))
            yield from rreq.wait()

    World(ONE_NODE).run(main, nprocs=2)
    assert observed["arrived"] is True


def test_fig3_cost_ordering_device_side():
    """Thread-level signalling must cost far more than block-level."""
    from repro.bench.p2p import measure_pready_cost

    t = measure_pready_cost(1024, SignalMode.THREAD)
    w = measure_pready_cost(1024, SignalMode.WARP)
    b = measure_pready_cost(1024, SignalMode.BLOCK)
    assert t > w > b
    assert 240 < t / b < 300
    assert 8 < w / b < 11
