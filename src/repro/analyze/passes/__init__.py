"""The analyzer's pass families (see repro.analyze.registry)."""
