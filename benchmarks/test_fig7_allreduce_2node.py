"""Fig 7: allreduce on eight GH200 (two nodes, ranks 0-3 / 4-7 per node).

Same claims as Fig 6 at twice the scale, plus: multi-node times exceed
the corresponding single-node times (the ring crosses the IB fabric).
"""

from conftest import run_exhibit, within

from repro.bench import figures

GRIDS = (1024, 4096, 16384)


def test_fig7_allreduce_2node(benchmark):
    series = run_exhibit(benchmark, figures.fig7, grids=GRIDS)

    for row in series.rows:
        assert row["traditional_us"] > row["partitioned_us"], (
            f"partitioned must beat MPI_Allreduce at grid {row['grid']}"
        )
        # NCCL wins or ties; at the largest two-node grids the partitioned
        # ring's kernel overlap makes it a statistical tie (within 5%).
        assert row["nccl_us"] <= row["partitioned_us"] * 1.05, (
            f"NCCL must win or tie at grid {row['grid']}"
        )
        assert row["trad_over_part"] > 3.0

    # Cross-check against Fig 6: two-node rings are slower than one-node.
    one_node = figures.fig6(grids=(GRIDS[0],))
    assert series.rows[0]["nccl_us"] > one_node.rows[0]["nccl_us"]
    assert series.rows[0]["partitioned_us"] > one_node.rows[0]["partitioned_us"]
