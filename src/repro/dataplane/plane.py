"""The Dataplane: every simulated byte's single submission point.

Producers hand a validated :class:`TransferDescriptor` to :meth:`submit`
(or the :meth:`put` / :meth:`rma_put` / :meth:`control` conveniences).
The dataplane resolves the primary route through the owning
:class:`~repro.hw.topology.Fabric`'s memoized route cache, asks the
active :class:`~repro.dataplane.policy.PathPolicy` for a stripe plan,
accounts the submission in the per-class ledger, and spawns one
cut-through transfer process per stripe.  A one-stripe plan executes
exactly like the pre-dataplane ``start_transfer`` call; a multi-stripe
plan completes at the max of the stripe arrivals (an ``AllOf``).

Host-mediated RMA descriptors (``rma_put``) between IPC-mappable device
peers stage through the source GPU's copy engine with the cuda_ipc
per-op setup cost — the mechanism the paper's Kernel-Copy design
bypasses (Section IV-A4) — before their wire stripes are planned.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.dataplane.descriptor import TransferDescriptor
from repro.dataplane.ledger import Ledger
from repro.dataplane.policy import PathPolicy, policy_from_env
from repro.hw.links import LinkDownError, start_transfer
from repro.hw.memory import Buffer, MemSpace
from repro.hw.spec.graph import Port, RouteSearchError
from repro.sim.events import AllOf, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.topology import Fabric


class FabricFault:
    """Typed completion value of a transfer that lost every route.

    The guarded executor never *fails* the submission event (a failure
    would tear down every waiter of an ``AllOf``); instead the event
    succeeds with a FabricFault so callers can inspect what died.  It is
    falsy, so ``if not result`` reads naturally at wait sites.
    """

    __slots__ = ("name", "link", "t", "reason")

    def __init__(self, name: str, link: str, t: float, reason: str) -> None:
        self.name = name      # descriptor / stripe name
        self.link = link      # the downed link that severed the last route
        self.t = t            # simulated time the fault was declared
        self.reason = reason

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"<FabricFault {self.name} @{self.t:.6g}s: {self.reason}>"


class Dataplane:
    """Route resolution + policy execution + accounting for one machine."""

    def __init__(self, fabric: "Fabric", policy: Optional[PathPolicy] = None) -> None:
        self.fabric = fabric
        self.engine = fabric.engine
        self.ledger = Ledger()
        self.policy: PathPolicy = (
            policy if policy is not None
            else policy_from_env(os.environ.get("REPRO_PATH_POLICY"))
        )
        #: (src-port, dst-port, max_paths) -> link-disjoint route tuple.
        self._multi_route_cache: Dict[Tuple[Port, Port, int], Tuple] = {}
        #: Fabric epoch the multi-route cache was filled under.
        self._multi_route_epoch = 0
        #: Descriptors submitted (asserted by tests; stripes live in the ledger).
        self.submissions = 0
        #: Stripes re-routed around a downed link by the guarded executor.
        self.reroutes = 0
        #: Stripes that lost every route (completed as FabricFault).
        self.faults = 0
        #: Optional :class:`repro.dataplane.graph.PlanCache`: when set,
        #: repeated submissions of an identical descriptor shape replay a
        #: pre-priced stripe plan instead of re-validating, re-routing,
        #: and re-planning.  Ledger accounting stays per-submission, so
        #: byte totals and simulated times are unchanged (DESIGN.md §16).
        self.plan_cache = None
        #: Cross-shard egress hook (see :mod:`repro.shard`): when set, a
        #: descriptor the bridge claims (its destination lives on another
        #: engine shard) is priced and mailed instead of routed locally —
        #: the *only* way bytes leave a shard.  None = unsharded fabric.
        self.bridge = None

    # -- producer surface --------------------------------------------------------
    def put(
        self,
        src: Buffer,
        dst: Buffer,
        traffic_class: str = "payload",
        name: str = "xfer",
        initiator: str = "host",
    ) -> Event:
        """Move ``src``'s payload into ``dst``; event fires when data landed."""
        return self.submit(TransferDescriptor(
            src, dst, traffic_class=traffic_class, name=name, initiator=initiator,
        ))

    def rma_put(
        self,
        src: Buffer,
        dst: Buffer,
        traffic_class: str = "rma",
        name: str = "put",
    ) -> Event:
        """A put issued by *host* software (UCX put_nbx, MPI rendezvous).

        Device-to-device payloads between peers that can IPC-map each
        other ride the cuda_ipc path: a host-mediated async copy through
        the source GPU's copy engine, paying the per-op setup cost.
        Everything else (host buffers, same-GPU, inter-node GPUDirect,
        no-P2P staging) is a plain transfer.
        """
        desc = TransferDescriptor(
            src, dst, traffic_class=traffic_class, name=name, initiator="host",
        )
        bridge = self.bridge
        if bridge is not None and bridge.claims(desc):
            self.submissions += 1
            return bridge.submit(desc)
        desc.validate()
        self.submissions += 1
        if self._rides_copy_engine(desc):
            return self._staged_execute(desc)
        return self._execute(desc)

    def enable_plan_cache(self) -> "Dataplane":
        """Attach a fresh capture plan cache; idempotent, returns self."""
        if self.plan_cache is None:
            from repro.dataplane.graph import PlanCache

            self.plan_cache = PlanCache()
        return self

    def control(
        self,
        src: Buffer,
        dst: Buffer,
        nbytes: int,
        traffic_class: str = "control",
        name: str = "ctrl",
        initiator: str = "host",
    ) -> Event:
        """Timed transfer of ``nbytes`` along the src->dst route, no payload.

        Used for control messages (flags, setup packets) whose logical
        content is applied by the caller on completion.
        """
        return self.submit(TransferDescriptor(
            src, dst, nbytes=nbytes, payload=False,
            traffic_class=traffic_class, name=name, initiator=initiator,
        ))

    def submit(self, desc: TransferDescriptor) -> Event:
        """Validate, plan, account, and launch one descriptor.

        When a cross-shard bridge is attached and claims the descriptor,
        it is handed off whole: the bridge prices the wire segment
        analytically and schedules delivery on the destination shard via
        the mailbox, returning the local completion event.
        """
        bridge = self.bridge
        if bridge is not None and bridge.claims(desc):
            self.submissions += 1
            return bridge.submit(desc)
        cache = self.plan_cache
        stripes = cache.lookup(desc, self.fabric) if cache is not None else None
        if stripes is None:
            desc.validate()
        self.submissions += 1
        return self._execute(desc, stripes)

    # -- execution ---------------------------------------------------------------
    def _execute(self, desc: TransferDescriptor, stripes: Optional[tuple] = None) -> Event:
        if stripes is None:
            cache = self.plan_cache
            stripes = cache.lookup(desc, self.fabric) if cache is not None else None
        if stripes is None:
            from repro.hw.topology import RouteError

            try:
                primary = self.fabric.route(desc.src, desc.dst)
            except RouteError:
                if not self.fabric.link_state.armed:
                    raise
                # Faults severed every path before this submit: declare
                # the same typed completion the guarded executor uses.
                # With one fault injected the scan names the culprit; with
                # several it names the first in deterministic link order.
                state = self.fabric.link_state
                downed = next(
                    (l.name for l in state._by_name.values() if not l.up), "",
                )
                self.faults += 1
                obs = self.engine.obs
                if obs is not None:
                    obs.instant(
                        "fabric", "fault", t=self.engine.now,
                        xfer=desc.name, link=downed, nbytes=desc.wire_bytes,
                    )
                fault = FabricFault(desc.name, downed, self.engine.now,
                                    "no route at submit")
                return Event(self.engine).succeed(fault)
            stripes = self.policy.plan(self, desc, primary)
            if self.plan_cache is not None:
                self.plan_cache.store(desc, stripes, self.fabric)
        self.ledger.account(desc, stripes)
        obs = self.engine.obs
        if obs is not None:
            # One instant per accounted descriptor: the trace-replay
            # ingester (repro.workload.replay.from_chrome) rebuilds a
            # byte-exact schedule from exactly these events.
            obs.instant(
                "dataplane", desc.name,
                cls=desc.traffic_class, nbytes=desc.wire_bytes,
                src_gpu=desc.src.gpu, src_node=desc.src.node,
                dst_gpu=desc.dst.gpu, dst_node=desc.dst.node,
            )
        if self.fabric.link_state.armed:
            # A mutable-fabric run: every stripe gets the guarded,
            # re-route-capable executor.  Armed only by a fault schedule
            # or an explicit LinkState mutation, so the default path
            # below stays byte-identical to the pre-LinkState dataplane.
            if len(stripes) == 1:
                return self._guarded(desc, stripes[0], desc.name)
            parts = [
                self._guarded(desc, stripe, f"{desc.name}.s{i}")
                for i, stripe in enumerate(stripes)
            ]
            return AllOf(self.engine, parts)
        # Congestion signal: charge synchronously at submit — so every
        # submission planned later in the same event cascade sees this
        # load — and let the transfer process discharge in its finally
        # (completion, abort, and kill all balance the counter).
        ledger = self.ledger
        if len(stripes) == 1:
            stripe = stripes[0]
            ledger.charge_links(stripe.route, stripe.nbytes)
            return start_transfer(
                self.engine, stripe.route, stripe.nbytes,
                on_wire_done=stripe.on_wire_done, name=desc.name,
                ledger=ledger,
            )
        parts = []
        for i, stripe in enumerate(stripes):
            ledger.charge_links(stripe.route, stripe.nbytes)
            parts.append(start_transfer(
                self.engine, stripe.route, stripe.nbytes,
                on_wire_done=stripe.on_wire_done, name=f"{desc.name}.s{i}",
                ledger=ledger,
            ))
        return AllOf(self.engine, parts)

    def _guarded(self, desc: TransferDescriptor, stripe, name: str) -> Event:
        """Spawn one stripe with down-link retry (armed fabrics only).

        The wrapper catches :class:`LinkDownError` from the transfer
        process (a fault landed before the stripe fully acquired its
        route), resolves a surviving route through the epoch-fresh route
        cache, and retries.  When no route survives, the wrapper
        *succeeds* with a :class:`FabricFault` — a typed completion the
        caller can test — so sibling stripes and ``AllOf`` waiters are
        not torn down.
        """
        from repro.hw.topology import RouteError

        engine = self.engine
        ledger = self.ledger

        def run():
            route, nbytes, cb = stripe.route, stripe.nbytes, stripe.on_wire_done
            while True:
                blocked = next((ln for ln in route if not ln.up), None)
                if blocked is None:
                    # Charged per attempt; the transfer process discharges
                    # on completion *and* on a LinkDownError abort.
                    ledger.charge_links(route, nbytes)
                    try:
                        return (yield start_transfer(
                            engine, route, nbytes, cb, name=name,
                            ledger=ledger,
                        ))
                    except LinkDownError as exc:
                        blocked = exc.link
                try:
                    route = self.fabric.route(desc.src, desc.dst)
                except RouteError:
                    self.faults += 1
                    obs = engine.obs
                    if obs is not None:
                        obs.instant(
                            "fabric", "fault", t=engine.now, xfer=name,
                            link=blocked.name, nbytes=nbytes,
                        )
                    return FabricFault(
                        name, blocked.name, engine.now,
                        f"no surviving route after {blocked.name} went down",
                    )
                self.reroutes += 1

        return engine.process(run(), name=f"{name}.guard")

    def _rides_copy_engine(self, desc: TransferDescriptor) -> bool:
        src, dst = desc.src, desc.dst
        return (
            src.space is MemSpace.DEVICE
            and dst.space is MemSpace.DEVICE
            and src.gpu != dst.gpu
            and src.gpu is not None
            and dst.gpu is not None
            and self.fabric.topo.can_peer_map(src.gpu, dst.gpu)
        )

    def _staged_execute(self, desc: TransferDescriptor) -> Event:
        overhead = self.fabric.config.params.cuda_ipc_put_overhead
        engine_res = self.fabric.copy_engine[desc.src.gpu]
        engine = self.engine

        def staged():
            yield engine_res.acquire()
            obs = engine.obs
            t0 = engine.now
            try:
                yield engine.timeout(overhead)
                yield self._execute(desc)
            finally:
                if obs is not None:
                    obs.span(
                        "copy_engine", engine_res.name, None,
                        t0, engine.now, nbytes=desc.wire_bytes,
                    )
                engine_res.release()

        return engine.process(staged(), name=desc.name)

    # -- multi-route discovery ----------------------------------------------------
    def disjoint_routes(self, src: Buffer, dst: Buffer, max_paths: int) -> Tuple:
        """Up to ``max_paths`` pairwise link-disjoint routes, primary first.

        Greedy peeling over the link graph: resolve the fewest-links
        route, exclude every link it claims, search again — until the
        graph runs out of paths or ``max_paths`` is reached.  Memoized
        per (src-port, dst-port, max_paths); fully deterministic (the
        underlying search breaks ties by adjacency insertion order).
        """
        epoch = self.fabric.link_state.epoch
        if epoch != self._multi_route_epoch:
            self._multi_route_cache.clear()
            self._multi_route_epoch = epoch
        sport = self.fabric._endpoint(src)
        dport = self.fabric._endpoint(dst)
        cache_key = (sport, dport, max_paths)
        cached = self._multi_route_cache.get(cache_key)
        if cached is not None:
            return cached
        routes = [self.fabric.route(src, dst)]
        if sport != dport:
            used = set(routes[0])
            while len(routes) < max_paths:
                try:
                    alt = self.fabric.graph.search(sport, dport, exclude=used)
                except RouteSearchError:
                    break
                routes.append(alt)
                used.update(alt)
        result = tuple(routes)
        self._multi_route_cache[cache_key] = result
        return result
