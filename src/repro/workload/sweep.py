"""(workload × machine × policy) sweep grid with a content-addressed cache.

:func:`run_sweep` crosses workload specs (registry names or
``replay:<file>`` schedules), machine names, and path policies, running
every cell through the one :class:`~repro.workload.base.Workload`
contract.  Each cell's result is cached under a content-addressed key::

    sha256(canonical_json({
        "spec":     sha256(canonical_json(asdict(machine_spec))),
        "workload": sha256(canonical_json(workload.fingerprint(**params))),
        "policy":   policy or "default",
    }))

so a cache hit means *this exact machine shape, workload content, and
policy* already ran — renaming a spec file or tweaking a parameter
misses, editing whitespace in a schedule's JSONL does not (the replay
fingerprint hashes the parsed schedule, not the file).  ``shards`` is
deliberately absent from the key: sharded execution is pinned
bit-identical to sequential (DESIGN.md §14), so both executors share
cache entries.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.hw.spec.catalog import as_spec
from repro.workload.base import (
    Workload,
    WorkloadError,
    WorkloadResult,
    canonical_json,
    resolve_machine_arg,
    sha256_hex,
)
from repro.workload.registry import resolve_spec


def spec_hash(machine: Union[str, Any]) -> str:
    """SHA-256 of the resolved machine spec's canonical content."""
    spec = as_spec(resolve_machine_arg(machine))
    return sha256_hex(canonical_json(dataclasses.asdict(spec)))


def workload_hash(workload: Workload, params: Optional[dict] = None) -> str:
    return sha256_hex(canonical_json(workload.fingerprint(**(params or {}))))


def cell_key(
    machine: Union[str, Any],
    workload: Workload,
    policy: Optional[str],
    params: Optional[dict] = None,
) -> str:
    """The content-addressed cache key for one sweep cell."""
    return sha256_hex(canonical_json({
        "spec": spec_hash(machine),
        "workload": workload_hash(workload, params),
        "policy": policy if policy is not None else "default",
    }))


class SweepCache:
    """One JSON file per cell, named by its content-addressed key.

    ``max_bytes`` caps the total size of cached cells with LRU
    eviction: every cache hit touches its file's mtime, and a store
    that pushes the cache past the cap deletes least-recently-used
    cells until it fits again (the entry just written is exempt, so a
    single oversized cell still caches).
    """

    def __init__(self, root: str, max_bytes: Optional[int] = None) -> None:
        self.root = root
        self.max_bytes = max_bytes
        self.evicted = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str) -> Optional[WorkloadResult]:
        path = self._path(key)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError) as exc:
            raise WorkloadError(f"corrupt sweep cache entry {path}: {exc}") from exc
        try:
            os.utime(path)  # mark recently used for LRU eviction
        except OSError:  # pragma: no cover - raced with eviction
            pass
        return WorkloadResult.from_dict(doc)

    def store(self, key: str, result: WorkloadResult) -> None:
        os.makedirs(self.root, exist_ok=True)
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(result.as_dict(), fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        self._evict(keep=path)

    def _evict(self, keep: str) -> None:
        if not self.max_bytes:
            return
        entries = []  # (mtime, size, path) for every cached cell
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:  # pragma: no cover - raced with cleanup
            return
        for fname in names:
            if not fname.endswith(".json"):
                continue
            path = os.path.join(self.root, fname)
            try:
                st = os.stat(path)
            except OSError:  # pragma: no cover - raced with eviction
                continue
            entries.append((st.st_mtime, st.st_size, path))
        total = sum(size for _mt, size, _p in entries)
        for _mtime, size, path in sorted(entries):
            if total <= self.max_bytes:
                break
            if path == keep:
                continue
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - raced with eviction
                continue
            total -= size
            self.evicted += 1


class RouteCacheStore:
    """Cross-run route-cache persistence, keyed by machine-spec hash.

    Installed as :attr:`repro.hw.topology.Fabric.route_store` for the
    duration of a sweep: every fabric the sweep's workloads build —
    including each shard's node-local fabric — preloads the routes a
    previous run resolved for the *same spec content* and records any
    new resolutions.  :meth:`flush` writes one
    ``routes/<spec-hash>.json`` per touched spec (atomic replace), so
    ``Fabric.route_computations`` drops to zero for warm pairs on the
    next run.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self._mem: Dict[str, Dict[str, list]] = {}   # spec hash -> snapshot
        self._dirty: set = set()
        self.preloaded = 0

    def _path(self, shash: str) -> str:
        return os.path.join(self.root, f"{shash}.json")

    def _spec_hash(self, fabric) -> str:
        return sha256_hex(canonical_json(dataclasses.asdict(fabric.spec)))

    def _snapshot(self, shash: str) -> Dict[str, list]:
        snap = self._mem.get(shash)
        if snap is None:
            try:
                with open(self._path(shash)) as fh:
                    snap = json.load(fh)
            except (FileNotFoundError, json.JSONDecodeError):
                snap = {}
            if not isinstance(snap, dict):  # corrupt: start over
                snap = {}
            self._mem[shash] = snap
        return snap

    # -- Fabric hooks --------------------------------------------------------
    def preload(self, fabric) -> None:
        snap = self._snapshot(self._spec_hash(fabric))
        if snap:
            self.preloaded += fabric.preload_routes(snap)

    def record(self, fabric, key, links) -> None:
        shash = self._spec_hash(fabric)
        snap = self._snapshot(shash)
        snap[fabric.route_key_str(key)] = [link.name for link in links]
        self._dirty.add(shash)

    # -- persistence ---------------------------------------------------------
    def flush(self) -> None:
        if not self._dirty:
            return
        os.makedirs(self.root, exist_ok=True)
        for shash in sorted(self._dirty):
            path = self._path(shash)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w") as fh:
                json.dump(self._mem[shash], fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        self._dirty.clear()


DEFAULT_CACHE_DIR = ".sweep-cache"
#: Route snapshots live beside the cell files, outside LRU accounting.
ROUTES_SUBDIR = "routes"


def run_sweep(
    workloads: Sequence[Union[str, Workload]],
    machines: Sequence[str],
    policies: Sequence[Optional[str]] = (None,),
    shards: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    cache_max_bytes: Optional[int] = None,
    printer: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the full (workload × machine × policy) grid.

    Returns ``{"cells": [...], "hits": n, "misses": n}`` where each cell
    carries its key, coordinates, cache status, and the full
    ``WorkloadResult.as_dict()``.  ``cache_dir=None`` disables caching;
    ``cache_max_bytes`` bounds the cell cache with LRU eviction.  While
    caching is on, resolved fabric routes persist across runs per
    machine-spec hash (see :class:`RouteCacheStore`).  ``shards``
    applies only to shard-capable workloads; others run on their single
    engine regardless.
    """
    from repro.hw.topology import Fabric

    say = printer if printer is not None else (lambda _msg: None)
    cache = SweepCache(cache_dir, max_bytes=cache_max_bytes) if cache_dir else None
    resolved: List[Workload] = [
        wl if isinstance(wl, Workload) else resolve_spec(wl) for wl in workloads
    ]
    if not resolved:
        raise WorkloadError("sweep needs at least one workload")
    if not machines:
        raise WorkloadError("sweep needs at least one machine")
    route_store = None
    prev_store = Fabric.route_store
    if cache_dir:
        route_store = RouteCacheStore(os.path.join(cache_dir, ROUTES_SUBDIR))
        Fabric.route_store = route_store
    cells: List[dict] = []
    hits = misses = 0
    try:
        for wl in resolved:
            wl_params = params or {}
            for machine in machines:
                for policy in policies:
                    key = cell_key(machine, wl, policy, wl_params)
                    label = f"{wl.name} × {machine} × {policy or 'default'}"
                    cached = cache.load(key) if cache is not None else None
                    if cached is not None:
                        hits += 1
                        say(f"HIT  {label}  [{key[:12]}]")
                        result = cached
                    else:
                        misses += 1
                        say(f"MISS {label}  [{key[:12]}] -> running")
                        use_shards = shards if wl.supports_shards else None
                        result = wl.run(
                            machine=machine, policy=policy, shards=use_shards,
                            **wl_params,
                        )
                        if cache is not None:
                            cache.store(key, result)
                    cells.append({
                        "key": key,
                        "workload": wl.name,
                        "machine": machine,
                        "policy": policy if policy is not None else "default",
                        "cached": cached is not None,
                        "result": result.as_dict(),
                    })
    finally:
        Fabric.route_store = prev_store
        if route_store is not None:
            route_store.flush()
    out = {"cells": cells, "hits": hits, "misses": misses}
    if cache is not None and cache.evicted:
        out["evicted"] = cache.evicted
    if route_store is not None:
        out["routes_preloaded"] = route_store.preloaded
    return out
