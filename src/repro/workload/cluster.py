"""Shard-capable cluster workloads (halo, allreduce-node) as Workloads.

Thin adapters over :class:`repro.shard.ClusterJob`: the builders and the
execution engines are untouched, so every signature field — message
digest, per-window counts, ``events_popped``, per-shard pops — stays
pinned whether the job runs sequentially or under ``shards=N``
(DESIGN.md §14 guarantees the two are bit-identical).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.series import Series
from repro.hw.spec.catalog import as_spec
from repro.hw.topology import MachineLike
from repro.workload.base import ExecOutcome, Workload
from repro.workload.registry import register


class ClusterWorkload(Workload):
    """One named :mod:`repro.shard.workloads` entry on any MachineSpec."""

    supports_shards = True
    default_machine = "fat-tree-32-r2-l2"

    def __init__(self, name: str):
        from repro.shard.workloads import resolve_workload

        resolved, _build, defaults = resolve_workload(name)
        self.name = resolved
        self.defaults = dict(defaults)

    def _execute(self, machine: Optional[MachineLike], shards, **params) -> ExecOutcome:
        from repro.shard import ClusterJob

        spec = as_spec(machine)
        job = ClusterJob(spec, self.name, cfg=params, collect_steps=True)
        result = job.run(workers=shards)
        sig = result.signature()
        s = Series(
            self.name,
            f"cluster workload {self.name} on {spec.name}",
            ["shard", "events_popped"],
        )
        for shard_id, popped in enumerate(sig.get("per_shard_popped", [])):
            s.add(shard=shard_id, events_popped=popped)
        s.note(f"messages={sig['messages']} t_end={sig['t_end']}")
        digests = {"msg": sig["msg_digest"]}
        for shard_id, step_digest in sorted(sig.get("step_digests", {}).items()):
            digests[f"steps_shard{shard_id}"] = step_digest
        return ExecOutcome(
            series=s,
            mode=result.mode,
            class_bytes=sig.get("bytes_by_class", {}),
            digests=digests,
            extra={
                "signature": sig,
                "workers": result.workers,
                "windows": result.windows,
            },
            events_popped=sig["events_popped"],
        )


register(ClusterWorkload("halo"))
register(ClusterWorkload("allreduce-node"))
