"""Transfer descriptors: what a producer asks the dataplane to move.

A descriptor is pure data — source/destination buffers (or a bare wire
byte-count for control traffic), a traffic class for the ledger, the
initiator, and the completion-time payload semantics.  Validation lives
here so every producer gets the same checks: wire sizes are compared in
*bytes* (element counts hide dtype mismatches), and payload transfers
additionally require matching element geometry unless the destination is
a virtual (geometry-only) buffer that never materializes the copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.memory import Buffer


class DescriptorError(ValueError):
    """A descriptor failed validation before touching the fabric."""


@dataclass
class TransferDescriptor:
    """One requested data movement, as submitted to the dataplane.

    Parameters
    ----------
    src, dst:
        Endpoint buffers.  Their locations select the route; for payload
        transfers their bytes must agree.
    nbytes:
        Wire bytes.  Defaults to ``src.nbytes``; control descriptors
        (``payload=False``) may override it to charge a different wire
        size (envelopes, flag packets) than the probe buffers suggest.
    payload:
        When True the destination receives the source bytes at wire
        completion (RMA visibility: a reader that waits observes new
        data, a racing reader observes old data).  When False only time
        and link occupancy are charged; the caller applies any logical
        content itself.
    traffic_class:
        Ledger key ("rma", "eager", "rndv", "pcoll", "nccl", ...).
    initiator:
        "host" for host software issue, "device" for SM-driven stores.
        Host-initiated device-to-device transfers between IPC-mappable
        peers stage through the source GPU's copy engine (the cuda_ipc
        path the Kernel-Copy design bypasses, paper Section IV-A4).
    name:
        Process name for the transfer (shows up in obs spans and traces).
    """

    src: Buffer
    dst: Buffer
    nbytes: Optional[int] = None
    payload: bool = True
    traffic_class: str = "payload"
    initiator: str = "host"
    name: str = "xfer"
    #: Set by validate(): the wire byte-count actually charged.
    wire_bytes: int = field(init=False, default=0)

    def validate(self) -> "TransferDescriptor":
        """Check geometry and fill ``wire_bytes``; raises DescriptorError."""
        if self.initiator not in ("host", "device"):
            raise DescriptorError(
                f"{self.name}: initiator must be 'host' or 'device', "
                f"not {self.initiator!r}"
            )
        nbytes = self.src.nbytes if self.nbytes is None else self.nbytes
        if nbytes < 0:
            raise DescriptorError(f"{self.name}: negative transfer size {nbytes}")
        if self.payload:
            # Byte comparison, not element counts: same-length buffers of
            # different dtypes carry different wire bytes, and the virtual
            # (zero-stride) buffers of PR 4 report shape-true nbytes.
            if self.src.nbytes != self.dst.nbytes:
                raise DescriptorError(
                    f"{self.name}: transfer size mismatch: src {self.src.nbytes} B "
                    f"vs dst {self.dst.nbytes} B"
                )
            if len(self.src.data) != len(self.dst.data) and not self.dst.is_virtual:
                raise DescriptorError(
                    f"{self.name}: dtype mismatch: {len(self.src.data)} "
                    f"x {self.src.data.dtype} src elements cannot land in "
                    f"{len(self.dst.data)} x {self.dst.data.dtype}"
                )
        self.wire_bytes = nbytes
        return self

    def splittable_elems(self) -> int:
        """Element count a striping policy may chunk, 0 when unsplittable.

        Payload stripes address element sub-ranges of both endpoints, so
        the buffers must agree element-for-element; control descriptors
        split at byte granularity and report 0 here.
        """
        if not self.payload:
            return 0
        if len(self.src.data) != len(self.dst.data):
            return 0
        return len(self.src.data)
