"""Captured transfer graphs: plan cache, graph engine, A/B gating."""

import numpy as np
import pytest

from repro.dataplane.graph import (
    GRAPHS,
    GraphEngine,
    GraphError,
    graphs_enabled,
)
from repro.hw.memory import Buffer, MemSpace
from repro.hw.params import ONE_NODE
from repro.hw.topology import Fabric
from repro.sim.engine import STATS, Engine
from repro.units import us


def _mk(engine_cls=Engine, config=ONE_NODE):
    engine = engine_cls()
    return engine, Fabric(engine, config)


def dev(fab, gpu, n=8, fill=None):
    return Buffer.alloc(
        n, space=MemSpace.DEVICE, node=fab.topo.node_of(gpu), gpu=gpu, fill=fill
    )


def _run(engine, gen):
    done = engine.process(gen, name="t")
    engine.run()
    assert done.ok, done.value
    return done.value


# -- gating -------------------------------------------------------------------

def test_graphs_enabled_by_default():
    assert graphs_enabled()


def test_no_graphs_env_disables(monkeypatch):
    monkeypatch.setenv("REPRO_NO_GRAPHS", "1")
    assert not graphs_enabled()


def test_ambient_obs_bus_disables():
    from repro.obs import bus as obs_bus

    obs_bus.install(obs_bus.Bus())
    try:
        assert not graphs_enabled()
    finally:
        obs_bus.uninstall()
    assert graphs_enabled()


# -- GraphEngine --------------------------------------------------------------

def test_graph_engine_pops_count_as_graphed():
    STATS.reset()
    engine = GraphEngine()

    def body():
        for _ in range(5):
            yield engine.timeout(1 * us)

    engine.process(body())
    engine.run()
    snap = STATS.snapshot()
    assert snap["events_popped"] == 0
    assert snap["events_graphed"] == engine.events_popped > 0


def test_graph_engine_schedules_identically():
    """Same program on Engine and GraphEngine: same pops, same clock."""
    def program(engine):
        def body():
            for i in range(4):
                yield engine.timeout((i + 1) * us)
            return engine.now

        done = engine.process(body())
        engine.run()
        return done.value, engine.events_popped

    assert program(Engine()) == program(GraphEngine())


# -- PlanCache ----------------------------------------------------------------

def test_plan_cache_replays_identical_submissions():
    eager_e, eager_fab = _mk()
    graph_e, graph_fab = _mk()
    graph_fab.dataplane.enable_plan_cache()

    def body(engine, fab, src, dst):
        times = []
        for i in range(4):
            t0 = engine.now
            yield fab.dataplane.put(src, dst, traffic_class="g", name=f"x{i}")
            times.append(engine.now - t0)
        return times

    ea, eb = dev(eager_fab, 0, fill=3.0), dev(eager_fab, 1)
    ga, gb = dev(graph_fab, 0, fill=3.0), dev(graph_fab, 1)
    eager_times = _run(eager_e, body(eager_e, eager_fab, ea, eb))
    graph_times = _run(graph_e, body(graph_e, graph_fab, ga, gb))

    assert graph_times == eager_times                      # bit-identical
    assert np.all(gb.data == 3.0)                          # payload landed
    cache = graph_fab.dataplane.plan_cache
    assert cache.misses == 1 and cache.hits == 3
    assert graph_fab.route_computations == eager_fab.route_computations
    assert (graph_fab.dataplane.ledger.as_dict()
            == eager_fab.dataplane.ledger.as_dict())       # per-sub accounting


def test_plan_cache_payload_reread_each_replay():
    """Replayed stripes copy the buffer's *current* contents."""
    engine, fab = _mk()
    fab.dataplane.enable_plan_cache()
    src, dst = dev(fab, 0, fill=1.0), dev(fab, 1)

    def body():
        yield fab.dataplane.put(src, dst, traffic_class="g")
        src.data[:] = 9.0
        yield fab.dataplane.put(src, dst, traffic_class="g")

    _run(engine, body())
    assert np.all(dst.data == 9.0)


def test_plan_cache_distinguishes_shapes():
    engine, fab = _mk()
    fab.dataplane.enable_plan_cache()
    a, b = dev(fab, 0, fill=1.0), dev(fab, 1)

    def body():
        yield fab.dataplane.control(a, b, 1024, traffic_class="g")
        yield fab.dataplane.control(a, b, 2048, traffic_class="g")   # new bytes
        yield fab.dataplane.control(a, b, 1024, traffic_class="h")   # new class

    _run(engine, body())
    cache = fab.dataplane.plan_cache
    assert cache.misses == 3 and cache.hits == 0


def test_freed_buffer_raises_on_replay():
    engine, fab = _mk()
    fab.dataplane.enable_plan_cache()
    src, dst = dev(fab, 0, fill=1.0), dev(fab, 1)

    def body():
        yield fab.dataplane.put(src, dst, traffic_class="g")
        dst.free()
        with pytest.raises(GraphError, match="freed buffer"):
            fab.dataplane.put(src, dst, traffic_class="g")
        return True

    assert _run(engine, body())


def test_counters_track_capture_and_replay():
    GRAPHS.reset()
    engine, fab = _mk()
    fab.dataplane.enable_plan_cache()
    src, dst = dev(fab, 0, fill=1.0), dev(fab, 1)

    def body():
        for _ in range(3):
            yield fab.dataplane.put(src, dst, traffic_class="g")

    _run(engine, body())
    snap = GRAPHS.snapshot()
    assert snap["captured_plans"] == 1
    assert snap["replayed_descriptors"] == 2
