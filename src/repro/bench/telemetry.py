"""Link-level telemetry: what actually moved over the simulated fabric.

Every :class:`~repro.hw.links.Link` counts bytes and transfers; this
module aggregates those counters per link class so tests can assert
*conservation* properties (e.g. a partitioned send moves exactly the
payload over NVLink, the Kernel-Copy path moves zero bytes through the
copy-engine path) and benchmarks can report utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.hw.topology import Fabric
from repro.obs.bus import SPAN


@dataclass
class LinkStats:
    bytes: int = 0
    transfers: int = 0


@dataclass
class FabricSnapshot:
    """Aggregate per-class byte/transfer counters at one instant."""

    classes: Dict[str, LinkStats] = field(default_factory=dict)

    def delta(self, later: "FabricSnapshot") -> "FabricSnapshot":
        """Per-class difference ``later - self`` over the union of classes.

        Classes present only in ``self`` (e.g. snapshots taken on different
        machines) show up with negative deltas instead of silently
        vanishing; order is ``later``'s, then leftovers of ``self``.
        """
        out = FabricSnapshot()
        names = list(later.classes)
        names += [n for n in self.classes if n not in later.classes]
        for name in names:
            before = self.classes.get(name, LinkStats())
            after = later.classes.get(name, LinkStats())
            out.classes[name] = LinkStats(
                bytes=after.bytes - before.bytes,
                transfers=after.transfers - before.transfers,
            )
        return out

    def __getitem__(self, name: str) -> LinkStats:
        return self.classes.get(name, LinkStats())


def snapshot(fabric: Fabric) -> FabricSnapshot:
    """Aggregate all link counters by the link's ``kind`` attribute.

    The classes are whatever the machine spec declares (``"nvlink"`` on a
    GH200, ``"switch"`` on a DGX, ``"pcie_d2h"`` on a no-P2P box) — no
    hard-coded class list, so telemetry works on any spec.
    """
    snap = FabricSnapshot({k: LinkStats() for k in fabric.link_kinds()})
    for link in fabric.iter_links():
        st = snap.classes[link.kind]
        st.bytes += link.bytes_carried
        st.transfers += link.n_transfers
    return snap


def report(fabric: Fabric) -> str:
    """Human-readable per-class utilization summary."""
    from repro.units import fmt_bytes

    snap = snapshot(fabric)
    lines = ["link class   bytes        transfers"]
    for name, st in snap.classes.items():
        lines.append(f"{name:<12} {fmt_bytes(st.bytes):<12} {st.transfers}")
    return "\n".join(lines)


class LinkFlowCounters:
    """Obs-bus subscriber deriving the per-class counters from link spans.

    Subscribed to the same bus a run publishes on, its snapshot equals
    ``snapshot(fabric).delta(...)`` over the subscription window — the
    event stream and the in-place link counters are the same accounting
    (see ``Link.account``), which tests assert.
    """

    def __init__(self) -> None:
        self.snap = FabricSnapshot()

    def on_event(self, ev) -> None:
        if ev.kind != SPAN or ev.cat != "link":
            return
        st = self.snap.classes.setdefault(ev.get("kind", ev.name), LinkStats())
        st.bytes += ev.get("nbytes", 0)
        st.transfers += ev.get("transfers", 1)
