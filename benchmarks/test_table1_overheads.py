"""Table I: overheads of the partitioned API calls.

Paper values (mean +- std): MPI_PSend/Recv_init 17.2 +- 10.2 us;
MPIX_Pallreduce_init 62.3 +- 6.2 us; MPIX_Prequest_create 110.7 +- 37.8 us;
MPIX_Pbuf_prepare 193.4 us first call / 3.4 +- 1.4 us average.

Each measured row must land inside the paper's mean +- (std + 25%) band,
and the structural claims must hold: collective init > point-to-point
init (multiple inits + schedule); first prepare >> later prepares.
"""

from conftest import run_exhibit, within

from repro.bench import figures

# call -> (paper mean, accepted band)
BANDS = {
    "MPI_Psend_init": (17.2, (7.0, 28.0)),
    "MPI_Precv_init": (17.2, (7.0, 28.0)),
    "MPIX_Pallreduce_init": (62.3, (45.0, 80.0)),
    "MPIX_Prequest_create": (110.7, (73.0, 150.0)),
    "MPIX_Pbuf_prepare (first)": (193.4, (150.0, 240.0)),
    "MPIX_Pbuf_prepare (avg)": (3.4, (1.5, 5.5)),
}


def test_table1_overheads(benchmark):
    series = run_exhibit(benchmark, figures.table1)
    by_call = {row["call"]: row["measured_us"] for row in series.rows}

    for call, (_paper, (lo, hi)) in BANDS.items():
        within(by_call[call], lo, hi, call)

    assert by_call["MPIX_Pallreduce_init"] > by_call["MPI_Psend_init"], (
        "collective init includes multiple p2p inits + schedule creation"
    )
    assert by_call["MPIX_Pbuf_prepare (first)"] > 20 * by_call["MPIX_Pbuf_prepare (avg)"], (
        "first prepare carries MCA init + registration; later ones only synchronize"
    )
