"""Trace replay: schema validation, both interpreters, shard equality."""

import pytest

from repro.workload.replay import (
    ReplayError,
    ReplayWorkload,
    parse_jsonl,
)

HEADER = '{"schema": "repro.workload.replay/1", "ranks": %d, "name": "t"}\n'


def _sched(ranks, *lines):
    return parse_jsonl(HEADER % ranks + "\n".join(lines) + "\n", source="t.jsonl")


PINGPONG = [
    '{"rank": 0, "op": "compute", "us": 5}',
    '{"rank": 0, "op": "send", "peer": 1, "bytes": 4096, "tag": "a", "class": "pp"}',
    '{"rank": 1, "op": "recv", "peer": 0, "tag": "a"}',
    '{"rank": 1, "op": "send", "peer": 0, "bytes": 4096, "tag": "b", "class": "pp"}',
    '{"rank": 0, "op": "recv", "peer": 1, "tag": "b"}',
    '{"rank": 0, "op": "barrier"}',
    '{"rank": 1, "op": "barrier"}',
]


# -- validation ---------------------------------------------------------------

def test_missing_header_schema():
    with pytest.raises(ReplayError, match="schema"):
        parse_jsonl('{"ranks": 2}\n', source="x.jsonl")


def test_bad_peer_flagged_with_line():
    with pytest.raises(ReplayError, match=r"t\.jsonl:2"):
        _sched(2, '{"rank": 0, "op": "send", "peer": 7, "bytes": 1, "tag": "a"}')


def test_self_send_rejected():
    with pytest.raises(ReplayError, match="own rank"):
        _sched(2, '{"rank": 0, "op": "send", "peer": 0, "bytes": 1, "tag": "a"}')


def test_unmatched_channel_rejected():
    with pytest.raises(ReplayError, match="send\\(s\\) but"):
        _sched(2, '{"rank": 0, "op": "send", "peer": 1, "bytes": 8, "tag": "a"}')


def test_collective_disagreement_rejected():
    with pytest.raises(ReplayError, match="lists"):
        _sched(
            2,
            '{"rank": 0, "op": "allreduce", "bytes": 64}',
            '{"rank": 1, "op": "allreduce", "bytes": 128}',
        )


def test_dep_must_reference_earlier_id():
    with pytest.raises(ReplayError, match="earlier step"):
        _sched(1, '{"rank": 0, "op": "compute", "us": 1, "deps": ["nope"]}')


# -- execution ----------------------------------------------------------------

def test_world_mode_replay():
    wl = ReplayWorkload(_sched(2, *PINGPONG))
    res = wl.run(machine="gh200-1x4")
    assert res.mode == "world"
    assert res.events_popped > 0
    assert res.class_bytes["pp"]["bytes"] == 8192
    assert res.class_bytes["pp"]["transfers"] == 2
    assert "schedule" in res.digests and "series" in res.digests


def test_replay_deterministic():
    sched = _sched(2, *PINGPONG)
    a = ReplayWorkload(sched).run(machine="gh200-1x4")
    b = ReplayWorkload(sched).run(machine="gh200-1x4")
    assert a.digests == b.digests
    assert a.events_popped == b.events_popped


def _ring_sched(n=8):
    lines = []
    for r in range(n):
        peer = (r + 1) % n
        lines.append(
            '{"rank": %d, "op": "send", "peer": %d, "bytes": 65536, '
            '"tag": "ring", "class": "ring"}' % (r, peer)
        )
        lines.append(
            '{"rank": %d, "op": "recv", "peer": %d, "tag": "ring"}'
            % (r, (r - 1) % n)
        )
        lines.append('{"rank": %d, "op": "allreduce", "bytes": 262144}' % r)
        lines.append('{"rank": %d, "op": "barrier"}' % r)
    return _sched(n, *lines)


def test_too_many_ranks_rejected():
    with pytest.raises(ReplayError, match="GPU"):
        ReplayWorkload(_ring_sched(8)).run(machine="gh200-1x4")


def test_cluster_mode_shards_bit_identical():
    wl = ReplayWorkload(_ring_sched(8))
    seq = wl.run(machine="gh200-2x4")
    par = wl.run(machine="gh200-2x4", shards=2)
    assert seq.mode == "sequential" and par.mode == "mp"
    assert seq.digests == par.digests
    assert seq.events_popped == par.events_popped
    assert seq.class_bytes == par.class_bytes


def test_jsonl_round_trip_digest_stable():
    sched = _sched(2, *PINGPONG)
    again = parse_jsonl(sched.to_jsonl(), source="rt.jsonl")
    assert again.digest == sched.digest


def test_fingerprint_folds_in_schedule_digest():
    a = ReplayWorkload(_sched(2, *PINGPONG))
    b = ReplayWorkload(_sched(2, *PINGPONG[:-2],
                              '{"rank": 0, "op": "barrier"}',
                              '{"rank": 1, "op": "barrier"}'))
    assert a.fingerprint() == b.fingerprint()
    c = ReplayWorkload(_sched(
        2,
        '{"rank": 0, "op": "send", "peer": 1, "bytes": 1, "tag": "a"}',
        '{"rank": 1, "op": "recv", "peer": 0, "tag": "a"}',
    ))
    assert c.fingerprint() != a.fingerprint()
