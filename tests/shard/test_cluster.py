"""The equivalence sweep: every execution mode, bit-identical signatures.

Two tiers of equivalence (DESIGN.md §14):

* sequential == mp-1 == mp-N on the **full** signature, including the
  per-shard ``(time, priority, seq)`` step digests and pop counts — the
  injection schedule is computed driver-side, so grouping shards onto
  workers cannot change any shard engine's heap history.
* the single-heap *reference* run matches on everything semantic
  (message stream digest, pop totals, rank results, end time, byte
  ledgers); only heap sequence numbering differs, so step streams are
  not comparable across that boundary.
"""

import os
import time

import pytest

from repro.hw.spec.generators import resolve_machine
from repro.hw.spec.schema import SpecError
from repro.shard import ClusterError, ClusterJob, local_spec
from repro.shard import workloads as workloads_mod
from repro.sim.engine import STATS

MACHINES = ["fat-tree-32-r2-l2", "dragonfly-32-r2-g2"]

#: Decimated configs keep the sweep fast; shapes still cross every shard.
CFG = {
    "halo": {"iters": 2, "chunks": 2, "chunk_bytes": 1 << 16, "face_bytes": 1 << 16},
    "allreduce-node": {"iters": 2, "elems": 256, "ring_bytes": 1 << 12},
}


def _job(machine, workload, collect_steps=True):
    return ClusterJob(
        resolve_machine(machine), workload, cfg=CFG[workload],
        collect_steps=collect_steps,
    )


# -- the sweep ----------------------------------------------------------------

@pytest.mark.parametrize("machine", MACHINES)
@pytest.mark.parametrize("workload", ["halo", "allreduce-node"])
def test_modes_bit_identical(machine, workload):
    job = _job(machine, workload)
    seq = job.run()
    assert seq.mode == "sequential" and seq.messages > 0
    sig = seq.signature()
    assert "step_digests" in sig and "per_shard_popped" in sig
    for workers in (1, 3):
        mp = job.run(workers=workers)
        assert mp.mode == "mp" and mp.workers == workers
        assert mp.windows == seq.windows
        assert mp.signature() == sig


@pytest.mark.parametrize("machine", MACHINES)
def test_no_coalesce_keeps_modes_identical(machine, monkeypatch):
    monkeypatch.setenv("REPRO_NO_COALESCE", "1")
    job = _job(machine, "halo")
    seq = job.run()
    mp = job.run(workers=2)
    assert mp.signature() == seq.signature()


@pytest.mark.parametrize("workload", ["halo", "allreduce-node"])
def test_reference_run_matches_semantics(workload):
    """The single-heap baseline: same physics, no windows."""
    job = _job("fat-tree-32-r2-l2", workload, collect_steps=False)
    seq = job.run_sequential()
    ref = job.run_reference()
    assert ref.mode == "reference" and ref.windows == 0
    for field in (
        "machine", "workload", "messages", "msg_digest",
        "events_popped", "results", "t_end", "bytes_by_class",
    ):
        assert getattr(ref, field) == getattr(seq, field), field


def test_halo_results_report_every_gpu():
    result = _job("fat-tree-32-r2-l2", "halo", collect_steps=False).run()
    gpus = sorted(g for ranks in result.results.values() for g, _t in ranks)
    assert gpus == list(range(32))


# -- stats merge (satellite: deterministic STATS absorption) ------------------

def test_mp_stats_absorbed_into_module_stats():
    job = _job("fat-tree-32-r2-l2", "halo", collect_steps=False)
    STATS.reset()
    result = job.run(workers=2)
    snap = STATS.snapshot()
    assert snap["events_popped"] == result.events_popped
    assert snap["events_popped"] == sum(result.per_shard_popped)


# -- failure modes ------------------------------------------------------------

def _build_stuck(shard, cfg):
    def waiter():
        yield shard.recv(shard.gpu_base, ("never",))

    return [shard.engine.process(waiter(), name=f"stuck{shard.id}")]


def test_cross_shard_deadlock_detected(monkeypatch):
    monkeypatch.setitem(workloads_mod.WORKLOADS, "stuck", (_build_stuck, {}))
    job = ClusterJob(resolve_machine("fat-tree-32-r2-l2"), "stuck")
    with pytest.raises(ClusterError, match="deadlock"):
        job.run()


def test_single_node_spec_rejected():
    single = local_spec(resolve_machine("fat-tree-32-r2-l2"), 0)
    with pytest.raises(SpecError, match="at least 2"):
        ClusterJob(single, "halo")


def test_unknown_workload_rejected():
    with pytest.raises(ClusterError, match="unknown workload"):
        ClusterJob(resolve_machine("fat-tree-32-r2-l2"), "nope")


def test_zero_workers_rejected():
    job = _job("fat-tree-32-r2-l2", "halo", collect_steps=False)
    with pytest.raises(ClusterError, match=">= 1"):
        job.run(workers=0)


def test_workers_clamped_to_shard_count():
    result = _job("fat-tree-32-r2-l2", "halo", collect_steps=False).run(workers=64)
    assert result.workers == result.shards == 4


# -- scaling ------------------------------------------------------------------

@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup needs >= 4 physical cores; this host cannot "
           "demonstrate it (window orchestration overhead is pinned to be "
           "near zero by the wall-clock parity of mp vs sequential runs)",
)
def test_mp_speedup_at_four_workers():
    job = ClusterJob(
        resolve_machine("fat-tree-512"), "halo", cfg={"iters": 4, "chunks": 2}
    )
    t0 = time.perf_counter()
    seq = job.run()
    t_seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    mp = job.run(workers=4)
    t_mp = time.perf_counter() - t0
    assert mp.signature() == seq.signature()
    assert t_seq / t_mp >= 1.8
