#!/usr/bin/env python3
"""One partitioned workload, three machines: how topology shapes goodput.

Runs the paper's device-initiated partitioned ping-pong (Fig 4's
intra-node workload) unchanged on three machine specs from the catalog:

* ``gh200-1x4``   — NVLink pair mesh, the paper's testbed;
* ``dgx-nvswitch`` — switch-routed D2D (two hops; fan-out from one GPU
  serializes on its shared switch up-port);
* ``pcie-nop2p``  — no peer-to-peer at all: the payload stages through
  host PCIe links, and Kernel-Copy mode is rejected by capability.

    python examples/custom_machine.py
"""

from repro.bench.p2p import measure_p2p_goodput
from repro.hw.spec import dgx_nvswitch_spec, gh200_spec, pcie_nop2p_spec
from repro.units import GBps

GRIDS = (16, 256, 2048)

MACHINES = [
    ("gh200-1x4 (pair mesh)", gh200_spec(1, 4), ("progression", "kernel_copy")),
    ("dgx-nvswitch (switch)", dgx_nvswitch_spec(), ("progression", "kernel_copy")),
    # Kernel-Copy needs an IPC-mappable peer; the no-P2P box refuses it.
    ("pcie-nop2p (host-staged)", pcie_nop2p_spec(1, 2), ("progression",)),
]


def main() -> None:
    print("intra-node partitioned-send goodput (GB/s), ranks 0->1\n")
    header = f"{'machine':<26} {'model':<12}" + "".join(f"  grid={g:<6}" for g in GRIDS)
    print(header)
    print("-" * len(header))
    for label, spec, models in MACHINES:
        for model in models:
            cells = []
            for grid in GRIDS:
                gp = measure_p2p_goodput(grid, model, config=spec)
                cells.append(f"  {gp / GBps:8.2f} ")
            print(f"{label:<26} {model:<12}" + "".join(cells))
    print(
        "\nThe mesh wins small grids (one hop, lowest latency); the switch's "
        "fatter ports win large ones despite the two-hop path; the no-P2P "
        "box plateaus at the host PCIe bounce regardless of kernel size."
    )


if __name__ == "__main__":
    main()
