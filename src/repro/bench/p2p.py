"""Workload runners for the point-to-point exhibits (Figs 2-5).

Measurement methodology follows Section VI's preamble:

* every CUDA thread contributes 8 bytes (``block=1024`` => 8 KiB/block);
* *traditional* rows time compute + ``cudaStreamSynchronize`` +
  ``MPI_Send``/``Recv`` (Listing 1);
* *partitioned* rows time the equivalent of ``Kernel_B`` + ``MPI_Wait``
  (Listing 2) — ``MPI_Start``/``MPIX_Pbuf_prepare`` happen before the
  timed window;
* Goodput = processed bytes / (compute + communication time), using the
  slower endpoint's window.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.cuda.kernel import BlockKernel, UniformKernel
from repro.cuda.timing import WorkSpec
from repro.hw.params import ONE_NODE, TestbedConfig
from repro.hw.topology import MachineLike
from repro.partitioned import device as pdev
from repro.workload.runner import run_ranks
from repro.partitioned.aggregation import AggregationSpec, SignalMode
from repro.partitioned.prequest import CopyMode

BLOCK = 1024
BYTES_PER_THREAD = 8

#: Two nodes with one GH200 each: ranks 0/1 are forced inter-node.
TWO_NODE_PAIR = TestbedConfig(n_nodes=2, gpus_per_node=1)


def auto_transport_partitions(grid: int, model: str, inter_node: bool) -> int:
    """Per-mechanism optimum from the paper's Section VI-A:

    * Progression Engine intra-node: a single transport partition wins
      (each host-mediated put pays the cuda_ipc engine setup);
    * inter-node, large kernels: two transport partitions win (the first
      half's RMA put overlaps the second half's compute);
    * Kernel Copy: two partitions (SM stores pay no per-put setup, so the
      overlap is free).
    """
    if grid < 2:
        return 1
    if model == "kernel_copy":
        return 2
    if inter_node:
        return 1 if grid < 2048 else 2
    return 1


# --------------------------------------------------------------------------
# Fig 2: cudaStreamSynchronize motivation
# --------------------------------------------------------------------------

def measure_launch_sync(grid: int, block: int = BLOCK, config: MachineLike = ONE_NODE) -> dict:
    """One launch+sync measurement on a fresh single-GPU world."""

    def main(ctx):
        work = WorkSpec.vector_add(BYTES_PER_THREAD)
        t0 = ctx.now
        yield from ctx.gpu.launch_h(UniformKernel(grid, block, work, name="vadd"))
        t_launched = ctx.now
        yield from ctx.gpu.sync_h()
        t_done = ctx.now
        # Sync cost alone, on the now-empty stream.
        t1 = ctx.now
        yield from ctx.gpu.sync_h()
        sync_only = ctx.now - t1
        return {"total": t_done - t0, "launch_api": t_launched - t0, "sync_only": sync_only}

    return run_ranks(config, main, nprocs=1).results[0]


# --------------------------------------------------------------------------
# Fig 3: thread/warp/block MPIX_Pready aggregation cost
# --------------------------------------------------------------------------

def measure_pready_cost(
    n_threads: int, mode: SignalMode, config: MachineLike = ONE_NODE
) -> float:
    """Device-side cost of the MPIX_Pready call for one block of
    ``n_threads`` under a signal mode (intra-node channel, 1 partition)."""
    cost_out: List[float] = []

    def main(ctx):
        comm = ctx.comm
        n = n_threads  # 8 B per thread
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(n, fill=1.0)
            sreq = yield from comm.psend_init(sbuf, 1, dest=1, tag=0)
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            agg = AggregationSpec(1, n_threads, 1, mode)
            preq = yield from sreq.prequest_create(ctx.gpu, agg=agg)

            def body(blk):
                yield blk.compute(WorkSpec.vector_add(BYTES_PER_THREAD))
                t0 = blk.now
                yield pdev.pready(blk, preq)
                cost_out.append(blk.now - t0)

            yield from ctx.gpu.launch_h(BlockKernel(1, n_threads, body, name="fig3"))
            yield from sreq.wait()
        else:
            rbuf = ctx.gpu.alloc(n)
            rreq = yield from comm.precv_init(rbuf, 1, source=0, tag=0)
            yield from rreq.start()
            yield from rreq.pbuf_prepare()
            yield from rreq.wait()

    run_ranks(config, main, nprocs=2)
    assert len(cost_out) == 1
    return cost_out[0]


# --------------------------------------------------------------------------
# Figs 4/5: goodput of the three communication models
# --------------------------------------------------------------------------

def _p2p_goodput_main(ctx, grid: int, model: str, iters: int, tps: int) -> Generator:
    """2-rank loop; returns this rank's per-iteration window durations.

    Payloads are *virtual* (``alloc_virtual``): nothing in Figs 4/5 checks
    the received bytes, only the timing window — so the sweep's GiB-scale
    buffers cost O(1) memory and no memcpy wall time while every protocol
    size, registration, and link charge stays identical.
    """
    comm = ctx.comm
    n = grid * BLOCK  # float64 elements -> 8 B per thread
    work = WorkSpec.vector_add(BYTES_PER_THREAD)
    times: List[float] = []

    if model == "sendrecv":
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc_virtual(n)
            for _ in range(iters):
                yield from comm.barrier()
                t0 = ctx.now
                kernel = UniformKernel(grid, BLOCK, work, name="vadd")
                yield from ctx.gpu.launch_h(kernel)
                yield from ctx.gpu.sync_h()
                yield from comm.send(sbuf, dest=1, tag=9)
                times.append(ctx.now - t0)
        else:
            rbuf = ctx.gpu.alloc_virtual(n)
            for _ in range(iters):
                yield from comm.barrier()
                t0 = ctx.now
                yield from comm.recv(rbuf, source=0, tag=9)
                times.append(ctx.now - t0)
        return times

    mode = CopyMode.KERNEL_COPY if model == "kernel_copy" else CopyMode.PROGRESSION_ENGINE
    if ctx.rank == 0:
        sbuf = ctx.gpu.alloc_virtual(n)
        sreq = yield from comm.psend_init(sbuf, tps, dest=1, tag=9)
        preq = None
        hook = None
        for _ in range(iters):
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            if preq is None:
                preq = yield from sreq.prequest_create(
                    ctx.gpu, grid=grid, block=BLOCK, mode=mode,
                    blocks_per_partition=grid // tps,
                )
                hook = pdev.PreadyWaveHook(preq)
            yield from comm.barrier()
            t0 = ctx.now
            kernel = UniformKernel(grid, BLOCK, work, name="vadd_p", wave_hook=hook)
            yield from ctx.gpu.launch_h(kernel)
            yield from sreq.wait()
            times.append(ctx.now - t0)
    else:
        rbuf = ctx.gpu.alloc_virtual(n)
        rreq = yield from comm.precv_init(rbuf, tps, source=0, tag=9)
        for _ in range(iters):
            yield from rreq.start()
            yield from rreq.pbuf_prepare()
            yield from comm.barrier()
            t0 = ctx.now
            yield from rreq.wait()
            times.append(ctx.now - t0)
    return times


def measure_p2p_goodput(
    grid: int,
    model: str,
    config: MachineLike = ONE_NODE,
    iters: int = 3,
    tps: Optional[int] = None,
) -> float:
    """Goodput (bytes/s) for one (grid, model) point on any machine
    description (legacy config or :class:`MachineSpec`); warmup discarded."""
    if tps is None:
        tps = auto_transport_partitions(grid, model, inter_node=config.n_nodes > 1)
    per_rank = run_ranks(
        config, _p2p_goodput_main, nprocs=2, args=(grid, model, iters, tps)
    ).results
    # Window per iteration = slower endpoint; drop the warmup iteration.
    windows = [max(a, b) for a, b in zip(*per_rank)][1:]
    mean = sum(windows) / len(windows)
    return (grid * BLOCK * BYTES_PER_THREAD) / mean
