"""Happens-before data-race detection over a recorded trace.

Replays the trace in ``(time, seq)`` order, maintaining one vector clock
per actor and one per sync object.  Each actor-attributed access is
compared against prior accesses of the same allocation: two accesses
**race** when their byte ranges overlap, at least one is a write, the
actors differ, and neither happens-before the other through the recorded
synchronization edges (stream FIFO order, kernel launch/join, host-signal
delivery to the progression engine, partition-arrived flags, stream
drains).

Anonymous transport copies (``actor is None`` — RMA puts and fabric
transfers landing payloads) are excluded: their ordering is the wire
protocol's job and the partitioned-semantics checks cover the rules that
govern them.  They still participate in initialization tracking (see
:mod:`repro.san.checks`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.san.clocks import VectorClock
from repro.san.record import ACCESS, ACQUIRE, RELEASE, Actor, AllocInfo, TraceEvent


@dataclass(frozen=True)
class Access:
    """A prior access retained for conflict checking."""

    actor: Actor
    clock: int            # the actor's own VC component at access time
    lo: int
    hi: int
    write: bool
    time: float
    seq: int
    note: str


@dataclass(frozen=True)
class Race:
    """An unordered conflicting pair on one allocation."""

    alloc: int
    first: Access
    second: Access


def _conflicts(a: Access, ev: TraceEvent) -> bool:
    return (
        a.actor != ev.actor
        and (a.write or ev.write)
        and a.lo < ev.hi
        and ev.lo < a.hi
    )


def detect_races(
    events: Sequence[TraceEvent],
    allocs: Dict[int, AllocInfo],
) -> List[Race]:
    """Run the vector-clock analysis; returns races, first-occurrence order.

    One race is reported per (allocation, actor pair) to keep reports
    readable — the first unordered conflict is the root cause, later ones
    on the same pair are echoes.
    """
    actor_vc: Dict[Actor, VectorClock] = {}
    obj_vc: Dict[Tuple, VectorClock] = {}
    history: Dict[int, List[Access]] = {}
    seen_pairs: Set[Tuple] = set()
    races: List[Race] = []

    def vc_of(actor: Actor) -> VectorClock:
        vc = actor_vc.get(actor)
        if vc is None:
            vc = VectorClock()
            vc.tick(actor)  # each actor is born at epoch 1
            actor_vc[actor] = vc
        return vc

    for ev in events:
        if ev.kind == ACQUIRE:
            vc_of(ev.actor).join(obj_vc.get(ev.obj))
        elif ev.kind == RELEASE:
            vc = vc_of(ev.actor)
            obj_vc.setdefault(ev.obj, VectorClock()).join(vc)
            vc.tick(ev.actor)
        elif ev.kind == ACCESS and ev.actor is not None:
            vc = vc_of(ev.actor)
            for prior in history.setdefault(ev.alloc, []):
                if not _conflicts(prior, ev):
                    continue
                if prior.clock <= vc.get(prior.actor):
                    continue  # ordered: prior happens-before this access
                pair = (ev.alloc, prior.actor, ev.actor, prior.write, ev.write)
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                races.append(
                    Race(
                        alloc=ev.alloc,
                        first=prior,
                        second=Access(
                            ev.actor, vc.get(ev.actor), ev.lo, ev.hi,
                            ev.write, ev.time, ev.seq, ev.note,
                        ),
                    )
                )
            history[ev.alloc].append(
                Access(
                    ev.actor, vc.get(ev.actor), ev.lo, ev.hi,
                    ev.write, ev.time, ev.seq, ev.note,
                )
            )
    return races
