"""MPI Partitioned Point-to-Point with GPU-initiated extensions.

The paper's primary contribution (Section IV-A): a UCX-based partitioned
communication component for MPI with device bindings.

Host API (MPI-4.0 + MPIX extensions), all rank-process generators:

* ``comm.psend_init(buf, partitions, dest, tag)`` /
  ``comm.precv_init(buf, partitions, source, tag)`` — persistent channel
  setup; non-blocking, exchanges the ``setup_t`` object;
* ``req.start()`` — open an epoch (MPI_Start);
* ``req.pbuf_prepare()`` — MPIX_Pbuf_prepare: guarantees the receiver's
  buffer is ready (full rkey handshake on first call, ready-to-receive
  signal afterwards);
* ``req.pready(i)`` / ``req.parrived(i)`` — host bindings (RMA put + chained
  completion-flag put);
* ``req.prequest_create(...)`` — MPIX_Prequest_create: builds the
  device-resident request (copy mode, aggregation threshold, counters);
* ``req.wait()`` — MPI_Wait.

Device API (called from kernel bodies / wave hooks,
:mod:`repro.partitioned.device`):

* ``pready_thread`` / ``pready_warp`` / ``pready_block`` — Progression
  Engine path with thread/warp/block signal aggregation (Fig 3);
* Kernel-Copy mode — direct NVLink stores through the ``rkey_ptr``-mapped
  remote buffer (Fig 4);
* ``pready_wave`` — the bulk form used by
  :class:`~repro.cuda.kernel.UniformKernel` wave hooks.
"""

from repro.partitioned.aggregation import AggregationSpec, SignalMode
from repro.partitioned.prequest import CopyMode, Prequest
from repro.partitioned.p2p import PrecvRequest, PsendRequest, psend_init, precv_init

__all__ = [
    "AggregationSpec",
    "CopyMode",
    "PrecvRequest",
    "Prequest",
    "PsendRequest",
    "SignalMode",
    "precv_init",
    "psend_init",
]
