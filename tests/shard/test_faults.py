"""Fault events on sharded machines: mode parity and scoped targeting."""

import pytest

from repro.hw.faults import FaultEvent, FaultSchedule
from repro.workload.registry import resolve_spec

MACHINE = "fat-tree-32-r2-l2"
CFG = {"iters": 2, "chunks": 2, "chunk_bytes": 1 << 16, "face_bytes": 1 << 16}


def _halo(shards=None, faults=None):
    return resolve_spec("halo").run(
        machine=MACHINE, shards=shards, faults=faults, **CFG,
    )


@pytest.fixture(scope="module")
def healthy():
    return _halo()


def _mid_run_schedule(healthy, node=1):
    t = healthy.extra["signature"]["t_end"] / 2
    return FaultSchedule([FaultEvent(t, "nvl0->1", "down", node=node)])


def test_faulted_run_completes_with_different_digests(healthy):
    faulted = _halo(faults=_mid_run_schedule(healthy))
    assert faulted.digests != healthy.digests
    # the detour may be absorbed off the inter-node critical path, so
    # t_end can only move one way; the digests above prove it landed
    assert faulted.extra["signature"]["t_end"] >= healthy.extra["signature"]["t_end"]
    # byte totals are conserved: the detour changes timing, not payloads
    assert faulted.class_bytes == healthy.class_bytes


def test_faulted_sharded_matches_faulted_sequential(healthy):
    sched = _mid_run_schedule(healthy)
    seq = _halo(faults=sched)
    mp = _halo(shards=2, faults=sched)
    assert mp.digests == seq.digests
    assert mp.events_popped == seq.events_popped
    assert mp.extra["signature"] == seq.extra["signature"]


def test_fault_scoping_targets_one_node(healthy):
    """The same link name exists on every node; a node-scoped event must
    perturb only that node's fabric, identically in both modes."""
    sched = _mid_run_schedule(healthy, node=3)
    seq = _halo(faults=sched)
    mp = _halo(shards=2, faults=sched)
    assert seq.digests != healthy.digests
    assert mp.digests == seq.digests


def test_restore_heals_the_fabric(healthy):
    t_end = healthy.extra["signature"]["t_end"]
    down_only = FaultSchedule([
        FaultEvent(t_end / 4, "nvl0->1", "down", node=1),
    ])
    down_up = FaultSchedule([
        FaultEvent(t_end / 4, "nvl0->1", "down", node=1),
        FaultEvent(t_end / 2, "nvl0->1", "restore", node=1),
    ])
    a = _halo(faults=down_only)
    b = _halo(faults=down_up)
    assert a.digests != healthy.digests
    assert b.digests != a.digests
    assert b.extra["signature"]["t_end"] <= a.extra["signature"]["t_end"]


def test_healthy_run_unperturbed_after_faulted_runs(healthy):
    """No ambient state leaks: a fault-free run after faulted ones is
    bit-identical to the module baseline."""
    again = _halo()
    assert again.digests == healthy.digests
    assert again.extra["signature"] == healthy.extra["signature"]
