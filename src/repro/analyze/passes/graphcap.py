"""Static check for captured-transfer-graph lifetime hazards.

A captured :class:`~repro.dataplane.graph.TransferGraph` (or a
stream-captured op list) bakes descriptor *identity* at capture time:
replay re-reads buffer payloads but not buffer liveness or descriptor
shape.  Freeing a referenced buffer, or mutating a descriptor/spec
object, between ``begin_capture`` and the last ``graph_launch`` makes
every later replay act on stale state — the dynamic layer raises
``GraphError`` only on the paths a run actually takes; this pass checks
all of them.

``graph-capture-mutation``
    In a function that both captures (``begin_capture``) and replays
    (``graph_launch`` / ``graph_launch_h``), a ``.free()`` call or a
    store to a descriptor/spec attribute that lies on a path *between*
    the capture and a replay: reachable from a capture begin, with a
    replay still reachable after it.  Replays inside loops count — a
    free after the first launch but before the back edge invalidates
    every subsequent launch.

Like the other hb-static rules this over-approximates (no aliasing,
coarse exception edges); reviewed false positives are silenced with
``# repro: ignore[graph-capture-mutation]``.  Functions that only
capture or only replay are out of scope — their ordering lives in the
caller, beyond a per-function CFG.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Set, Tuple

from repro.analyze.cfg import map_statements
from repro.analyze.model import FunctionInfo, Project, dotted_name
from repro.analyze.rules import Finding, Pass, Rule

FAMILY = "hb-static"

CAPTURE_MUTATION = "graph-capture-mutation"

RULES: Dict[str, Rule] = {
    CAPTURE_MUTATION: Rule(
        CAPTURE_MUTATION, FAMILY,
        "buffer free or descriptor/spec mutation between a stream-capture "
        "begin and a later graph launch — replays would act on stale state",
    ),
}

_BEGIN_ATTRS = {"begin_capture"}
_LAUNCH_ATTRS = {"graph_launch", "graph_launch_h"}
_SPEC_PARTS = ("desc", "descriptor", "spec")


def _is_spec_chain(node: ast.AST) -> bool:
    dotted = dotted_name(node)
    if dotted is None:
        return False
    return any(
        part in _SPEC_PARTS or part.endswith(("_desc", "_spec"))
        for part in dotted.split(".")
    )


def _classify(fi: FunctionInfo):
    """-> (begin nodes, launch nodes, hazards).

    Hazards are ``(cfg stmt-node, lineno, description)`` triples: buffer
    ``.free()`` calls and stores into descriptor/spec attribute chains.
    """
    cfg = fi.cfg
    stmt_of = map_statements(fi.node)

    def node_of(expr: ast.AST):
        stmt = stmt_of.get(id(expr))
        return None if stmt is None else cfg.node_of_stmt.get(id(stmt))

    begins: Set[int] = set()
    launches: Set[int] = set()
    hazards: List[Tuple[int, int, str]] = []

    for node in fi.owned():
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            nid = node_of(node)
            if nid is None:
                continue
            attr = node.func.attr
            if attr in _BEGIN_ATTRS:
                begins.add(nid)
            elif attr in _LAUNCH_ATTRS:
                launches.add(nid)
            elif attr == "free":
                hazards.append((
                    nid, node.lineno,
                    f"{dotted_name(node.func) or 'free'}()",
                ))
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
            if _is_spec_chain(node):
                nid = node_of(node)
                if nid is not None:
                    hazards.append((
                        nid, node.lineno,
                        f"store to {dotted_name(node) or 'descriptor field'}",
                    ))
    return begins, launches, hazards


def run(project: Project, enabled: Sequence[str]) -> List[Finding]:
    if CAPTURE_MUTATION not in enabled:
        return []
    findings: List[Finding] = []
    for fi in project.functions:
        begins, launches, hazards = _classify(fi)
        if not (begins and launches and hazards):
            continue
        between: Set[int] = set()
        for b in begins:
            between |= fi.cfg.reachable_from(b) - {b}
        flagged: Set[int] = set()
        for nid, lineno, desc in hazards:
            if nid not in between or lineno in flagged:
                continue
            if launches & (fi.cfg.reachable_from(nid) - {nid}):
                flagged.add(lineno)
                findings.append(Finding(
                    CAPTURE_MUTATION, fi.path, lineno,
                    f"{desc} lies between a begin_capture and a later "
                    "graph launch — the captured graph would replay "
                    "against freed or mutated state",
                    fi.qualname,
                ))
    return findings


PASS = Pass(family=FAMILY, rules=RULES, run=run)
