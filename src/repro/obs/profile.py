"""Utilization and critical-path analysis over the event stream.

Utilization: for every occupiable resource with span events — SMs (kernel
executions per GPU), copy engines, links (incl. NICs), progression
engines, streams — merge the busy intervals and report the busy fraction
of the observed window, plus byte totals where the spans carry them.

Critical path: a longest-chain heuristic over the span DAG.  The DES does
not record explicit dependency edges, but in a discrete-event timeline a
span can only be *enabled* by work that finished no later than it started;
walking back from the last-finishing span to the latest-ending such
predecessor recovers the dominant serial chain (ties break on bus ``seq``,
so the report is deterministic).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.bus import SPAN, ObsEvent
from repro.san.record import fmt_actor
from repro.units import fmt_bytes, fmt_time


class Collector:
    """The simplest subscriber: keep every event for offline analysis.

    Events are stored :meth:`~repro.obs.bus.ObsEvent.compact`-ed — a
    retained raw payload would pin every Buffer a run allocates.
    """

    def __init__(self) -> None:
        self.events: List[ObsEvent] = []

    def on_event(self, ev: ObsEvent) -> None:
        self.events.append(ev.compact())


# --------------------------------------------------------------------------
# utilization
# --------------------------------------------------------------------------

#: span categories that represent resource occupancy, mapped to the report
#: group they appear under.
_OCCUPANCY_GROUPS = {
    "kernel": "sm",
    "copy_engine": "copy_engine",
    "link": "link",
    "pe": "progress_engine",
    "stream": "stream",
    "ucx": "ucx",
}


@dataclass
class TrackUtil:
    """Busy-time accounting for one resource track."""

    key: str                        # display name (link name, gpu0.sm, ...)
    group: str                      # sm / copy_engine / link / ...
    kind: str = ""                  # telemetry class for links
    busy: float = 0.0               # merged busy seconds
    spans: int = 0
    bytes: int = 0
    _intervals: List[Tuple[float, float]] = field(default_factory=list, repr=False)


def _merged_length(intervals: List[Tuple[float, float]]) -> float:
    total = 0.0
    end = float("-inf")
    for lo, hi in sorted(intervals):
        if lo > end:
            total += hi - lo
            end = hi
        elif hi > end:
            total += hi - end
            end = hi
    return total


def _track_key(ev: ObsEvent) -> Tuple[str, str]:
    group = _OCCUPANCY_GROUPS[ev.cat]
    if ev.cat == "kernel":
        gpu = ev.actor[1] if ev.actor is not None and len(ev.actor) > 1 else "gpu?"
        return f"{gpu}.sm", group
    if ev.cat in ("link", "copy_engine"):
        return ev.name, group
    if ev.actor is not None:
        return fmt_actor(ev.actor), group
    return ev.name, group


@dataclass
class UtilReport:
    """Busy-time tracks plus the window they are measured against."""

    tracks: Dict[str, TrackUtil]
    window: float

    def __getitem__(self, key: str) -> TrackUtil:
        return self.tracks[key]

    def group(self, name: str) -> List[TrackUtil]:
        return [t for t in self.tracks.values() if t.group == name]


def utilization(
    events: Iterable[ObsEvent], horizon: Optional[float] = None
) -> UtilReport:
    """Per-track busy time over ``[0, horizon]`` (default: last span end)."""
    tracks: Dict[str, TrackUtil] = {}
    t_max = 0.0
    for ev in events:
        if ev.kind != SPAN or ev.cat not in _OCCUPANCY_GROUPS:
            continue
        t_max = max(t_max, ev.t1)
        key, group = _track_key(ev)
        track = tracks.get(key)
        if track is None:
            track = tracks[key] = TrackUtil(key, group, kind=ev.get("kind", ""))
        track._intervals.append((ev.t0, ev.t1))
        track.spans += 1
        track.bytes += ev.get("nbytes", 0)
    for track in tracks.values():
        track.busy = _merged_length(track._intervals)
        track._intervals.clear()
    return UtilReport(tracks, horizon if horizon is not None else t_max)


def link_kind_totals(events: Iterable[ObsEvent]) -> Dict[str, Tuple[int, int]]:
    """Per-telemetry-class ``(bytes, transfers)`` from link span events —
    by construction consistent with :mod:`repro.bench.telemetry` counters."""
    totals: Dict[str, Tuple[int, int]] = {}
    for ev in events:
        if ev.kind != SPAN or ev.cat != "link":
            continue
        kind = ev.get("kind", ev.name)
        b, n = totals.get(kind, (0, 0))
        totals[kind] = (b + ev.get("nbytes", 0), n + ev.get("transfers", 1))
    return totals


def render_utilization(report: UtilReport) -> str:
    if not report.tracks:
        return "utilization: no occupancy spans recorded"
    window = report.window
    lines = [
        f"utilization over {fmt_time(window)} simulated:",
        f"{'resource':<28} {'group':<15} {'busy':>12} {'util':>7} "
        f"{'spans':>7} {'bytes':>10}",
    ]
    order = {g: i for i, g in enumerate(
        ("sm", "copy_engine", "link", "progress_engine", "stream", "ucx")
    )}
    for track in sorted(
        report.tracks.values(), key=lambda t: (order.get(t.group, 99), t.key)
    ):
        frac = track.busy / window if window > 0 else 0.0
        nbytes = fmt_bytes(track.bytes) if track.bytes else "-"
        lines.append(
            f"{track.key:<28} {track.group:<15} {fmt_time(track.busy):>12} "
            f"{frac:>6.1%} {track.spans:>7} {nbytes:>10}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# critical path
# --------------------------------------------------------------------------

def critical_path(events: Iterable[ObsEvent]) -> List[ObsEvent]:
    """Dominant serial chain of spans, earliest first (see module docstring).

    Deterministic: candidate order is ``(t1, seq)`` and the walk strictly
    decreases that key, so the chain terminates and replays identically.
    """
    spans = sorted(
        (e for e in events if e.kind == SPAN), key=lambda e: (e.t1, e.seq)
    )
    if not spans:
        return []
    keys = [(e.t1, e.seq) for e in spans]
    cur = spans[-1]
    chain = [cur]
    eps = 1e-12
    while True:
        # Latest-finishing span that ended by the time `cur` started and
        # strictly precedes it in (t1, seq) order.
        idx = bisect_right(keys, (cur.t0 + eps, float("inf"))) - 1
        while idx >= 0 and keys[idx] >= (cur.t1, cur.seq):
            idx -= 1
        if idx < 0:
            break
        cur = spans[idx]
        chain.append(cur)
    chain.reverse()
    return chain


def render_critical_path(chain: List[ObsEvent]) -> str:
    if not chain:
        return "critical path: no spans recorded"
    makespan = chain[-1].t1 - chain[0].t0
    covered = sum(e.t1 - e.t0 for e in chain)
    lines = [
        f"critical path: {len(chain)} spans, {fmt_time(covered)} of "
        f"{fmt_time(makespan)} makespan "
        f"({covered / makespan:.0%} serialized)" if makespan > 0 else
        "critical path: zero-length makespan",
    ]
    prev_end: Optional[float] = None
    for ev in chain:
        gap = ""
        if prev_end is not None and ev.t0 - prev_end > 1e-12:
            gap = f"  (+{fmt_time(ev.t0 - prev_end)} gap)"
        actor = fmt_actor(ev.actor) if ev.actor is not None else ev.cat
        lines.append(
            f"  t={fmt_time(ev.t0):>10}  {fmt_time(ev.t1 - ev.t0):>10}  "
            f"{ev.cat}:{ev.name}  [{actor}]{gap}"
        )
        prev_end = ev.t1
    return "\n".join(lines)
