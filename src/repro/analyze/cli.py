"""``python -m repro analyze`` — whole-program static analysis.

::

    python -m repro analyze                       # analyze src/repro
    python -m repro analyze src/repro tests       # explicit roots
    python -m repro analyze --list                # rule catalogue
    python -m repro analyze --rule det-unordered-iter   # one rule only
    python -m repro analyze --sarif out.sarif     # SARIF 2.1.0 export
    python -m repro analyze --no-baseline         # show baselined findings too
    python -m repro analyze --write-baseline      # accept current findings

Exit status: 0 when every finding is suppressed inline or baselined,
1 when new findings exist, 2 on usage errors.  The baseline
(``analyze-baseline.json``) pins known over-approximations by exact
``(rule, path, line)``; stale entries are reported as warnings so the
file shrinks as code improves.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analyze import baseline as baseline_mod
from repro.analyze.model import Project
from repro.analyze.registry import all_passes, all_rules, render_rules
from repro.analyze.rules import Finding, apply_suppressions, run_passes
from repro.analyze.sarif import write_sarif


def analyze_paths(
    paths: Sequence[str], only: Optional[Sequence[str]] = None
):
    """-> (project, kept findings, suppressed findings)."""
    project = Project.load([Path(p) for p in paths])
    findings = run_passes(project, all_passes(), only=only)
    kept, suppressed = apply_suppressions(project, findings)
    return project, kept, suppressed


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="Whole-program static analysis (see repro.analyze).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list every rule, then exit"
    )
    parser.add_argument(
        "--rule", action="append", metavar="ID", dest="rules",
        help="run only this rule (repeatable; default: all)",
    )
    parser.add_argument(
        "--sarif", metavar="OUT", help="write findings as SARIF 2.1.0"
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=baseline_mod.DEFAULT_BASELINE,
        help=f"baseline file (default: {baseline_mod.DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline file",
    )
    args = parser.parse_args(argv)

    if args.list:
        print(render_rules())
        return 0

    try:
        project, kept, suppressed = analyze_paths(args.paths, only=args.rules)
    except ValueError as exc:
        print(f"analyze: {exc} (see --list)", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        baseline_mod.save(baseline_path, kept)
        print(
            f"analyze: wrote {len(kept)} finding(s) to {baseline_path}"
        )
        return 0

    matched: List[Finding] = []
    stale: list = []
    new = kept
    if not args.no_baseline and baseline_path.is_file():
        known = baseline_mod.load(baseline_path)
        new, matched, stale = baseline_mod.split(kept, known)

    for f in new:
        print(f.render())
    for key in stale:
        rule, path, line = key
        print(
            f"warning: stale baseline entry {rule} at {path}:{line} "
            "(no longer reported — regenerate with --write-baseline)"
        )
    print(
        f"analyze: {len(new)} finding(s) "
        f"({len(matched)} baselined, {len(suppressed)} suppressed, "
        f"{len(project.modules)} modules)"
    )

    if args.sarif:
        write_sarif(Path(args.sarif), new, all_rules())

    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    raise SystemExit(main())
