"""CUDA IPC: handle export/open rules."""

import numpy as np
import pytest

from repro.cuda.ipc import IpcError, IpcMemHandle
from repro.hw.memory import Buffer, MemSpace
from repro.hw.params import PAPER_TESTBED
from repro.hw.topology import Topology

TOPO = Topology(PAPER_TESTBED)


def _dev(gpu, n=8):
    return Buffer.alloc(n, space=MemSpace.DEVICE, node=TOPO.node_of(gpu), gpu=gpu)


def test_handle_requires_device_memory():
    with pytest.raises(IpcError):
        IpcMemHandle(Buffer.alloc(8, space=MemSpace.HOST, node=0))
    with pytest.raises(IpcError):
        IpcMemHandle(Buffer.alloc(8, space=MemSpace.PINNED, node=0))


def test_open_same_node_shares_memory():
    buf = _dev(0)
    mapped = IpcMemHandle(buf).open(TOPO, opener_gpu=2)
    mapped.data[:] = 4.0
    assert np.all(buf.data == 4.0)
    assert mapped.same_allocation(buf)


def test_mapped_view_keeps_owner_location():
    """Accesses through the mapped pointer route to the owner GPU."""
    buf = _dev(1)
    mapped = IpcMemHandle(buf).open(TOPO, opener_gpu=3)
    assert mapped.gpu == 1
    assert mapped.node == 0


def test_open_across_nodes_rejected():
    buf = _dev(0)
    with pytest.raises(IpcError, match="different nodes"):
        IpcMemHandle(buf).open(TOPO, opener_gpu=4)


def test_owner_gpu_property():
    assert IpcMemHandle(_dev(3)).owner_gpu == 3
