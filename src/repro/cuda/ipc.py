"""CUDA IPC: exporting device allocations to peer processes.

Mirrors ``cudaIpcGetMemHandle`` / ``cudaIpcOpenMemHandle``.  The paper's
Kernel-Copy path relies on UCX's cuda_ipc transport calling
``cuIpcOpenMemHandle`` so a kernel can store directly into the remote
buffer (Section IV-A4); :meth:`IpcMemHandle.open` returns exactly that
device-visible mapped view.

Opening a handle is only legal from a GPU that can peer-map the owner
(:meth:`~repro.hw.topology.Topology.can_peer_map` — same node *and* a
P2P-capable interconnect), which is why the paper's Kernel-Copy mode is
intra-node only, and why a no-P2P PCIe machine rejects it even there.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memory import Buffer, MemSpace
from repro.hw.topology import Topology
from repro.san import record


class IpcError(Exception):
    """Illegal IPC operation (wrong memory space or unreachable peer)."""


@dataclass(frozen=True)
class IpcMemHandle:
    """An exportable reference to a device allocation."""

    buffer: Buffer

    def __post_init__(self) -> None:
        if self.buffer.space is not MemSpace.DEVICE:
            msg = f"cudaIpcGetMemHandle requires device memory, got {self.buffer.space}"
            record.guard("ipc-misuse", None, msg)
            raise IpcError(msg)

    @property
    def owner_gpu(self) -> int:
        assert self.buffer.gpu is not None
        return self.buffer.gpu

    def open(self, topo: Topology, opener_gpu: int) -> Buffer:
        """``cudaIpcOpenMemHandle``: map the remote allocation for ``opener_gpu``.

        The returned Buffer shares payload memory with the exporter and
        keeps the *owner's* location, so fabric routing charges the
        NVLink hop between opener and owner on every access.
        """
        if not topo.can_peer_map(opener_gpu, self.owner_gpu):
            if topo.same_node(opener_gpu, self.owner_gpu):
                why = "no peer-to-peer capability (host-staged interconnect)"
            else:
                why = "different nodes (no NVLink/PCIe path)"
            msg = (
                f"gpu {opener_gpu} cannot IPC-open memory of gpu {self.owner_gpu}: {why}"
            )
            record.guard("ipc-misuse", ("host", opener_gpu), msg)
            raise IpcError(msg)
        return self.buffer.view(0, len(self.buffer.data), label=f"ipc:{self.buffer.label}")
