"""Seeded effect bugs the dynamic sanitizer cannot see.

Run dynamically (``python -m repro san <this file>``) the simulation is
clean: ``VERBOSE`` is False, so the illegal yield and the waiter-leaking
early return sit on branches no recorded run ever takes.  The static
effect checker flags both anyway — that asymmetry is what
tests/analyze/test_effects.py pins.
"""

from repro.sim.engine import Engine
from repro.sim.events import Event

VERBOSE = False


def bad_banner():
    # Every valued return is a str: illegal as a process yield value.
    return "starting up"


def ticks(engine, n):
    for _ in range(n):
        yield engine.timeout(1.0)


def worker(engine, verbose=VERBOSE):
    yield engine.timeout(1.0)
    if verbose:
        yield bad_banner()          # effect-illegal-yield (branch never taken)
    done = Event(engine)
    done.add_callback(lambda ev: None)
    if verbose:
        return 0                    # effect-leaked-waiter: exits without awaiting
    done.succeed()
    yield done
    yield from ticks(engine, 2)
    return 0


def main():
    engine = Engine()
    proc = engine.process(worker(engine))
    engine.run(until=proc)


if __name__ == "__main__":
    main()
