"""The window driver: conservative-lookahead execution over shards.

:class:`ClusterJob` partitions a generated cluster spec into one
:class:`~repro.shard.shard.Shard` per node and drives them with
CMB-style null-message windows:

1. ``nxt`` = the minimum over every shard's next local event time and
   every window queue's earliest pending delivery.
2. The horizon is ``H = nxt + L`` where ``L`` is the minimum inter-node
   first-byte latency — no message sent at or after ``nxt`` can be
   delivered at or before ``H``... except exactly *at* ``H``, which the
   inclusive-horizon run makes safe: such a message is queued and
   injected next window at the same simulated time.
3. Each shard (ascending id) takes its merge-ordered batch, injects it,
   runs to ``H``, and hands its outbox back for routing.

Every execution mode — the in-process sequential driver here (the
pinned-deterministic default) and the multiprocessing
:class:`~repro.shard.executor.ShardedExecutor` — computes batches with
the *same* driver-side :class:`~repro.shard.mailbox.WindowQueue` logic,
so injected streams, per-shard step hashes, and ``events_popped`` are
bit-identical however shards are grouped onto workers.  The single-heap
*reference* mode runs every shard on one shared engine with immediate
delivery scheduling: timestamps, pop totals, message streams, and rank
results match the windowed modes exactly; only heap sequence numbering
differs (one global counter vs per-shard counters — DESIGN.md §14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.hw.spec.schema import MachineSpec, SpecError
from repro.shard.mailbox import WindowQueue
from repro.shard.message import MessageDigest, WireModel
from repro.shard.shard import Shard
from repro.sim.engine import Engine


class ClusterError(Exception):
    """A sharded run failed (workload crash or deadlocked windows)."""


@dataclass
class ClusterResult:
    """Everything a sharded run produced, digests included.

    :meth:`signature` returns the determinism-relevant subset two runs
    must agree on byte-for-byte; ``step_digests`` additionally pins the
    per-shard pop streams when step collection was enabled.
    """

    mode: str                  # "sequential" | "mp" | "reference"
    machine: str
    workload: str
    shards: int
    workers: int               # 0 for in-process modes
    windows: int
    messages: int
    msg_digest: str
    events_popped: int
    per_shard_popped: Optional[List[int]]
    step_digests: Optional[Dict[int, str]]
    results: Dict[int, List[Any]]   # shard id -> per-process return values
    t_end: float
    bytes_by_class: Dict[str, int] = field(default_factory=dict)
    #: Pops executed on private per-shard graph engines (0 when eager).
    #: Deliberately outside :meth:`signature`: captured and eager runs of
    #: the same schedule must agree on everything *in* the signature.
    events_graphed: int = 0
    #: Host graph-launch events (one per active window per graph shard).
    graph_launches: int = 0

    def signature(self) -> dict:
        """The fields any two equivalent runs must match exactly."""
        sig = {
            "machine": self.machine,
            "workload": self.workload,
            "messages": self.messages,
            "msg_digest": self.msg_digest,
            "events_popped": self.events_popped,
            "results": self.results,
            "t_end": self.t_end,
            "bytes_by_class": self.bytes_by_class,
        }
        if self.step_digests is not None:
            sig["step_digests"] = self.step_digests
        if self.per_shard_popped is not None:
            sig["per_shard_popped"] = self.per_shard_popped
        return sig


class ClusterJob:
    """One cluster-scale workload, runnable in any execution mode."""

    def __init__(
        self,
        spec: MachineSpec,
        workload: str = "halo",
        cfg: Optional[dict] = None,
        collect_steps: bool = False,
    ) -> None:
        from repro.shard.workloads import resolve_workload

        if spec.n_nodes < 2:
            raise SpecError(
                f"machine {spec.name!r} has {spec.n_nodes} node(s); "
                "sharding needs at least 2"
            )
        self.spec = spec
        self.workload_name, self.build, defaults = resolve_workload(workload)
        self.cfg = {**defaults, **(cfg or {})}
        self.collect_steps = collect_steps
        self.wire = WireModel(spec)
        self.lookahead = self.wire.lookahead()

    # -- mode dispatch -------------------------------------------------------
    def run(self, workers: Optional[int] = None) -> ClusterResult:
        """``workers=None``: pinned sequential default.  ``workers=N``:
        multiprocessing over N worker processes (``--shards N``)."""
        if workers is None:
            return self.run_sequential()
        from repro.shard.executor import ShardedExecutor

        return ShardedExecutor(self, workers).run()

    # -- sequential driver ---------------------------------------------------
    def _build_shards(self, engine: Optional[Engine] = None) -> List[Shard]:
        return [
            Shard(
                self.spec, sid, self.build, self.cfg,
                engine=engine, wire=self.wire,
                collect_steps=self.collect_steps and engine is None,
            )
            for sid in range(self.spec.n_nodes)
        ]

    def run_sequential(self) -> ClusterResult:
        shards = self._build_shards()
        queues = [WindowQueue() for _ in shards]
        digest = MessageDigest()
        windows = 0
        lookahead = self.lookahead
        try:
            while True:
                nxt = min(
                    min(s.next_time() for s in shards),
                    min(q.next_deliver() for q in queues),
                )
                if nxt == float("inf"):
                    break
                horizon = nxt + lookahead
                # Two-phase: take every batch before any shard runs, so a
                # message emitted this window can never jump the barrier
                # (the mp coordinator has the same shape by construction).
                batches = [q.take(horizon) for q in queues]
                # Digest the window's messages in global merge order: each
                # queue's batch is already sorted, but messages bound for
                # different shards must interleave by the same key.
                for msg in sorted(
                    (m for batch in batches for m in batch),
                    key=lambda m: m.merge_key,
                ):
                    digest.update(msg)
                outbound = []
                for shard, batch in zip(shards, batches):
                    outbound.extend(shard.step_window(horizon, batch))
                for msg in outbound:
                    queues[msg.dst_shard].post(msg)
                windows += 1
        except Exception:
            for shard in shards:
                shard.kill_all()
            raise
        self._check_done(shards)
        return self._assemble("sequential", 0, shards, windows, digest)

    # -- single-heap reference ----------------------------------------------
    def run_reference(self) -> ClusterResult:
        """Every shard on one shared engine, no windows — the semantic
        baseline the windowed modes are pinned against."""
        engine = Engine()
        shards = self._build_shards(engine=engine)
        mailboxes = {s.id: s.mailbox for s in shards}
        sent: List = []
        for s in shards:
            s.bridge.enable_direct(mailboxes, sent)
        engine.run()
        self._check_done(shards)
        digest = MessageDigest()
        for msg in sorted(sent, key=lambda m: m.merge_key):
            digest.update(msg)
        result = self._assemble("reference", 0, shards, 0, digest)
        result.events_popped = engine.events_popped
        result.per_shard_popped = None
        result.t_end = engine.now
        return result

    # -- assembly ------------------------------------------------------------
    def _check_done(self, shards: List[Shard]) -> None:
        stuck = [s.id for s in shards if not s.done]
        if stuck:
            detail = []
            for s in shards:
                arrived, waiting = s.mailbox.unmatched()
                if arrived or waiting:
                    detail.append(
                        f"shard {s.id}: {arrived} unread arrival(s), "
                        f"{waiting} parked recv(s)"
                    )
            raise ClusterError(
                f"windows drained but shard(s) {stuck} never finished "
                f"(cross-shard deadlock?); {'; '.join(detail) or 'no parked recvs'}"
            )

    def _assemble(
        self, mode: str, workers: int, shards: List[Shard],
        windows: int, digest: MessageDigest,
    ) -> ClusterResult:
        bytes_by_class: Dict[str, int] = {}
        for s in shards:
            for cls, n in s.bridge.bytes_by_class.items():
                bytes_by_class[cls] = bytes_by_class.get(cls, 0) + n
        per_shard = [s.engine.events_popped for s in shards]
        step_digests = None
        if self.collect_steps and mode != "reference":
            step_digests = {s.id: s.step_digest() for s in shards}
        return ClusterResult(
            events_graphed=sum(
                s.graph_engine.events_popped for s in shards
                if s.graph_engine is not None
            ),
            graph_launches=sum(s.graph_launches() for s in shards),
            mode=mode,
            machine=self.spec.name,
            workload=self.workload_name,
            shards=len(shards),
            workers=workers,
            windows=windows,
            messages=digest.count,
            msg_digest=digest.hexdigest(),
            events_popped=sum(per_shard),
            per_shard_popped=per_shard,
            step_digests=step_digests,
            results={s.id: s.results() for s in shards},
            t_end=max(s.busy_time() for s in shards),
            bytes_by_class=bytes_by_class,
        )
