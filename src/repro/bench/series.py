"""Result containers for benchmark series and their text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.units import fmt_bytes, fmt_time


@dataclass
class Series:
    """One exhibit's regenerated data: a titled list of uniform rows."""

    exhibit: str               # e.g. "Fig 4"
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        missing = set(self.columns) - row.keys()
        if missing:
            raise ValueError(f"{self.exhibit}: row missing columns {sorted(missing)}")
        self.rows.append(row)

    def column(self, name: str) -> List[Any]:
        return [r[name] for r in self.rows]

    def note(self, text: str) -> None:
        self.notes.append(text)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1e6 or (0 < abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:,.3f}"
    return str(value)


def render(series: Series) -> str:
    """Paper-style text table for one series."""
    cols = list(series.columns)
    widths = {c: len(c) for c in cols}
    body: List[List[str]] = []
    for row in series.rows:
        cells = [_fmt(row[c]) for c in cols]
        body.append(cells)
        for c, cell in zip(cols, cells):
            widths[c] = max(widths[c], len(cell))
    out = [f"== {series.exhibit}: {series.title} =="]
    out.append("  ".join(c.ljust(widths[c]) for c in cols))
    out.append("  ".join("-" * widths[c] for c in cols))
    for cells in body:
        out.append("  ".join(cell.ljust(widths[c]) for c, cell in zip(cols, cells)))
    for note in series.notes:
        out.append(f"  note: {note}")
    return "\n".join(out)
