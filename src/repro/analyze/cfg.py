"""Statement-level control-flow graphs + dominators.

Each node is one ``ast.stmt`` of the function's own body (nested defs are
single opaque statements).  Two synthetic nodes, ENTRY and EXIT, bracket
the graph.  Branching covers ``if``/``while``/``for``/``try``/``with``,
``break``/``continue``/``return``/``raise``; exception edges are coarse
(a handler is reachable from the try header and every body frontier),
which errs toward *more* paths — exactly the over-approximation the
happens-before rules want (a missed edge could hide a bug, a spurious
edge at worst costs a suppression).

Dominators use the classic iterative data-flow form; functions are small
(tens of statements), so the quadratic worst case never matters.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set


@dataclass
class CFG:
    """The graph: node ids -> statements, successor and predecessor lists."""

    entry: int
    exit: int
    stmts: Dict[int, Optional[ast.stmt]] = field(default_factory=dict)
    succs: Dict[int, List[int]] = field(default_factory=dict)
    preds: Dict[int, List[int]] = field(default_factory=dict)
    #: id(ast.stmt) -> node id, to map expression hits back onto the graph
    node_of_stmt: Dict[int, int] = field(default_factory=dict)
    _dom: Optional[Dict[int, Set[int]]] = None

    def nodes(self) -> Iterable[int]:
        return self.stmts.keys()

    # -- analyses ------------------------------------------------------------
    def dominators(self) -> Dict[int, Set[int]]:
        """node -> set of nodes that dominate it (reflexive)."""
        if self._dom is not None:
            return self._dom
        all_nodes = sorted(self.stmts)
        dom: Dict[int, Set[int]] = {n: set(all_nodes) for n in all_nodes}
        dom[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for n in all_nodes:
                if n == self.entry:
                    continue
                preds = self.preds.get(n, [])
                if preds:
                    new: Set[int] = set(all_nodes)
                    for p in preds:
                        new &= dom[p]
                else:
                    new = set()  # unreachable from entry
                new.add(n)
                if new != dom[n]:
                    dom[n] = new
                    changed = True
        self._dom = dom
        return dom

    def reachable_from(
        self, start: int, blocked: FrozenSet[int] = frozenset()
    ) -> Set[int]:
        """Nodes reachable from ``start`` along paths avoiding ``blocked``.

        ``start`` itself is not blocked; a blocked node is never entered
        (nor traversed through).
        """
        seen: Set[int] = {start}
        stack = [start]
        while stack:
            cur = stack.pop()
            for nxt in self.succs.get(cur, ()):
                if nxt in seen or nxt in blocked:
                    continue
                seen.add(nxt)
                stack.append(nxt)
        return seen


class _Loop:
    __slots__ = ("breaks", "continues")

    def __init__(self) -> None:
        self.breaks: List[int] = []
        self.continues: List[int] = []


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG(entry=0, exit=1)
        self.cfg.stmts[0] = None
        self.cfg.stmts[1] = None
        self._next = 2

    def new(self, stmt: ast.stmt) -> int:
        nid = self._next
        self._next += 1
        self.cfg.stmts[nid] = stmt
        self.cfg.node_of_stmt[id(stmt)] = nid
        return nid

    def edge(self, a: int, b: int) -> None:
        self.cfg.succs.setdefault(a, []).append(b)
        self.cfg.preds.setdefault(b, []).append(a)

    def seq(self, stmts, preds: List[int], loops: List[_Loop]) -> List[int]:
        """Wire a statement list; returns the fall-through frontier."""
        for stmt in stmts:
            nid = self.new(stmt)
            for p in preds:
                self.edge(p, nid)
            preds = self.stmt(stmt, nid, loops)
            if not preds:
                break  # everything after return/raise/break is unreachable
        return preds

    def stmt(self, stmt: ast.stmt, nid: int, loops: List[_Loop]) -> List[int]:
        if isinstance(stmt, ast.If):
            out = self.seq(stmt.body, [nid], loops)
            if stmt.orelse:
                out = out + self.seq(stmt.orelse, [nid], loops)
            else:
                out = out + [nid]
            return out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            loop = _Loop()
            loops.append(loop)
            body_out = self.seq(stmt.body, [nid], loops)
            loops.pop()
            for p in body_out + loop.continues:
                self.edge(p, nid)  # back edge
            out = self.seq(stmt.orelse, [nid], loops) if stmt.orelse else [nid]
            return out + loop.breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.seq(stmt.body, [nid], loops)
        if isinstance(stmt, ast.Try):
            body_out = self.seq(stmt.body, [nid], loops)
            outs = list(body_out)
            for handler in stmt.handlers:
                outs += self.seq(handler.body, [nid] + body_out, loops)
            if stmt.orelse:
                # else runs only after a clean body; its frontier replaces it.
                else_out = self.seq(stmt.orelse, body_out, loops)
                outs = [o for o in outs if o not in body_out] + else_out
            if stmt.finalbody:
                outs = self.seq(stmt.finalbody, outs or [nid], loops)
            return outs
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.edge(nid, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Break):
            if loops:
                loops[-1].breaks.append(nid)
            return []
        if isinstance(stmt, ast.Continue):
            if loops:
                loops[-1].continues.append(nid)
            return []
        return [nid]


def build_cfg(func: ast.AST) -> CFG:
    """CFG over ``func``'s own statements (a FunctionDef / AsyncFunctionDef)."""
    b = _Builder()
    frontier = b.seq(func.body, [b.cfg.entry], [])
    for p in frontier:
        b.edge(p, b.cfg.exit)
    return b.cfg


def stmt_node(cfg: CFG, expr_to_stmt: Dict[int, ast.stmt], expr: ast.AST) -> Optional[int]:
    """Graph node of the statement owning ``expr`` (see map_statements)."""
    stmt = expr_to_stmt.get(id(expr))
    if stmt is None:
        return None
    return cfg.node_of_stmt.get(id(stmt))


def map_statements(func: ast.AST) -> Dict[int, ast.stmt]:
    """id(any owned expression node) -> its enclosing own-scope statement.

    Compound statements map their headers (test/iter expressions) to the
    compound node itself; nested function bodies are not entered.
    """
    mapping: Dict[int, ast.stmt] = {}

    def claim(stmt: ast.stmt, node: ast.AST) -> None:
        mapping[id(node)] = stmt
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                continue  # statements claim themselves
            claim(stmt, child)

    def walk_body(stmts) -> None:
        for stmt in stmts:
            mapping[id(stmt)] = stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes own their statements
            # Header expressions (If.test, For.iter, ...) belong to the stmt.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, (ast.stmt, ast.excepthandler)):
                    continue  # statements claim themselves; handlers below
                claim(stmt, child)
            for name in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, name, None)
                if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                    walk_body(sub)
            for handler in getattr(stmt, "handlers", ()) or ():
                if handler.type is not None:
                    claim(stmt, handler.type)
                walk_body(handler.body)

    walk_body(func.body)
    return mapping
