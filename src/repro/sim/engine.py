"""The discrete-event engine: a time-ordered heap of triggered events.

Time is a ``float`` in **seconds**.  Constants throughout the code base use
the helpers in :mod:`repro.units` (``us``, ``GiB`` …) to stay readable.

Determinism: heap entries are ``(time, priority, seq)``; ``seq`` is a
monotone counter so ties break by insertion order.  Nothing in the engine
consults wall-clock time or global randomness.

Wall-clock fast path (DESIGN.md §11): :meth:`Engine.run` hoists the
``obs is None`` / ``on_step is None`` observer checks out of the pop loop —
an unobserved run executes an inlined loop with no per-event method calls,
while any observer routes every pop through :meth:`step` so hooks fire
exactly as before.  Observers must therefore be attached *before* ``run``
is entered; nothing in the deterministic core attaches one mid-run.
"""

from __future__ import annotations

import heapq
import os
import warnings
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import Event, Timeout, _PooledTimeout
from repro.sim.process import Process, ProcessFailed
from repro.obs import bus as obs_bus


class EmptySchedule(Exception):
    """run() exhausted all events before reaching the requested time."""


class SimStats:
    """Process-wide event-loop counters, aggregated across engines.

    Each :class:`Engine` folds its own counters into the module-level
    :data:`STATS` singleton when :meth:`Engine.run` exits, so harnesses
    (``python -m repro bench``, ``scripts/regenerate_results.py``) can
    total heap traffic over the many short-lived Worlds a sweep creates.
    """

    __slots__ = (
        "events_popped", "events_coalesced", "events_cancelled",
        "events_graphed", "peak_heap",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.events_popped = 0
        self.events_coalesced = 0
        self.events_cancelled = 0
        #: Pops executed inside a captured-graph replay engine
        #: (:class:`repro.dataplane.graph.GraphEngine`).  They are the same
        #: simulated events the eager path pops, but they run on a private
        #: heap behind one host-visible graph-launch event, so they are
        #: accounted separately from host ``events_popped``.
        self.events_graphed = 0
        self.peak_heap = 0

    def snapshot(self) -> dict:
        return {
            "events_popped": self.events_popped,
            "events_coalesced": self.events_coalesced,
            "events_cancelled": self.events_cancelled,
            "events_graphed": self.events_graphed,
            "peak_heap": self.peak_heap,
        }

    def absorb(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` from another process into this one.

        The sharded executor collects each worker's per-shard snapshots
        and absorbs them **sorted by shard id**, so the process-wide
        totals are identical however shards were grouped onto workers.
        ``peak_heap`` merges by max: shard heaps coexist, they don't sum.
        """
        self.events_popped += snap["events_popped"]
        self.events_coalesced += snap["events_coalesced"]
        self.events_cancelled += snap["events_cancelled"]
        self.events_graphed += snap.get("events_graphed", 0)
        if snap["peak_heap"] > self.peak_heap:
            self.peak_heap = snap["peak_heap"]


#: Module-level accumulator (see :class:`SimStats`).
STATS = SimStats()


class Engine:
    """Owns simulated time and the pending-event heap."""

    __slots__ = (
        "_now", "_heap", "_seq", "_active_process", "_crashed",
        "obs", "_trace_shim", "on_step", "_timeout_pool", "t_busy",
        "events_popped", "events_coalesced", "events_cancelled", "peak_heap",
        "_flushed", "shard_id", "__weakref__",
    )

    def __init__(self, trace: bool = False) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self._crashed: Optional[ProcessFailed] = None
        #: Attached instrumentation bus, or None — the fast path.  Only
        #: :meth:`repro.obs.bus.Bus.attach` populates it, and only while
        #: the bus has subscribers, so every hook is one ``is None`` test.
        self.obs: Optional[obs_bus.Bus] = None
        self._trace_shim: Optional[obs_bus.TextLog] = None
        #: Optional hook called as ``on_step(time, priority, seq)`` for every
        #: popped event, in pop order.  The argument triple *is* the heap
        #: tie-break key — the determinism regression test hashes it.
        self.on_step: Optional[Callable[[float, int, int], None]] = None
        #: Free-list of recyclable timeouts (see events._PooledTimeout).
        self._timeout_pool: List[_PooledTimeout] = []
        #: Time of the last event actually processed.  Unlike ``now`` it is
        #: never clamped forward to a run-horizon, so a windowed (sharded)
        #: run can report true completion times.
        self.t_busy: float = 0.0
        #: Events popped and dispatched (cancelled pops excluded).
        self.events_popped: int = 0
        #: Events the fast paths avoided scheduling altogether (e.g. waves
        #: collapsed by the coalesced-signalling layer).
        self.events_coalesced: int = 0
        #: Lazily-deleted entries skipped on pop (Event.cancel).
        self.events_cancelled: int = 0
        #: High-water mark of the pending-event heap.
        self.peak_heap: int = 0
        #: Set by :class:`repro.shard.Shard` — obs spans emitted from this
        #: engine carry the shard id as actor provenance.  None = unsharded.
        self.shard_id: Optional[int] = None
        self._flushed = [0, 0, 0]  # popped/coalesced/cancelled already in STATS
        obs_bus.note_engine(self)
        if trace:
            warnings.warn(
                "Engine(trace=True) is deprecated; subscribe a consumer to "
                "the repro.obs bus instead (DESIGN.md §10)",
                DeprecationWarning,
                stacklevel=2,
            )
            self._trace_shim = obs_bus.TextLog()
            if self.obs is not None:
                self.obs.subscribe(self._trace_shim)
            else:
                shim_bus = obs_bus.Bus()
                shim_bus.subscribe(self._trace_shim)
                shim_bus.attach(self)

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def timeout_at(self, time: float, value: Any = None) -> Event:
        """An event firing at *absolute* simulated time ``time`` (>= now).

        The coalescing layer folds per-wave delays into absolute wake
        times using the same left-to-right float additions the exact
        per-wave loop performs; scheduling at that absolute time — rather
        than ``timeout(t_end - now)``, which re-rounds — keeps every wake
        timestamp bit-identical to the exact path's.
        """
        if time < self._now:
            raise ValueError(f"timeout_at in the past: {time} < {self._now}")
        ev = Event(self)
        ev._triggered = True
        ev._value = value
        self._seq += 1
        heap = self._heap
        heapq.heappush(heap, (time, 1, self._seq, ev))  # PRIORITY_NORMAL
        if len(heap) > self.peak_heap:
            self.peak_heap = len(heap)
        return ev

    def pooled_timeout(self, delay: float, value: Any = None) -> Timeout:
        """A timeout from the engine's free-list (engine-internal).

        Behaves exactly like :meth:`timeout` but the object is recycled
        once its callbacks ran; callers must not retain it past firing.
        Used by ``Process`` for coerced ``yield <number>`` waits — the
        allocation hot spot of the partition sweeps.
        """
        pool = self._timeout_pool
        if not pool:
            return _PooledTimeout(self, delay, value)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        t = pool.pop()
        t.delay = delay
        t._triggered = True
        t._value = value
        self._schedule_event(t, 1, delay=delay)  # PRIORITY_NORMAL
        return t

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        """Spawn ``gen`` as a process starting at the current time."""
        return Process(self, gen, name=name)

    # -- scheduling internals ---------------------------------------------------
    def _schedule_event(self, ev: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        heap = self._heap
        heapq.heappush(heap, (self._now + delay, priority, self._seq, ev))
        if len(heap) > self.peak_heap:
            self.peak_heap = len(heap)

    def _crash(self, process: Process, exc: BaseException) -> None:
        if self._crashed is None:
            self._crashed = ProcessFailed(process, exc)

    def trace(self, msg: str) -> None:
        """Publish a free-form trace line at the current simulated time.

        A no-op unless a bus is attached; consumed by the deprecated
        ``trace_log`` shim and visible to every other subscriber.
        """
        if self.obs is not None:
            self.obs.instant("engine", "trace", None, t=self._now, msg=msg)

    @property
    def trace_enabled(self) -> bool:
        """Deprecated alias: True when an instrumentation bus is attached."""
        return self.obs is not None

    @property
    def trace_log(self) -> List[Tuple[float, str]]:
        """Deprecated: ``(time, message)`` pairs kept by the trace shim.

        Empty unless the engine was built with ``trace=True``; new code
        should subscribe :class:`repro.obs.bus.TextLog` to a bus instead.
        """
        return self._trace_shim.lines if self._trace_shim is not None else []

    @property
    def coalescing(self) -> bool:
        """True when event-coalescing fast paths may run (DESIGN.md §11).

        Coalescing collapses pops that have *no observable effect* — so it
        is only legal when nothing can observe individual pops: no attached
        bus, no ``on_step`` hook, no ambient bus (whose presence arms the
        sanitizer's record hooks even before a subscriber appears).  The
        ``REPRO_NO_COALESCE`` environment variable (any non-empty value)
        forces the exact path for A/B equivalence testing.
        """
        return (
            self.obs is None
            and self.on_step is None
            and obs_bus._AMBIENT is None
            and not os.environ.get("REPRO_NO_COALESCE")
        )

    # -- main loop ------------------------------------------------------------
    def step(self) -> None:
        """Process the single next live event (skipping cancelled entries)."""
        heap = self._heap
        while heap:
            time, _prio, _seq, ev = heapq.heappop(heap)
            if ev._cancelled:
                self.events_cancelled += 1
                continue
            if time < self._now:  # pragma: no cover - defensive
                raise RuntimeError("time went backwards")
            self._now = time
            self.events_popped += 1
            if self.on_step is not None:
                self.on_step(time, _prio, _seq)
            if self.obs is not None:
                self.obs.instant("engine", "step", None, t=time, prio=_prio, seq=_seq)
            ev._run_callbacks()
            if self._crashed is not None:
                crashed, self._crashed = self._crashed, None
                raise crashed
            return

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until ``until`` (an Event, a time, or None for exhaustion).

        Returns the event's value when ``until`` is an Event.  Raises
        :class:`~repro.sim.process.ProcessFailed` if an unwaited process
        crashed, or the original exception if ``until`` itself failed.
        """
        try:
            if until is None:
                return self._run_exhaust()
            if isinstance(until, Event):
                return self._run_until_event(until)
            return self._run_horizon(float(until))
        finally:
            self._flush_stats()

    def _run_exhaust(self) -> None:
        heap = self._heap
        if self.on_step is not None or self.obs is not None:
            while heap:
                self.step()
            return None
        pop = heapq.heappop
        popped = cancelled = 0
        try:
            while heap:
                time, _prio, _seq, ev = pop(heap)
                if ev._cancelled:
                    cancelled += 1
                    continue
                self._now = time
                popped += 1
                ev._run_callbacks()
                if self._crashed is not None:
                    crashed, self._crashed = self._crashed, None
                    raise crashed
        finally:
            self.events_popped += popped
            self.events_cancelled += cancelled
        return None

    def _run_until_event(self, until: Event) -> Any:
        done: List[Event] = []
        waiter = done.append
        until.add_callback(waiter)
        heap = self._heap
        try:
            if self.on_step is not None or self.obs is not None:
                while not done:
                    if not heap:
                        raise EmptySchedule(
                            f"no more events at t={self._now}; target event never fired"
                        )
                    self.step()
            else:
                pop = heapq.heappop
                popped = cancelled = 0
                try:
                    while not done:
                        if not heap:
                            raise EmptySchedule(
                                f"no more events at t={self._now}; "
                                "target event never fired"
                            )
                        time, _prio, _seq, ev = pop(heap)
                        if ev._cancelled:
                            cancelled += 1
                            continue
                        self._now = time
                        popped += 1
                        ev._run_callbacks()
                        if self._crashed is not None:
                            crashed, self._crashed = self._crashed, None
                            raise crashed
                finally:
                    self.events_popped += popped
                    self.events_cancelled += cancelled
        finally:
            # A propagating exception must not leave our waiter registered:
            # re-waiting the same event would then observe duplicate appends.
            if not done and until.callbacks is not None:
                try:
                    until.callbacks.remove(waiter)
                except ValueError:  # pragma: no cover - defensive
                    pass
        if until.ok:
            return until.value
        exc = until.value
        raise exc if isinstance(exc, BaseException) else RuntimeError(repr(exc))

    def _run_horizon(self, horizon: float) -> None:
        if horizon < self._now:
            raise ValueError(f"cannot run to the past: {horizon} < {self._now}")
        heap = self._heap
        if self.on_step is not None or self.obs is not None:
            before = self.events_popped
            while heap and heap[0][0] <= horizon:
                self.step()
            if self.events_popped != before:
                self.t_busy = self._now
            self._now = horizon
            return None
        pop = heapq.heappop
        popped = cancelled = 0
        try:
            while heap and heap[0][0] <= horizon:
                time, _prio, _seq, ev = pop(heap)
                if ev._cancelled:
                    cancelled += 1
                    continue
                self._now = time
                popped += 1
                ev._run_callbacks()
                if self._crashed is not None:
                    crashed, self._crashed = self._crashed, None
                    raise crashed
        finally:
            self.events_popped += popped
            self.events_cancelled += cancelled
        if popped:
            self.t_busy = self._now
        self._now = horizon
        return None

    def peek(self) -> float:
        """Time of the next *live* scheduled event, or +inf when idle.

        Lazily-deleted (cancelled) entries are dropped from the heap front
        here, so they are never visible to callers.
        """
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            heapq.heappop(heap)
            self.events_cancelled += 1
        return heap[0][0] if heap else float("inf")

    def _flush_stats(self) -> None:
        flushed = self._flushed
        STATS.events_popped += self.events_popped - flushed[0]
        STATS.events_coalesced += self.events_coalesced - flushed[1]
        STATS.events_cancelled += self.events_cancelled - flushed[2]
        if self.peak_heap > STATS.peak_heap:
            STATS.peak_heap = self.peak_heap
        flushed[0] = self.events_popped
        flushed[1] = self.events_coalesced
        flushed[2] = self.events_cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self._now:.9f} pending={len(self._heap)}>"
