"""Link model: latency + bandwidth + FIFO occupancy.

A :class:`Link` is one *direction* of a physical channel (NVLink pair
direction, C2C up/down, NIC ingress/egress, HBM port).  Transfers acquire
the link's port for their serialization time (``nbytes / bandwidth``), so
concurrent transfers on one link queue FIFO — a deterministic approximation
of bandwidth sharing.  Wire latency is charged after serialization
(cut-through pipelining), so back-to-back transfers overlap latency.

:class:`repro.hw.topology.Fabric` composes links into routes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import Resource


class Link:
    """One direction of a channel with FIFO-shared bandwidth.

    ``overhead`` is a fixed per-message port occupancy (header processing,
    doorbell ring, cacheline-granular write): bulk transfers pay it once,
    while storms of tiny messages (e.g. per-thread flag writes over C2C)
    serialize at ``overhead`` each — which is exactly the effect the paper's
    Fig 3 measures.

    ``kind`` names the link's telemetry class (``"nvlink"``, ``"switch"``,
    ``"nic_out"``, ...); :mod:`repro.bench.telemetry` aggregates counters by
    it.  ``stage`` is the link's rank in the hierarchical acquisition order
    (tx < nic_out < nic_in < rx): every route acquires links in strictly
    increasing stage, which keeps concurrent transfers deadlock-free.
    """

    __slots__ = (
        "engine",
        "name",
        "bandwidth",
        "latency",
        "overhead",
        "kind",
        "stage",
        "port",
        "bytes_carried",
        "n_transfers",
    )

    def __init__(
        self,
        engine: Engine,
        name: str,
        bandwidth: float,
        latency: float,
        overhead: float = 0.0,
        kind: str = "",
        stage: int = 0,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"link {name}: bandwidth must be positive")
        if latency < 0:
            raise ValueError(f"link {name}: negative latency")
        if overhead < 0:
            raise ValueError(f"link {name}: negative overhead")
        self.engine = engine
        self.name = name
        self.bandwidth = bandwidth
        self.latency = latency
        self.overhead = overhead
        self.kind = kind or name
        self.stage = stage
        self.port = Resource(engine, capacity=1, name=f"{name}.port")
        self.bytes_carried = 0
        self.n_transfers = 0

    def serialization_time(self, nbytes: int) -> float:
        return self.overhead + nbytes / self.bandwidth

    def account(self, nbytes: int, t0: Optional[float] = None, transfers: int = 1) -> None:
        """Count ``nbytes`` carried (telemetry) and publish the busy span.

        ``t0`` is when the payload started occupying the link (defaults to
        now, i.e. a zero-length span for instantaneous accounting).
        """
        self.bytes_carried += nbytes
        self.n_transfers += transfers
        obs = self.engine.obs
        if obs is not None:
            now = self.engine.now
            obs.span(
                "link", self.name, None,
                now if t0 is None else t0, now,
                kind=self.kind, nbytes=nbytes, transfers=transfers,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} bw={self.bandwidth:.3g}B/s lat={self.latency:.3g}s>"


def transfer_process(
    engine: Engine,
    route: Sequence[Link],
    nbytes: int,
    on_wire_done: Optional[Callable[[], None]] = None,
):
    """Generator process moving ``nbytes`` along ``route``.

    Cut-through model: the payload serializes at the *bottleneck* bandwidth
    while occupying every hop, then the total wire latency elapses, then
    ``on_wire_done`` runs (the caller copies payload data there) and the
    process returns.

    Routes are always traversed source->destination and links are
    direction-specific, so FIFO acquisition cannot deadlock.
    """
    if not route:
        raise ValueError("empty route")
    if nbytes < 0:
        raise ValueError("negative transfer size")

    bottleneck = min(link.bandwidth for link in route)
    ser = max(link.overhead for link in route) + nbytes / bottleneck
    total_latency = sum(link.latency for link in route)

    t_held = []
    for link in route:
        yield link.port.acquire()
        t_held.append(engine.now)
    yield engine.timeout(ser)
    for link, t0 in zip(route, t_held):
        link.account(nbytes, t0)
        link.port.release()
    yield engine.timeout(total_latency)
    if on_wire_done is not None:
        on_wire_done()
    return nbytes


def start_transfer(
    engine: Engine,
    route: Sequence[Link],
    nbytes: int,
    on_wire_done: Optional[Callable[[], None]] = None,
    name: str = "xfer",
) -> Event:
    """Spawn a transfer process; the returned process-event fires on arrival."""
    return engine.process(transfer_process(engine, route, nbytes, on_wire_done), name=name)
