"""Memory registration and remote keys (``ucp_mem_map`` family).

The receiver of a partitioned channel registers its receive buffer and its
partition-status flag array, packs remote keys, and ships them to the
sender inside the ``setup_t`` response (paper Section IV-A2).  The sender
unpacks them into :class:`RemoteKey` objects usable with ``put_nbx``; for
the Kernel-Copy path it additionally resolves ``rkey_ptr`` — the
cuda_ipc-transport mapped device pointer (Section IV-A4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.cuda.ipc import IpcError, IpcMemHandle
from repro.hw.memory import Buffer, MemSpace

_reg_ids = itertools.count()


class UcxMemError(Exception):
    """Invalid registration / rkey usage."""


@dataclass(frozen=True)
class MemHandle:
    """Result of ``ucp_mem_map``: a registered memory region."""

    buffer: Buffer
    reg_id: int

    @property
    def nbytes(self) -> int:
        return self.buffer.nbytes


@dataclass(frozen=True)
class PackedRkey:
    """The wire form of a remote key (travels inside setup_t)."""

    reg_id: int
    buffer: Buffer = field(repr=False)  # resolved target region
    owner_node: int = 0
    owner_gpu: Optional[int] = None


@dataclass
class RemoteKey:
    """An unpacked rkey: lets an endpoint address the remote region."""

    packed: PackedRkey
    # Device-mapped view (cuda_ipc rkey_ptr); populated lazily.
    _mapped_ptr: Optional[Buffer] = None

    @property
    def target(self) -> Buffer:
        return self.packed.buffer


def mem_map(worker, buffer: Buffer):
    """``ucp_mem_map``: register ``buffer`` with the worker's context.

    Host generator: charges the registration (pinning + MR creation) cost.
    """
    engine = worker.engine
    obs = engine.obs
    t0 = engine.now
    cached = buffer._registered
    if cached:
        # Re-registering the same region is cheap (registration cache hit).
        yield engine.timeout(worker.fabric.config.params.ucp_rkey_pack)
    else:
        yield engine.timeout(worker.fabric.config.params.ucp_mem_map_per_call)
        buffer._registered = True
    if obs is not None:
        obs.span(
            "ucx", "mem_map", None, t0, engine.now,
            nbytes=buffer.nbytes, cached=cached, worker=worker.name,
        )
    return MemHandle(buffer, next(_reg_ids))


def rkey_pack(worker, memh: MemHandle):
    """``ucp_rkey_pack``: produce the wire rkey for a registered region."""
    yield worker.engine.timeout(worker.fabric.config.params.ucp_rkey_pack)
    return PackedRkey(
        memh.reg_id, memh.buffer, memh.buffer.node, memh.buffer.gpu
    )


def rkey_unpack(worker, packed: PackedRkey):
    """``ucp_ep_rkey_unpack``: make a packed rkey usable locally."""
    yield worker.engine.timeout(worker.fabric.config.params.ucp_rkey_unpack)
    return RemoteKey(packed)


def rkey_ptr(worker, rkey: RemoteKey, opener_gpu: int):
    """``ucp_rkey_ptr`` via the (modified) cuda_ipc transport.

    Returns a device-visible Buffer mapped to the remote GPU allocation so
    a kernel can store into it directly (the paper's UCX modification of
    ``uct_cuda_ipc_rkey_ptr`` using ``cuIpcOpenMemHandle``).  Only valid
    when the target is device memory the opener can peer-map (same node,
    P2P-capable interconnect).
    """
    target = rkey.target
    if target.space is not MemSpace.DEVICE:
        raise UcxMemError(
            f"rkey_ptr: remote region is {target.space}, cuda_ipc needs device memory"
        )
    yield worker.engine.timeout(worker.fabric.config.params.ucp_rkey_ptr)
    obs = worker.engine.obs
    if obs is not None:
        obs.instant(
            "ucx", "rkey_ptr", None,
            opener_gpu=opener_gpu, nbytes=target.nbytes, worker=worker.name,
        )
    if rkey._mapped_ptr is None:
        try:
            handle = IpcMemHandle(target)
            rkey._mapped_ptr = handle.open(worker.fabric.topo, opener_gpu)
        except IpcError as exc:
            raise UcxMemError(f"rkey_ptr unavailable: {exc}") from exc
    return rkey._mapped_ptr
