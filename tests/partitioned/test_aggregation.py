"""AggregationSpec: user/transport partition mappings and signal counts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.errors import MpiUsageError
from repro.partitioned.aggregation import AggregationSpec, SignalMode


def test_basic_shape():
    a = AggregationSpec(grid=8, block_threads=1024, blocks_per_partition=2)
    assert a.n_transport == 4
    assert a.n_user == 8 * 1024
    assert a.threads_per_partition == 2048
    assert a.warps_per_block == 32


def test_tp_of_block():
    a = AggregationSpec(grid=6, block_threads=64, blocks_per_partition=3)
    assert [a.tp_of_block(b) for b in range(6)] == [0, 0, 0, 1, 1, 1]
    with pytest.raises(MpiUsageError):
        a.tp_of_block(6)


def test_tp_of_user():
    a = AggregationSpec(grid=2, block_threads=4, blocks_per_partition=1)
    assert a.tp_of_user(0) == 0
    assert a.tp_of_user(3) == 0
    assert a.tp_of_user(4) == 1
    with pytest.raises(MpiUsageError):
        a.tp_of_user(8)


def test_indivisible_grid_rejected():
    with pytest.raises(MpiUsageError):
        AggregationSpec(grid=5, block_threads=64, blocks_per_partition=2)


def test_invalid_geometry_rejected():
    with pytest.raises(MpiUsageError):
        AggregationSpec(grid=0, block_threads=64)
    with pytest.raises(MpiUsageError):
        AggregationSpec(grid=1, block_threads=64, blocks_per_partition=0)


def test_host_writes_per_block():
    assert AggregationSpec(1, 1024, 1, SignalMode.THREAD).host_writes_per_block() == 1024
    assert AggregationSpec(1, 1024, 1, SignalMode.WARP).host_writes_per_block() == 32
    assert AggregationSpec(1, 1024, 1, SignalMode.BLOCK).host_writes_per_block() == 1
    # Partial warps round up.
    assert AggregationSpec(1, 33, 1, SignalMode.WARP).host_writes_per_block() == 2


def test_expected_host_signals_block_mode_always_one():
    """Block mode aggregates across blocks via gmem counters."""
    for bpp in (1, 2, 8):
        a = AggregationSpec(grid=8, block_threads=256, blocks_per_partition=bpp,
                            signal_mode=SignalMode.BLOCK)
        assert a.expected_host_signals() == 1


def test_expected_host_signals_thread_and_warp():
    a = AggregationSpec(grid=4, block_threads=64, blocks_per_partition=2,
                        signal_mode=SignalMode.THREAD)
    assert a.expected_host_signals() == 2 * 64
    w = AggregationSpec(grid=4, block_threads=64, blocks_per_partition=2,
                        signal_mode=SignalMode.WARP)
    assert w.expected_host_signals() == 2 * 2


def test_gmem_threshold():
    a = AggregationSpec(grid=8, block_threads=64, blocks_per_partition=4)
    assert a.gmem_threshold() == 4


@given(
    grid_factor=st.integers(1, 16),
    bpp=st.integers(1, 16),
    block=st.integers(1, 1024),
)
@settings(max_examples=100, deadline=None)
def test_property_block_mapping_is_a_partition(grid_factor, bpp, block):
    """Every block maps to exactly one transport partition; partitions
    tile the grid in contiguous, equal runs."""
    grid = grid_factor * bpp
    a = AggregationSpec(grid, block, bpp)
    tps = [a.tp_of_block(b) for b in range(grid)]
    assert tps == sorted(tps)
    for tp in range(a.n_transport):
        assert tps.count(tp) == bpp
    # user mapping consistent with block mapping
    for u in range(0, a.n_user, max(1, a.n_user // 50)):
        b = u // block
        assert a.tp_of_user(u) == a.tp_of_block(b)
