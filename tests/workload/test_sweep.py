"""The sweep grid and its content-addressed cache."""

import pytest

from repro.workload.replay import ReplayWorkload, parse_jsonl
from repro.workload.sweep import cell_key, run_sweep
from repro.workload.base import WorkloadError

SCHED = (
    '{"schema": "repro.workload.replay/1", "ranks": 2, "name": "tiny"}\n'
    '{"rank": 0, "op": "send", "peer": 1, "bytes": 4096, "tag": "a"}\n'
    '{"rank": 1, "op": "recv", "peer": 0, "tag": "a"}\n'
)


def _workload():
    return ReplayWorkload(parse_jsonl(SCHED, source="tiny.jsonl"))


def test_sweep_grid_and_cache_hits(tmp_path):
    cache = str(tmp_path / "cache")
    wl = _workload()
    kwargs = dict(
        workloads=[wl], machines=["gh200-1x4", "gh200-2x4"],
        policies=["single", "multi"], cache_dir=cache,
    )
    first = run_sweep(**kwargs)
    assert len(first["cells"]) == 4
    assert first["misses"] == 4 and first["hits"] == 0
    second = run_sweep(**kwargs)
    assert second["hits"] == 4 and second["misses"] == 0
    for a, b in zip(first["cells"], second["cells"]):
        assert a["key"] == b["key"]
        assert a["result"] == b["result"]
        assert not a["cached"] and b["cached"]


def test_sweep_no_cache(tmp_path):
    grid = run_sweep(
        workloads=[_workload()], machines=["gh200-1x4"], cache_dir=None,
    )
    assert grid["misses"] == 1 and grid["hits"] == 0


def test_cell_key_sensitivity():
    wl = _workload()
    base = cell_key("gh200-1x4", wl, "single")
    assert cell_key("gh200-2x4", wl, "single") != base       # machine axis
    assert cell_key("gh200-1x4", wl, "multi") != base        # policy axis
    assert cell_key("gh200-1x4", wl, None) != base           # default policy
    other = ReplayWorkload(parse_jsonl(SCHED.replace("4096", "8192"),
                                       source="tiny.jsonl"))
    assert cell_key("gh200-1x4", other, "single") != base    # content axis
    # Same content parsed from a different source string: same key.
    same = ReplayWorkload(parse_jsonl(SCHED, source="elsewhere.jsonl"))
    assert cell_key("gh200-1x4", same, "single") == base


def test_sweep_rejects_empty_axes():
    with pytest.raises(WorkloadError, match="at least one workload"):
        run_sweep(workloads=[], machines=["gh200-1x4"], cache_dir=None)
    with pytest.raises(WorkloadError, match="at least one machine"):
        run_sweep(workloads=[_workload()], machines=[], cache_dir=None)


def test_sweep_cache_lru_eviction(tmp_path):
    import os

    from repro.workload.sweep import SweepCache, cell_key

    wl = _workload()
    result = wl.run(machine="gh200-1x4")
    blob = len(__import__("json").dumps(result.as_dict())) + 10
    cache = SweepCache(str(tmp_path / "cache"), max_bytes=2 * blob)
    keys = [cell_key("gh200-1x4", wl, p) for p in ("a", "b", "c")]
    for i, key in enumerate(keys):
        cache.store(key, result)
        os.utime(cache._path(key), (1000.0 + i, 1000.0 + i))
    cache.store(cell_key("gh200-1x4", wl, "d"), result)
    assert cache.evicted >= 1
    assert cache.load(keys[0]) is None           # oldest evicted first
    assert cache.load(cell_key("gh200-1x4", wl, "d")) is not None


def test_sweep_cache_hit_touches_entry(tmp_path):
    import os

    from repro.workload.sweep import SweepCache, cell_key

    wl = _workload()
    result = wl.run(machine="gh200-1x4")
    cache = SweepCache(str(tmp_path / "cache"))
    key = cell_key("gh200-1x4", wl, None)
    cache.store(key, result)
    os.utime(cache._path(key), (1000.0, 1000.0))
    assert cache.load(key) is not None
    assert os.stat(cache._path(key)).st_mtime > 1000.0


def test_oversized_single_entry_still_caches(tmp_path):
    from repro.workload.sweep import SweepCache, cell_key

    wl = _workload()
    result = wl.run(machine="gh200-1x4")
    cache = SweepCache(str(tmp_path / "cache"), max_bytes=1)
    key = cell_key("gh200-1x4", wl, None)
    cache.store(key, result)                     # exempt: just written
    assert cache.load(key) is not None


def test_route_cache_store_warms_fresh_fabrics(tmp_path):
    from repro.hw.memory import Buffer, MemSpace
    from repro.hw.spec.generators import resolve_machine
    from repro.hw.topology import Fabric
    from repro.sim.engine import Engine
    from repro.workload.sweep import RouteCacheStore

    spec = resolve_machine("gh200-1x4")

    def route_once(store):
        prev = Fabric.route_store
        Fabric.route_store = store
        try:
            fab = Fabric(Engine(), spec)
            src = Buffer.alloc(8, space=MemSpace.DEVICE, node=0, gpu=0)
            dst = Buffer.alloc(8, space=MemSpace.DEVICE, node=0, gpu=1)
            fab.route(src, dst)
            return fab
        finally:
            Fabric.route_store = prev

    cold = RouteCacheStore(str(tmp_path / "routes"))
    fab = route_once(cold)
    assert fab.route_computations == 1
    cold.flush()

    warm_store = RouteCacheStore(str(tmp_path / "routes"))
    fab2 = route_once(warm_store)
    assert warm_store.preloaded >= 1
    assert fab2.route_computations == 0          # served from the snapshot
    assert fab2.export_routes() == fab.export_routes()


def test_sweep_persists_routes_across_runs(tmp_path):
    import glob
    import os

    cache = str(tmp_path / "cache")
    kwargs = dict(workloads=[_workload()], machines=["gh200-1x4"],
                  cache_dir=cache)
    first = run_sweep(**kwargs)
    assert first["routes_preloaded"] == 0
    route_files = glob.glob(os.path.join(cache, "routes", "*.json"))
    assert route_files                           # snapshot written
    # Drop the cell cache but keep the route snapshots: the re-run
    # recomputes the cell yet reuses every previously resolved route.
    for path in glob.glob(os.path.join(cache, "*.json")):
        os.remove(path)
    second = run_sweep(**kwargs)
    assert second["misses"] == 1
    assert second["routes_preloaded"] > 0
    assert (first["cells"][0]["result"]["digests"]
            == second["cells"][0]["result"]["digests"])


def test_registry_names_resolve_in_sweep(tmp_path):
    grid = run_sweep(
        workloads=["striping"], machines=["gh200-2x4"],
        cache_dir=str(tmp_path / "cache"),
    )
    res = grid["cells"][0]["result"]
    assert res["workload"] == "striping"
    assert res["events_popped"] > 0
