"""Bench harness: series container, renderer, decimated smoke runs."""

import pytest

from repro.bench.series import Series, render
from repro.bench import figures
from repro.bench.p2p import auto_transport_partitions, measure_p2p_goodput
from repro.hw.params import ONE_NODE


def test_series_add_and_columns():
    s = Series("T", "title", ["a", "b"])
    s.add(a=1, b=2.0)
    s.add(a=3, b=4.0)
    assert s.column("a") == [1, 3]
    assert s.column("b") == [2.0, 4.0]


def test_series_missing_column_rejected():
    s = Series("T", "title", ["a", "b"])
    with pytest.raises(ValueError):
        s.add(a=1)


def test_render_contains_everything():
    s = Series("Fig X", "demo", ["grid", "val"])
    s.add(grid=1, val=1.25)
    s.note("a note")
    out = render(s)
    assert "Fig X" in out and "demo" in out
    assert "grid" in out and "1.250" in out
    assert "a note" in out


def test_auto_transport_partitions_policy():
    assert auto_transport_partitions(1, "progression", False) == 1
    assert auto_transport_partitions(4096, "progression", False) == 1
    assert auto_transport_partitions(1, "progression", True) == 1
    assert auto_transport_partitions(4096, "progression", True) == 2
    assert auto_transport_partitions(64, "kernel_copy", False) == 2


def test_fig2_smoke_decimated():
    s = figures.fig2(grids=(1, 256))
    assert len(s.rows) == 2
    assert s.rows[0]["sync_us"] == pytest.approx(7.8, abs=0.1)


def test_fig3_smoke_decimated():
    s = figures.fig3(threads=(1, 1024))
    last = s.rows[-1]
    assert last["thread_us"] > last["warp_us"] > last["block_us"]


def test_fig4_smoke_single_point():
    s = figures.fig4(grids=(16,))
    row = s.rows[0]
    assert row["kernel_copy"] > row["sendrecv"]


def test_exhibit_registry_complete():
    assert set(figures.ALL_EXHIBITS) == {
        "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "table1", "fig8", "fig9", "fig10", "fig11",
    }
    for fn in figures.ALL_EXHIBITS.values():
        assert callable(fn)


def test_bench_suite_has_graph_replay_entries():
    from repro.perf.bench import SUITE

    assert "graph-replay-jacobi" in SUITE
    assert "graph-replay-llm16" in SUITE


def test_graph_replay_bench_entry_batches_pops():
    from repro.perf.bench import run_suite

    row = run_suite(["graph-replay-jacobi"])["graph-replay-jacobi"]
    assert row["graph_launches"] > 0
    assert row["events_graphed"] > 0
    # ISSUE acceptance: >= 3x fewer host pops than the eager equivalent.
    assert row["pop_batching_factor"] >= 3.0
    assert row["events_graphed"] >= 3 * row["cluster_events_popped"]
    assert row["msg_digest"]


def test_goodput_monotone_niceness():
    """Goodput grows with kernel size for the traditional model."""
    g_small = measure_p2p_goodput(4, "sendrecv", ONE_NODE)
    g_large = measure_p2p_goodput(256, "sendrecv", ONE_NODE)
    assert g_large > g_small
