"""Fig 4: intra-node goodput of the three communication models.

Paper claims reproduced here:

* Kernel Copy beats both the Progression Engine and traditional
  Send/Recv at *every* kernel size;
* the Progression Engine wins up to ~2K grids (max ~1.28x) and is
  penalty-free (~1.0x) beyond;
* Kernel Copy peaks at ~2.34x for small kernels and still gives ~1.06x
  at a 32K grid;
* goodput stays below the 150 GB/s NVLink unidirectional bound.
"""

from conftest import run_exhibit, within

from repro.bench import figures

GRIDS = (1, 16, 256, 2048, 32768)


def test_fig4_intranode(benchmark):
    series = run_exhibit(benchmark, figures.fig4, grids=GRIDS)

    for row in series.rows:
        assert row["kernel_copy"] >= row["progression"] * 0.999, (
            f"KC must dominate PE at grid {row['grid']}"
        )
        assert row["progression"] >= row["sendrecv"] * 0.98, (
            f"PE must not lose to send/recv at grid {row['grid']}"
        )
        assert row["kernel_copy"] < 150.0, "goodput cannot exceed the NVLink bound"

    small = series.rows[0]
    within(small["pe_speedup"], 1.1, 1.45, "PE speedup at grid 1 (paper max 1.28x)")
    within(small["kc_speedup"], 2.0, 2.7, "KC speedup at grid 1 (paper max 2.34x)")

    large = series.rows[-1]
    within(large["pe_speedup"], 0.98, 1.15, "PE speedup at 32K (paper ~1.0x)")
    within(large["kc_speedup"], 1.0, 1.15, "KC speedup at 32K (paper 1.06x)")

    # The PE advantage must decay with kernel size (crossover to ~1.0).
    pe = series.column("pe_speedup")
    assert pe[0] > pe[-1], "PE speedup must shrink as kernels grow"
