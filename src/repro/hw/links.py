"""Link model: latency + bandwidth + FIFO occupancy + mutable health.

A :class:`Link` is one *direction* of a physical channel (NVLink pair
direction, C2C up/down, NIC ingress/egress, HBM port).  Transfers acquire
the link's port for their serialization time (``nbytes / bandwidth``), so
concurrent transfers on one link queue FIFO — a deterministic approximation
of bandwidth sharing.  Wire latency is charged after serialization
(cut-through pipelining), so back-to-back transfers overlap latency.

:class:`LinkState` is the *only* legal mutation surface for fabric health
(``down_link`` / ``restore_link`` / ``degrade_bandwidth``): every mutation
bumps a monotonic fabric **epoch** that route caches and captured plans
compare against, and arms the dataplane's guarded execution path.  Direct
writes to link fields outside this API are flagged by the
``fabric-mutation-bypass`` lint (DESIGN.md §17).

:class:`repro.hw.topology.Fabric` composes links into routes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import Resource


class Link:
    """One direction of a channel with FIFO-shared bandwidth.

    ``overhead`` is a fixed per-message port occupancy (header processing,
    doorbell ring, cacheline-granular write): bulk transfers pay it once,
    while storms of tiny messages (e.g. per-thread flag writes over C2C)
    serialize at ``overhead`` each — which is exactly the effect the paper's
    Fig 3 measures.

    ``kind`` names the link's telemetry class (``"nvlink"``, ``"switch"``,
    ``"nic_out"``, ...); :mod:`repro.bench.telemetry` aggregates counters by
    it.  ``stage`` is the link's rank in the hierarchical acquisition order
    (tx < nic_out < nic_in < rx): every route acquires links in strictly
    increasing stage, which keeps concurrent transfers deadlock-free.
    """

    __slots__ = (
        "engine",
        "name",
        "bandwidth",
        "base_bandwidth",
        "latency",
        "overhead",
        "kind",
        "stage",
        "port",
        "up",
        "outstanding_bytes",
        "bytes_carried",
        "n_transfers",
    )

    def __init__(
        self,
        engine: Engine,
        name: str,
        bandwidth: float,
        latency: float,
        overhead: float = 0.0,
        kind: str = "",
        stage: int = 0,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"link {name}: bandwidth must be positive")
        if latency < 0:
            raise ValueError(f"link {name}: negative latency")
        if overhead < 0:
            raise ValueError(f"link {name}: negative overhead")
        self.engine = engine
        self.name = name
        self.bandwidth = bandwidth
        #: Healthy-fabric bandwidth; ``bandwidth`` is the live (possibly
        #: degraded) value.  Mutated only through :class:`LinkState`.
        self.base_bandwidth = bandwidth
        self.latency = latency
        self.overhead = overhead
        self.kind = kind or name
        self.stage = stage
        self.port = Resource(engine, capacity=1, name=f"{name}.port")
        #: Link health; a down link refuses new acquisitions (transfers
        #: already past acquisition drain normally).
        self.up = True
        #: Deterministic congestion signal: bytes submitted to routes
        #: through this link and not yet completed (dataplane-maintained).
        self.outstanding_bytes = 0
        self.bytes_carried = 0
        self.n_transfers = 0

    def serialization_time(self, nbytes: int) -> float:
        return self.overhead + nbytes / self.bandwidth

    def account(self, nbytes: int, t0: Optional[float] = None, transfers: int = 1) -> None:
        """Count ``nbytes`` carried (telemetry) and publish the busy span.

        ``t0`` is when the payload started occupying the link (defaults to
        now, i.e. a zero-length span for instantaneous accounting).
        """
        self.bytes_carried += nbytes
        self.n_transfers += transfers
        obs = self.engine.obs
        if obs is not None:
            now = self.engine.now
            obs.span(
                "link", self.name, None,
                now if t0 is None else t0, now,
                kind=self.kind, nbytes=nbytes, transfers=transfers,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} bw={self.bandwidth:.3g}B/s lat={self.latency:.3g}s>"


class LinkDownError(RuntimeError):
    """A transfer hit a downed link before fully acquiring its route.

    Raised inside :func:`transfer_process`; the dataplane's guarded
    execution path catches it and re-routes (or returns a typed
    :class:`~repro.dataplane.plane.FabricFault` when no route survives).
    """

    def __init__(self, link: Link) -> None:
        super().__init__(f"link {link.name} is down")
        self.link = link


class LinkState:
    """The mutation API for one fabric's link health (DESIGN.md §17).

    Every mutation bumps ``epoch`` — the monotonic fabric version that the
    route caches (:meth:`repro.hw.topology.Fabric.route`,
    ``Dataplane.disjoint_routes``) and epoch-stamped captured plans
    (:class:`repro.dataplane.graph.PlanCache`) compare against — and sets
    ``armed``, switching the dataplane onto its guarded (retry-capable)
    stripe execution.  An unarmed fabric never pays a guard: the default
    healthy-fabric event stream is bit-identical to the pre-LinkState code.

    Mutations are deterministic simulated-time actions: a
    :class:`~repro.hw.faults.FaultSchedule` installs them as ordinary
    engine timeouts, so sequential and sharded drivers observe the same
    fabric history.
    """

    __slots__ = ("engine", "epoch", "armed", "_by_name")

    def __init__(self, engine: Engine, links: Sequence[Link]) -> None:
        self.engine = engine
        self.epoch = 0
        self.armed = False
        self._by_name: Dict[str, Link] = {}
        for link in links:
            # Well-formed graphs have unique names; on a collision keep the
            # first so lookups stay deterministic, mutations hit one link.
            self._by_name.setdefault(link.name, link)

    def find(self, name: str) -> Link:
        link = self._by_name.get(name)
        if link is None:
            raise KeyError(
                f"no link named {name!r} in this fabric "
                f"({len(self._by_name)} links)"
            )
        return link

    def arm(self) -> None:
        """Switch the owning dataplane onto guarded stripe execution.

        Called when a fault schedule is installed, so the whole run —
        including transfers submitted before the first fault fires — uses
        one execution shape and repeats bit-identically.
        """
        self.armed = True

    def down_link(self, name: str) -> Link:
        """Take a link out of service; queued/new acquisitions abort."""
        link = self.find(name)
        link.up = False
        self._bump("link_down", link)
        return link

    def restore_link(self, name: str) -> Link:
        """Return a link to service at its healthy bandwidth."""
        link = self.find(name)
        link.up = True
        link.bandwidth = link.base_bandwidth
        self._bump("link_restore", link)
        return link

    def degrade_bandwidth(self, name: str, factor: float) -> Link:
        """Scale a link to ``factor`` × its healthy bandwidth (0 < f <= 1)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(
                f"degrade_bandwidth({name!r}): factor must be in (0, 1], "
                f"got {factor!r}"
            )
        link = self.find(name)
        link.bandwidth = link.base_bandwidth * factor
        self._bump("link_degrade", link, factor=factor)
        return link

    def _bump(self, action: str, link: Link, **payload) -> None:
        self.epoch += 1
        self.armed = True
        obs = self.engine.obs
        if obs is not None:
            obs.instant(
                "fabric", action, t=self.engine.now,
                link=link.name, kind=link.kind, epoch=self.epoch,
                up=link.up, bandwidth=link.bandwidth, **payload,
            )


def transfer_process(
    engine: Engine,
    route: Sequence[Link],
    nbytes: int,
    on_wire_done: Optional[Callable[[], None]] = None,
    ledger=None,
):
    """Generator process moving ``nbytes`` along ``route``.

    Cut-through model: the payload serializes at the *bottleneck* bandwidth
    while occupying every hop, then the total wire latency elapses, then
    ``on_wire_done`` runs (the caller copies payload data there) and the
    process returns.

    Routes are always traversed source->destination and links are
    direction-specific, so FIFO acquisition cannot deadlock.

    Fault semantics: a down link is checked before *and after* each port
    acquisition (a fault can land while the transfer waits in the port
    queue).  On a hit, every already-held port is released un-accounted
    and :class:`LinkDownError` propagates to the waiter — the dataplane's
    guarded path re-routes.  A transfer that has acquired its full route
    is in flight and always drains, even through a later fault.
    """
    # The caller charges the congestion signal synchronously at submit (so
    # same-instant submissions see each other's load); this process owns the
    # discharge — the finally covers completion, fault aborts, and kills.
    try:
        if not route:
            raise ValueError("empty route")
        if nbytes < 0:
            raise ValueError("negative transfer size")

        t_held = []
        held = []
        for link in route:
            if not link.up:
                for h in reversed(held):
                    h.port.release()
                raise LinkDownError(link)
            yield link.port.acquire()
            if not link.up:
                link.port.release()
                for h in reversed(held):
                    h.port.release()
                raise LinkDownError(link)
            held.append(link)
            t_held.append(engine.now)
        # Price after acquisition so a degraded bandwidth at grant time is
        # the one charged; float-identical to entry pricing when healthy.
        bottleneck = min(link.bandwidth for link in route)
        ser = max(link.overhead for link in route) + nbytes / bottleneck
        total_latency = sum(link.latency for link in route)
        yield engine.timeout(ser)
        for link, t0 in zip(route, t_held):
            link.account(nbytes, t0)
            link.port.release()
        yield engine.timeout(total_latency)
        if on_wire_done is not None:
            on_wire_done()
        return nbytes
    finally:
        if ledger is not None:
            ledger.discharge_links(route, nbytes)


def start_transfer(
    engine: Engine,
    route: Sequence[Link],
    nbytes: int,
    on_wire_done: Optional[Callable[[], None]] = None,
    name: str = "xfer",
    ledger=None,
) -> Event:
    """Spawn a transfer process; the returned process-event fires on arrival."""
    return engine.process(
        transfer_process(engine, route, nbytes, on_wire_done, ledger), name=name
    )
