"""Machine specs: route properties, route caching, spec-distinct routing.

The property sweep pins the routing invariants for *every* catalog spec:
routes exist for all endpoint combinations, never repeat a link (acyclic),
and acquire links in strictly increasing stage — the hierarchical order
(tx < nic_out < nic_in < rx) that makes concurrent transfers deadlock-free.
"""

import numpy as np
import pytest

from repro.cuda.ipc import IpcError, IpcMemHandle
from repro.hw.memory import Buffer, MemSpace
from repro.hw.params import PAPER_TESTBED
from repro.hw.spec import (
    GpuSpec,
    Interconnect,
    LinkClass,
    MachineSpec,
    NodeSpec,
    SpecError,
    as_spec,
    dgx_nvswitch_spec,
    gh200_spec,
    named_spec,
    pcie_nop2p_spec,
)
from repro.hw.spec.cli import validate_spec
from repro.hw.topology import Fabric, Topology
from repro.sim.engine import Engine
from repro.units import GBps, us

ALL_SPECS = [gh200_spec(2, 4), dgx_nvswitch_spec(1, 8), pcie_nop2p_spec(2, 2)]


def _fabric(spec):
    return Fabric(Engine(), spec)


def _buf(fab, space, gpu=None, node=None, n=8):
    if gpu is not None:
        node = fab.topo.node_of(gpu)
    return Buffer.alloc(n, space=space, node=node or 0, gpu=gpu)


def _endpoint_buffers(fab):
    """One buffer per (MemSpace, location) combination the spec offers."""
    bufs = []
    for g in range(fab.topo.n_gpus):
        bufs.append(_buf(fab, MemSpace.DEVICE, gpu=g))
        bufs.append(_buf(fab, MemSpace.UNIFIED, gpu=g))
    for node in range(fab.topo.n_nodes):
        bufs.append(_buf(fab, MemSpace.HOST, node=node))
        bufs.append(_buf(fab, MemSpace.PINNED, node=node))
    return bufs


# --------------------------------------------------------------------------
# Satellite: route property sweep over every spec and endpoint combination
# --------------------------------------------------------------------------

@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
def test_route_properties_all_endpoint_pairs(spec):
    fab = _fabric(spec)
    bufs = _endpoint_buffers(fab)
    for src in bufs:
        for dst in bufs:
            route = fab.route(src, dst)
            # Non-empty: every pair of locations is connected.
            assert route, f"{src!r} -> {dst!r} produced an empty route"
            # Acyclic: no link (port) is acquired twice.
            names = [link.name for link in route]
            assert len(set(names)) == len(names), names
            # Hierarchical acquisition: strictly increasing stages, so
            # concurrent transfers all climb the same ladder.
            stages = [link.stage for link in route]
            if src.location() != dst.location():
                assert stages == sorted(stages), list(zip(names, stages))
                assert len(set(stages)) == len(stages), list(zip(names, stages))


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
def test_cli_validator_agrees(spec):
    assert validate_spec(spec) == []


# --------------------------------------------------------------------------
# Acceptance: route resolution is cached (one search per location pair)
# --------------------------------------------------------------------------

def test_route_cache_computes_each_pair_exactly_once():
    fab = _fabric(gh200_spec(2, 4))
    a, b = _buf(fab, MemSpace.DEVICE, gpu=0), _buf(fab, MemSpace.DEVICE, gpu=5)
    assert fab.route_computations == 0
    first = fab.route(a, b)
    assert fab.route_computations == 1
    for _ in range(10):
        assert fab.route(a, b) is first
    assert fab.route_computations == 1
    # A different buffer at the *same* location hits the same cache entry.
    a2 = _buf(fab, MemSpace.DEVICE, gpu=0, n=64)
    assert fab.route(a2, b) is first
    assert fab.route_computations == 1
    # The reverse direction is a distinct pair (distinct link set).
    back = fab.route(b, a)
    assert fab.route_computations == 2
    assert {l.name for l in back}.isdisjoint({l.name for l in first})


def test_repeated_transfers_recompute_nothing():
    engine = Engine()
    fab = Fabric(engine, gh200_spec(1, 4))
    src, dst = _buf(fab, MemSpace.DEVICE, gpu=0), _buf(fab, MemSpace.DEVICE, gpu=1)
    for _ in range(5):
        engine.run(fab.transfer(src, dst))
    assert fab.route_computations == 1


# --------------------------------------------------------------------------
# Acceptance: the two non-GH200 specs route genuinely differently
# --------------------------------------------------------------------------

def test_nvswitch_d2d_serializes_through_shared_ports():
    fab = _fabric(dgx_nvswitch_spec(1, 8))
    g0, g1, g2 = (_buf(fab, MemSpace.DEVICE, gpu=g) for g in range(3))
    r01, r02 = fab.route(g0, g1), fab.route(g0, g2)
    # Two hops through the switch: source up-port then destination down-port.
    assert [l.name for l in r01] == ["swup0", "swdn1"]
    assert [l.name for l in r02] == ["swup0", "swdn2"]
    # Fan-out from one GPU shares its *single* up-port (the serialization
    # a pair mesh does not have).
    assert r01[0] is r02[0]
    # The pair mesh, by contrast, uses independent links per destination.
    mesh = _fabric(gh200_spec(1, 4))
    m01 = mesh.route(_buf(mesh, MemSpace.DEVICE, gpu=0), _buf(mesh, MemSpace.DEVICE, gpu=1))
    m02 = mesh.route(_buf(mesh, MemSpace.DEVICE, gpu=0), _buf(mesh, MemSpace.DEVICE, gpu=2))
    assert len(m01) == 1 and len(m02) == 1 and m01[0] is not m02[0]


def test_nop2p_d2d_stages_through_host():
    fab = _fabric(pcie_nop2p_spec(2, 2))
    g0, g1 = _buf(fab, MemSpace.DEVICE, gpu=0), _buf(fab, MemSpace.DEVICE, gpu=1)
    # Same node, but no P2P: the payload bounces through host PCIe links.
    assert [l.name for l in fab.route(g0, g1)] == ["pcie_d2h0", "pcie_h2d1"]
    # And the peers cannot IPC-map each other despite sharing the node.
    assert fab.topo.same_node(0, 1)
    assert not fab.topo.can_peer_map(0, 1)


def test_nop2p_inter_node_shares_the_node_nic():
    fab = _fabric(pcie_nop2p_spec(2, 2))
    g0 = _buf(fab, MemSpace.DEVICE, gpu=0)
    g2, g3 = _buf(fab, MemSpace.DEVICE, gpu=2), _buf(fab, MemSpace.DEVICE, gpu=3)
    r02, r03 = fab.route(g0, g2), fab.route(g0, g3)
    # No GPUDirect: egress through host PCIe into the shared node NIC.
    assert [l.name for l in r02] == ["pcie_d2h0", "ib_out_n0", "ib_in_n1", "pcie_h2d2"]
    assert r02[1] is r03[1]  # both destinations funnel through one NIC
    # GH200 (NIC per superchip) goes device-direct instead.
    gh = _fabric(gh200_spec(2, 1))
    direct = gh.route(_buf(gh, MemSpace.DEVICE, gpu=0), _buf(gh, MemSpace.DEVICE, gpu=1))
    assert [l.name for l in direct] == ["ib_out0", "ib_in1"]


def test_nop2p_rejects_ipc_open_even_intra_node():
    fab = _fabric(pcie_nop2p_spec(2, 2))
    owned = _buf(fab, MemSpace.DEVICE, gpu=1)
    handle = IpcMemHandle(owned)
    with pytest.raises(IpcError, match="peer-to-peer"):
        handle.open(fab.topo, 0)
    # Cross-node keeps the historical wording.
    with pytest.raises(IpcError, match="different nodes"):
        handle.open(fab.topo, 2)


def test_switch_peers_can_ipc_map():
    topo = Topology(dgx_nvswitch_spec(1, 8))
    assert topo.can_peer_map(0, 7)
    assert topo.can_peer_map(3, 3)


# --------------------------------------------------------------------------
# Spec schema and coercion
# --------------------------------------------------------------------------

def test_legacy_config_coerces_to_gh200_spec():
    spec = as_spec(PAPER_TESTBED)
    assert spec.name == "gh200-2x4"
    assert spec.n_nodes == 2 and spec.n_gpus == 8
    assert spec.params == PAPER_TESTBED.params
    # Idempotent on an actual spec.
    assert as_spec(spec) is spec


def test_named_spec_lookup():
    assert named_spec("dgx-nvswitch").nodes[0].interconnect is Interconnect.SWITCH
    with pytest.raises(SpecError, match="unknown machine spec"):
        named_spec("cray-ex")


def test_schema_rejects_inconsistent_nodes():
    hbm = LinkClass("hbm", 3000 * GBps, 0.05 * us)
    pcie = LinkClass("pcie", 24 * GBps, 1.8 * us)
    host = LinkClass("hostmem", 400 * GBps, 0.05 * us)
    with pytest.raises(SpecError, match="needs a d2d"):
        NodeSpec(
            gpus=(GpuSpec(),), interconnect=Interconnect.SWITCH,
            hbm=hbm, d2h=pcie, h2d=pcie, hostmem=host, d2d=None,
        )
    with pytest.raises(SpecError, match="must not define"):
        NodeSpec(
            gpus=(GpuSpec(),), interconnect=Interconnect.HOST_STAGED,
            hbm=hbm, d2h=pcie, h2d=pcie, hostmem=host, d2d=pcie,
        )
    with pytest.raises(SpecError, match="bandwidth"):
        LinkClass("bad", 0.0, 1.0 * us)
    with pytest.raises(SpecError, match="at least one node"):
        MachineSpec(name="empty", nodes=(), nic_out=pcie, nic_in=pcie)


def test_per_gpu_constants_reach_the_device():
    from repro.mpi.world import World

    world = World(pcie_nop2p_spec(2, 2))
    assert all(d.cost.sm_count == 108 for d in world.devices)
    assert world.devices[0].cost.hbm_bw == 1500 * GBps
    gh = World(gh200_spec(1, 4))
    assert gh.devices[0].cost.sm_count == 132  # model default preserved


def test_world_runs_on_every_catalog_spec():
    from repro.mpi.world import World

    def main(ctx):
        n = 256
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(n, fill=3.0)
            yield from ctx.comm.send(sbuf, dest=1, tag=0)
        else:
            rbuf = ctx.gpu.alloc(n)
            yield from ctx.comm.recv(rbuf, source=0, tag=0)
            assert np.all(rbuf.data == 3.0)

    for spec in ALL_SPECS:
        World(spec).run(main, nprocs=2)
