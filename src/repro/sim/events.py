"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot occurrence: it is *pending* until it is
either :meth:`~Event.succeed`-ed with a value or :meth:`~Event.fail`-ed with
an exception, at which point every registered callback fires exactly once.
Processes wait on events by ``yield``-ing them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

# Scheduling priorities: lower fires first at equal simulated time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2


class Event:
    """A one-shot occurrence that processes can wait for.

    Events move through three states: *pending* -> *triggered* (scheduled on
    the engine heap) -> *processed* (callbacks have run).  ``value`` holds
    the success payload or the failure exception.
    """

    __slots__ = (
        "engine", "callbacks", "_value", "_ok", "_triggered", "_processed",
        "_cancelled",
    )

    _PENDING = object()

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._cancelled = False

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded/failed."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is Event._PENDING:
            raise RuntimeError("event value is not yet available")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Mark the event successful and schedule its callbacks now."""
        if self._triggered:
            raise RuntimeError("event has already been triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.engine._schedule_event(self, priority)
        return self

    def fail(self, exc: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Mark the event failed; waiters will see ``exc`` raised."""
        if self._triggered:
            raise RuntimeError("event has already been triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() expects an exception, got {exc!r}")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.engine._schedule_event(self, priority)
        return self

    def cancel(self) -> bool:
        """Lazily delete a scheduled-but-unprocessed event from the heap.

        The heap entry stays put (removing from the middle of a binary heap
        is O(n)); the engine skips it on pop without advancing time or
        running callbacks, and :meth:`Engine.peek` never reports it.  Only
        an event with no remaining waiters should be cancelled — callbacks
        registered on it will silently never fire.  Returns True when the
        event was actually pending on the heap.
        """
        if not self._triggered or self._processed or self._cancelled:
            return False
        self._cancelled = True
        return True

    # -- engine internals ---------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for cb in callbacks:
                cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb``; runs immediately if the event already processed."""
        if self.callbacks is None:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        engine._schedule_event(self, PRIORITY_NORMAL, delay=delay)


#: Upper bound on an engine's timeout free-list (see Engine._timeout_pool).
POOL_MAX = 256


class _PooledTimeout(Timeout):
    """A recyclable timeout for the process-coercion hot path.

    ``Process._coerce`` turns every ``yield <number>`` / ``yield None``
    into a fresh Timeout that is waited on exactly once and becomes
    garbage the moment its callbacks ran.  Pooled timeouts return
    themselves to their engine's free-list instead, so the Figs 4-7
    sweeps stop churning allocations.  They are engine-internal: nothing
    outside :class:`~repro.sim.process.Process` may hold one past its
    firing, because the object is reborn as a different timeout.
    """

    __slots__ = ()

    def _run_callbacks(self) -> None:
        Event._run_callbacks(self)
        pool = self.engine._timeout_pool
        if len(pool) < POOL_MAX:
            self.callbacks = []
            self._value = Event._PENDING
            self._ok = True
            self._triggered = False
            self._processed = False
            self._cancelled = False
            pool.append(self)


class ConditionError(Exception):
    """Raised on a waiter when a sub-event of a condition failed."""


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_n_done")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events: List[Event] = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev.engine is not engine:
                raise ValueError("all condition events must share one engine")
            ev.add_callback(self._on_sub_event)

    def _on_sub_event(self, ev: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> List[Any]:
        return [ev.value for ev in self.events if ev.triggered and ev.ok]


class AllOf(_Condition):
    """Fires when *all* sub-events have fired; value is their value list.

    Fails as soon as any sub-event fails.
    """

    __slots__ = ()

    def _on_sub_event(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value if isinstance(ev.value, BaseException) else ConditionError(repr(ev)))
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed([e.value for e in self.events])


class AnyOf(_Condition):
    """Fires when the *first* sub-event fires; value is that event's value."""

    __slots__ = ()

    def _on_sub_event(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value if isinstance(ev.value, BaseException) else ConditionError(repr(ev)))
            return
        self.succeed(ev.value)
