"""World/launcher: rank placement, init costs, request plumbing."""

import pytest

from repro.hw.params import ONE_NODE, PAPER_TESTBED
from repro.mpi.errors import MpiUsageError
from repro.mpi.requests import Request, waitall
from repro.mpi.world import World
from repro.units import us


def test_rank_to_gpu_mapping():
    """Rank r runs on GPU r: ranks 0-3 node 0, ranks 4-7 node 1."""

    def main(ctx):
        yield ctx.engine.timeout(0)
        return (ctx.rank, ctx.gpu.gpu_id, ctx.gpu.node)

    res = World(PAPER_TESTBED).run(main, nprocs=8)
    for r, gpu_id, node in res:
        assert gpu_id == r
        assert node == (0 if r < 4 else 1)


def test_results_ordered_by_rank():
    def main(ctx):
        yield ctx.engine.timeout((8 - ctx.rank) * us)  # finish out of order
        return ctx.rank

    assert World(PAPER_TESTBED).run(main, nprocs=8) == list(range(8))


def test_nprocs_bounds():
    def main(ctx):
        yield ctx.engine.timeout(0)

    with pytest.raises(MpiUsageError):
        World(ONE_NODE).run(main, nprocs=5)
    with pytest.raises(MpiUsageError):
        World(ONE_NODE).run(main, nprocs=0)


def test_args_passed_through():
    def main(ctx, a, b):
        yield ctx.engine.timeout(0)
        return a + b + ctx.rank

    assert World(ONE_NODE).run(main, nprocs=2, args=(10, 20)) == [30, 31]


def test_init_charges_time():
    def main(ctx):
        yield ctx.engine.timeout(0)
        return ctx.now

    times = World(ONE_NODE).run(main, nprocs=2)
    # MPI_Init (ucp context + worker) takes ~10us before main body runs.
    assert all(t >= 9 * us for t in times)


def test_ctx_fields():
    def main(ctx):
        yield ctx.engine.timeout(0)
        assert ctx.size == 3
        assert ctx.comm.size == 3
        assert ctx.comm.rank == ctx.rank
        assert ctx.mpi.initialized
        assert ctx.params is ctx.world.fabric.config.params
        return True

    assert all(World(ONE_NODE).run(main, nprocs=3))


def test_request_double_complete_rejected(one_node_world):
    rt_holder = {}

    def main(ctx):
        yield ctx.engine.timeout(0)
        rt_holder["rt"] = ctx.mpi
        return True

    one_node_world.run(main, nprocs=1)
    req = Request(rt_holder["rt"], "test")
    req._complete()
    from repro.mpi.errors import MpiStateError

    with pytest.raises(MpiStateError):
        req._complete()


def test_waitall_empty_and_completed(one_node_world):
    def main(ctx):
        sreq = yield from ctx.comm.isend(ctx.gpu.alloc_pinned(4), dest=1)
        yield from waitall(ctx.mpi, [sreq])
        yield from waitall(ctx.mpi, [])  # no-op
        return True

    def main2(ctx):
        if ctx.rank == 0:
            return (yield from main(ctx))
        rbuf = ctx.gpu.alloc_pinned(4)
        yield from ctx.comm.recv(rbuf, source=0)
        return True

    assert all(one_node_world.run(main2, nprocs=2))


def test_two_sequential_jobs_on_separate_worlds():
    def main(ctx):
        yield from ctx.comm.barrier()
        return ctx.now

    t1 = World(ONE_NODE).run(main, nprocs=4)
    t2 = World(ONE_NODE).run(main, nprocs=4)
    assert t1 == t2  # determinism across identical worlds
