"""Kernel descriptions: exact per-block bodies and analytic uniform kernels.

Two flavours (see DESIGN.md and the package docstring):

:class:`BlockKernel`
    ``body(blk)`` is a generator executed once *per block* under the SM
    wave scheduler, with a :class:`~repro.cuda.devapi.BlockCtx` exposing
    device-side actions.  Exact but O(grid) coroutines — use for small
    grids and semantics tests (e.g. the paper's Fig 3 single-block sweep).

:class:`UniformKernel`
    All blocks perform identical ``work``; execution follows the analytic
    wave plan of :class:`~repro.cuda.timing.CostModel`, and an optional
    ``wave_hook(kctx, wave)`` runs at each wave's completion time to apply
    aggregate device-side effects (bulk ``MPIX_Pready`` signalling, kernel
    copies).  O(waves) events — use for the paper's large-grid sweeps.

Both flavours may carry ``apply``: a host-side NumPy function producing the
kernel's *numerical* result.  It runs when the kernel starts executing, so
any data a device-side copy forwards later in simulated time is already
materialized.  (No other process may mutate kernel inputs while the kernel
is in flight — the simulator asserts stream ordering, which gives the same
guarantee real CUDA streams do.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Sequence

from repro.cuda.timing import CostModel, WorkSpec


@dataclass(frozen=True)
class Wave:
    """One wave of a uniform kernel's execution (passed to wave hooks)."""

    index: int
    blocks: range          # global block ids completing in this wave
    start_time: float      # simulated time the wave began
    end_time: float        # simulated time the wave's blocks completed

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)


class KernelBase:
    """Shared geometry/validation for both kernel flavours."""

    def __init__(
        self,
        grid: int,
        block: int,
        name: str = "kernel",
        apply: Optional[Callable[[], Any]] = None,
    ) -> None:
        if grid < 1:
            raise ValueError(f"grid must be >= 1, got {grid}")
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self.grid = grid
        self.block = block
        self.name = name
        self.apply = apply

    @property
    def n_threads(self) -> int:
        return self.grid * self.block

    # -- sanitizer identity ------------------------------------------------
    def actor(self, device) -> tuple:
        """Trace identity of this kernel's aggregate (wave) context."""
        return ("kernel", device.name, self.name)

    def block_actor(self, device, block_id: int) -> tuple:
        """Trace identity of one block of this kernel on ``device``."""
        return ("block", device.name, self.name, block_id)

    def validate(self, cost: CostModel) -> None:
        if self.block > cost.max_block_threads:
            raise ValueError(
                f"block size {self.block} exceeds device max {cost.max_block_threads}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} <<<{self.grid},{self.block}>>>>"


class BlockKernel(KernelBase):
    """Kernel with an exact per-block generator body.

    ``body`` receives a :class:`~repro.cuda.devapi.BlockCtx`; it must be a
    generator (it *yields* device actions).  Example::

        def body(blk):
            yield blk.compute(WorkSpec.vector_add())
            yield blk.pready_block(preq, blk.block_id)

        kernel = BlockKernel(grid=4, block=1024, body=body)
    """

    def __init__(
        self,
        grid: int,
        block: int,
        body: Callable[["Any"], Generator],
        name: str = "block_kernel",
        apply: Optional[Callable[[], Any]] = None,
    ) -> None:
        super().__init__(grid, block, name, apply)
        self.body = body


class UniformKernel(KernelBase):
    """Analytically-timed kernel of identical blocks.

    ``wave_hook(kctx, wave)`` (optional) is invoked, as plain non-blocking
    code, at each wave's completion time; use the bulk device APIs on
    ``kctx`` to schedule communication effects.
    """

    def __init__(
        self,
        grid: int,
        block: int,
        work: WorkSpec,
        wave_hook: Optional[Callable[[Any, Wave], None]] = None,
        name: str = "uniform_kernel",
        apply: Optional[Callable[[], Any]] = None,
    ) -> None:
        super().__init__(grid, block, name, apply)
        self.work = work
        self.wave_hook = wave_hook
