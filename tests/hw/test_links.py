"""Link model: serialization, latency, FIFO sharing, accounting."""

import pytest

from repro.hw.links import Link, start_transfer
from repro.sim.engine import Engine


def test_link_validation(engine):
    with pytest.raises(ValueError):
        Link(engine, "bad", bandwidth=0, latency=0)
    with pytest.raises(ValueError):
        Link(engine, "bad", bandwidth=1, latency=-1)
    with pytest.raises(ValueError):
        Link(engine, "bad", bandwidth=1, latency=0, overhead=-1)


def test_serialization_time():
    eng = Engine()
    link = Link(eng, "l", bandwidth=100.0, latency=0.5, overhead=0.1)
    assert link.serialization_time(1000) == pytest.approx(0.1 + 10.0)


def test_single_transfer_timing(engine):
    link = Link(engine, "l", bandwidth=100.0, latency=2.0)
    done = start_transfer(engine, [link], nbytes=500)
    engine.run(done)
    # serialization 5.0 then latency 2.0
    assert engine.now == pytest.approx(7.0)


def test_transfers_share_bandwidth_fifo(engine):
    link = Link(engine, "l", bandwidth=100.0, latency=0.0)
    ends = []
    for _ in range(3):
        ev = start_transfer(engine, [link], nbytes=100)
        ev.add_callback(lambda e: ends.append(engine.now))
    engine.run()
    assert ends == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


def test_latency_overlaps_between_transfers(engine):
    """Cut-through: the second transfer serializes while the first's
    latency elapses."""
    link = Link(engine, "l", bandwidth=100.0, latency=10.0)
    ends = []
    for _ in range(2):
        start_transfer(engine, [link], nbytes=100).add_callback(
            lambda e: ends.append(engine.now)
        )
    engine.run()
    assert ends == [pytest.approx(11.0), pytest.approx(12.0)]


def test_multihop_bottleneck(engine):
    fast = Link(engine, "fast", bandwidth=1000.0, latency=1.0)
    slow = Link(engine, "slow", bandwidth=10.0, latency=2.0)
    done = start_transfer(engine, [fast, slow], nbytes=100)
    engine.run(done)
    # bottleneck ser 10.0 + total latency 3.0
    assert engine.now == pytest.approx(13.0)


def test_overhead_charged_once_per_message(engine):
    link = Link(engine, "l", bandwidth=1e9, latency=0.0, overhead=1.0)
    done = start_transfer(engine, [link], nbytes=8)
    engine.run(done)
    assert engine.now == pytest.approx(1.0, abs=1e-6)


def test_byte_accounting(engine):
    link = Link(engine, "l", bandwidth=100.0, latency=0.0)
    for n in (10, 20, 30):
        start_transfer(engine, [link], nbytes=n)
    engine.run()
    assert link.bytes_carried == 60
    assert link.n_transfers == 3


def test_on_wire_done_callback_sees_arrival_time(engine):
    link = Link(engine, "l", bandwidth=100.0, latency=5.0)
    seen = []
    start_transfer(engine, [link], nbytes=100, on_wire_done=lambda: seen.append(engine.now))
    engine.run()
    assert seen == [pytest.approx(6.0)]


def test_empty_route_rejected(engine):
    from repro.hw.links import transfer_process

    with pytest.raises(ValueError):
        engine.run(engine.process(transfer_process(engine, [], 10)))


def test_negative_size_rejected(engine):
    link = Link(engine, "l", bandwidth=1.0, latency=0.0)
    from repro.hw.links import transfer_process

    with pytest.raises(ValueError):
        engine.run(engine.process(transfer_process(engine, [link], -5)))
