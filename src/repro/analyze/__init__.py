"""repro.analyze — whole-program static analysis (DESIGN.md §13).

One :class:`~repro.analyze.model.Project` (module table, symbol tables,
call graph, per-function CFGs) shared by four pass families:

* ``invariant``   — the repo-invariant lint rules migrated off
  :mod:`repro.san.lint` (same rule ids, same findings);
* ``effects``     — DES coroutine effect checking: what can each
  simulation process generator yield, and are created waiters always
  awaited on every path;
* ``determinism`` — unordered-iteration / unseeded-RNG / id()-ordering /
  float-accumulation hazards;
* ``hb-static``   — a static happens-before approximation for the
  partitioned-communication data paths.

Entry point: ``python -m repro analyze`` (:mod:`repro.analyze.cli`).
"""

from repro.analyze.model import Project  # noqa: F401
from repro.analyze.rules import Finding, Pass, Rule  # noqa: F401
