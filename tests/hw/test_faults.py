"""LinkState mutation API, fault schedules, and epoch-aware routing."""

import pytest

from repro.hw import faults as hw_faults
from repro.hw.faults import FaultError, FaultEvent, FaultSchedule, fault_schedule
from repro.hw.links import LinkDownError, start_transfer
from repro.hw.memory import Buffer, MemSpace
from repro.hw.spec.generators import resolve_machine
from repro.hw.topology import Fabric, RouteError
from repro.sim.engine import Engine


def _mk(machine="gh200-1x4"):
    engine = Engine()
    return engine, Fabric(engine, resolve_machine(machine))


def dev(fab, gpu, n=8, fill=None):
    return Buffer.alloc(
        n, space=MemSpace.DEVICE, node=fab.topo.node_of(gpu), gpu=gpu, fill=fill
    )


# -- LinkState mutation API ---------------------------------------------------

def test_linkstate_down_restore_degrade_bump_epoch():
    _e, fab = _mk()
    state = fab.link_state
    assert state.epoch == 0 and not state.armed
    link = state.down_link("nvl0->1")
    assert not link.up and state.epoch == 1 and state.armed
    state.restore_link("nvl0->1")
    assert link.up and link.bandwidth == link.base_bandwidth
    assert state.epoch == 2
    state.degrade_bandwidth("nvl0->1", 0.25)
    assert link.bandwidth == pytest.approx(0.25 * link.base_bandwidth)
    assert link.up  # degraded, not down
    assert state.epoch == 3


def test_linkstate_restore_clears_degradation():
    _e, fab = _mk()
    state = fab.link_state
    state.degrade_bandwidth("nvl0->1", 0.5)
    state.restore_link("nvl0->1")
    assert state.find("nvl0->1").bandwidth == state.find("nvl0->1").base_bandwidth


def test_linkstate_rejects_unknown_names_and_bad_factors():
    _e, fab = _mk()
    with pytest.raises(KeyError, match="no link named 'nope'"):
        fab.link_state.down_link("nope")
    with pytest.raises(ValueError, match="factor must be in"):
        fab.link_state.degrade_bandwidth("nvl0->1", 0.0)
    with pytest.raises(ValueError, match="factor must be in"):
        fab.link_state.degrade_bandwidth("nvl0->1", 1.5)


class _Tap:
    def __init__(self):
        self.events = []

    def on_event(self, ev):
        self.events.append(ev)


def test_mutation_emits_obs_instants():
    from repro.obs.bus import Bus

    engine, fab = _mk()
    bus = Bus()
    tap = _Tap()
    bus.subscribe(tap)
    engine.obs = bus
    fab.link_state.down_link("nvl0->1")
    fab.link_state.degrade_bandwidth("nvl2->3", 0.5)
    fabric_evs = [e for e in tap.events if e.cat == "fabric"]
    assert [e.name for e in fabric_evs] == ["link_down", "link_degrade"]
    assert fabric_evs[0].get("link") == "nvl0->1"
    assert fabric_evs[0].get("epoch") == 1
    assert fabric_evs[1].get("factor") == 0.5


# -- transfers over mutated links ---------------------------------------------

def test_transfer_over_down_link_raises_linkdownerror():
    engine, fab = _mk()
    fab.link_state.down_link("nvl0->1")
    route = (fab.link_state.find("nvl0->1"),)

    def body():
        try:
            yield start_transfer(engine, route, 4096)
        except LinkDownError as exc:
            return exc.link.name
        return None

    done = engine.process(body(), name="t")
    engine.run()
    assert done.ok and done.value == "nvl0->1"


def test_degraded_link_prices_at_grant_time_bandwidth():
    engine, fab = _mk()
    src, dst = dev(fab, 0), dev(fab, 1)

    def timed():
        t0 = engine.now
        yield fab.dataplane.put(src, dst)
        return engine.now - t0

    healthy = engine.process(timed(), name="h")
    engine.run()

    engine2, fab2 = _mk()
    fab2.link_state.degrade_bandwidth("nvl0->1", 0.5)
    src2, dst2 = dev(fab2, 0), dev(fab2, 1)

    def timed2():
        t0 = engine2.now
        yield fab2.dataplane.put(src2, dst2)
        return engine2.now - t0

    degraded = engine2.process(timed2(), name="d")
    engine2.run()
    assert degraded.value > healthy.value


def test_route_cache_invalidates_on_epoch_bump():
    _e, fab = _mk()
    src, dst = dev(fab, 0), dev(fab, 1)
    before = fab.route(src, dst)
    assert "nvl0->1" in [l.name for l in before]
    fab.link_state.down_link("nvl0->1")
    after = fab.route(src, dst)
    assert "nvl0->1" not in [l.name for l in after]
    assert all(l.up for l in after)


def test_no_route_when_all_paths_severed():
    _e, fab = _mk("gh200-2x1")  # one gpu per node: nic is the only path
    state = fab.link_state
    src, dst = dev(fab, 0), dev(fab, 1)
    fab.route(src, dst)  # resolvable while healthy
    state.down_link("ib_out0")
    with pytest.raises(RouteError):
        fab.route(src, dst)


# -- FaultSchedule parsing ----------------------------------------------------

def test_schedule_parses_and_round_trips():
    text = """
# comment
{"t": 0.001, "link": "nvl0->1", "action": "down"}
{"t": 0.002, "link": "nvl0->1", "action": "restore"}
{"t": 0.003, "link": "nvl2->3", "action": "degrade", "factor": 0.5, "node": 1}
"""
    sched = FaultSchedule.parse_jsonl(text, source="t.jsonl")
    assert len(sched) == 3
    rt = FaultSchedule.parse_jsonl(sched.to_jsonl(), source="rt")
    assert [e.as_dict() for e in rt] == [e.as_dict() for e in sched]


@pytest.mark.parametrize("line,fragment", [
    ('{"t": -1, "link": "a", "action": "down"}', "non-negative"),
    ('{"t": 1, "link": "", "action": "down"}', "non-empty link name"),
    ('{"t": 1, "link": "a", "action": "explode"}', "unknown action"),
    ('{"t": 1, "link": "a", "action": "degrade"}', "factor in"),
    ('{"t": 1, "link": "a", "action": "degrade", "factor": 2}', "factor in"),
    ('{"t": 1, "link": "a", "action": "down", "factor": 0.5}', "only applies"),
    ('{"t": 1, "link": "a", "action": "down", "bogus": 1}', "unknown field"),
    ('[1, 2]', "JSON object"),
    ('not json', "invalid JSON"),
])
def test_schedule_rejects_malformed_lines(line, fragment):
    with pytest.raises(FaultError, match="bad.jsonl:1"):
        try:
            FaultSchedule.parse_jsonl(line, source="bad.jsonl")
        except FaultError as exc:
            assert fragment in str(exc)
            raise


def test_empty_schedule_rejected():
    with pytest.raises(FaultError, match="empty fault schedule"):
        FaultSchedule.parse_jsonl("# nothing\n", source="e")


def test_for_shard_scopes_by_node():
    sched = FaultSchedule([
        FaultEvent(0.1, "swup0", "down", node=0),
        FaultEvent(0.2, "swup0", "down", node=1),
        FaultEvent(0.3, "hbm0", "degrade", factor=0.5),
    ])
    assert len(sched.for_shard(None)) == 3      # unsharded fabric: everything
    mine = sched.for_shard(1)
    assert [e.t for e in mine] == [0.2, 0.3]    # node 1 + unscoped


# -- ambient installation -----------------------------------------------------

def test_fabric_installs_ambient_schedule_as_timers():
    sched = FaultSchedule([FaultEvent(1e-3, "nvl0->1", "down")])
    with fault_schedule(sched):
        engine, fab = _mk()
    assert len(fab.fault_events) == 1
    assert fab.link_state.armed            # armed from t=0, epoch untouched
    assert fab.link_state.epoch == 0
    assert fab.link_state.find("nvl0->1").up
    engine.run()
    assert not fab.link_state.find("nvl0->1").up
    assert fab.link_state.epoch == 1


def test_past_events_apply_immediately_on_rebuild():
    engine = Engine()
    engine.timeout(5e-3)
    engine.run()                           # now = 5 ms
    sched = FaultSchedule([FaultEvent(1e-3, "nvl0->1", "down")])
    with fault_schedule(sched):
        fab = Fabric(engine, resolve_machine("gh200-1x4"))
    assert not fab.link_state.find("nvl0->1").up
    assert fab.fault_events == []          # nothing pending


def test_unknown_link_fails_at_install_not_midrun():
    sched = FaultSchedule([FaultEvent(1e-3, "nvl9->9", "down")])
    with fault_schedule(sched):
        with pytest.raises(KeyError, match="nvl9->9"):
            _mk()


def test_ambient_schedule_restores_previous_on_exit():
    a = FaultSchedule([FaultEvent(0.1, "x", "down")])
    b = FaultSchedule([FaultEvent(0.2, "y", "down")])
    assert hw_faults.active() is None
    with fault_schedule(a):
        assert hw_faults.active() is a
        with fault_schedule(b):
            assert hw_faults.active() is b
        assert hw_faults.active() is a
    assert hw_faults.active() is None


def test_fault_schedule_accepts_path(tmp_path):
    p = tmp_path / "f.jsonl"
    p.write_text('{"t": 0.5, "link": "nvl0->1", "action": "down"}\n')
    with fault_schedule(str(p)) as sched:
        assert len(sched) == 1 and sched.events[0].link == "nvl0->1"


def test_no_schedule_means_unarmed_fabric():
    _e, fab = _mk()
    assert not fab.link_state.armed
    assert fab.fault_events == []
