"""Fig 10: DL kernel (BCE + gradient allreduce) on four GH200.

Paper claims reproduced here:

* per-training-step time: traditional MPI_Allreduce >> partitioned
  allreduce > NCCL (the application is collective-bound);
* the partitioned path's measurement includes MPI_Start and
  MPIX_Pbuf_prepare (they recur inside the training loop).
"""

from conftest import run_exhibit

from repro.bench import figures

GRIDS = (256, 1024, 4096)


def test_fig10_dl_1node(benchmark):
    series = run_exhibit(benchmark, figures.fig10, grids=GRIDS)

    for row in series.rows:
        assert row["traditional_us"] > row["partitioned_us"] > row["nccl_us"], (
            f"ordering must hold at grid {row['grid']}"
        )
        assert row["traditional_us"] / row["partitioned_us"] > 2.0

    # Step time grows with gradient size for all variants.
    for col in ("traditional_us", "partitioned_us", "nccl_us"):
        vals = series.column(col)
        assert all(b > a for a, b in zip(vals, vals[1:])), f"{col} must grow with size"
