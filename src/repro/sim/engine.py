"""The discrete-event engine: a time-ordered heap of triggered events.

Time is a ``float`` in **seconds**.  Constants throughout the code base use
the helpers in :mod:`repro.units` (``us``, ``GiB`` …) to stay readable.

Determinism: heap entries are ``(time, priority, seq)``; ``seq`` is a
monotone counter so ties break by insertion order.  Nothing in the engine
consults wall-clock time or global randomness.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import Event, Timeout, PRIORITY_NORMAL
from repro.sim.process import Process, ProcessFailed
from repro.san import record


class EmptySchedule(Exception):
    """run() exhausted all events before reaching the requested time."""


class Engine:
    """Owns simulated time and the pending-event heap."""

    def __init__(self, trace: bool = False) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self._crashed: Optional[ProcessFailed] = None
        self.trace_enabled = trace
        self.trace_log: List[Tuple[float, str]] = []
        #: Optional hook called as ``on_step(time, priority, seq)`` for every
        #: popped event, in pop order.  The argument triple *is* the heap
        #: tie-break key — the determinism regression test hashes it.
        self.on_step: Optional[Callable[[float, int, int], None]] = None
        record.note_engine(self)

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        """Spawn ``gen`` as a process starting at the current time."""
        return Process(self, gen, name=name)

    # -- scheduling internals ---------------------------------------------------
    def _schedule_event(self, ev: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, ev))

    def _crash(self, process: Process, exc: BaseException) -> None:
        if self._crashed is None:
            self._crashed = ProcessFailed(process, exc)

    def trace(self, msg: str) -> None:
        """Record a trace line at the current simulated time (if enabled)."""
        if self.trace_enabled:
            self.trace_log.append((self._now, msg))

    # -- main loop ------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        time, _prio, _seq, ev = heapq.heappop(self._heap)
        if time < self._now:  # pragma: no cover - defensive
            raise RuntimeError("time went backwards")
        self._now = time
        if self.on_step is not None:
            self.on_step(time, _prio, _seq)
        ev._run_callbacks()
        if self._crashed is not None:
            crashed, self._crashed = self._crashed, None
            raise crashed

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until ``until`` (an Event, a time, or None for exhaustion).

        Returns the event's value when ``until`` is an Event.  Raises
        :class:`~repro.sim.process.ProcessFailed` if an unwaited process
        crashed, or the original exception if ``until`` itself failed.
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            done = []
            until.add_callback(done.append)
            while not done:
                if not self._heap:
                    raise EmptySchedule(
                        f"no more events at t={self._now}; target event never fired"
                    )
                self.step()
            if until.ok:
                return until.value
            exc = until.value
            raise exc if isinstance(exc, BaseException) else RuntimeError(repr(exc))

        # numeric horizon
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"cannot run to the past: {horizon} < {self._now}")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self._now:.9f} pending={len(self._heap)}>"
