"""Static lint: AST checks enforcing repo invariants.

Complements the dynamic sanitizer; runs standalone as
``python scripts/lint_repro.py`` and inside ``scripts/ci.sh``.

These nine checks are also registered — unchanged ids, unchanged
findings — as the *invariant* family of the whole-program analyzer
(``python -m repro analyze``, DESIGN.md §13); this module remains the
implementation and the standalone shim.

Checks (ids listed by ``python -m repro san --list-checks``):

``wallclock``
    No ``time.time``/``monotonic``/``perf_counter``, ``datetime.now``,
    ``random.*`` or ``numpy.random`` inside the deterministic core
    (``src/repro/{sim,cuda,partitioned,mpi,hw}``).  The engine's determinism
    contract (``sim/engine.py``) forbids wall-clock and ambient RNG.
``raw-units``
    Numeric literals that *are* unit constants (``1e-3``, ``1e-6``,
    ``1e-9``, ``1024**2``, ``1024**3``) must be written with the
    :mod:`repro.units` helpers (``ms``/``us``/``ns``/``MiB``/``GiB``)
    in the deterministic core.
``dropped-return``
    A generator process body whose ``return value`` nobody can observe:
    ``engine.process(body(...))`` called as a bare statement discards the
    process event, and with it the generator's return value.
``obs-bypass``
    Instrumentation in the deterministic core must go through the
    :mod:`repro.obs` bus: no ``print(...)`` and no direct
    ``trace_log.append(...)`` in core modules (CLI front-ends,
    ``*/cli.py``, are exempt — printing is their job).
``eager-obs-payload``
    An f-string payload handed to ``engine.trace(...)`` /
    ``obs.instant(...)`` / ``obs.span(...)`` formats *before* the call —
    even when no bus is attached and the call is a no-op.  On the hot
    path that wastes wall-clock on every unobserved run (DESIGN.md §11),
    so such payloads must sit under an ``... obs is not None`` guard.
``fabric-bypass``
    Every simulated byte moves through the dataplane (DESIGN.md §12).
    Outside ``repro/dataplane`` and ``repro/hw``, no module may call
    ``start_transfer`` (or import it from ``repro.hw.links``) nor invoke
    the legacy ``fabric.transfer`` / ``fabric.host_initiated_transfer`` /
    ``fabric.transfer_bytes`` shims — producers submit descriptors via
    ``fabric.dataplane.put`` / ``rma_put`` / ``control`` so path policy
    and per-class accounting see the traffic.
``shard-shared-state``
    Outside ``repro/shard``, nothing may reach into a shard's private
    state (``shard.engine`` / ``.fabric`` / ``.mailbox`` / ``.bridge``
    / ``.procs`` / ``._*``): :class:`~repro.shard.message.ShardMessage`
    is the *only* thing that crosses a shard boundary, so foreign code
    must use ``Shard.put`` / ``Shard.recv`` or the driver surface
    (``step_window`` / ``next_time`` / ``results``) — DESIGN.md §14.
``workload-bypass``
    Every driver launches through the Workload contract (DESIGN.md §15).
    Outside ``repro/workload``, ``repro/mpi`` and ``repro/shard``, no
    module may construct a ``World`` or a ``ClusterJob`` directly —
    drivers go through ``repro.workload.runner.run_ranks`` or a
    registered :class:`~repro.workload.base.Workload`, so machine
    resolution, path policy, and digest accounting stay uniform.
``fabric-mutation-bypass``
    Link health is mutated only through the
    :class:`~repro.hw.links.LinkState` API (DESIGN.md §17).  Outside
    ``repro/hw``, no module may write a link's ``up`` / ``bandwidth`` /
    ``base_bandwidth`` / ``outstanding_bytes`` fields or a LinkState's
    ``epoch`` / ``armed`` directly — a silent write skips the epoch bump
    that invalidates route caches and re-binds captured plans.  The one
    carve-out: the dataplane ledger maintains ``outstanding_bytes`` (the
    congestion signal it owns).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.san.checks import CheckInfo

#: Packages whose modules the scoped checks apply to.
CORE_PACKAGES = ("sim", "cuda", "partitioned", "mpi", "hw")

STATIC_CHECKS = {
    "wallclock": CheckInfo(
        "wallclock", "static",
        "no wall-clock / ambient randomness in src/repro/{sim,cuda,partitioned,mpi,hw}",
    ),
    "raw-units": CheckInfo(
        "raw-units", "static",
        "unit-magnitude literals must use repro.units helpers (us, MiB, ...)",
    ),
    "dropped-return": CheckInfo(
        "dropped-return", "static",
        "process body returns a value but its process event is discarded",
    ),
    "obs-bypass": CheckInfo(
        "obs-bypass", "static",
        "core instrumentation must go through repro.obs "
        "(no print / trace_log.append outside cli modules)",
    ),
    "eager-obs-payload": CheckInfo(
        "eager-obs-payload", "static",
        "f-string payloads for trace/instant/span must sit under an "
        "'obs is not None' guard (they format even when unobserved)",
    ),
    "fabric-bypass": CheckInfo(
        "fabric-bypass", "static",
        "data movement outside repro/{dataplane,hw} must submit to the "
        "dataplane (no start_transfer / legacy fabric.transfer* calls)",
    ),
    "shard-shared-state": CheckInfo(
        "shard-shared-state", "static",
        "outside repro/shard, shard internals (engine/fabric/mailbox/"
        "bridge/procs/_*) are off limits — only ShardMessages cross shards",
    ),
    "workload-bypass": CheckInfo(
        "workload-bypass", "static",
        "drivers outside repro/{workload,mpi,shard} must not construct "
        "World/ClusterJob directly — go through run_ranks or a Workload",
    ),
    "fabric-mutation-bypass": CheckInfo(
        "fabric-mutation-bypass", "static",
        "link health outside repro/hw is mutated only via the LinkState "
        "API (down_link/restore_link/degrade_bandwidth) — direct field "
        "writes skip the fabric epoch bump",
    ),
}

_WALLCLOCK_ATTRS = {
    "time": {"time", "monotonic", "perf_counter", "process_time", "time_ns",
             "monotonic_ns", "perf_counter_ns"},
    "datetime": {"now", "utcnow", "today"},
}
_RANDOM_MODULES = {"random"}
_UNIT_FLOATS = {1e-3: "ms", 1e-6: "us", 1e-9: "ns"}
_UNIT_INTS = {1024 ** 2: "MiB", 1024 ** 3: "GiB"}


@dataclass(frozen=True)
class LintFinding:
    path: str
    line: int
    check: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def _in_core(path: Path) -> bool:
    parts = path.parts
    if "repro" not in parts:
        return False
    last = len(parts) - 1 - parts[::-1].index("repro")
    tail = parts[last + 1:]
    return bool(tail) and tail[0] in CORE_PACKAGES


def _dotted(node: ast.AST) -> Optional[str]:
    """'a.b.c' for an attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _check_wallclock(tree: ast.AST, path: str) -> List[LintFinding]:
    found: List[LintFinding] = []

    def flag(node: ast.AST, what: str) -> None:
        found.append(LintFinding(
            path, node.lineno, "wallclock",
            f"{what} breaks the engine's determinism contract; derive time "
            "from Engine.now and randomness from an explicit seeded RNG",
        ))

    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is None:
                continue
            root, *rest = dotted.split(".")
            if not rest:
                continue
            if root in _WALLCLOCK_ATTRS and rest[-1] in _WALLCLOCK_ATTRS[root]:
                flag(node, f"call to {dotted}")
            elif root in _RANDOM_MODULES:
                flag(node, f"use of {dotted}")
            elif root in ("np", "numpy") and rest[0] == "random":
                flag(node, f"use of {dotted}")
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            names = [a.name for a in node.names]
            if isinstance(node, ast.ImportFrom):
                if node.module == "time" and set(names) & _WALLCLOCK_ATTRS["time"]:
                    flag(node, "import of wall-clock time functions")
                elif node.module == "random":
                    flag(node, "import from random")
            elif "random" in names:
                flag(node, "import random")
    return found


def _check_raw_units(tree: ast.AST, path: str) -> List[LintFinding]:
    found: List[LintFinding] = []
    for node in ast.walk(tree):
        unit = None
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            unit = _UNIT_FLOATS.get(node.value)
        elif (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Pow)
            and isinstance(node.left, ast.Constant)
            and isinstance(node.right, ast.Constant)
            and node.left.value == 1024
        ):
            unit = _UNIT_INTS.get(1024 ** node.right.value)
        if unit is not None:
            found.append(LintFinding(
                path, node.lineno, "raw-units",
                f"raw literal where repro.units.{unit} reads as the paper writes it",
            ))
    return found


def _check_dropped_return(tree: ast.AST, path: str) -> List[LintFinding]:
    found: List[LintFinding] = []

    def is_generator(fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                # Nested defs have their own yields; only count this fn's.
                if _owner(fn, node) is fn:
                    return True
        return False

    def _owner(top: ast.AST, target: ast.AST):
        owner = top
        stack = [(top, top)]
        while stack:
            node, own = stack.pop()
            if node is target:
                return own
            for child in ast.iter_child_nodes(node):
                child_own = (
                    child
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
                    else own
                )
                stack.append((child, child_own))
        return owner

    def returns_value(fn: ast.AST) -> Optional[int]:
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Return)
                and node.value is not None
                and not (isinstance(node.value, ast.Constant) and node.value.value is None)
                and _owner(fn, node) is fn
            ):
                return node.lineno
        return None

    # Generator defs (module- or locally-scoped) that return a value.
    valued: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and is_generator(node):
            line = returns_value(node)
            if line is not None:
                valued[node.name] = line

    # Bare-statement `<x>.process(f(...))` calls discard the process event.
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
            continue
        call = node.value
        if not (isinstance(call.func, ast.Attribute) and call.func.attr == "process"):
            continue
        if not call.args:
            continue
        first = call.args[0]
        if (
            isinstance(first, ast.Call)
            and isinstance(first.func, ast.Name)
            and first.func.id in valued
        ):
            found.append(LintFinding(
                path, node.lineno, "dropped-return",
                f"process body {first.func.id!r} returns a value (line "
                f"{valued[first.func.id]}) but the process event is discarded "
                "here — bind the event or drop the return value",
            ))
    return found


def _check_obs_bypass(tree: ast.AST, path: str) -> List[LintFinding]:
    found: List[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            found.append(LintFinding(
                path, node.lineno, "obs-bypass",
                "print() in the deterministic core — publish an event on the "
                "repro.obs bus (or move output to a cli module)",
            ))
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "append"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "trace_log"
        ):
            found.append(LintFinding(
                path, node.lineno, "obs-bypass",
                "direct trace_log.append — Engine.trace_log is a deprecated "
                "read-only shim; emit through the repro.obs bus instead",
            ))
    return found


#: Directories whose modules own the transfer machinery (exempt from
#: fabric-bypass): the dataplane itself and the hw substrate under it.
_DATAPLANE_OWNERS = {"dataplane", "hw"}
_FABRIC_SHIM_METHODS = {"transfer", "host_initiated_transfer", "transfer_bytes"}
_FABRIC_RECEIVERS = {"fabric", "fab"}


def _owns_dataplane(path: str) -> bool:
    return bool(_DATAPLANE_OWNERS & set(Path(path).parts))


def _check_fabric_bypass(tree: ast.AST, path: str) -> List[LintFinding]:
    """Transfers issued around the dataplane choke point.

    Flags, outside ``repro/dataplane`` and ``repro/hw``:

    * ``start_transfer(...)`` calls and imports of it from
      ``repro.hw.links`` — raw link driving;
    * ``<...>.fabric.transfer(...)`` / ``.host_initiated_transfer(...)``
      / ``.transfer_bytes(...)`` — the legacy Fabric shims, kept for
      tests and external callers only.
    """
    found: List[LintFinding] = []

    def flag(node: ast.AST, what: str) -> None:
        found.append(LintFinding(
            path, node.lineno, "fabric-bypass",
            f"{what} bypasses the dataplane — submit a descriptor via "
            "fabric.dataplane.put/rma_put/control so path policy and the "
            "per-class ledger see the traffic (DESIGN.md §12)",
        ))

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "start_transfer":
                flag(node, "start_transfer() call")
            elif isinstance(func, ast.Attribute):
                if func.attr == "start_transfer":
                    flag(node, f"{_dotted(func) or 'start_transfer'}() call")
                elif func.attr in _FABRIC_SHIM_METHODS:
                    dotted = _dotted(func)
                    if dotted is not None:
                        receiver = dotted.split(".")[-2]
                        if receiver in _FABRIC_RECEIVERS:
                            flag(node, f"legacy {dotted}() call")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "repro.hw.links" and any(
                a.name == "start_transfer" for a in node.names
            ):
                flag(node, "import of start_transfer")
    return found


#: Shard attributes that are private to the shard and its drivers.  The
#: public cross-shard surface is Shard.put/recv (messages) plus the
#: driver methods (step_window/next_time/done/results/...).
_SHARD_INTERNALS = {"engine", "fabric", "mailbox", "bridge", "procs"}


def _owns_shards(path: str) -> bool:
    """Modules allowed to touch Shard internals: the shard package itself
    (drivers, executor, resident workload builds)."""
    return "shard" in Path(path).parts


def _check_shard_shared_state(tree: ast.AST, path: str) -> List[LintFinding]:
    """Foreign code reaching into a shard's private state.

    Flags, outside ``repro/shard``, attribute access to shard internals
    (``engine``, ``fabric``, ``mailbox``, ``bridge``, ``procs``, or any
    underscore-prefixed name) on a shard-shaped receiver: a name that is
    or ends with ``shard``, a ``shards[...]`` element, or a ``.shard``
    attribute chain.  Cross-shard interaction is messages only; sharing
    engine or fabric references across shards breaks both the
    conservative-window determinism proof and multiprocessing execution
    (the state would silently fork).
    """
    found: List[LintFinding] = []

    def shard_receiver(recv: ast.AST) -> Optional[str]:
        if isinstance(recv, ast.Name):
            if recv.id == "shard" or recv.id.endswith("_shard"):
                return recv.id
        elif isinstance(recv, ast.Subscript):
            base = recv.value
            if isinstance(base, ast.Name) and base.id == "shards":
                return "shards[...]"
            if isinstance(base, ast.Attribute) and base.attr == "shards":
                return f"{_dotted(base) or 'shards'}[...]"
        elif isinstance(recv, ast.Attribute) and recv.attr == "shard":
            return _dotted(recv) or "<...>.shard"
        return None

    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        attr = node.attr
        if attr not in _SHARD_INTERNALS and not attr.startswith("_"):
            continue
        receiver = shard_receiver(node.value)
        if receiver is not None:
            found.append(LintFinding(
                path, node.lineno, "shard-shared-state",
                f"{receiver}.{attr} reaches into shard-private state — only "
                "ShardMessages cross shard boundaries; go through Shard.put/"
                "recv or the driver surface (step_window/next_time/results) "
                "(DESIGN.md §14)",
            ))
    return found


#: Directories whose modules own rank/cluster launching (exempt from
#: workload-bypass): the workload package (run_ranks, ClusterWorkload),
#: the MPI world itself, and the shard drivers.
_WORKLOAD_OWNERS = {"workload", "mpi", "shard"}
_LAUNCHER_NAMES = {"World", "ClusterJob"}


def _owns_workloads(path: str) -> bool:
    return bool(_WORKLOAD_OWNERS & set(Path(path).parts))


def _check_workload_bypass(tree: ast.AST, path: str) -> List[LintFinding]:
    """Direct ``World(...)`` / ``ClusterJob(...)`` construction outside the
    launch owners.  Drivers that bypass the Workload contract dodge
    machine resolution, path-policy selection, and the digest accounting
    that keeps every exhibit pinned (DESIGN.md §15)."""
    found: List[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name) and func.id in _LAUNCHER_NAMES:
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr in _LAUNCHER_NAMES:
            name = _dotted(func) or func.attr
        if name is not None:
            found.append(LintFinding(
                path, node.lineno, "workload-bypass",
                f"direct {name}(...) construction bypasses the Workload "
                "contract — launch ranks via repro.workload.runner.run_ranks "
                "or run a registered Workload (DESIGN.md §15)",
            ))
    return found


#: Link fields only repro/hw (the Link ctor + LinkState API) may write.
#: ``outstanding_bytes`` is additionally the dataplane ledger's to maintain
#: (the congestion signal it owns, DESIGN.md §17).
_LINK_MUTATION_ATTRS = {"up", "bandwidth", "base_bandwidth", "outstanding_bytes"}
_LEDGER_ATTRS = {"outstanding_bytes"}
#: LinkState bookkeeping no one else may touch (receiver-scoped: a bare
#: ``self.epoch`` elsewhere — e.g. partitioned-comm epochs — is unrelated).
_LINKSTATE_ATTRS = {"epoch", "armed"}
_LINKSTATE_RECEIVERS = {"state", "link_state"}


def _owns_links(path: str) -> bool:
    return "hw" in Path(path).parts


def _check_fabric_mutation_bypass(tree: ast.AST, path: str) -> List[LintFinding]:
    """Direct writes to fabric link health outside the LinkState API.

    Flags, outside ``repro/hw``, assignments (plain or augmented) to:

    * the link fields ``up`` / ``bandwidth`` / ``base_bandwidth`` /
      ``outstanding_bytes`` on any receiver — except ``outstanding_bytes``
      inside ``repro/dataplane`` (the ledger maintains the congestion
      signal);
    * ``epoch`` / ``armed`` on a LinkState-shaped receiver (a name or
      attribute called ``state`` / ``link_state``).

    A direct write skips the epoch bump that invalidates the fabric route
    cache, the dataplane's disjoint-route memo, and epoch-stamped captured
    plans — the fault would be invisible to everything built on top.
    """
    found: List[LintFinding] = []
    in_dataplane = "dataplane" in Path(path).parts

    def flag(node: ast.AST, what: str) -> None:
        found.append(LintFinding(
            path, node.lineno, "fabric-mutation-bypass",
            f"{what} mutates fabric link state directly — go through the "
            "LinkState API (down_link/restore_link/degrade_bandwidth) so "
            "the fabric epoch bumps and route caches/captured plans "
            "revalidate (DESIGN.md §17)",
        ))

    def write_targets(node: ast.AST) -> List[ast.AST]:
        if isinstance(node, ast.Assign):
            return list(node.targets)
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target]
        return []

    for node in ast.walk(tree):
        for target in write_targets(node):
            if not isinstance(target, ast.Attribute):
                continue
            attr = target.attr
            if attr in _LINK_MUTATION_ATTRS:
                if in_dataplane and attr in _LEDGER_ATTRS:
                    continue
                flag(node, f"write to .{attr}")
            elif attr in _LINKSTATE_ATTRS:
                recv = target.value
                if (
                    isinstance(recv, ast.Attribute)
                    and recv.attr in _LINKSTATE_RECEIVERS
                ) or (
                    isinstance(recv, ast.Name)
                    and recv.id in _LINKSTATE_RECEIVERS
                ):
                    flag(node, f"write to {_dotted(target) or '.' + attr}")
    return found


_OBS_EMIT_ATTRS = {"trace", "instant", "span", "counter"}


def _check_eager_obs_payload(tree: ast.AST, path: str) -> List[LintFinding]:
    """f-strings handed to obs-emit calls outside an ``obs is not None`` guard.

    ``engine.trace(f"...")`` formats its payload before the call even when
    no bus is attached and the call is a no-op — pure wall-clock waste on
    the fast path.  The idiom the core uses is::

        obs = engine.obs
        if obs is not None:
            obs.instant("lane", f"msg {x}", actor)
    """
    found: List[LintFinding] = []

    def guards_obs(test: ast.AST) -> bool:
        for node in ast.walk(test):
            if (
                isinstance(node, ast.Compare)
                and len(node.ops) == 1
                and isinstance(node.ops[0], ast.IsNot)
                and isinstance(node.comparators[0], ast.Constant)
                and node.comparators[0].value is None
            ):
                dotted = _dotted(node.left)
                if dotted is not None and (
                    dotted == "obs" or dotted.endswith(".obs")
                ):
                    return True
        return False

    def eager_fstring(call: ast.Call) -> bool:
        values = list(call.args) + [kw.value for kw in call.keywords]
        for value in values:
            for sub in ast.walk(value):
                if isinstance(sub, ast.JoinedStr) and any(
                    isinstance(part, ast.FormattedValue) for part in sub.values
                ):
                    return True
        return False

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, ast.If):
            body_guarded = guarded or guards_obs(node.test)
            for child in node.body:
                visit(child, body_guarded)
            for child in node.orelse:
                visit(child, guarded)
            return
        if isinstance(node, ast.IfExp) and guards_obs(node.test):
            visit(node.test, guarded)
            visit(node.body, True)
            visit(node.orelse, guarded)
            return
        if (
            not guarded
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _OBS_EMIT_ATTRS
            and eager_fstring(node)
        ):
            found.append(LintFinding(
                path, node.lineno, "eager-obs-payload",
                f".{node.func.attr}(...) payload is an f-string built outside "
                "an 'obs is not None' guard — it formats even on unobserved "
                "runs; hoist the call under the guard (DESIGN.md §11)",
            ))
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    visit(tree, False)
    return found


# --------------------------------------------------------------------------
# drivers
# --------------------------------------------------------------------------

def lint_source(
    source: str, path: str, scoped: bool = True
) -> List[LintFinding]:
    """Lint one module's source.  ``scoped``: apply the core-package-only
    checks (wallclock, raw-units) as if the file lives in the core."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 0, "syntax", str(exc))]
    found: List[LintFinding] = []
    if scoped:
        found += _check_wallclock(tree, path)
        found += _check_raw_units(tree, path)
        if Path(path).name != "cli.py":
            found += _check_obs_bypass(tree, path)
        found += _check_eager_obs_payload(tree, path)
    found += _check_dropped_return(tree, path)
    if not _owns_dataplane(path):
        found += _check_fabric_bypass(tree, path)
    if not _owns_links(path):
        found += _check_fabric_mutation_bypass(tree, path)
    if not _owns_shards(path):
        found += _check_shard_shared_state(tree, path)
    if not _owns_workloads(path):
        found += _check_workload_bypass(tree, path)
    return found


def lint_file(path: Path, root: Optional[Path] = None) -> List[LintFinding]:
    scoped = _in_core(path if root is None else path.relative_to(root.parent))
    return lint_source(path.read_text(), str(path), scoped=scoped)


def lint_tree(root: Path) -> List[LintFinding]:
    """Lint every module under ``root`` (typically ``src/repro``)."""
    findings: List[LintFinding] = []
    for path in sorted(root.rglob("*.py")):
        if path.name == "units.py":
            continue
        findings += lint_file(path)
    return findings


def render(findings: Iterable[LintFinding]) -> str:
    lines = [f.render() for f in findings]
    lines.append(f"lint: {len(lines)} finding(s)")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="lint_repro",
        description="AST lint for repo invariants (see repro.san.lint).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument("--list", action="store_true", help="list checks and exit")
    args = parser.parse_args(argv)

    if args.list:
        # The unified registry (repro.analyze.registry) — identical to
        # `python -m repro analyze --list`, so the catalogues can't drift.
        from repro.analyze.registry import render_rules

        print(render_rules())
        return 0

    findings: List[LintFinding] = []
    for p in args.paths:
        path = Path(p)
        if path.is_dir():
            findings += lint_tree(path)
        else:
            findings += lint_file(path)
    print(render(findings))
    return 1 if findings else 0
