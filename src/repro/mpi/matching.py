"""Receiver-side tag matching and a generic keyed FIFO matcher.

:class:`TagMatcher` implements MPI's two-queue scheme: posted receives and
unexpected messages, matched on (communicator, source, tag) with
``MPI_ANY_SOURCE`` / ``MPI_ANY_TAG`` wildcards, preserving the
non-overtaking order guarantee for identical envelopes.

:class:`KeyedMatcher` is the simpler exact-key FIFO pairing used by the
partitioned setup_t exchange (matching is "communicator, rank, tag, and
the order in which they are posted" — paper Section II-B1).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Hashable, List, Optional, Tuple

from repro.sim.engine import Engine
from repro.sim.events import Event

ANY = -1  # wildcard for source/tag


def envelope_matches(posted_src: int, posted_tag: int, src: int, tag: int) -> bool:
    """Does an incoming (src, tag) satisfy a posted (source, tag) pattern?"""
    return (posted_src == ANY or posted_src == src) and (
        posted_tag == ANY or posted_tag == tag
    )


class TagMatcher:
    """MPI posted-receive / unexpected-message matching for one rank."""

    def __init__(self) -> None:
        # Both lists ordered by posting/arrival time (non-overtaking).
        self._posted: List[Tuple[int, int, int, Any]] = []  # (comm_id, src, tag, rreq)
        self._unexpected: List[Tuple[int, int, int, Any]] = []  # (comm_id, src, tag, msg)

    # -- receiver posts a receive ------------------------------------------------
    def post_recv(self, comm_id: int, source: int, tag: int, rreq: Any) -> Optional[Any]:
        """Try to match an unexpected message; otherwise queue the receive.

        Returns the matched message, or None if the receive was queued.
        """
        for i, (c, s, t, msg) in enumerate(self._unexpected):
            if c == comm_id and envelope_matches(source, tag, s, t):
                del self._unexpected[i]
                return msg
        self._posted.append((comm_id, source, tag, rreq))
        return None

    # -- progress engine delivers a message ----------------------------------------
    def deliver(self, comm_id: int, src: int, tag: int, msg: Any) -> Optional[Any]:
        """Try to match a posted receive; otherwise queue as unexpected.

        Returns the matched posted receive request, or None if queued.
        """
        for i, (c, s, t, rreq) in enumerate(self._posted):
            if c == comm_id and envelope_matches(s, t, src, tag):
                del self._posted[i]
                return rreq
        self._unexpected.append((comm_id, src, tag, msg))
        return None

    @property
    def n_posted(self) -> int:
        return len(self._posted)

    @property
    def n_unexpected(self) -> int:
        return len(self._unexpected)


class KeyedMatcher:
    """Exact-key FIFO pairing of producers and consumers.

    ``get(key)`` returns an event for the next item put under ``key``;
    items and getters pair strictly FIFO per key.  Used for partitioned
    setup matching, RTR signals, and collective-group synchronization.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._items: Dict[Hashable, Deque[Any]] = {}
        self._getters: Dict[Hashable, Deque[Event]] = {}

    def put(self, key: Hashable, item: Any) -> None:
        getters = self._getters.get(key)
        if getters:
            getters.popleft().succeed(item)
            if not getters:
                del self._getters[key]
        else:
            self._items.setdefault(key, deque()).append(item)

    def get(self, key: Hashable) -> Event:
        ev = Event(self.engine)
        items = self._items.get(key)
        if items:
            ev.succeed(items.popleft())
            if not items:
                del self._items[key]
        else:
            self._getters.setdefault(key, deque()).append(ev)
        return ev

    def pending(self, key: Hashable) -> int:
        return len(self._items.get(key, ()))
