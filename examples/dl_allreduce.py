#!/usr/bin/env python3
"""Data-parallel training step: partitioned allreduce vs MPI vs NCCL.

The paper's Fig 10/11 workload: a binary cross-entropy kernel produces
per-parameter gradients on each of four simulated GH200s; the gradients
are combined with each of the three mechanisms.  Losses decrease and all
variants produce bit-identical gradients — only the time differs.

    python examples/dl_allreduce.py
"""

import numpy as np

from repro.apps.dl import DlConfig, run_dl
from repro.hw.params import ONE_NODE
from repro.mpi.world import World
from repro.units import us

GRID = 1024   # 1024 blocks x 1024 threads x 8 B = 8 MiB of gradients


def run(variant):
    cfg = DlConfig(grid=GRID, block=1024, steps=3, variant=variant, partitions=8)

    def main(ctx):
        return (yield from run_dl(ctx, cfg))

    return World(ONE_NODE).run(main, nprocs=4)


def main() -> None:
    grads = {}
    print(f"BCE training step on 4 GH200s, {GRID * 1024 * 8 // (1 << 20)} MiB gradients:\n")
    for variant in ("traditional", "partitioned", "nccl"):
        results = run(variant)
        step_time = max(r.time for r in results) / 3
        losses = results[0].losses
        grads[variant] = results[0].grad
        print(f"  {variant:12s}: {step_time / us:9.1f} us/step   "
              f"loss {losses[0]:.4f} -> {losses[-1]:.4f}")

    assert np.allclose(grads["traditional"], grads["partitioned"])
    assert np.allclose(grads["traditional"], grads["nccl"])
    print("\nall three mechanisms produced identical all-reduced gradients;")
    print("ordering matches the paper: MPI_Allreduce >> partitioned > NCCL")


if __name__ == "__main__":
    main()
