"""Cross-cutting smaller surfaces: ops, units, facades, package root."""

import numpy as np
import pytest

import repro
from repro.hw.memory import Buffer, MemSpace
from repro.hw.params import ONE_NODE
from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import BAND, BOR, LAND, LOR, NOP, SUM
from repro.mpi.world import World
from repro.units import GBps, fmt_bytes, fmt_time, us


# -- package root ----------------------------------------------------------

def test_package_exports():
    assert repro.__version__
    assert repro.World is World
    assert repro.ONE_NODE.n_gpus == 4


# -- ops -----------------------------------------------------------------------

def test_logical_and_bitwise_ops():
    a = np.array([1, 0, 1, 1], dtype=np.int64)
    b = np.array([1, 1, 0, 1], dtype=np.int64)
    acc = a.copy()
    LAND.reduce_into(acc, b)
    assert list(acc) == [1, 0, 0, 1]
    acc = a.copy()
    LOR.reduce_into(acc, b)
    assert list(acc) == [1, 1, 1, 1]
    acc = np.array([0b1100], dtype=np.int64)
    BAND.reduce_into(acc, np.array([0b1010], dtype=np.int64))
    assert acc[0] == 0b1000
    acc = np.array([0b1100], dtype=np.int64)
    BOR.reduce_into(acc, np.array([0b1010], dtype=np.int64))
    assert acc[0] == 0b1110


def test_reduce_into_shape_mismatch():
    with pytest.raises(ValueError):
        SUM.reduce_into(np.zeros(3), np.zeros(4))


def test_nop_refuses_to_reduce():
    with pytest.raises(RuntimeError):
        NOP.reduce_into(np.zeros(2), np.zeros(2))


def test_op_repr():
    assert repr(SUM) == "MPI_SUM"
    assert repr(NOP) == "NOP"


# -- units -----------------------------------------------------------------------

def test_fmt_time():
    assert fmt_time(0) == "0s"
    assert fmt_time(7.8e-6) == "7.80us"
    assert fmt_time(1.5e-3) == "1.50ms"
    assert fmt_time(2.0) == "2.000s"
    assert fmt_time(5e-9) == "5.0ns"


def test_fmt_bytes():
    assert fmt_bytes(512) == "512B"
    assert fmt_bytes(8 * 1024) == "8.0KiB"
    assert fmt_bytes(3 * 1024**2) == "3.00MiB"
    assert fmt_bytes(2 * 1024**3) == "2.00GiB"


def test_bandwidth_units():
    assert GBps == pytest.approx(1e9)


# -- communicator facade --------------------------------------------------------

def test_world_rank_of_bounds():
    def main(ctx):
        yield ctx.engine.timeout(0)
        with pytest.raises(MpiUsageError):
            ctx.comm.world_rank_of(5)
        assert ctx.comm.world_rank_of(1) == 1
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_virtual_buffer_properties():
    v = Buffer.alloc_virtual(1 << 20, gpu=0, node=0)
    assert v.nbytes == (1 << 20) * 8     # wire size is the logical size
    assert v.space is MemSpace.DEVICE
    p = v.partition(3, 8)
    assert len(p) == (1 << 17)


def test_fused_divisibility_error():
    from repro.pcoll.fused import fused_pallreduce_init

    def main(ctx):
        comm = ctx.comm
        with pytest.raises(MpiUsageError, match="divide"):
            w = ctx.gpu.alloc(10)
            yield from fused_pallreduce_init(comm, w, w, 3, SUM, ctx.gpu)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_unknown_allreduce_algorithm():
    def main(ctx):
        with pytest.raises(MpiUsageError, match="algorithm"):
            w = ctx.gpu.alloc(64)
            yield from ctx.comm.pallreduce_init(w, w, partitions=2, algorithm="magic")
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_cli_list_and_registry():
    from repro.__main__ import main as cli_main

    assert cli_main(["list"]) == 0
    with pytest.raises(SystemExit):
        cli_main(["nonexistent"])
