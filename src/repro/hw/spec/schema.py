"""The declarative machine description consumed by the fabric builder.

A :class:`MachineSpec` says *what the machine is* — node templates with
their GPUs, typed link classes with latency/bandwidth, how devices within
a node reach each other (pair mesh, shared switch, or host staging), and
where the NICs sit (one per GPU or one per node).  It says nothing about
*how* to route: :mod:`repro.hw.spec.graph` turns a spec into a typed link
graph and resolves routes by graph search, so new machine shapes need no
new routing code.

The hierarchical link-acquisition order is encoded as ``stage`` ranks
(``STAGE_*`` below).  Every route a spec can produce acquires links in
strictly increasing stage — the deadlock-freedom invariant the property
tests pin (tx < nic_out < nic_in < rx).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

from repro.hw.params import GH200Params

# Hierarchical acquisition stages.  A route's links are strictly
# increasing in stage, so concurrent transfers cannot deadlock on port
# acquisition (they all climb the same ladder).  Only the relative order
# matters — tests pin monotonicity, not absolute ranks.
STAGE_HOSTMEM_TX = 0   # source-side pageable-memory read port
STAGE_SRC_LOCAL = 1    # hbm self-copy / device->host egress (c2c, pcie)
STAGE_D2D = 2          # direct pair link or switch up-port
STAGE_SWITCH_DOWN = 3  # switch down-port
STAGE_NIC_OUT = 3      # NIC egress onto the inter-node wire
STAGE_FABRIC_UP = 4    # leaf -> spine trunk / dragonfly global link
STAGE_FABRIC_DOWN = 5  # spine -> leaf trunk
STAGE_NIC_IN = 6       # NIC ingress from the wire
STAGE_DST_LOCAL = 7    # host->device ingress (c2c, pcie)
STAGE_HOSTMEM_RX = 8   # destination-side pageable-memory write port


class SpecError(ValueError):
    """An inconsistent or unbuildable machine description."""


class Interconnect(enum.Enum):
    """How a node's devices reach each other (intra-node D2D)."""

    PAIR_MESH = "pair-mesh"      # a dedicated link per ordered GPU pair (GH200 NVLink)
    SWITCH = "switch"            # per-GPU ports into a shared switch (DGX NVSwitch)
    HOST_STAGED = "host-staged"  # no P2P: D2D bounces through host memory (PCIe)


@dataclass(frozen=True)
class LinkClass:
    """A typed class of links: telemetry kind + latency/bandwidth."""

    kind: str
    bandwidth: float       # bytes/s, per direction
    latency: float         # seconds, first-byte
    overhead: float = 0.0  # fixed per-message port occupancy

    def __post_init__(self) -> None:
        if not self.kind:
            raise SpecError("LinkClass needs a non-empty kind")
        if self.bandwidth <= 0:
            raise SpecError(f"link class {self.kind!r}: bandwidth must be positive")
        if self.latency < 0 or self.overhead < 0:
            raise SpecError(f"link class {self.kind!r}: negative latency/overhead")


@dataclass(frozen=True)
class GpuSpec:
    """Per-device constants; ``None`` inherits the node/model default."""

    sm_count: Optional[int] = None   # overrides CostModel.sm_count
    hbm_bw: Optional[float] = None   # overrides the HBM self-link bandwidth


@dataclass(frozen=True)
class NodeSpec:
    """One node template: GPUs, intra-node wiring, NIC placement."""

    gpus: Tuple[GpuSpec, ...]
    interconnect: Interconnect
    hbm: LinkClass                 # per-GPU local-copy port
    d2h: LinkClass                 # device -> host (C2C down, PCIe d2h)
    h2d: LinkClass                 # host -> device (C2C up, PCIe h2d)
    hostmem: LinkClass             # pageable host memory port (tx/rx pair)
    d2d: Optional[LinkClass] = None  # pair link / switch port; None = host-staged
    nic_per_gpu: bool = True       # False: one shared NIC per node

    def __post_init__(self) -> None:
        if not self.gpus:
            raise SpecError("NodeSpec needs at least one GPU")
        needs_d2d = self.interconnect in (Interconnect.PAIR_MESH, Interconnect.SWITCH)
        if needs_d2d and self.d2d is None:
            raise SpecError(f"{self.interconnect.value} interconnect needs a d2d link class")
        if self.interconnect is Interconnect.HOST_STAGED and self.d2d is not None:
            raise SpecError("host-staged interconnect must not define a d2d link class")

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)


@dataclass(frozen=True)
class FatTreeFabric:
    """A rail-optimized two-level (leaf/spine) Clos inter-node fabric.

    Each *rail* is an independent leaf/spine plane; GPU ``g`` of a node
    attaches its NIC to rail ``local_index % rails``.  Nodes are grouped
    ``nodes_per_leaf`` per leaf switch; every leaf uplinks to all
    ``spines_per_rail`` spines of its rail.  Cross-rail traffic forwards
    over intra-node D2D to a same-node GPU on the destination's rail
    (PXN-style) before entering the fabric.
    """

    rails: int
    nodes_per_leaf: int
    spines_per_rail: int
    trunk_up: LinkClass    # leaf -> spine (STAGE_FABRIC_UP)
    trunk_down: LinkClass  # spine -> leaf (STAGE_FABRIC_DOWN)

    def __post_init__(self) -> None:
        if self.rails < 1 or self.nodes_per_leaf < 1 or self.spines_per_rail < 1:
            raise SpecError("fat-tree fabric needs rails/nodes_per_leaf/spines >= 1")

    def check(self, spec: "MachineSpec") -> None:
        if spec.n_nodes % self.nodes_per_leaf:
            raise SpecError(
                f"fat-tree fabric: {spec.n_nodes} nodes not divisible by "
                f"nodes_per_leaf={self.nodes_per_leaf}"
            )
        _check_rail_nodes(spec, self.rails)

    @property
    def kind(self) -> str:
        return "fat-tree"


@dataclass(frozen=True)
class DragonflyFabric:
    """A one-router-per-group dragonfly with all-to-all global links.

    Each rail places one router per group; routers of a rail are fully
    connected by ``global_link`` wires.  GPU rail assignment and PXN
    cross-rail forwarding match :class:`FatTreeFabric`.
    """

    rails: int
    nodes_per_group: int
    global_link: LinkClass  # router <-> router (STAGE_FABRIC_UP)

    def __post_init__(self) -> None:
        if self.rails < 1 or self.nodes_per_group < 1:
            raise SpecError("dragonfly fabric needs rails/nodes_per_group >= 1")

    def check(self, spec: "MachineSpec") -> None:
        if spec.n_nodes % self.nodes_per_group:
            raise SpecError(
                f"dragonfly fabric: {spec.n_nodes} nodes not divisible by "
                f"nodes_per_group={self.nodes_per_group}"
            )
        _check_rail_nodes(spec, self.rails)

    @property
    def kind(self) -> str:
        return "dragonfly"


FabricSpec = Union[FatTreeFabric, DragonflyFabric]


def _check_rail_nodes(spec: "MachineSpec", rails: int) -> None:
    """Rail-optimized attachment needs every rail populated on every node."""
    for i, node in enumerate(spec.nodes):
        if rails > 1 and not node.nic_per_gpu:
            raise SpecError(f"node {i}: multi-rail fabric needs nic_per_gpu=True")
        if node.n_gpus % rails:
            raise SpecError(
                f"node {i}: {node.n_gpus} gpus not divisible by rails={rails}"
            )


@dataclass(frozen=True)
class MachineSpec:
    """The whole machine: node templates + the inter-node fabric."""

    name: str
    nodes: Tuple[NodeSpec, ...]
    nic_out: LinkClass
    nic_in: LinkClass
    params: GH200Params = field(default_factory=GH200Params)
    #: None keeps the flat single-wire ("net",) model of the small specs;
    #: a FabricSpec compiles leaf/spine (or router) switch ports instead.
    fabric: Optional[FabricSpec] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("MachineSpec needs a name")
        if not self.nodes:
            raise SpecError("MachineSpec needs at least one node")
        if self.fabric is not None:
            self.fabric.check(self)

    # -- shape queries (Topology delegates here) -----------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_gpus(self) -> int:
        return sum(n.n_gpus for n in self.nodes)

    @property
    def uniform_gpus_per_node(self) -> Optional[int]:
        counts = sorted({n.n_gpus for n in self.nodes})
        return counts[0] if len(counts) == 1 else None

    def gpu_base(self, node: int) -> int:
        """Global index of ``node``'s first GPU."""
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range (n_nodes={self.n_nodes})")
        return sum(n.n_gpus for n in self.nodes[:node])

    def node_of(self, gpu: int) -> int:
        if not 0 <= gpu < self.n_gpus:
            raise IndexError(f"gpu {gpu} out of range (n_gpus={self.n_gpus})")
        base = 0
        for idx, node in enumerate(self.nodes):
            if gpu < base + node.n_gpus:
                return idx
            base += node.n_gpus
        raise AssertionError("unreachable")  # pragma: no cover

    def node_spec_of(self, gpu: int) -> NodeSpec:
        return self.nodes[self.node_of(gpu)]

    def gpu_spec(self, gpu: int) -> GpuSpec:
        node = self.node_of(gpu)
        return self.nodes[node].gpus[gpu - self.gpu_base(node)]

    # -- peer capability -----------------------------------------------------
    def can_peer_map(self, a: int, b: int) -> bool:
        """May GPU ``a`` map GPU ``b``'s memory (cudaIpcOpenMemHandle)?

        True only for same-node peers whose interconnect provides device
        P2P (pair mesh or switch).  Host-staged (no-P2P PCIe) nodes cannot
        peer-map even within the node — the capability the sanitizer's
        ipc-misuse check and the UCX cuda_ipc transport selection key on.
        """
        if a == b:
            return True
        node = self.node_of(a)
        if node != self.node_of(b):
            return False
        return self.nodes[node].interconnect is not Interconnect.HOST_STAGED

    def validate(self) -> None:
        """Raise :class:`SpecError` on inconsistency (dataclass hooks catch
        most; this re-checks cross-field invariants for loaded specs)."""
        for node in self.nodes:
            NodeSpec.__post_init__(node)
            for cls in (node.hbm, node.d2h, node.h2d, node.hostmem) + (
                (node.d2d,) if node.d2d is not None else ()
            ):
                LinkClass.__post_init__(cls)
        LinkClass.__post_init__(self.nic_out)
        LinkClass.__post_init__(self.nic_in)
        if self.fabric is not None:
            self.fabric.check(self)

    def rail_of(self, gpu: int) -> int:
        """Fabric rail GPU ``gpu``'s NIC attaches to (0 when no fabric)."""
        if self.fabric is None:
            return 0
        node = self.node_of(gpu)
        return (gpu - self.gpu_base(node)) % self.fabric.rails

    def with_params(self, **kw) -> "MachineSpec":
        """Copy with software/protocol constants overridden (ablations)."""
        return replace(self, params=self.params.with_overrides(**kw))
