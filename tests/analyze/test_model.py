"""Project model: symbol tables, resolution, call graph."""

import textwrap

from repro.analyze.model import Project


def load(**sources):
    return Project.from_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}
    )


def fn(project, qualname):
    hits = [f for f in project.functions if f.qualname == qualname]
    assert len(hits) == 1, f"{qualname}: {hits}"
    return hits[0]


def test_qualnames_and_generators():
    p = load(**{"m.py": """
        def plain():
            return 1

        def gen():
            yield 1

        def outer():
            def inner():
                yield 2
            return inner

        class C:
            def method(self):
                pass
    """})
    assert not fn(p, "plain").is_generator
    assert fn(p, "gen").is_generator
    # the nested generator's yield does not leak into its owner
    assert not fn(p, "outer").is_generator
    assert fn(p, "outer.<locals>.inner").is_generator
    assert fn(p, "C.method").cls == "C"


def test_resolve_bare_name_and_import_edge():
    p = load(**{
        "pkg/util.py": """
            def helper():
                return 1
        """,
        "pkg/use.py": """
            from pkg.util import helper as h

            def caller():
                return h()
        """,
    })
    caller = fn(p, "caller")
    helper = fn(p, "helper")
    assert p.call_graph[caller] == {helper}


def test_resolve_self_method_and_lambda_fold():
    p = load(**{"m.py": """
        def free():
            return 0

        class C:
            def a(self):
                return self.b()

            def b(self):
                cb = lambda: free()
                return cb
    """})
    a, b, free = fn(p, "C.a"), fn(p, "C.b"), fn(p, "free")
    assert p.call_graph[a] == {b}
    assert free in p.call_graph[b]          # lambda body folds into owner
    assert p.transitive_callees(a) == {b, free}


def test_unresolvable_calls_are_unknown():
    p = load(**{"m.py": """
        def caller(obj):
            obj.anything()
            unknown_name()
    """})
    assert p.call_graph[fn(p, "caller")] == set()
