"""The dataplane: one transfer layer for every simulated byte.

Every subsystem that moves data — UCX puts, MPI eager/rendezvous, the
partitioned completion-flag puts, NCCL ring steps, CUDA memcpys — submits
a :class:`~repro.dataplane.descriptor.TransferDescriptor` to the machine's
:class:`~repro.dataplane.plane.Dataplane` instead of driving
:func:`repro.hw.links.start_transfer` directly.  The dataplane validates
the descriptor, resolves routes over the
:class:`~repro.hw.spec.graph.LinkGraph`, accounts the bytes in a per-class
:class:`~repro.dataplane.ledger.Ledger`, and executes through a pluggable
:class:`~repro.dataplane.policy.PathPolicy`:

* :class:`~repro.dataplane.policy.SinglePathPolicy` (default) replays the
  pre-dataplane behaviour byte-identically — one transfer process on the
  fewest-links route;
* :class:`~repro.dataplane.policy.MultiPathPolicy` stripes large transfers
  across link-disjoint routes (parallel NVLink detours intra-node, dual
  rails inter-node) with deterministic chunking; completion fires at the
  max of the stripe arrivals.

``REPRO_PATH_POLICY=multi`` selects the striping policy for a whole run
(A/B knob, same contract as ``REPRO_NO_COALESCE``).  See DESIGN.md §12.
"""

from repro.dataplane.descriptor import DescriptorError, TransferDescriptor
from repro.dataplane.ledger import ClassUsage, Ledger
from repro.dataplane.plane import Dataplane
from repro.dataplane.policy import (
    MultiPathPolicy,
    PathPolicy,
    SinglePathPolicy,
    Stripe,
    policy_from_env,
)

__all__ = [
    "ClassUsage",
    "Dataplane",
    "DescriptorError",
    "Ledger",
    "MultiPathPolicy",
    "PathPolicy",
    "SinglePathPolicy",
    "Stripe",
    "TransferDescriptor",
    "policy_from_env",
]
