"""Striping exhibit: single-path vs multi-path goodput on raw transfers.

Isolates the dataplane from the MPI stack: one fresh engine + fabric per
measurement, one device-to-device payload descriptor, goodput = bytes /
simulated completion time.  On the GH200 4-GPU NVLink mesh a large D2D
transfer has four link-disjoint routes (the direct NVLink, two two-hop
NVLink detours through the other mesh GPUs, and the C2C host path), so
striping multiplies the aggregate bottleneck bandwidth; small transfers
are overhead-dominated and striping cannot pay for the extra route
latency — the crossover the sweep exhibits.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bench.series import Series
from repro.dataplane.policy import (
    CongestionAwarePolicy,
    MultiPathPolicy,
    PathPolicy,
    SinglePathPolicy,
)
from repro.hw.memory import Buffer, MemSpace
from repro.hw.params import ONE_NODE
from repro.hw.topology import Fabric, MachineLike
from repro.sim.engine import Engine
from repro.units import KiB, MiB, fmt_bytes


def _mk_policy(policy) -> PathPolicy:
    if isinstance(policy, PathPolicy):
        return policy
    if policy in (None, "", "single"):
        return SinglePathPolicy()
    if policy == "multi":
        return MultiPathPolicy()
    if policy == "congestion":
        return CongestionAwarePolicy()
    raise ValueError(f"unknown policy {policy!r}")


def measure_stripe_goodput(
    nbytes: int,
    policy="single",
    config: MachineLike = ONE_NODE,
    src_gpu: int = 0,
    dst_gpu: int = 1,
) -> dict:
    """One D2D transfer of ``nbytes`` under a path policy.

    Returns goodput plus the stripe/route count the policy actually used
    and the dataplane ledger snapshot — everything the bench suite and
    the property tests assert on.  Payload buffers are virtual (zero
    stride), so GiB-scale points cost O(1) host memory.
    """
    engine = Engine()
    fabric = Fabric(engine, config)
    fabric.dataplane.policy = _mk_policy(policy)
    topo = fabric.topo
    n = max(nbytes // 8, 1)  # float64 elements
    src = Buffer.alloc_virtual(
        n, space=MemSpace.DEVICE, node=topo.node_of(src_gpu), gpu=src_gpu
    )
    dst = Buffer.alloc_virtual(
        n, space=MemSpace.DEVICE, node=topo.node_of(dst_gpu), gpu=dst_gpu
    )
    out = {}

    def proc():
        t0 = engine.now
        yield fabric.dataplane.put(src, dst, traffic_class="bench", name="stripe")
        out["elapsed"] = engine.now - t0

    done = engine.process(proc(), name="stripe_bench")
    engine.run()
    if not done.ok:  # pragma: no cover - surfacing simulation bugs
        raise RuntimeError(f"stripe bench failed: {done.value!r}")
    usage = fabric.dataplane.ledger["bench"]
    return {
        "nbytes": src.nbytes,
        "elapsed_s": out["elapsed"],
        "goodput_Bps": src.nbytes / out["elapsed"],
        "stripes": usage.stripes,
        "ledger": fabric.dataplane.ledger.as_dict(),
    }


#: Sweep sizes: overhead-dominated KiBs through bandwidth-bound GiB-scale.
SWEEP_SIZES = (
    64 * KiB,
    512 * KiB,
    2 * MiB,
    8 * MiB,
    64 * MiB,
    512 * MiB,
)


def stripe_sweep(
    sizes: Sequence[int] = SWEEP_SIZES,
    config: MachineLike = ONE_NODE,
    src_gpu: int = 0,
    dst_gpu: int = 1,
) -> Series:
    """Single-path vs multi-path goodput over a size sweep (one D2D pair)."""
    series = Series(
        exhibit="Striping",
        title="single-path vs link-disjoint striped goodput, D2D "
              f"gpu{src_gpu}->gpu{dst_gpu}",
        columns=("size", "single_GBps", "multi_GBps", "stripes", "speedup"),
    )
    for nbytes in sizes:
        single = measure_stripe_goodput(nbytes, "single", config, src_gpu, dst_gpu)
        multi = measure_stripe_goodput(nbytes, "multi", config, src_gpu, dst_gpu)
        series.add(
            size=fmt_bytes(nbytes),
            single_GBps=round(single["goodput_Bps"] / 1e9, 2),
            multi_GBps=round(multi["goodput_Bps"] / 1e9, 2),
            stripes=multi["stripes"],
            speedup=round(multi["goodput_Bps"] / single["goodput_Bps"], 3),
        )
    series.note(
        "multi stripes across link-disjoint routes (MultiPathPolicy); "
        "below min_stripe_bytes the plans coincide"
    )
    return series


# --------------------------------------------------------------------------
# dynamic-fabric exhibits (DESIGN.md §17)
# --------------------------------------------------------------------------

def _pipelined_chunks(
    policy,
    config: MachineLike,
    chunks: int,
    chunk_bytes: int,
    depth: int,
    faults=None,
) -> dict:
    """Run ``chunks`` plan-cached D2D puts with ``depth`` in flight.

    One buffer pair is reused for every chunk, so after the first submit
    the plan cache replays the stripe plan; a mid-run fault exercises
    both recovery tiers (queued-stripe re-route and plan re-bind).
    """
    from repro.dataplane.graph import GRAPHS
    from repro.dataplane.plane import FabricFault
    from repro.hw.faults import fault_schedule

    with fault_schedule(faults):
        engine = Engine()
        fabric = Fabric(engine, config)
    dp = fabric.dataplane.enable_plan_cache()
    dp.policy = _mk_policy(policy)
    topo = fabric.topo
    n = max(chunk_bytes // 8, 1)
    src = Buffer.alloc_virtual(n, space=MemSpace.DEVICE, node=topo.node_of(0), gpu=0)
    dst = Buffer.alloc_virtual(n, space=MemSpace.DEVICE, node=topo.node_of(1), gpu=1)
    replanned0 = GRAPHS.replanned
    out = {"faulted_chunks": 0}

    def proc():
        t0 = engine.now
        in_flight = []
        for _ in range(chunks):
            in_flight.append(
                dp.put(src, dst, traffic_class="bench", name="chunk")
            )
            if len(in_flight) >= depth:
                if isinstance((yield in_flight.pop(0)), FabricFault):
                    out["faulted_chunks"] += 1
        for ev in in_flight:
            if isinstance((yield ev), FabricFault):
                out["faulted_chunks"] += 1
        out["elapsed"] = engine.now - t0

    done = engine.process(proc(), name="chunk_bench")
    engine.run()
    if not done.ok:  # pragma: no cover - surfacing simulation bugs
        raise RuntimeError(f"chunked bench failed: {done.value!r}")
    return {
        "elapsed_s": out["elapsed"],
        "faulted_chunks": out["faulted_chunks"],
        "reroutes": dp.reroutes,
        "faults": dp.faults,
        "replanned": GRAPHS.replanned - replanned0,
        "plan_hits": dp.plan_cache.hits,
    }


def measure_fault_reroute(
    total_bytes: int = 512 * MiB,
    chunks: int = 32,
    depth: int = 4,
    config: MachineLike = ONE_NODE,
) -> dict:
    """Down the primary NVLink mid-run under a plan-cached chunk pipeline.

    Three timings of the same 512 MiB chunked D2D stream on the GH200
    mesh: healthy multipath (lower bound), multipath losing ``nvl0->1``
    halfway through (the exhibit), and healthy single-path (the
    no-multipath upper bound).  The faulted run recovers on both tiers —
    queued stripes re-route around the dead link and the epoch-stale
    cached plan re-binds — and every chunk still completes.
    """
    from repro.hw.faults import FaultEvent, FaultSchedule

    chunk_bytes = total_bytes // chunks
    healthy = _pipelined_chunks("multi", config, chunks, chunk_bytes, depth)
    sched = FaultSchedule(
        [FaultEvent(healthy["elapsed_s"] / 2, "nvl0->1", "down")]
    )
    faulted = _pipelined_chunks(
        "multi", config, chunks, chunk_bytes, depth, faults=sched
    )
    single = _pipelined_chunks("single", config, chunks, chunk_bytes, depth)
    return {
        "nbytes": chunk_bytes * chunks,
        "chunks": chunks,
        "depth": depth,
        "healthy_s": healthy["elapsed_s"],
        "faulted_s": faulted["elapsed_s"],
        "single_s": single["elapsed_s"],
        "reroutes": faulted["reroutes"],
        "faults": faulted["faults"],
        "replanned": faulted["replanned"],
        "faulted_chunks": faulted["faulted_chunks"],
        "plan_hits": faulted["plan_hits"],
    }


def measure_congestion_goodput(
    policy="congestion",
    n_transfers: int = 8,
    nbytes: int = 16 * MiB,
    config: MachineLike = ONE_NODE,
) -> dict:
    """``n_transfers`` concurrent same-pair D2D puts under one policy.

    Under ``SinglePathPolicy`` they all serialize on the direct NVLink
    port; ``CongestionAwarePolicy`` reads the outstanding-bytes signal at
    submit and spreads them over the link-disjoint candidates.
    """
    engine = Engine()
    fabric = Fabric(engine, config)
    fabric.dataplane.policy = _mk_policy(policy)
    topo = fabric.topo
    n = max(nbytes // 8, 1)
    pairs = [
        (
            Buffer.alloc_virtual(n, space=MemSpace.DEVICE, node=topo.node_of(0), gpu=0),
            Buffer.alloc_virtual(n, space=MemSpace.DEVICE, node=topo.node_of(1), gpu=1),
        )
        for _ in range(n_transfers)
    ]
    out = {}

    def proc():
        t0 = engine.now
        events = [
            fabric.dataplane.put(s, d, traffic_class="bench", name=f"x{i}")
            for i, (s, d) in enumerate(pairs)
        ]
        for ev in events:
            yield ev
        out["elapsed"] = engine.now - t0

    done = engine.process(proc(), name="congestion_bench")
    engine.run()
    if not done.ok:  # pragma: no cover - surfacing simulation bugs
        raise RuntimeError(f"congestion bench failed: {done.value!r}")
    total = n_transfers * pairs[0][0].nbytes
    return {
        "nbytes": total,
        "n_transfers": n_transfers,
        "elapsed_s": out["elapsed"],
        "goodput_Bps": total / out["elapsed"],
    }
