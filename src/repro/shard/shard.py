"""One engine shard: a node's worth of simulation state behind a mailbox.

A :class:`Shard` owns a private :class:`~repro.sim.engine.Engine`, a
node-local :class:`~repro.hw.topology.Fabric` built from a single-node
cut of the cluster spec, and the workload processes resident on that
node.  Nothing inside a shard holds a reference to another shard: the
*only* egress is the :class:`ShardBridge` hanging off the local
dataplane's ``bridge`` hook, and the only ingress is the shard's
:class:`~repro.shard.mailbox.Mailbox` (the ``shard-shared-state`` lint
rule enforces this boundary statically).

A workload addresses an off-shard endpoint with a :class:`RemoteBuffer`
proxy — global GPU id + byte geometry + matching tag.  Submitting a
descriptor whose destination is remote makes the bridge price the wire
segment analytically (:class:`~repro.shard.message.WireModel`) and emit
a packed :class:`~repro.shard.message.ShardMessage`; the local
completion event fires at the delivery time, which the conservative
window protocol guarantees lies beyond the current horizon.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import hashlib

from repro.dataplane.descriptor import DescriptorError, TransferDescriptor
from repro.hw.spec.schema import MachineSpec
from repro.hw.topology import Fabric
from repro.shard.mailbox import Mailbox, MailboxError
from repro.shard.message import ShardMessage, WireModel
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.process import Process


class RemoteBuffer:
    """Geometry-only proxy for a buffer hosted by another shard.

    Carries everything the bridge needs to price and address the wire
    segment: the destination's *global* GPU id, the byte count, and the
    rendezvous ``tag`` the receiver passes to :meth:`Shard.recv`.
    """

    __slots__ = ("gpu", "nbytes", "tag")

    #: Duck-typed Buffer surface (descriptor construction only).
    space = "remote"
    is_virtual = True

    def __init__(self, gpu: int, nbytes: int, tag: Any) -> None:
        if nbytes < 0:
            raise MailboxError(f"remote buffer with negative size {nbytes}")
        self.gpu = gpu
        self.nbytes = nbytes
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RemoteBuffer gpu={self.gpu} {self.nbytes}B tag={self.tag!r}>"


def local_spec(cluster: MachineSpec, node: int) -> MachineSpec:
    """The single-node cut of a cluster spec a shard simulates locally.

    Drops the fabric (inter-node wiring is the wire model's job) but
    keeps the NIC classes so locally-routed host traffic prices exactly
    as in the full graph.
    """
    return MachineSpec(
        name=f"{cluster.name}#n{node}",
        nodes=(cluster.nodes[node],),
        nic_out=cluster.nic_out,
        nic_in=cluster.nic_in,
        params=cluster.params,
        fabric=None,
    )


class ShardBridge:
    """The dataplane's cross-shard egress hook for one shard.

    Windowed mode (default): claimed descriptors append to the outbox
    the driver drains after each window.  Reference (single-heap) mode:
    :meth:`enable_direct` makes delivery scheduling immediate on the
    shared engine — same events, same timestamps, no windows.
    """

    def __init__(self, shard: "Shard") -> None:
        self.shard = shard
        self._seq = 0
        self._outbox: List[ShardMessage] = []
        #: Wire bytes by traffic class (the shard's slice of the ledger).
        self.bytes_by_class: Dict[str, int] = {}
        self._direct_mailboxes: Optional[Dict[int, Mailbox]] = None
        self._direct_log: Optional[List[ShardMessage]] = None

    def enable_direct(
        self, mailboxes: Dict[int, Mailbox], log: List[ShardMessage]
    ) -> None:
        self._direct_mailboxes = mailboxes
        self._direct_log = log

    # -- Dataplane hook protocol ---------------------------------------------
    def claims(self, desc: TransferDescriptor) -> bool:
        return isinstance(desc.dst, RemoteBuffer) or isinstance(desc.src, RemoteBuffer)

    def submit(self, desc: TransferDescriptor) -> Event:
        if isinstance(desc.src, RemoteBuffer):
            raise MailboxError(
                f"{desc.name}: cannot pull from a remote shard; "
                "the owning shard must push"
            )
        shard = self.shard
        dst: RemoteBuffer = desc.dst
        nbytes = desc.nbytes if desc.nbytes is not None else desc.src.nbytes
        if desc.payload and desc.src.nbytes != dst.nbytes:
            raise DescriptorError(
                f"{desc.name}: transfer size mismatch: src {desc.src.nbytes} B "
                f"vs remote dst {dst.nbytes} B"
            )
        dst_shard = shard.cluster.node_of(dst.gpu)
        if dst_shard == shard.id:
            raise MailboxError(
                f"{desc.name}: gpu {dst.gpu} is shard-local; use a local Buffer"
            )
        src_gpu = (
            shard.to_global(desc.src.gpu)
            if desc.src.gpu is not None
            else shard.gpu_base  # host-sourced traffic prices via the boot NIC
        )
        engine = shard.run_engine
        deliver = shard.wire.deliver_time(engine.now, src_gpu, dst.gpu, nbytes)
        self._seq += 1
        msg = ShardMessage(
            deliver, shard.id, self._seq, dst_shard, dst.gpu, src_gpu,
            dst.tag, nbytes, desc.traffic_class, desc.name,
        )
        cls = self.bytes_by_class
        cls[desc.traffic_class] = cls.get(desc.traffic_class, 0) + nbytes
        if self._direct_mailboxes is None:
            self._outbox.append(msg)
        else:
            self._direct_log.append(msg)
            mailbox = self._direct_mailboxes[dst_shard]
            ev = engine.timeout_at(deliver, value=msg)
            ev.add_callback(mailbox._deliver)
            mailbox.injected += 1
        # Local completion at the analytically-priced arrival time; the
        # lookahead bound guarantees this lies beyond the current window.
        return engine.timeout_at(deliver)

    def drain(self) -> List[ShardMessage]:
        out, self._outbox = self._outbox, []
        return out


class Shard:
    """A node-local engine + fabric + workload, stepped window by window."""

    def __init__(
        self,
        cluster: MachineSpec,
        shard_id: int,
        build: Callable[["Shard", dict], List[Process]],
        cfg: dict,
        engine: Optional[Engine] = None,
        wire: Optional[WireModel] = None,
        collect_steps: bool = False,
    ) -> None:
        self.cluster = cluster
        self.id = shard_id
        self.gpu_base = cluster.gpu_base(shard_id)
        self.n_local_gpus = cluster.nodes[shard_id].n_gpus
        dedicated = engine is None
        self.engine = Engine() if dedicated else engine
        if dedicated:
            self.engine.shard_id = shard_id
        self.wire = wire if wire is not None else WireModel(cluster)
        self.local_spec = local_spec(cluster, shard_id)
        # fault_scope pins node-targeted fault events to this shard even in
        # reference mode, where the shared engine carries no shard_id.
        self.fabric = Fabric(self.engine, self.local_spec, fault_scope=shard_id)
        self.mailbox = Mailbox(self.engine, shard_id)
        self.bridge = ShardBridge(self)
        self.fabric.dataplane.bridge = self.bridge
        self._step_hash = None
        if collect_steps:
            if not dedicated:
                raise ValueError("step collection needs a dedicated shard engine")
            self._step_hash = hashlib.sha256()
            self.engine.on_step = self._hash_step
        #: Private replay engine when the resident build opted into graph
        #: mode (see :meth:`enter_graph_mode`); None = eager shard.
        self.graph_engine = None
        #: Workload processes resident on this shard, in spawn order.
        self.procs: List[Process] = build(self, cfg)

    # -- graph mode ----------------------------------------------------------
    @property
    def run_engine(self) -> Engine:
        """The engine resident workload processes execute on."""
        return self.graph_engine if self.graph_engine is not None else self.engine

    def enter_graph_mode(self) -> Optional[Engine]:
        """Move the shard's node simulation onto a private GraphEngine.

        Resident builds call this (before spawning processes) to run the
        whole node — fabric, mailbox, rank processes, step hashing — on a
        :class:`~repro.dataplane.graph.GraphEngine`, a same-semantics
        engine whose pops are accounted as ``events_graphed``.  The host
        engine then carries exactly one pre-priced *graph-launch* event
        per active window (scheduled by :meth:`step_window`), so the
        conservative window protocol — and therefore every message
        digest, step hash, and timestamp — is unchanged while host-heap
        pops collapse to one per window.

        Returns the graph engine, or None when graph mode is unavailable
        (shared host engine, attached observer, or ``REPRO_NO_GRAPHS``)
        — callers then simply stay on the eager shard engine.
        """
        from repro.dataplane.graph import GraphEngine, graphs_enabled

        if (
            self.engine.shard_id is None    # reference mode: shared engine
            or self.engine.obs is not None  # observers must see real pops
            or not graphs_enabled()
        ):
            return None
        if getattr(self, "procs", None):  # unset while build() is running
            raise MailboxError(
                f"shard {self.id}: graph mode must be entered before "
                "resident processes spawn"
            )
        graph = GraphEngine()
        graph.shard_id = self.id
        self.graph_engine = graph
        # Rebuild the node-local state on the graph engine; the bridge
        # object survives (it addresses whichever engine run_engine names).
        # The eager fabric's fault timers (installed from the ambient
        # schedule at construction) are cancelled first — the graph-engine
        # fabric re-installs the schedule, and a stale host-heap timer
        # would mutate the orphaned fabric.
        for ev in self.fabric.fault_events:
            ev.cancel()
        self.fabric = Fabric(graph, self.local_spec, fault_scope=self.id)
        self.mailbox = Mailbox(graph, self.id)
        self.fabric.dataplane.bridge = self.bridge
        self.fabric.dataplane.enable_plan_cache()
        if self._step_hash is not None:
            # The graph engine replays the eager pop stream bit-for-bit,
            # so hashing its pops yields the same step digest.
            graph.on_step = self._hash_step
            self.engine.on_step = None
        return graph

    # -- id mapping ----------------------------------------------------------
    def to_global(self, local_gpu: int) -> int:
        return self.gpu_base + local_gpu

    def to_local(self, global_gpu: int) -> int:
        local = global_gpu - self.gpu_base
        if not 0 <= local < self.n_local_gpus:
            raise MailboxError(
                f"gpu {global_gpu} is not hosted by shard {self.id}"
            )
        return local

    def owns_gpu(self, global_gpu: int) -> bool:
        return 0 <= global_gpu - self.gpu_base < self.n_local_gpus

    # -- workload surface ----------------------------------------------------
    def remote(self, gpu: int, nbytes: int, tag: Any) -> RemoteBuffer:
        """Address ``nbytes`` on global GPU ``gpu`` under rendezvous ``tag``."""
        return RemoteBuffer(gpu, nbytes, tag)

    def put(self, src, dst: RemoteBuffer, traffic_class: str = "shard",
            name: str = "xput") -> Event:
        """Convenience: submit a cross-shard put through the dataplane."""
        return self.fabric.dataplane.put(
            src, dst, traffic_class=traffic_class, name=name
        )

    def recv(self, gpu: int, tag: Any) -> Event:
        """An event firing when a message for (global ``gpu``, tag) lands."""
        self.to_local(gpu)  # ownership check
        return self.mailbox.recv(gpu, tag)

    # -- driver surface ------------------------------------------------------
    def next_time(self) -> float:
        """Earliest local event time; +inf when the shard engine is idle."""
        if self.graph_engine is not None:
            return min(self.engine.peek(), self.graph_engine.peek())
        return self.engine.peek()

    def step_window(self, horizon: float, batch: List[ShardMessage]) -> List[ShardMessage]:
        """Inject one window's messages, run to the horizon, drain egress."""
        t0 = self.engine.now
        self.mailbox.schedule(batch)
        graph = self.graph_engine
        if graph is not None:
            # One pre-priced host event per active window: the graph
            # launch, scheduled at the window's first device activity.
            # Everything else this window pops on the private graph
            # engine (accounted as events_graphed).
            nxt = graph.peek()
            if nxt <= horizon:
                self.engine.timeout_at(nxt)
            self.engine.run(horizon)
            graph.run(horizon)
        else:
            self.engine.run(horizon)
        out = self.bridge.drain()
        obs = self.engine.obs
        if obs is not None:
            obs.span(
                "shard", "window", ("shard", self.id), t0, horizon,
                injected=len(batch), sent=len(out),
            )
        return out

    @property
    def done(self) -> bool:
        return all(p.triggered for p in self.procs)

    def results(self) -> List[Any]:
        return [p.value for p in self.procs]

    def kill_all(self) -> None:
        """Abort teardown: stop resident processes without resuming them."""
        for p in self.procs:
            if not p.triggered:
                p.kill()

    def _hash_step(self, time: float, priority: int, seq: int) -> None:
        self._step_hash.update(f"{time.hex()}|{priority}|{seq};".encode())

    def step_digest(self) -> Optional[str]:
        """SHA-256 of the shard's ``(time, priority, seq)`` pop stream."""
        return self._step_hash.hexdigest() if self._step_hash is not None else None

    def busy_time(self) -> float:
        """Time of the last event processed on either shard engine."""
        if self.graph_engine is not None:
            return max(self.engine.t_busy, self.graph_engine.t_busy)
        return self.engine.t_busy

    def graph_launches(self) -> int:
        """Host graph-launch events issued (0 on an eager shard)."""
        return self.engine.events_popped if self.graph_engine is not None else 0

    def stats_snapshot(self) -> dict:
        e = self.engine
        g = self.graph_engine
        return {
            "events_popped": e.events_popped,
            "events_coalesced": e.events_coalesced + (g.events_coalesced if g else 0),
            "events_cancelled": e.events_cancelled + (g.events_cancelled if g else 0),
            "events_graphed": g.events_popped if g else 0,
            "peak_heap": max(e.peak_heap, g.peak_heap if g else 0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Shard {self.id} t={self.engine.now:.9f} procs={len(self.procs)}>"
