"""Persistent standard p2p (Send_init/Recv_init) and comm dup/split."""

import numpy as np
import pytest

from repro.hw.params import ONE_NODE, PAPER_TESTBED
from repro.mpi.errors import MpiStateError
from repro.mpi.world import World


# -- persistent p2p ---------------------------------------------------------

def test_persistent_send_recv_epochs():
    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            buf = ctx.gpu.alloc_pinned(16)
            req = yield from comm.send_init(buf, dest=1, tag=4)
            for e in range(4):
                buf.data[:] = float(e)
                yield from req.start()
                yield from req.wait()
            return True
        buf = ctx.gpu.alloc_pinned(16)
        req = yield from comm.recv_init(buf, source=0, tag=4)
        got = []
        for e in range(4):
            yield from req.start()
            yield from req.wait()
            got.append(buf.data[0])
        assert got == [0.0, 1.0, 2.0, 3.0]
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_persistent_rendezvous_device_buffers():
    def main(ctx):
        comm = ctx.comm
        n = 4096
        if ctx.rank == 0:
            buf = ctx.gpu.alloc(n)
            req = yield from comm.send_init(buf, dest=1, tag=0)
            for e in range(2):
                buf.data[:] = float(e + 1)
                yield from req.start()
                yield from req.wait()
            return True
        buf = ctx.gpu.alloc(n)
        req = yield from comm.recv_init(buf, source=0, tag=0)
        for e in range(2):
            yield from req.start()
            yield from req.wait()
            assert np.all(buf.data == float(e + 1))
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_persistent_start_while_active_rejected():
    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            buf = ctx.gpu.alloc(1024)
            req = yield from comm.send_init(buf, dest=1)
            yield from req.start()
            with pytest.raises(MpiStateError):
                yield from req.start()
            yield from req.wait()
            return True
        buf = ctx.gpu.alloc(1024)
        rreq = yield from comm.recv_init(buf, source=0)
        yield from rreq.start()
        yield from rreq.wait()
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_persistent_mixes_with_plain_p2p():
    """A persistent recv matches a plain send (matching is by envelope)."""

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            yield from comm.send(ctx.gpu.alloc_pinned(8, fill=5.0), dest=1, tag=9)
            return True
        buf = ctx.gpu.alloc_pinned(8)
        req = yield from comm.recv_init(buf, source=0, tag=9)
        yield from req.start()
        yield from req.wait()
        assert np.all(buf.data == 5.0)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


# -- dup / split --------------------------------------------------------------

def test_dup_preserves_group_isolates_traffic():
    def main(ctx):
        comm = ctx.comm
        dup = yield from comm.dup()
        assert dup.comm_id != comm.comm_id
        assert dup.size == comm.size and dup.rank == comm.rank
        # Same tag on both communicators: no cross-talk.
        if ctx.rank == 0:
            yield from comm.send(ctx.gpu.alloc_pinned(4, fill=1.0), dest=1, tag=0)
            yield from dup.send(ctx.gpu.alloc_pinned(4, fill=2.0), dest=1, tag=0)
            return True
        b_dup = ctx.gpu.alloc_pinned(4)
        b_orig = ctx.gpu.alloc_pinned(4)
        yield from dup.recv(b_dup, source=0, tag=0)
        yield from comm.recv(b_orig, source=0, tag=0)
        assert b_dup.data[0] == 2.0 and b_orig.data[0] == 1.0
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_split_by_parity():
    def main(ctx):
        comm = ctx.comm
        sub = yield from comm.split(color=ctx.rank % 2)
        assert sub.size == 2
        assert sub.rank == ctx.rank // 2
        # Collectives work inside the subgroup.
        sbuf = ctx.gpu.alloc_pinned(8, fill=float(ctx.rank + 1))
        rbuf = ctx.gpu.alloc_pinned(8)
        yield from sub.allreduce(sbuf, rbuf)
        expect = (1 + 3) if ctx.rank % 2 == 0 else (2 + 4)
        assert np.all(rbuf.data == expect)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_split_key_reorders():
    def main(ctx):
        sub = yield from ctx.comm.split(color=0, key=-ctx.rank)
        return sub.rank

    ranks = World(ONE_NODE).run(main, nprocs=4)
    assert ranks == [3, 2, 1, 0]


def test_split_undefined_color():
    def main(ctx):
        sub = yield from ctx.comm.split(color=0 if ctx.rank < 2 else -1)
        if ctx.rank < 2:
            assert sub is not None and sub.size == 2
        else:
            assert sub is None
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_sequential_splits_get_distinct_ids():
    def main(ctx):
        a = yield from ctx.comm.split(color=0)
        b = yield from ctx.comm.split(color=0)
        assert a.comm_id != b.comm_id
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_partitioned_channel_on_split_comm():
    """The paper's API works on derived communicators too."""

    def main(ctx):
        sub = yield from ctx.comm.split(color=ctx.rank % 2)
        if sub.rank == 0:
            sbuf = ctx.gpu.alloc(64, fill=float(ctx.rank))
            sreq = yield from sub.psend_init(sbuf, 2, dest=1, tag=0)
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            for i in range(2):
                yield from sreq.pready(i)
            yield from sreq.wait()
            return None
        rbuf = ctx.gpu.alloc(64)
        rreq = yield from sub.precv_init(rbuf, 2, source=0, tag=0)
        yield from rreq.start()
        yield from rreq.pbuf_prepare()
        yield from rreq.wait()
        return rbuf.data[0]

    res = World(ONE_NODE).run(main, nprocs=4)
    assert res[2] == 0.0   # rank 2 is rank 1 of the even subgroup (root 0)
    assert res[3] == 1.0   # rank 3 receives from rank 1
