"""Per-rank MPI runtime state.

Holds the rank's UCP resources, matching structures, endpoint cache, and
progression engine.  Created by :class:`~repro.mpi.world.World` before the
rank process starts; the *costs* of initialization are charged when the
rank process runs :meth:`MpiRuntime.init` (our MPI_Init).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Optional, Tuple

from repro.mpi.matching import KeyedMatcher, TagMatcher
from repro.ucx.context import UcpContext, UcpWorker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cuda.device import Device
    from repro.mpi.comm import Communicator
    from repro.mpi.progress import ProgressEngine
    from repro.mpi.world import World


class MpiRuntime:
    """Everything rank-local that the MPI layer needs."""

    def __init__(self, world: "World", world_rank: int, device: "Device") -> None:
        self.world = world
        self.world_rank = world_rank
        self.device = device
        self.engine = world.engine
        self.fabric = world.fabric
        self.params = world.fabric.config.params
        self.node = device.node

        # Populated during init().
        self.context: Optional[UcpContext] = None
        self.worker: Optional[UcpWorker] = None
        self.progress: Optional["ProgressEngine"] = None
        self.initialized = False
        self.finalized = False

        # Matching / in-flight state.
        self.matcher = TagMatcher()
        self.part_matcher = KeyedMatcher(self.engine)
        self.pending_sends: Dict[int, Tuple] = {}
        self.recv_by_seq: Dict[int, object] = {}
        self.comms: Dict[int, "Communicator"] = {}

        # MCA partitioned component lazily initialized on first use
        # (its cost lands in the first MPIX_Pbuf_prepare — Table I).
        self.mca_partitioned_ready = False

    # -- init / finalize ------------------------------------------------------
    def init(self) -> Generator:
        """MPI_Init: create UCP resources, start progression, bootstrap-sync."""
        if self.initialized:
            return
        self.context = yield from UcpContext.create(
            self.engine, self.fabric, self.node, self.device.gpu_id
        )
        self.worker = yield from self.context.worker_create(name=f"r{self.world_rank}")
        from repro.mpi.progress import ProgressEngine

        self.progress = ProgressEngine(self)
        self.world._register_address(self.world_rank, self.worker.address)
        # Out-of-band bootstrap barrier (PMIx-style): everyone's address is
        # published before any rank leaves init.
        yield from self.world._bootstrap_barrier()
        self.initialized = True

    def finalize(self) -> Generator:
        if self.finalized:
            return
        yield self.engine.timeout(self.params.mpi_call_overhead)
        self.finalized = True

    # -- endpoints --------------------------------------------------------------
    def ep_to(self, comm: "Communicator", comm_rank: int) -> Generator:
        """Endpoint to ``comm_rank`` of ``comm`` (cached after first use)."""
        world_rank = comm.world_rank_of(comm_rank)
        addr = self.world.address_of(world_rank)
        ep = yield from self.worker.ep_create(addr)
        return ep

    def mca_partitioned_init(self) -> Generator:
        """First touch of the partitioned MCA component (Table I)."""
        if not self.mca_partitioned_ready:
            yield self.engine.timeout(self.params.mca_module_init)
            self.mca_partitioned_ready = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MpiRuntime rank={self.world_rank}>"
