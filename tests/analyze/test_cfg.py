"""Statement-level CFGs: shape, dominators, blocked reachability."""

import ast
import textwrap

from repro.analyze.cfg import build_cfg, map_statements


def cfg_of(src):
    tree = ast.parse(textwrap.dedent(src).strip())
    func = tree.body[0]
    return build_cfg(func), func


def node_at(cfg, lineno):
    hits = [
        nid for nid, stmt in cfg.stmts.items()
        if stmt is not None and stmt.lineno == lineno
    ]
    assert len(hits) == 1, f"line {lineno}: nodes {hits}"
    return hits[0]


def test_linear_chain_dominators():
    cfg, _ = cfg_of("""
        def f():
            a = 1
            b = 2
            c = 3
    """)
    dom = cfg.dominators()
    n2, n3, n4 = node_at(cfg, 2), node_at(cfg, 3), node_at(cfg, 4)
    assert n2 in dom[n3] and n3 in dom[n4] and cfg.entry in dom[n4]


def test_if_else_join_not_dominated_by_branches():
    cfg, _ = cfg_of("""
        def f(x):
            if x:
                a = 1
            else:
                b = 2
            c = 3
    """)
    dom = cfg.dominators()
    branch_a, branch_b, join = node_at(cfg, 3), node_at(cfg, 5), node_at(cfg, 6)
    test = node_at(cfg, 2)
    assert test in dom[join]
    assert branch_a not in dom[join] and branch_b not in dom[join]


def test_if_without_else_falls_through():
    cfg, _ = cfg_of("""
        def f(x):
            if x:
                a = 1
            c = 3
    """)
    dom = cfg.dominators()
    assert node_at(cfg, 3) not in dom[node_at(cfg, 4)]


def test_return_in_branch_reaches_exit():
    cfg, _ = cfg_of("""
        def f(x):
            if x:
                return 1
            y = 2
    """)
    ret = node_at(cfg, 3)
    assert cfg.exit in cfg.succs[ret]
    # the fall-through statement is not a successor of the return
    assert node_at(cfg, 4) not in cfg.succs[ret]


def test_while_loop_back_edge_and_break():
    cfg, _ = cfg_of("""
        def f(x):
            while x:
                if x > 2:
                    break
                x -= 1
            done = 1
    """)
    head, done = node_at(cfg, 2), node_at(cfg, 6)
    body_tail = node_at(cfg, 5)
    assert head in cfg.succs[body_tail]        # back edge
    brk = node_at(cfg, 4)
    assert done in cfg.succs[brk] or done in cfg.succs[head]
    assert done in cfg.reachable_from(brk)


def test_try_handler_reachable_from_body():
    cfg, _ = cfg_of("""
        def f():
            try:
                a = risky()
            except ValueError:
                b = 2
            c = 3
    """)
    handler_body = node_at(cfg, 5)
    assert handler_body in cfg.reachable_from(node_at(cfg, 3))
    assert node_at(cfg, 6) in cfg.reachable_from(handler_body)


def test_reachable_from_respects_blocked_nodes():
    cfg, _ = cfg_of("""
        def f(x):
            a = 1
            b = 2
            c = 3
    """)
    blocked = frozenset({node_at(cfg, 3)})
    reach = cfg.reachable_from(node_at(cfg, 2), blocked)
    assert node_at(cfg, 4) not in reach and cfg.exit not in reach


def test_map_statements_claims_headers_not_nested_scopes():
    tree = ast.parse(textwrap.dedent("""
        def f(x):
            if x > 1:
                y = x + 1
            def inner():
                z = 99
            return y
    """))
    func = tree.body[0]
    mapping = map_statements(func)
    if_stmt = func.body[0]
    compare = if_stmt.test
    assert mapping[id(compare)] is if_stmt           # header -> compound stmt
    inner = func.body[1]
    inner_assign = inner.body[0]
    assert id(inner_assign) not in mapping           # nested scope not entered
    assert id(inner_assign.value) not in mapping
