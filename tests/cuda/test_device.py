"""Device: allocation, launch/sync semantics, memcpy, stream FIFO."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.cuda.kernel import BlockKernel, UniformKernel
from repro.cuda.timing import WorkSpec
from repro.hw.memory import MemSpace
from repro.units import us

WORK = WorkSpec.vector_add()


def test_alloc_spaces(gpu):
    assert gpu.alloc(4).space is MemSpace.DEVICE
    assert gpu.alloc(4).gpu == 0
    assert gpu.alloc_pinned(4).space is MemSpace.PINNED
    assert gpu.alloc_unified(4).space is MemSpace.UNIFIED


def test_launch_validates_block_size(gpu):
    with pytest.raises(ValueError):
        gpu.launch(UniformKernel(1, 2048, WORK))


def test_launch_is_async(engine, gpu):
    def host():
        t0 = engine.now
        yield from gpu.launch_h(UniformKernel(256, 1024, WORK))
        return engine.now - t0

    api_time = engine.run(engine.process(host()))
    assert api_time == pytest.approx(gpu.cost.launch_api_cost)


def test_sync_cost_on_empty_stream(engine, gpu):
    def host():
        t0 = engine.now
        yield from gpu.sync_h()
        return engine.now - t0

    assert engine.run(engine.process(host())) == pytest.approx(7.8 * us)


def test_launch_then_sync_total(engine, gpu):
    def host():
        yield from gpu.launch_h(UniformKernel(1, 1024, WORK))
        yield from gpu.sync_h()
        return engine.now

    total = engine.run(engine.process(host()))
    expected = (
        gpu.cost.launch_api_cost
        + gpu.cost.kernel_exec_time(1, 1024, WORK)
        + gpu.cost.stream_sync_cost
    )
    assert total == pytest.approx(expected)


def test_apply_materializes_numerics(engine, gpu):
    a = gpu.alloc(64, fill=1.0)
    b = gpu.alloc(64, fill=2.0)
    c = gpu.alloc(64)
    k = UniformKernel(1, 64, WORK, apply=lambda: np.add(a.data, b.data, out=c.data))

    def host():
        done = yield from gpu.launch_h(k)
        yield done

    engine.run(engine.process(host()))
    assert np.all(c.data == 3.0)


def test_stream_fifo_ordering(engine, gpu):
    order = []

    def host():
        k1 = UniformKernel(1, 64, WORK, name="k1", apply=lambda: order.append("k1"))
        k2 = UniformKernel(1, 64, WORK, name="k2", apply=lambda: order.append("k2"))
        d1 = yield from gpu.launch_h(k1)
        d2 = yield from gpu.launch_h(k2)
        yield d2
        assert d1.triggered

    engine.run(engine.process(host()))
    assert order == ["k1", "k2"]


def test_two_streams_run_concurrently(engine, gpu):
    s2 = gpu.new_stream()
    big = UniformKernel(2048, 1024, WORK, name="big")

    def host():
        d1 = gpu.launch(big, gpu.default_stream)
        d2 = gpu.launch(big, s2)
        yield d1
        yield d2
        return engine.now

    total = engine.run(engine.process(host()))
    one = gpu.cost.kernel_exec_time(2048, 1024, WORK)
    # Streams are independent queues; our model runs them concurrently.
    assert total < 2 * one


def test_memcpy_h2d_timing_and_data(engine, gpu):
    n = 1 << 18
    hsrc = gpu.alloc_pinned(n, fill=5.0)
    ddst = gpu.alloc(n)

    def host():
        t0 = engine.now
        yield from gpu.memcpy_h(ddst, hsrc)
        return engine.now - t0

    dt = engine.run(engine.process(host()))
    assert np.all(ddst.data == 5.0)
    wire = n * 8 / gpu.fabric.config.params.c2c_bw
    assert dt >= wire


def test_block_kernel_runs_every_block(engine, gpu):
    seen = []

    def body(blk):
        yield blk.compute(WORK)
        seen.append(blk.block_id)

    def host():
        done = yield from gpu.launch_h(BlockKernel(10, 64, body))
        yield done

    engine.run(engine.process(host()))
    assert sorted(seen) == list(range(10))


def test_block_kernel_wave_scheduling(engine, gpu):
    """More blocks than resident slots -> at least two waves."""
    small = gpu.cost.with_overrides(sm_count=2, max_blocks_per_sm=1)
    from repro.cuda.device import Device

    gpu2 = Device(gpu.fabric, 1, cost=small)
    starts = []

    def body(blk):
        starts.append((blk.block_id, blk.now))
        yield blk.compute(WORK)

    def host():
        done = yield from gpu2.launch_h(BlockKernel(4, 1024, body))
        yield done

    engine.run(engine.process(host()))
    t_first = min(t for _b, t in starts)
    t_last = max(t for _b, t in starts)
    assert t_last > t_first  # second wave started strictly later


def test_uniform_wave_hook_sees_all_blocks(engine, gpu):
    covered = []

    def hook(kctx, wave):
        covered.extend(wave.blocks)
        assert wave.end_time == engine.now

    k = UniformKernel(1000, 1024, WORK, wave_hook=hook)

    def host():
        done = yield from gpu.launch_h(k)
        yield done

    engine.run(engine.process(host()))
    assert covered == list(range(1000))


def test_exec_time_closed_form_matches_simulation(engine, gpu):
    k = UniformKernel(5000, 1024, WORK)

    def host():
        t0 = engine.now
        done = gpu.launch(k)
        yield done
        return engine.now - t0

    assert engine.run(engine.process(host())) == pytest.approx(gpu.exec_time(k))
