"""Descriptor validation: byte-true size checks, dtype and virtual cases."""

import numpy as np
import pytest

from repro.dataplane import DescriptorError, TransferDescriptor
from repro.hw.memory import Buffer, MemSpace
from repro.hw.params import ONE_NODE
from repro.hw.topology import Fabric
from repro.sim.engine import Engine


def dev(gpu, n=8, dtype=np.float64, virtual=False):
    alloc = Buffer.alloc_virtual if virtual else Buffer.alloc
    return alloc(n, dtype=dtype, space=MemSpace.DEVICE, node=0, gpu=gpu)


def test_matching_payload_validates():
    d = TransferDescriptor(dev(0), dev(1)).validate()
    assert d.wire_bytes == 8 * 8
    assert d.splittable_elems() == 8


def test_dtype_mismatch_same_count_flagged():
    # The seed's element-count check passed this silently: 8 x f64 (64 B)
    # into 8 x f32 (32 B) truncates half the payload on real hardware.
    with pytest.raises(DescriptorError, match="size mismatch"):
        TransferDescriptor(dev(0), dev(1, dtype=np.float32)).validate()


def test_dtype_mismatch_same_bytes_flagged():
    # Equal wire bytes but different element geometry: 8 x f32 cannot
    # land element-for-element in 4 x f64.
    with pytest.raises(DescriptorError, match="dtype mismatch"):
        TransferDescriptor(dev(0, dtype=np.float32), dev(1, n=4)).validate()


def test_virtual_dst_same_bytes_different_dtype_ok():
    # A virtual destination never materializes the copy, so only the
    # wire size must agree (registration-size semantics).
    d = TransferDescriptor(dev(0, dtype=np.float32), dev(1, n=4, virtual=True))
    assert d.validate().wire_bytes == 32
    assert d.splittable_elems() == 0  # geometry differs -> unsplittable


def test_virtual_src_and_dst_validate():
    d = TransferDescriptor(dev(0, virtual=True), dev(1, virtual=True)).validate()
    assert d.wire_bytes == 64
    assert d.splittable_elems() == 8


def test_virtual_size_mismatch_flagged():
    # nbytes reports shape-true size even at zero stride; a short virtual
    # destination is still a wire-size error.
    with pytest.raises(DescriptorError, match="size mismatch"):
        TransferDescriptor(dev(0), dev(1, n=4, virtual=True)).validate()


def test_negative_control_bytes_flagged():
    with pytest.raises(DescriptorError, match="negative"):
        TransferDescriptor(dev(0), dev(1), nbytes=-1, payload=False).validate()


def test_bad_initiator_flagged():
    with pytest.raises(DescriptorError, match="initiator"):
        TransferDescriptor(dev(0), dev(1), initiator="dma").validate()


def test_fabric_shim_raises_descriptor_error():
    """The legacy Fabric.transfer surface reports the byte-true check
    (DescriptorError is a ValueError, preserving the old contract)."""
    fab = Fabric(Engine(), ONE_NODE)
    with pytest.raises(ValueError, match="size mismatch"):
        fab.transfer(dev(0), dev(1, dtype=np.float32))
