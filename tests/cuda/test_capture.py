"""Stream capture + graph launch: record semantics, replay equivalence."""

import numpy as np
import pytest

from repro.cuda.kernel import UniformKernel
from repro.cuda.timing import WorkSpec
from repro.dataplane.graph import GraphError

WORK = WorkSpec.vector_add()


def _kernel(apply=None):
    return UniformKernel(4, 256, WORK, name="k", apply=apply)


# -- capture record semantics -------------------------------------------------

def test_captured_ops_do_not_execute(engine, gpu):
    gpu.default_stream.begin_capture()
    done = gpu.launch(_kernel())
    graph = gpu.default_stream.end_capture()
    engine.run()
    assert engine.now == 0.0          # nothing ran during capture
    assert not done.triggered         # placeholder event never fires
    assert len(graph.ops) == 1 and graph.sealed


def test_cross_stream_enqueue_during_capture_rejected(engine, gpu):
    other = gpu.new_stream()
    gpu.default_stream.begin_capture()
    try:
        with pytest.raises(GraphError, match="cross-stream"):
            gpu.launch(_kernel(), stream=other)
    finally:
        gpu.launch(_kernel())
        gpu.default_stream.end_capture()


def test_nested_capture_rejected(engine, gpu):
    gpu.default_stream.begin_capture()
    try:
        with pytest.raises(GraphError, match="already has an open capture"):
            gpu.new_stream().begin_capture()
    finally:
        gpu.launch(_kernel())
        gpu.default_stream.end_capture()


def test_empty_capture_rejected(engine, gpu):
    gpu.default_stream.begin_capture()
    with pytest.raises(GraphError, match="empty capture"):
        gpu.default_stream.end_capture()
    gpu.default_stream.device.active_capture = None


def test_end_without_begin_rejected(engine, gpu):
    with pytest.raises(GraphError, match="no open capture"):
        gpu.default_stream.end_capture()


def test_unsealed_graph_cannot_launch(engine, gpu):
    graph = gpu.default_stream.begin_capture()
    gpu.launch(_kernel())
    try:
        with pytest.raises(GraphError, match="still capturing"):
            gpu.default_stream.graph_launch(graph)
    finally:
        gpu.default_stream.end_capture()


def test_sealed_graph_refuses_more_ops(engine, gpu):
    gpu.default_stream.begin_capture()
    gpu.launch(_kernel())
    graph = gpu.default_stream.end_capture()
    with pytest.raises(GraphError, match="sealed"):
        graph.add(lambda: iter(()), "late")


# -- replay equivalence -------------------------------------------------------

def _capture_and_replay(engine, gpu, launches):
    hits = []

    def apply():
        hits.append(engine.now)

    stream = gpu.default_stream
    stream.begin_capture()
    gpu.launch(_kernel(apply=apply))
    gpu.launch(_kernel(apply=apply))
    graph = stream.end_capture()

    def host():
        for _ in range(launches):
            yield from gpu.graph_launch_h(graph)
            yield from gpu.sync_h()
        return engine.now

    t_end = engine.run(engine.process(host()))
    return t_end, hits


def _eager(engine, gpu, launches):
    hits = []

    def apply():
        hits.append(engine.now)

    def host():
        for _ in range(launches):
            # One API charge then zero-cost enqueues: the same host
            # timing shape graph_launch_h produces for the whole graph.
            yield engine.timeout(gpu.cost.launch_api_cost)
            gpu.launch(_kernel(apply=apply))
            gpu.launch(_kernel(apply=apply))
            yield from gpu.sync_h()
        return engine.now

    t_end = engine.run(engine.process(host()))
    return t_end, hits


def test_graph_replay_time_identical_to_eager(engine, gpu):
    from repro.cuda.device import Device
    from repro.hw.params import ONE_NODE
    from repro.hw.topology import Fabric
    from repro.sim.engine import Engine

    graph_t, graph_hits = _capture_and_replay(engine, gpu, launches=3)
    e2 = Engine()
    gpu2 = Device(Fabric(e2, ONE_NODE), 0)
    eager_t, eager_hits = _eager(e2, gpu2, launches=3)
    assert graph_t == eager_t
    assert graph_hits == eager_hits
    assert len(graph_hits) == 6       # 2 kernels x 3 launches


def test_no_graphs_env_degrades_to_eager(engine, gpu, monkeypatch):
    monkeypatch.setenv("REPRO_NO_GRAPHS", "1")
    t_env, hits_env = _capture_and_replay(engine, gpu, launches=2)
    monkeypatch.delenv("REPRO_NO_GRAPHS")
    from repro.cuda.device import Device
    from repro.hw.params import ONE_NODE
    from repro.hw.topology import Fabric
    from repro.sim.engine import Engine

    e2 = Engine()
    gpu2 = Device(Fabric(e2, ONE_NODE), 0)
    t_on, hits_on = _capture_and_replay(e2, gpu2, launches=2)
    assert t_env == t_on              # A/B: same simulated completion time
    assert hits_env == hits_on


def test_captured_memcpy_rereads_source(engine, gpu):
    """Each replay moves the buffer's contents *at launch time*."""
    src = gpu.alloc(8, fill=1.0)
    dst = gpu.alloc(8)
    stream = gpu.default_stream
    stream.begin_capture()
    gpu.memcpy_async(dst, src)
    graph = stream.end_capture()

    def host():
        yield from gpu.graph_launch_h(graph)
        yield from gpu.sync_h()
        first = dst.data.copy()
        src.data[:] = 5.0
        yield from gpu.graph_launch_h(graph)
        yield from gpu.sync_h()
        return first, dst.data.copy()

    first, second = engine.run(engine.process(host()))
    assert np.all(first == 1.0) and np.all(second == 5.0)


def test_freed_buffer_invalidates_graph(engine, gpu):
    src = gpu.alloc(8, fill=1.0)
    dst = gpu.alloc(8)
    stream = gpu.default_stream
    stream.begin_capture()
    gpu.memcpy_async(dst, src)
    graph = stream.end_capture()
    src.free()
    with pytest.raises(GraphError, match="freed buffer"):
        stream.graph_launch(graph)


def test_cross_device_launch_rejected(engine, fabric, gpu):
    from repro.cuda.device import Device

    gpu1 = Device(fabric, 1)
    gpu.default_stream.begin_capture()
    gpu.launch(_kernel())
    graph = gpu.default_stream.end_capture()
    with pytest.raises(GraphError, match="cannot launch"):
        gpu1.default_stream.graph_launch(graph)
