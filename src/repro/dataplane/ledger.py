"""Per-traffic-class accounting of everything the dataplane moved.

The ledger answers "which subsystem moved how many bytes, over how many
transfers and stripes, with how much estimated link occupancy" — the
cross-cutting accounting that was impossible while every producer drove
the links directly.  It is deliberately passive: counters only, updated
at submit time, no engine events and no obs traffic, so an attached
ledger can never perturb the simulated timeline.

Occupancy is the serialization estimate of the cut-through link model
(per-stripe ``max(overhead) + bytes / bottleneck_bw``), i.e. the port
time the transfer asks for, not the queueing-delayed time it gets — a
deterministic submit-time quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataplane.descriptor import TransferDescriptor
    from repro.dataplane.policy import Stripe


@dataclass
class ClassUsage:
    """Accumulated usage of one traffic class."""

    bytes: int = 0
    transfers: int = 0
    stripes: int = 0
    occupancy_s: float = 0.0


@dataclass
class Ledger:
    """Traffic-class -> usage, in first-submission order."""

    classes: Dict[str, ClassUsage] = field(default_factory=dict)

    def account(self, desc: "TransferDescriptor", stripes: List["Stripe"]) -> None:
        usage = self.classes.get(desc.traffic_class)
        if usage is None:
            usage = self.classes[desc.traffic_class] = ClassUsage()
        usage.bytes += desc.wire_bytes
        usage.transfers += 1
        usage.stripes += len(stripes)
        for stripe in stripes:
            bottleneck = min(link.bandwidth for link in stripe.route)
            usage.occupancy_s += (
                max(link.overhead for link in stripe.route)
                + stripe.nbytes / bottleneck
            )

    # -- congestion signal -------------------------------------------------
    # Outstanding-bytes per link: charged at stripe launch, discharged at
    # stripe completion (or abort), both inside existing event pops — no
    # heap traffic, pure arithmetic, so the signal is deterministic and
    # free on unobserved runs.  CongestionAwarePolicy reads it at submit
    # time to score candidate routes (DESIGN.md §17).

    @staticmethod
    def charge_links(route, nbytes: int) -> None:
        for link in route:
            link.outstanding_bytes += nbytes

    @staticmethod
    def discharge_links(route, nbytes: int) -> None:
        for link in route:
            link.outstanding_bytes -= nbytes

    def __getitem__(self, traffic_class: str) -> ClassUsage:
        return self.classes.get(traffic_class, ClassUsage())

    def total_bytes(self) -> int:
        return sum(u.bytes for u in self.classes.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready snapshot (bench output, BENCH_pr5.json)."""
        return {
            name: {
                "bytes": u.bytes,
                "transfers": u.transfers,
                "stripes": u.stripes,
                "occupancy_s": round(u.occupancy_s, 9),
            }
            for name, u in self.classes.items()
        }
