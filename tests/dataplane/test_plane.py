"""Dataplane submission surface: shims, staging, ledger, policy selection."""

import numpy as np
import pytest

from repro.dataplane import Dataplane, MultiPathPolicy, SinglePathPolicy, policy_from_env
from repro.hw.memory import Buffer, MemSpace
from repro.hw.params import ONE_NODE, TestbedConfig
from repro.hw.topology import Fabric
from repro.sim.engine import Engine


def _mk(config=ONE_NODE):
    engine = Engine()
    return engine, Fabric(engine, config)


def dev(fab, gpu, n=8, fill=None):
    return Buffer.alloc(
        n, space=MemSpace.DEVICE, node=fab.topo.node_of(gpu), gpu=gpu, fill=fill
    )


def _run(engine, gen):
    done = engine.process(gen, name="t")
    engine.run()
    assert done.ok, done.value
    return done.value


def test_fabric_owns_a_dataplane():
    _e, fab = _mk()
    assert isinstance(fab.dataplane, Dataplane)
    assert isinstance(fab.dataplane.policy, SinglePathPolicy)


def test_put_delivers_payload_and_accounts():
    engine, fab = _mk()
    src, dst = dev(fab, 0, fill=3.0), dev(fab, 1)

    def body():
        yield fab.dataplane.put(src, dst, traffic_class="pcoll", name="x")

    _run(engine, body())
    assert np.all(dst.data == 3.0)
    usage = fab.dataplane.ledger["pcoll"]
    assert usage.bytes == src.nbytes
    assert usage.transfers == 1 and usage.stripes == 1
    assert usage.occupancy_s > 0
    assert fab.dataplane.submissions == 1


def test_control_charges_time_but_moves_no_payload():
    engine, fab = _mk()
    src, dst = dev(fab, 0, fill=7.0), dev(fab, 1)

    def body():
        t0 = engine.now
        yield fab.dataplane.control(src, dst, 4096, traffic_class="am")
        return engine.now - t0

    elapsed = _run(engine, body())
    assert elapsed > 0
    assert np.all(dst.data == 0.0)  # no payload landed
    assert fab.dataplane.ledger["am"].bytes == 4096


def test_rma_put_stages_through_copy_engine():
    """Host-mediated D2D between IPC peers pays the cuda_ipc setup on top
    of the wire time; a plain put does not."""
    engine, fab = _mk()

    def timed(fn):
        e, f = _mk()
        s, d = dev(f, 0, fill=1.0), dev(f, 1)

        def body():
            t0 = e.now
            yield fn(f, s, d)
            return e.now - t0

        return _run(e, body())

    plain = timed(lambda f, s, d: f.dataplane.put(s, d))
    staged = timed(lambda f, s, d: f.dataplane.rma_put(s, d))
    overhead = ONE_NODE.params.cuda_ipc_put_overhead
    assert staged == pytest.approx(plain + overhead)


def test_rma_put_no_peer_mapping_goes_direct():
    """Inter-node D2D cannot IPC-map; rma_put must not touch a copy engine."""
    engine, fab = _mk(TestbedConfig(n_nodes=2, gpus_per_node=1))
    src, dst = dev(fab, 0, fill=2.0), dev(fab, 1)

    def body():
        yield fab.dataplane.rma_put(src, dst, traffic_class="rndv")

    _run(engine, body())
    assert np.all(dst.data == 2.0)
    assert fab.dataplane.ledger["rndv"].transfers == 1


def test_ledger_totals_across_classes():
    engine, fab = _mk()
    a, b = dev(fab, 0, fill=1.0), dev(fab, 1)

    def body():
        yield fab.dataplane.put(a, b, traffic_class="coll")
        yield fab.dataplane.control(a, b, 128, traffic_class="am")

    _run(engine, body())
    ledger = fab.dataplane.ledger
    assert ledger.total_bytes() == a.nbytes + 128
    snap = ledger.as_dict()
    assert set(snap) == {"coll", "am"}
    assert snap["coll"]["transfers"] == 1


def test_policy_from_env_values():
    assert isinstance(policy_from_env(None), SinglePathPolicy)
    assert isinstance(policy_from_env(""), SinglePathPolicy)
    assert isinstance(policy_from_env("single"), SinglePathPolicy)
    assert isinstance(policy_from_env("multi"), MultiPathPolicy)
    with pytest.raises(ValueError, match="REPRO_PATH_POLICY"):
        policy_from_env("fastest")


def test_env_knob_selects_policy(monkeypatch):
    monkeypatch.setenv("REPRO_PATH_POLICY", "multi")
    _e, fab = _mk()
    assert isinstance(fab.dataplane.policy, MultiPathPolicy)
    monkeypatch.delenv("REPRO_PATH_POLICY")
    _e, fab = _mk()
    assert isinstance(fab.dataplane.policy, SinglePathPolicy)


def test_multipath_policy_guards():
    with pytest.raises(ValueError):
        MultiPathPolicy(min_stripe_bytes=0)
    with pytest.raises(ValueError):
        MultiPathPolicy(max_stripes=1)
