"""``python -m repro profile``: end-to-end runs over real examples."""

import json

import pytest

from repro.obs.chrome import validate_trace
from repro.obs.cli import main, profile_script


def test_profile_quickstart_emits_valid_chrome_json(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["quickstart", "--chrome", str(out)]) == 0
    obj = json.loads(out.read_text())
    validate_trace(obj)
    names = {e["name"] for e in obj["traceEvents"]}
    assert names & {"launch", "put", "mem_map"}
    stdout = capsys.readouterr().out
    assert "profile:" in stdout and "trace events" in stdout


def test_profile_second_example_emits_valid_chrome_json(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["jacobi_halo", "--chrome", str(out)]) == 0
    obj = json.loads(out.read_text())
    validate_trace(obj)
    assert len(obj["traceEvents"]) > 0


def test_util_and_critical_path_reports_print(capsys):
    assert main(["quickstart", "--util", "--critical-path"]) == 0
    out = capsys.readouterr().out
    assert "utilization over" in out
    assert "critical path:" in out
    assert "gpu0.sm" in out


def test_steps_flag_includes_engine_instants(tmp_path):
    out = tmp_path / "trace.json"
    assert main(["quickstart", "--chrome", str(out), "--steps"]) == 0
    obj = json.loads(out.read_text())
    assert any(e.get("cat") == "engine" for e in obj["traceEvents"])


def test_missing_target_exits_2(capsys):
    assert main(["no_such_example"]) == 2
    assert "profile:" in capsys.readouterr().err


def test_crashing_target_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("raise RuntimeError('boom')\n")
    assert main([str(bad)]) == 2
    assert "boom" in capsys.readouterr().err


def test_profile_script_uninstalls_bus_on_crash(tmp_path):
    from repro.obs import bus as obs_bus

    bad = tmp_path / "bad.py"
    bad.write_text("raise RuntimeError('boom')\n")
    with pytest.raises(RuntimeError):
        profile_script(str(bad))
    assert obs_bus.active() is None
