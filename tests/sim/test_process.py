"""Process semantics: yields, returns, failures, interrupts, nesting."""

import pytest

from repro.sim.engine import Engine
from repro.sim.process import Interrupt, Process, ProcessFailed


def test_return_value(engine):
    def proc():
        yield engine.timeout(1)
        return "result"

    assert engine.run(engine.process(proc())) == "result"


def test_requires_generator(engine):
    with pytest.raises(TypeError):
        Process(engine, lambda: None)


def test_yield_number_is_timeout(engine):
    def proc():
        yield 2.5
        return engine.now

    assert engine.run(engine.process(proc())) == 2.5


def test_yield_none_resumes_at_same_time(engine):
    def proc():
        t0 = engine.now
        yield None
        return engine.now - t0

    assert engine.run(engine.process(proc())) == 0.0


def test_yield_garbage_rejected(engine):
    def proc():
        yield "nonsense"

    with pytest.raises(TypeError):
        engine.run(engine.process(proc()))


def test_wait_for_subprocess(engine):
    def child():
        yield engine.timeout(3)
        return 7

    def parent():
        value = yield engine.process(child())
        return value * 2

    assert engine.run(engine.process(parent())) == 14
    assert engine.now == 3


def test_child_failure_propagates(engine):
    def child():
        yield engine.timeout(1)
        raise KeyError("lost")

    def parent():
        with pytest.raises(KeyError):
            yield engine.process(child())
        return "caught"

    assert engine.run(engine.process(parent())) == "caught"


def test_unwaited_crash_surfaces(engine):
    def lonely():
        yield engine.timeout(1)
        raise RuntimeError("unobserved")

    engine.process(lonely())
    with pytest.raises(ProcessFailed):
        engine.run()


def test_interrupt_wakes_sleeper(engine):
    def sleeper():
        try:
            yield engine.timeout(100)
        except Interrupt as exc:
            return ("interrupted", exc.cause, engine.now)

    p = engine.process(sleeper())

    def killer():
        yield engine.timeout(2)
        p.interrupt(cause="deadline")

    engine.process(killer())
    assert engine.run(p) == ("interrupted", "deadline", 2.0)


def test_interrupt_after_done_is_noop(engine):
    def quick():
        yield engine.timeout(1)
        return "ok"

    p = engine.process(quick())
    engine.run(p)
    p.interrupt()  # must not raise
    assert p.value == "ok"


def test_is_alive(engine):
    def proc():
        yield engine.timeout(5)

    p = engine.process(proc())
    assert p.is_alive
    engine.run(p)
    assert not p.is_alive


def test_deeply_nested_yield_from(engine):
    def level3():
        yield engine.timeout(1)
        return 3

    def level2():
        v = yield from level3()
        yield engine.timeout(1)
        return v + 2

    def level1():
        v = yield from level2()
        return v + 1

    assert engine.run(engine.process(level1())) == 6
    assert engine.now == 2


def test_many_processes_complete(engine):
    done = []

    def proc(k):
        yield engine.timeout(k % 7 + 1)
        done.append(k)

    for k in range(500):
        engine.process(proc(k))
    engine.run()
    assert sorted(done) == list(range(500))
