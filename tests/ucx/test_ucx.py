"""UCX substrate: contexts, workers, AMs, RMA puts, memory registration."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.hw.memory import Buffer, MemSpace
from repro.hw.params import PAPER_TESTBED
from repro.hw.topology import Fabric
from repro.sim.engine import Engine
from repro.ucx.context import UcpContext
from repro.ucx.memreg import UcxMemError, mem_map, rkey_pack, rkey_ptr, rkey_unpack
from repro.units import us


@pytest.fixture
def stack():
    eng = Engine()
    fab = Fabric(eng, PAPER_TESTBED)
    return eng, fab


def _bring_up(eng, fab, node_a=0, node_b=0, gpu_a=0, gpu_b=1):
    """Create two contexts/workers and an endpoint a->b."""
    out = {}

    def boot():
        ctx_a = yield from UcpContext.create(eng, fab, node_a, gpu_a)
        ctx_b = yield from UcpContext.create(eng, fab, node_b, gpu_b)
        wa = yield from ctx_a.worker_create("a")
        wb = yield from ctx_b.worker_create("b")
        ep = yield from wa.ep_create(wb.address)
        out.update(wa=wa, wb=wb, ep=ep)

    eng.run(eng.process(boot()))
    return out["wa"], out["wb"], out["ep"]


def test_context_and_worker_creation_costs(stack):
    eng, fab = stack
    p = fab.config.params

    def boot():
        t0 = eng.now
        ctx = yield from UcpContext.create(eng, fab, 0, 0)
        t1 = eng.now
        yield from ctx.worker_create()
        t2 = eng.now
        return (t1 - t0, t2 - t1)

    ctx_cost, worker_cost = eng.run(eng.process(boot()))
    assert ctx_cost == pytest.approx(p.ucp_context_create)
    assert worker_cost == pytest.approx(p.ucp_worker_create)


def test_ep_create_cached(stack):
    eng, fab = stack
    wa, wb, ep = _bring_up(eng, fab)

    def again():
        t0 = eng.now
        ep2 = yield from wa.ep_create(wb.address)
        return ep2, eng.now - t0

    ep2, dt = eng.run(eng.process(again()))
    assert ep2 is ep
    assert dt == 0.0


def test_am_roundtrip_intra_node(stack):
    eng, fab = stack
    wa, wb, ep = _bring_up(eng, fab)
    got = {}

    def receiver():
        msg = yield wb.am_recv(7)
        got["payload"] = msg.payload
        got["sender"] = msg.sender.worker_id
        got["t"] = eng.now

    eng.process(receiver())

    def sender():
        yield ep.am_send(7, {"hello": 1}, nbytes=64)

    eng.process(sender())
    eng.run()
    assert got["payload"] == {"hello": 1}
    assert got["sender"] == wa.worker_id
    assert got["t"] > 0


def test_am_fifo_per_id(stack):
    eng, fab = stack
    wa, wb, ep = _bring_up(eng, fab)
    seen = []

    def receiver():
        for _ in range(3):
            msg = yield wb.am_recv(1)
            seen.append(msg.payload)

    eng.process(receiver())

    def sender():
        for k in range(3):
            yield ep.am_send(1, k)

    eng.process(sender())
    eng.run()
    assert seen == [0, 1, 2]


def test_am_try_recv(stack):
    eng, fab = stack
    wa, wb, ep = _bring_up(eng, fab)
    assert wb.am_try_recv(5) is None

    def sender():
        yield ep.am_send(5, "x")

    eng.process(sender())
    eng.run()
    assert wb.am_try_recv(5).payload == "x"


def test_mem_map_registration_cache(stack):
    eng, fab = stack
    wa, _wb, _ep = _bring_up(eng, fab)
    buf = Buffer.alloc(128, space=MemSpace.PINNED, node=0)

    def reg():
        t0 = eng.now
        yield from mem_map(wa, buf)
        first = eng.now - t0
        t0 = eng.now
        yield from mem_map(wa, buf)
        second = eng.now - t0
        return first, second

    first, second = eng.run(eng.process(reg()))
    assert first == pytest.approx(fab.config.params.ucp_mem_map_per_call)
    assert second < first  # registration cache hit


def test_put_nbx_moves_data_and_calls_back(stack):
    eng, fab = stack
    wa, wb, ep = _bring_up(eng, fab)
    src = Buffer.alloc(16, space=MemSpace.DEVICE, node=0, gpu=0, fill=2.0)
    target = Buffer.alloc(64, space=MemSpace.DEVICE, node=0, gpu=1)
    fired = []

    def flow():
        memh = yield from mem_map(wb, target)
        packed = yield from rkey_pack(wb, memh)
        rkey = yield from rkey_unpack(wa, packed)
        done = ep.put_nbx(src, rkey, offset_elems=16, callback=lambda: fired.append(eng.now))
        yield done

    eng.run(eng.process(flow()))
    assert np.all(target.data[16:32] == 2.0)
    assert np.all(target.data[:16] == 0.0)
    assert len(fired) == 1
    assert ep.puts_completed == 1


def test_put_nbx_bounds_checked(stack):
    eng, fab = stack
    wa, wb, ep = _bring_up(eng, fab)
    src = Buffer.alloc(16, space=MemSpace.DEVICE, node=0, gpu=0)
    target = Buffer.alloc(16, space=MemSpace.DEVICE, node=0, gpu=1)

    def flow():
        memh = yield from mem_map(wb, target)
        packed = yield from rkey_pack(wb, memh)
        rkey = yield from rkey_unpack(wa, packed)
        with pytest.raises(UcxMemError):
            ep.put_nbx(src, rkey, offset_elems=8)
        yield eng.timeout(0)

    eng.run(eng.process(flow()))


def test_rkey_ptr_intra_node_maps_device_memory(stack):
    eng, fab = stack
    wa, wb, ep = _bring_up(eng, fab)
    target = Buffer.alloc(32, space=MemSpace.DEVICE, node=0, gpu=1)

    def flow():
        memh = yield from mem_map(wb, target)
        packed = yield from rkey_pack(wb, memh)
        rkey = yield from rkey_unpack(wa, packed)
        mapped = yield from rkey_ptr(wa, rkey, opener_gpu=0)
        return mapped

    mapped = eng.run(eng.process(flow()))
    assert mapped.same_allocation(target)
    assert mapped.gpu == 1


def test_rkey_ptr_rejects_host_region(stack):
    eng, fab = stack
    wa, wb, ep = _bring_up(eng, fab)
    target = Buffer.alloc(32, space=MemSpace.PINNED, node=0)

    def flow():
        memh = yield from mem_map(wb, target)
        packed = yield from rkey_pack(wb, memh)
        rkey = yield from rkey_unpack(wa, packed)
        with pytest.raises(UcxMemError):
            yield from rkey_ptr(wa, rkey, opener_gpu=0)

    eng.run(eng.process(flow()))


def test_rkey_ptr_rejects_cross_node(stack):
    eng, fab = stack
    wa, wb, ep = _bring_up(eng, fab, node_b=1, gpu_b=4)
    target = Buffer.alloc(32, space=MemSpace.DEVICE, node=1, gpu=4)

    def flow():
        memh = yield from mem_map(wb, target)
        packed = yield from rkey_pack(wb, memh)
        rkey = yield from rkey_unpack(wa, packed)
        with pytest.raises(UcxMemError):
            yield from rkey_ptr(wa, rkey, opener_gpu=0)

    eng.run(eng.process(flow()))


def test_cuda_ipc_put_pays_engine_overhead(stack):
    """Intra-node D2D puts cost more than the raw wire (host-mediated)."""
    eng, fab = stack
    wa, wb, ep = _bring_up(eng, fab)
    src = Buffer.alloc(16, space=MemSpace.DEVICE, node=0, gpu=0)
    target = Buffer.alloc(16, space=MemSpace.DEVICE, node=0, gpu=1)

    def flow():
        memh = yield from mem_map(wb, target)
        packed = yield from rkey_pack(wb, memh)
        rkey = yield from rkey_unpack(wa, packed)
        t0 = eng.now
        yield ep.put_nbx(src, rkey)
        return eng.now - t0

    dt = eng.run(eng.process(flow()))
    p = fab.config.params
    wire = 16 * 8 / p.nvlink_bw + p.nvlink_latency
    assert dt == pytest.approx(wire + p.cuda_ipc_put_overhead)
