"""The instrumentation bus: typed events, synchronous fan-out, no overhead
when nobody listens.

Event model
-----------

An :class:`ObsEvent` is one of three kinds:

``SPAN``
    An interval ``[t0, t1]`` of occupancy or work: a kernel execution, a
    stream op, a link carrying bytes, a progression-engine dispatch.
``INSTANT``
    A point occurrence: a kernel launch API call, an AM arrival, a
    sanitizer-semantic mark.
``COUNTER``
    A sampled numeric series (e.g. stream queue depth).

Events carry a *category* (``"kernel"``, ``"link"``, ``"pe"``, ``"san"``,
…), a *name*, an optional *actor* tuple using the sanitizer's naming
scheme (:func:`repro.san.record.fmt_actor`), and a sorted key/value
payload.  ``seq`` totally orders events within one bus.

Fast-path contract
------------------

``Engine.obs`` is ``None`` unless a bus with at least one subscriber is
attached, so every instrumentation site reduces to::

    obs = engine.obs
    if obs is not None:
        obs.span("link", self.name, None, t0, engine.now, nbytes=n)

Buses learn about engines two ways: explicitly (``bus.attach(engine)``)
or ambiently — :func:`install` makes a bus process-global, and every
:class:`~repro.sim.engine.Engine` constructed afterwards announces itself
via :func:`note_engine` (mirroring ``repro.san.record``), which is how
``python -m repro profile <script>`` observes Worlds it never sees built.

Subscriber contract
-------------------

A subscriber is any object with ``on_event(event: ObsEvent) -> None``;
dispatch is synchronous and in ``seq`` order.  An optional
``on_attach(engine)`` is called once per engine the bus knows about (past
and future), letting subscribers track simulated clocks.  Subscribers
must not mutate simulation state — determinism requires the timeline to
be identical with and without observers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

#: Event kinds.
SPAN = "span"
INSTANT = "instant"
COUNTER = "counter"

Actor = Tuple[Any, ...]


@dataclass(frozen=True)
class ObsEvent:
    """One published occurrence, totally ordered by ``seq`` within a bus."""

    kind: str                       # SPAN / INSTANT / COUNTER
    cat: str                        # layer category ("kernel", "link", ...)
    name: str                       # event name within the category
    actor: Optional[Actor]          # san.record-style actor tuple, or None
    t0: float                       # start time (== t1 for instants)
    t1: float                       # end time
    seq: int
    payload: Tuple[Tuple[str, Any], ...] = ()

    @property
    def dur(self) -> float:
        return self.t1 - self.t0

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.payload:
            if k == key:
                return v
        return default

    def compact(self) -> "ObsEvent":
        """Copy with simulation objects in the payload degraded to short
        labels.  Retaining subscribers (profilers, exporters) must store
        compacted events: a raw payload can pin a Buffer — and its backing
        array — for the life of the collection."""
        if all(_is_scalar(v) for _k, v in self.payload):
            return self
        payload = tuple((k, _label(v)) for k, v in self.payload)
        return ObsEvent(
            self.kind, self.cat, self.name, self.actor,
            self.t0, self.t1, self.seq, payload,
        )


def _is_scalar(value: Any) -> bool:
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    return isinstance(value, tuple) and all(
        v is None or isinstance(v, (bool, int, float, str)) for v in value
    )


def _label(value: Any) -> Any:
    if _is_scalar(value):
        return value
    label = getattr(value, "label", None)
    if isinstance(label, str) and label:
        return f"<{label}>"
    return f"<{type(value).__name__}>"


class Bus:
    """Synchronous publish/subscribe hub for :class:`ObsEvent`."""

    def __init__(self) -> None:
        self.subscribers: List[Any] = []
        self._engines: List[Any] = []
        self._seq = 0

    # -- engines ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Clock of the most recently attached engine (simulations run one
        at a time; matches ``Recorder.now``)."""
        return self._engines[-1].now if self._engines else 0.0

    @property
    def engines(self) -> Tuple[Any, ...]:
        return tuple(self._engines)

    def attach(self, engine: Any) -> None:
        """Observe ``engine``.  Its ``obs`` slot is only populated while the
        bus has subscribers, preserving the idle fast path."""
        if engine in self._engines:
            return
        self._engines.append(engine)
        if self.subscribers:
            engine.obs = self
        for sub in self.subscribers:
            on_attach = getattr(sub, "on_attach", None)
            if on_attach is not None:
                on_attach(engine)

    # -- subscribers ----------------------------------------------------------
    def subscribe(self, sub: Any) -> None:
        if sub in self.subscribers:
            raise ValueError(f"{sub!r} is already subscribed")
        self.subscribers.append(sub)
        on_attach = getattr(sub, "on_attach", None)
        for engine in self._engines:
            engine.obs = self
            if on_attach is not None:
                on_attach(engine)

    def unsubscribe(self, sub: Any) -> None:
        self.subscribers.remove(sub)
        if not self.subscribers:
            for engine in self._engines:
                engine.obs = None

    # -- emission -------------------------------------------------------------
    def _emit(
        self,
        kind: str,
        cat: str,
        name: str,
        actor: Optional[Actor],
        t0: float,
        t1: float,
        payload: Tuple[Tuple[str, Any], ...],
    ) -> None:
        self._seq += 1
        ev = ObsEvent(kind, cat, name, actor, t0, t1, self._seq, payload)
        for sub in self.subscribers:
            sub.on_event(ev)

    def span(
        self,
        cat: str,
        name: str,
        actor: Optional[Actor],
        t0: float,
        t1: float,
        **payload: Any,
    ) -> None:
        """Publish a completed interval ``[t0, t1]``."""
        self._emit(SPAN, cat, name, actor, t0, t1, tuple(sorted(payload.items())))

    def instant(
        self,
        cat: str,
        name: str,
        actor: Optional[Actor] = None,
        t: Optional[float] = None,
        **payload: Any,
    ) -> None:
        """Publish a point event (``t`` defaults to the bus clock)."""
        at = self.now if t is None else t
        self._emit(INSTANT, cat, name, actor, at, at, tuple(sorted(payload.items())))

    def counter(
        self,
        cat: str,
        name: str,
        t: Optional[float] = None,
        **samples: Any,
    ) -> None:
        """Publish counter samples (one numeric series per payload key)."""
        at = self.now if t is None else t
        self._emit(COUNTER, cat, name, None, at, at, tuple(sorted(samples.items())))


class TextLog:
    """Plain-text subscriber backing the deprecated ``Engine.trace_log``.

    Collects ``(time, message)`` pairs from ``cat="engine", name="trace"``
    instants — the exact shape the old free-form trace list had.
    """

    def __init__(self) -> None:
        self.lines: List[Tuple[float, str]] = []

    def on_event(self, ev: ObsEvent) -> None:
        if ev.kind == INSTANT and ev.cat == "engine" and ev.name == "trace":
            self.lines.append((ev.t0, ev.get("msg", "")))


# --------------------------------------------------------------------------
# ambient (process-global) bus — what `python -m repro profile` installs
# --------------------------------------------------------------------------

_AMBIENT: Optional[Bus] = None


def install(bus: Bus) -> None:
    """Make ``bus`` ambient: every Engine built afterwards attaches to it."""
    global _AMBIENT
    if _AMBIENT is not None:
        raise RuntimeError("an ambient obs bus is already installed")
    _AMBIENT = bus


def uninstall() -> Bus:
    global _AMBIENT
    if _AMBIENT is None:
        raise RuntimeError("no ambient obs bus to uninstall")
    bus, _AMBIENT = _AMBIENT, None
    return bus


def active() -> Optional[Bus]:
    return _AMBIENT


def note_engine(engine: Any) -> None:
    """Called by ``Engine.__init__``; attaches to the ambient bus, if any."""
    if _AMBIENT is not None:
        _AMBIENT.attach(engine)
