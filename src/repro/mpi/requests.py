"""MPI request objects.

A :class:`Request` wraps a completion event plus MPI status bookkeeping.
``wait``/``test`` follow MPI semantics: ``wait`` blocks the calling rank
process; ``test`` is a zero-time poll (callers charge API overhead).
Persistent requests add ``start`` and are reusable across epochs.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Generator, List, Optional

from repro.mpi.errors import MpiStateError
from repro.sim.events import AllOf, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.runtime import MpiRuntime

_req_seq = itertools.count(1)


class Request:
    """A communication in flight; completes exactly once per epoch."""

    def __init__(self, rt: "MpiRuntime", kind: str) -> None:
        self.rt = rt
        self.engine = rt.engine
        self.kind = kind
        self.seq = next(_req_seq)
        self._done_event: Event = Event(self.engine)
        self.status: Optional[dict] = None

    # -- completion plumbing (runtime side) -------------------------------------
    def _complete(self, status: Optional[dict] = None) -> None:
        if self._done_event.triggered:
            raise MpiStateError(f"{self} completed twice")
        self.status = status or {}
        self._done_event.succeed(self)

    def _fail(self, exc: BaseException) -> None:
        if not self._done_event.triggered:
            self._done_event.fail(exc)

    # -- user API -------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done_event.triggered

    def test(self) -> bool:
        """MPI_Test: nonblocking completion check."""
        return self.done

    def wait(self) -> Generator:
        """MPI_Wait: block the calling process until complete."""
        yield self.engine.timeout(self.rt.params.mpi_call_overhead)
        if not self.done:
            yield self._done_event
        return self.status

    def completion_event(self) -> Event:
        return self._done_event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"<Request#{self.seq} {self.kind} {state}>"


def waitall(rt: "MpiRuntime", requests: List[Request]) -> Generator:
    """MPI_Waitall."""
    yield rt.engine.timeout(rt.params.mpi_call_overhead)
    pending = [r._done_event for r in requests if not r.done]
    if pending:
        yield AllOf(rt.engine, pending)
    return [r.status for r in requests]


class PersistentRequest(Request):
    """Base for MPI persistent requests (inactive until MPI_Start)."""

    def __init__(self, rt: "MpiRuntime", kind: str) -> None:
        super().__init__(rt, kind)
        self.epoch = 0
        self.active = False

    def _begin_epoch(self) -> None:
        if self.active:
            raise MpiStateError(f"{self} started while still active")
        self.epoch += 1
        self.active = True
        self._done_event = Event(self.engine)
        self.status = None

    def _complete(self, status: Optional[dict] = None) -> None:
        self.active = False
        super()._complete(status)

    @property
    def done(self) -> bool:
        # Inactive persistent requests are "complete" per MPI semantics.
        return not self.active

    def start(self) -> Generator:
        raise NotImplementedError
