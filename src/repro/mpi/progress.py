"""The per-rank MPI progression engine.

One engine per rank, started at MPI_Init.  It owns:

* the **AM dispatch loop** driving the p2p receiver state machine
  (RTS match -> CTS -> data put -> FIN);
* the **partitioned AM router** feeding setup_t / RTR messages into the
  keyed matcher that `MPIX_Pbuf_prepare` waits on;
* the single **progression thread** resource the paper mentions
  ("currently we only have a single thread which progresses partitions")
  through which device-initiated Pready dispatches serialize.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from repro.mpi.p2p import AM_P2P, CTS, ENVELOPE_BYTES, FIN, RTS, Envelope, check_truncation
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import Communicator
    from repro.mpi.requests import Request
    from repro.mpi.runtime import MpiRuntime

#: AM ids used by the partitioned layer (routed into rt.part_matcher).
AM_PART_SETUP = 2        # sender -> receiver: setup_t
AM_PART_SETUP_RESP = 3   # receiver -> sender: setup_t response (rkeys)
AM_PART_RTR = 4          # receiver -> sender: ready-to-receive signal
AM_PART_FIN = 5          # sender -> receiver: epoch-completion control

_PART_AM_IDS = (AM_PART_SETUP, AM_PART_SETUP_RESP, AM_PART_RTR, AM_PART_FIN)


class ProgressEngine:
    """Drives asynchronous protocol work for one rank."""

    def __init__(self, rt: "MpiRuntime") -> None:
        self.rt = rt
        self.engine = rt.engine
        # The single progression thread (paper Section IV-A5).
        self.thread = Resource(
            self.engine, capacity=1, name=f"r{rt.world_rank}.pe"
        )
        self._procs = [
            self.engine.process(self._p2p_loop(), name=f"r{rt.world_rank}.prog.p2p")
        ]
        self._procs += [
            self.engine.process(self._part_loop(am_id), name=f"r{rt.world_rank}.prog.part{am_id}")
            for am_id in _PART_AM_IDS
        ]

    # -- p2p state machine -------------------------------------------------------
    def _p2p_loop(self) -> Generator:
        worker = self.rt.worker
        while True:
            msg = yield worker.am_recv(AM_P2P)
            env: Envelope = msg.payload
            obs = self.engine.obs
            if obs is not None:
                obs.instant(
                    "mpi", f"am-{env.kind}", ("pe", self.rt.world_rank),
                    src=env.src, tag=env.tag, nbytes=env.nbytes,
                )
            if env.kind == RTS:
                self._handle_rts(env, msg.sender)
            elif env.kind == CTS:
                self._handle_cts(env)
            elif env.kind == FIN:
                self._handle_fin(env)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown p2p envelope kind {env.kind!r}")

    def _handle_rts(self, env: Envelope, sender_addr) -> None:
        rt = self.rt
        rreq = rt.matcher.deliver(env.comm_id, env.src, env.tag, (env, sender_addr))
        obs = self.engine.obs
        if obs is not None:
            obs.instant(
                "mpi", "rts-match" if rreq is not None else "rts-unexpected",
                ("pe", rt.world_rank), src=env.src, tag=env.tag,
            )
        if rreq is None:
            return  # queued as unexpected; a future post_recv picks it up
        comm = rt.comms[env.comm_id]
        self.satisfy_recv(comm, rreq, env, sender_addr)

    def satisfy_recv(self, comm: "Communicator", rreq, env: Envelope, sender_addr) -> None:
        """A posted receive met its envelope: unpack eager or answer CTS.

        Protocol errors (truncation) fail the receive request so they
        surface at the application's MPI_Wait, like an MPI error class.
        """
        try:
            check_truncation(env, rreq)
        except Exception as exc:
            self.rt.recv_by_seq.pop(rreq.seq, None)
            rreq._fail(exc)
            return
        if env.payload is not None:
            self.engine.process(
                self._deliver_eager(rreq, env), name=f"r{self.rt.world_rank}.eager"
            )
        else:
            self.engine.process(
                self._send_cts(comm, rreq, env, sender_addr),
                name=f"r{self.rt.world_rank}.cts",
            )

    def _deliver_eager(self, rreq, env: Envelope) -> Generator:
        # Unpack from the bounce buffer into the user buffer.
        rt = self.rt
        n = len(env.payload)
        target = rreq.buf.view(0, n)
        if target.space.host_accessible:
            yield rt.engine.timeout(env.nbytes / rt.params.host_mem_bw)
            if not target.is_virtual:
                target.data[:] = env.payload
        else:
            # Device target: staged H2D copy through the superchip's C2C.
            from repro.hw.memory import Buffer, MemSpace

            staged = Buffer(env.payload, MemSpace.PINNED, node=rt.node)
            yield rt.fabric.dataplane.put(
                staged, target, traffic_class="eager", name="eager_h2d"
            )
        rt.recv_by_seq.pop(rreq.seq, None)
        rreq._complete({"protocol": "eager", "source": env.src, "tag": env.tag})

    def _send_cts(self, comm, rreq, env: Envelope, sender_addr) -> Generator:
        rt = self.rt
        ep = yield from rt.worker.ep_create(sender_addr)
        n_elems = env.nbytes // rreq.buf.itemsize
        cts = Envelope(
            CTS, env.comm_id, comm.rank, env.src, env.tag, env.nbytes,
            send_seq=env.send_seq, recv_seq=rreq.seq,
            target=rreq.buf.view(0, n_elems),
        )
        yield ep.am_send(AM_P2P, cts, nbytes=ENVELOPE_BYTES)

    def _handle_cts(self, env: Envelope) -> None:
        rt = self.rt
        entry = rt.pending_sends.pop(env.send_seq, None)
        if entry is None:  # pragma: no cover - defensive
            raise RuntimeError(f"CTS for unknown send_seq {env.send_seq}")
        sreq, buf, comm = entry
        self.engine.process(
            self._rndv_put(comm, sreq, buf, env), name=f"r{rt.world_rank}.rndv"
        )

    def _rndv_put(self, comm, sreq, buf, env: Envelope) -> Generator:
        rt = self.rt
        assert env.target is not None
        from repro.hw.memory import MemSpace

        if env.target.node != buf.node:
            # RC-verbs rendezvous across the IB fabric pays the extra
            # RTS/CTS handshake processing.
            yield rt.engine.timeout(rt.params.ib_rndv_handshake)
        if (
            buf.space is MemSpace.DEVICE
            and env.target.node != buf.node
        ):
            # Traditional CUDA-aware rendezvous across nodes stages the
            # payload through pinned host memory (the production pipeline
            # the paper baselines against); we charge one extra C2C pass
            # for the non-overlapped portion of that pipeline.  The
            # partitioned path's RMA puts go GPUDirect and skip this.
            # The stage inherits the payload's virtuality (alloc_like), so
            # geometry-only benchmark buffers never materialize GiB copies.
            bounce = buf.alloc_like(
                len(buf.data), MemSpace.PINNED, node=buf.node, label="rndv_bounce"
            )
            yield rt.fabric.dataplane.put(
                buf, bounce, traffic_class="rndv", name="rndv_d2h"
            )
            buf = bounce
        # Host-initiated: a peer-mappable D2D pair pays the cuda_ipc
        # copy-engine path, same as the partitioned layer's puts (fair
        # baseline); otherwise the fabric stages through host links.
        yield rt.fabric.dataplane.rma_put(
            buf, env.target, traffic_class="rndv", name="rndv_data"
        )
        sreq._complete({"protocol": "rndv"})
        ep = yield from rt.ep_to(comm, sreq.dest)
        fin = Envelope(
            FIN, env.comm_id, comm.rank, sreq.dest, env.tag, env.nbytes,
            recv_seq=env.recv_seq,
        )
        yield ep.am_send(AM_P2P, fin, nbytes=ENVELOPE_BYTES)

    def _handle_fin(self, env: Envelope) -> None:
        rreq = self.rt.recv_by_seq.pop(env.recv_seq, None)
        if rreq is None:  # pragma: no cover - defensive
            raise RuntimeError(f"FIN for unknown recv_seq {env.recv_seq}")
        rreq._complete({"protocol": "rndv", "source": env.src, "tag": env.tag})

    # -- partitioned AM routing ------------------------------------------------------
    def _part_loop(self, am_id: int) -> Generator:
        worker = self.rt.worker
        while True:
            msg = yield worker.am_recv(am_id)
            key, payload = msg.payload
            self.rt.part_matcher.put((am_id,) + key, payload)

    # -- the single progression thread --------------------------------------------------
    def dispatch(self, work: Callable[[], Generator], name: str = "pe_work"):
        """Run ``work`` serialized through the progression thread.

        Models the paper's single-threaded progression: each dispatched
        item pays the dispatch cost and runs to completion before the
        next one starts.  Returns the process event.
        """
        def proc():
            yield self.thread.acquire()
            obs = self.engine.obs
            t0 = self.engine.now
            try:
                yield self.engine.timeout(self.rt.params.progress_dispatch_cost)
                result = yield self.engine.process(work(), name=name)
            finally:
                if obs is not None:
                    obs.span(
                        "pe", name, ("pe", self.rt.world_rank),
                        t0, self.engine.now,
                    )
                self.thread.release()
            return result

        return self.engine.process(proc(), name=f"r{self.rt.world_rank}.pe.{name}")
