"""Algorithm 1: ring reduce-scatter-allgather allreduce schedule.

For rank ``r`` of ``P``, at step ``i`` of ``2(P-1)``::

    I = (r - 1) mod P          # predecessor in the ring
    O = (r + 1) mod P          # successor
    R = (r + 2P - i) mod P     # chunk sent this step
    A = (r + 2P - i - 1) mod P # chunk received this step
    op = MPI_Op  if i <  P-1   # reduce-scatter phase
         NOP     otherwise     # allgather phase

Each user partition's data splits into ``P`` ring chunks and pipelines
through the schedule independently — that is what makes the partitioned
allreduce overlap with the producing kernel.
"""

from __future__ import annotations

from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import MpiOp, NOP, SUM
from repro.pcoll.schedule import Schedule, Step


def ring_allreduce_schedule(rank: int, n_ranks: int, op: MpiOp = SUM) -> Schedule:
    """Build rank ``rank``'s ring-RSA schedule (paper Algorithm 1)."""
    if n_ranks < 2:
        raise MpiUsageError("ring allreduce needs at least 2 ranks")
    if not 0 <= rank < n_ranks:
        raise MpiUsageError(f"rank {rank} out of range for P={n_ranks}")
    incoming = ((rank - 1) % n_ranks,)
    outgoing = ((rank + 1) % n_ranks,)
    steps = []
    for i in range(2 * (n_ranks - 1)):
        send_chunk = (rank + 2 * n_ranks - i) % n_ranks
        recv_chunk = (rank + 2 * n_ranks - i - 1) % n_ranks
        step_op = op if i < (n_ranks - 1) else NOP
        steps.append(Step(incoming, send_chunk, step_op, outgoing, recv_chunk))
    return Schedule(rank, n_ranks, n_chunks=n_ranks, steps=tuple(steps), name="ring_rsa")


def verify_ring_completion(n_ranks: int) -> bool:
    """Static sanity check: after the schedule, every chunk is fully
    reduced and present on every rank.  Used by tests/property checks."""
    # Track which (rank, chunk) holds a fully-reduced copy.
    contributions = {
        (r, c): {r} for r in range(n_ranks) for c in range(n_ranks)
    }
    schedules = [ring_allreduce_schedule(r, n_ranks) for r in range(n_ranks)]
    for i in range(2 * (n_ranks - 1)):
        # All sends within a step read the pre-step state (they are
        # concurrent on the wire); snapshot before applying.
        before = {k: set(v) for k, v in contributions.items()}
        for r in range(n_ranks):
            s = schedules[r].steps[i]
            dst = s.outgoing[0]
            chunk = s.send_chunk
            if s.op is not NOP:
                contributions[(dst, chunk)] |= before[(r, chunk)]
            else:
                contributions[(dst, chunk)] = set(before[(r, chunk)])
    full = set(range(n_ranks))
    return all(contributions[(r, c)] == full for r in range(n_ranks) for c in range(n_ranks))
