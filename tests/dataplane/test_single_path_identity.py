"""SinglePathPolicy must reproduce the pre-dataplane seed byte-for-byte.

The refactor's central promise: with the default policy (or an explicit
``REPRO_PATH_POLICY=single``) every producer's traffic takes the exact
event sequence it took before the dataplane existed — pinned against the
seed's SHA-256 sanitizer digests from tests/sim/test_determinism.py.
"""

import hashlib

from repro.hw.params import ONE_NODE
from repro.mpi.world import World
from repro.san import Sanitizer

from tests.sim.test_determinism import _SEED_TRACES, _workload


def _digest():
    with Sanitizer() as san:
        _workload(World(ONE_NODE))
    assert san.report.ok
    return hashlib.sha256(san.trace_bytes()).hexdigest()


def test_default_policy_matches_seed_digest(monkeypatch):
    monkeypatch.delenv("REPRO_PATH_POLICY", raising=False)
    assert _digest() == _SEED_TRACES["one-node"]


def test_explicit_single_matches_seed_digest(monkeypatch):
    monkeypatch.setenv("REPRO_PATH_POLICY", "single")
    assert _digest() == _SEED_TRACES["one-node"]


def test_ledger_sees_the_seed_workload(monkeypatch):
    """Accounting is passive but present: the partitioned ping-pong's
    traffic shows up by class without perturbing the digest."""
    monkeypatch.delenv("REPRO_PATH_POLICY", raising=False)
    world = World(ONE_NODE)
    with Sanitizer() as san:
        _workload(world)
    assert san.report.ok
    ledger = world.fabric.dataplane.ledger
    assert ledger.total_bytes() > 0
    assert "rma" in ledger.classes  # the partitioned puts ride put_nbx
