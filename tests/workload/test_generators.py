"""Schedule generators: NCCL-style log parsing and the LLM 3D pattern."""

import pytest

from repro.workload.generators import llm_schedule, parse_nccl_log
from repro.workload.replay import ReplayError, ReplayWorkload, parse_jsonl

NCCL_LOG = """
# two-rank demo
0 Compute us=10
0 AllReduce bytes=4096 group=0,1
1 AllReduce bytes=4096 group=0,1
0 Send peer=1 bytes=1024 tag=x class=p2p
1 Recv peer=0 tag=x
0 Broadcast root=0 bytes=2048
1 Broadcast root=0 bytes=2048
"""


def test_nccl_log_parses_and_replays():
    sched = parse_nccl_log(NCCL_LOG, source="demo.log")
    assert sched.ranks == 2
    res = ReplayWorkload(sched).run(machine="gh200-1x4")
    assert res.class_bytes["p2p"]["bytes"] == 1024
    assert res.class_bytes["broadcast"]["bytes"] == 2048
    # ring allreduce: n ranks x 2*(n-1) rounds x ceil(b/n)-byte chunks
    assert res.class_bytes["replay"]["bytes"] == 2 * 2 * 2048


def test_nccl_repeated_broadcasts_pair_by_occurrence():
    log = (
        "0 Broadcast root=0 bytes=100\n"
        "1 Broadcast root=0 bytes=100\n"
        "0 Broadcast root=0 bytes=200\n"
        "1 Broadcast root=0 bytes=200\n"
    )
    sched = parse_nccl_log(log, source="b.log")
    # Occurrence-keyed tags keep the 100- and 200-byte rounds distinct.
    assert sched.ranks == 2 and len(sched.steps) == 4


def test_nccl_schedule_round_trips():
    sched = parse_nccl_log(NCCL_LOG, source="demo.log")
    again = parse_jsonl(sched.to_jsonl(), source="rt.jsonl")
    assert again.digest == sched.digest


@pytest.mark.parametrize("line,fragment", [
    ("0 Send peer=1", "needs bytes"),
    ("0 Frobnicate bytes=1", "unknown op"),
    ("x Send peer=1 bytes=2", "first token must be the rank"),
    ("0 Compute", "needs us"),
    ("0 Send peer=1 bytes=zz", "must be an integer"),
    ("0 Send peer=1 bytes", "key=value"),
    ("", "empty log"),
])
def test_nccl_errors_carry_file_and_line(line, fragment):
    with pytest.raises(ReplayError, match="bad.log:1") as exc:
        parse_nccl_log(line, source="bad.log")
    assert fragment in str(exc.value)


def test_llm_schedule_shape():
    sched = llm_schedule(dp=2, tp=2, pp=2, layers=2, hidden=64, seq=32,
                         microbatches=1, steps=1)
    assert sched.ranks == 8
    assert sched.has_op("allreduce") and sched.has_op("send")
    # every rank ends the step at the barrier
    barriers = [s for s in sched.steps if s.op == "barrier"]
    assert len(barriers) == 8


def test_llm_schedule_replays_with_expected_classes():
    sched = llm_schedule(dp=2, tp=4, pp=2, layers=2, hidden=256, seq=128,
                         microbatches=1, steps=1)
    assert sched.ranks == 16
    res = ReplayWorkload(sched).run(machine="fat-tree-32-r2-l2", shards=2)
    seq = ReplayWorkload(sched).run(machine="fat-tree-32-r2-l2")
    assert res.digests == seq.digests
    assert res.events_popped == seq.events_popped


def test_llm_schedule_deterministic():
    a = llm_schedule(dp=2, tp=2, pp=1, layers=1, hidden=16, seq=8)
    b = llm_schedule(dp=2, tp=2, pp=1, layers=1, hidden=16, seq=8)
    assert a.digest == b.digest


def test_llm_schedule_rejects_bad_params():
    with pytest.raises(ReplayError, match="dp must be"):
        llm_schedule(dp=0)


# --------------------------------------------------------------------------
# parameter-server and expert-parallel patterns
# --------------------------------------------------------------------------

def test_parameter_server_schedule_shape_and_round_trip():
    from repro.workload.generators import parameter_server_schedule

    sched = parameter_server_schedule(workers=4, servers=2, steps=2,
                                      grad_bytes=1 << 20)
    assert sched.ranks == 6
    assert sched.name == "ps-w4-s2"
    # every step moves grad_bytes per worker in each direction
    pushed = sum(s.fields["bytes"] for s in sched.steps
                 if s.op == "send" and s.fields["class"] == "ps-push")
    pulled = sum(s.fields["bytes"] for s in sched.steps
                 if s.op == "send" and s.fields["class"] == "ps-pull")
    assert pushed == pulled == 2 * 4 * (1 << 20)
    rt = parse_jsonl(sched.to_jsonl(), source="<rt>")
    assert rt.digest == sched.digest


def test_parameter_server_schedule_replays():
    from repro.workload.generators import parameter_server_schedule

    sched = parameter_server_schedule(workers=3, servers=1, steps=1,
                                      grad_bytes=64 * 1024)
    res = ReplayWorkload(sched).run(machine="gh200-1x4")
    assert res.class_bytes["ps-push"]["bytes"] == 3 * 64 * 1024
    assert res.class_bytes["ps-pull"]["bytes"] == 3 * 64 * 1024


def test_parameter_server_schedule_rejects_bad_params():
    from repro.workload.generators import parameter_server_schedule

    with pytest.raises(ReplayError, match="workers must be"):
        parameter_server_schedule(workers=0)
    with pytest.raises(ReplayError, match="cannot shard"):
        parameter_server_schedule(servers=4, grad_bytes=2)


def test_expert_parallel_schedule_shape_and_round_trip():
    from repro.workload.generators import expert_parallel_schedule

    sched = expert_parallel_schedule(ranks=4, steps=2, token_bytes=4096)
    assert sched.ranks == 4
    assert sched.name == "moe-4r"
    sends = [s for s in sched.steps if s.op == "send"]
    # two all-to-alls per step: 2 * ranks * (ranks - 1) sends each step
    assert len(sends) == 2 * 2 * 4 * 3
    assert {s.fields["class"] for s in sends} == {"moe-dispatch", "moe-combine"}
    rt = parse_jsonl(sched.to_jsonl(), source="<rt>")
    assert rt.digest == sched.digest


def test_expert_parallel_schedule_replays_sharded_identically():
    from repro.workload.generators import expert_parallel_schedule

    sched = expert_parallel_schedule(ranks=8, steps=1, token_bytes=32 * 1024)
    seq = ReplayWorkload(sched).run(machine="fat-tree-32-r2-l2")
    mp = ReplayWorkload(sched).run(machine="fat-tree-32-r2-l2", shards=2)
    assert mp.digests == seq.digests


def test_expert_parallel_schedule_rejects_bad_params():
    from repro.workload.generators import expert_parallel_schedule

    with pytest.raises(ReplayError, match="ranks must be >= 2"):
        expert_parallel_schedule(ranks=1)
