"""MPI Partitioned Collectives (paper Section IV-B).

The second contribution: a *generic schedule* representation for
partitioned collectives — each step is a tuple ``S_i = (I, R, op, O, A)``
of incoming neighbours, send-chunk offset, reduction op (or NOP), outgoing
neighbours, and receive-chunk offset — plus an Algorithm-2-style
progression in which **each user partition independently executes the
schedule** with its own state.

Provided schedules:

* :func:`~repro.pcoll.ring.ring_allreduce_schedule` — Algorithm 1's
  Ring-based reduce-scatter-allgather;
* :func:`~repro.pcoll.tree.binomial_bcast_schedule` — a computation-free
  (all-NOP) broadcast tree.

API entry points (through :class:`~repro.mpi.comm.Communicator`):
``pallreduce_init`` and ``pbcast_init`` return a
:class:`~repro.pcoll.request.PcollRequest` with the familiar partitioned
control flow: ``start`` -> ``pbuf_prepare`` -> ``pready(u)`` (host or via a
device MPIX_Prequest) -> ``wait``.
"""

from repro.pcoll.schedule import Schedule, Step
from repro.pcoll.ring import ring_allreduce_schedule
from repro.pcoll.rd import recursive_doubling_allreduce_schedule
from repro.pcoll.tree import (
    binomial_bcast_schedule,
    binomial_reduce_schedule,
    flat_reduce_schedule,
)
from repro.pcoll.request import PcollRequest
from repro.pcoll.fused import FusedPallreduce

__all__ = [
    "FusedPallreduce",
    "PcollRequest",
    "Schedule",
    "Step",
    "binomial_bcast_schedule",
    "binomial_reduce_schedule",
    "flat_reduce_schedule",
    "recursive_doubling_allreduce_schedule",
    "ring_allreduce_schedule",
]
