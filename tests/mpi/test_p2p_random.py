"""Property-based stress: random p2p traffic patterns deliver intact."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.params import ONE_NODE
from repro.mpi.requests import waitall
from repro.mpi.world import World

message = st.tuples(
    st.integers(min_value=1, max_value=2048),   # element count
    st.integers(min_value=0, max_value=3),      # tag
    st.booleans(),                              # device buffer?
)


@given(msgs=st.lists(message, min_size=1, max_size=12), recv_shuffle=st.randoms())
@settings(max_examples=25, deadline=None)
def test_property_random_traffic_delivers_intact(msgs, recv_shuffle):
    """Rank 0 isends a random batch; rank 1 receives in per-tag order but
    random tag interleaving.  Every payload arrives exactly as sent."""
    # Per-tag FIFO is the MPI guarantee; build expected sequences per tag.
    by_tag = {}
    for i, (n, tag, dev) in enumerate(msgs):
        by_tag.setdefault(tag, []).append((i, n, dev))
    tag_order = list(by_tag)
    recv_shuffle.shuffle(tag_order)

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            reqs = []
            for i, (n, tag, dev) in enumerate(msgs):
                alloc = ctx.gpu.alloc if dev else ctx.gpu.alloc_pinned
                buf = alloc(n, fill=float(i + 1))
                r = yield from comm.isend(buf, dest=1, tag=tag)
                reqs.append(r)
            yield from waitall(ctx.mpi, reqs)
            return None
        results = {}
        for tag in tag_order:
            for i, n, dev in by_tag[tag]:
                alloc = ctx.gpu.alloc if dev else ctx.gpu.alloc_pinned
                rbuf = alloc(n)
                yield from comm.recv(rbuf, source=0, tag=tag)
                results[i] = rbuf.data.copy()
        return results

    _, received = World(ONE_NODE).run(main, nprocs=2)
    for i, (n, _tag, _dev) in enumerate(msgs):
        assert len(received[i]) == n
        assert np.all(received[i] == float(i + 1)), f"message {i} corrupted"


@given(
    partitions=st.integers(min_value=1, max_value=16),
    order_seed=st.randoms(),
    epochs=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_property_pready_any_order_any_epochs(partitions, order_seed, epochs):
    """Host MPI_Pready in arbitrary partition order, over several epochs,
    always delivers every partition's bytes exactly once."""
    n = partitions * 8
    order = list(range(partitions))
    order_seed.shuffle(order)

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(n)
            sreq = yield from comm.psend_init(sbuf, partitions, dest=1, tag=0)
            for e in range(epochs):
                for p in range(partitions):
                    sbuf.partition(p, partitions).data[:] = 100.0 * e + p
                yield from sreq.start()
                yield from sreq.pbuf_prepare()
                for p in order:
                    yield from sreq.pready(p)
                yield from sreq.wait()
            return None
        rbuf = ctx.gpu.alloc(n)
        rreq = yield from comm.precv_init(rbuf, partitions, source=0, tag=0)
        snaps = []
        for e in range(epochs):
            yield from rreq.start()
            yield from rreq.pbuf_prepare()
            yield from rreq.wait()
            snaps.append(rbuf.data.copy())
        return snaps

    _, snaps = World(ONE_NODE).run(main, nprocs=2)
    for e, snap in enumerate(snaps):
        expected = np.repeat(100.0 * e + np.arange(partitions), 8)
        assert np.array_equal(snap, expected)
