"""The Workload contract: one driver shape for every scenario.

A :class:`Workload` declares a name, a default machine, and an
``_execute`` body; :meth:`Workload.run` supplies everything around it —
machine resolution (names, :class:`~repro.hw.spec.schema.MachineSpec`,
legacy :class:`~repro.hw.params.TestbedConfig`), path-policy selection,
``events_popped`` accounting against the module :data:`~repro.sim.engine.
STATS` singleton, and the SHA-256 series digest — and returns a typed
:class:`WorkloadResult`.

Every pre-existing driver in the repo (fig2–fig11/table1, the Jacobi and
DL apps, the shard workloads, the bench suite entries) is a Workload; the
legacy entry points are thin shims over the registry.  The same contract
feeds ``python -m repro sweep`` (grid runs with a content-addressed
result cache) and the trace-replay frontend (:mod:`repro.workload.
replay`).

Determinism accounting: ``run`` never calls ``STATS.reset()`` — it takes
a snapshot *delta*, so a workload can run inside harnesses that own the
counters (``python -m repro bench`` resets around entries) without
perturbing them.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.bench.series import Series
from repro.hw.spec.catalog import as_spec
from repro.hw.topology import MachineLike
from repro.sim.engine import STATS


class WorkloadError(Exception):
    """A workload was misconfigured or asked to run somewhere it cannot."""


#: Path-policy axis values (``PathPolicy.name`` strings); None = ambient
#: default (the ``REPRO_PATH_POLICY`` environment, usually single-path).
POLICY_NAMES = ("single", "multi", "congestion")


# --------------------------------------------------------------------------
# canonical hashing (shared with the sweep cache)
# --------------------------------------------------------------------------

def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, repr for leftovers."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)


def sha256_hex(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def series_to_dict(series: Series) -> dict:
    """JSON-safe view of a Series (the shape the seed fixture pins)."""
    return {
        "exhibit": series.exhibit,
        "title": series.title,
        "columns": list(series.columns),
        "rows": series.rows,
        "notes": series.notes,
    }


def series_from_dict(doc: dict) -> Series:
    return Series(
        exhibit=doc["exhibit"], title=doc["title"], columns=list(doc["columns"]),
        rows=[dict(r) for r in doc["rows"]], notes=list(doc["notes"]),
    )


def series_digest(series: Series) -> str:
    """SHA-256 over the canonical JSON of the series content."""
    return sha256_hex(canonical_json(series_to_dict(series)))


# --------------------------------------------------------------------------
# machine + policy resolution
# --------------------------------------------------------------------------

def resolve_machine_arg(machine: Union[str, MachineLike]) -> MachineLike:
    """A machine name (catalog or generator grammar) or MachineLike."""
    if isinstance(machine, str):
        from repro.hw.spec.generators import resolve_machine

        return resolve_machine(machine)
    return machine


def machine_label(machine: MachineLike) -> str:
    return as_spec(machine).name


@contextmanager
def path_policy(policy: Optional[str]):
    """Pin ``REPRO_PATH_POLICY`` for the duration of one workload run.

    ``None`` leaves the ambient environment untouched (workloads built
    before the policy axis existed ran under whatever the environment
    said; keeping that behaviour keeps their outputs pinned).
    """
    if policy is None:
        yield
        return
    from repro.dataplane.policy import policy_from_env

    try:
        policy_from_env(policy)  # validate the name before touching env
    except ValueError as exc:
        raise WorkloadError(str(exc)) from exc
    prev = os.environ.get("REPRO_PATH_POLICY")
    os.environ["REPRO_PATH_POLICY"] = policy
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop("REPRO_PATH_POLICY", None)
        else:
            os.environ["REPRO_PATH_POLICY"] = prev


# --------------------------------------------------------------------------
# results
# --------------------------------------------------------------------------

@dataclass
class ExecOutcome:
    """What a workload body hands back to :meth:`Workload.run`."""

    series: Series
    mode: str = "world"                     # "world" | "sequential" | "mp"
    class_bytes: Dict[str, Any] = field(default_factory=dict)
    digests: Dict[str, str] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)
    #: None -> run() fills it with the STATS snapshot delta.
    events_popped: Optional[int] = None


@dataclass
class WorkloadResult:
    """One workload run: the series, its digests, and the run counters."""

    workload: str
    machine: str
    policy: str                 # "single" / "multi" / "default"
    mode: str
    series: Series
    digests: Dict[str, str]     # always includes "series"
    events_popped: int
    class_bytes: Dict[str, Any]
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        # Round-tripped through canonical JSON so the view is identical
        # whether it came from a live run or a sweep-cache file (tuples
        # become lists, int dict keys become strings, in both).
        return json.loads(canonical_json({
            "workload": self.workload,
            "machine": self.machine,
            "policy": self.policy,
            "mode": self.mode,
            "series": series_to_dict(self.series),
            "digests": dict(self.digests),
            "events_popped": self.events_popped,
            "class_bytes": self.class_bytes,
            "extra": self.extra,
        }))

    @classmethod
    def from_dict(cls, doc: dict) -> "WorkloadResult":
        return cls(
            workload=doc["workload"], machine=doc["machine"],
            policy=doc["policy"], mode=doc["mode"],
            series=series_from_dict(doc["series"]), digests=dict(doc["digests"]),
            events_popped=doc["events_popped"], class_bytes=doc["class_bytes"],
            extra=doc.get("extra", {}),
        )


# --------------------------------------------------------------------------
# the contract
# --------------------------------------------------------------------------

class Workload:
    """Base class: subclass, set ``name``/``default_machine``, implement
    :meth:`_execute` returning an :class:`ExecOutcome`.

    ``default_machine`` may be a MachineLike or a resolvable name; ``None``
    means the workload binds its own canonical machines internally (the
    multi-machine paper exhibits) and ignores overrides it was not given.
    """

    name: str = ""
    default_machine: Optional[Union[str, MachineLike]] = None
    #: Default parameters, merged under explicit ``run(**params)``;
    #: also the parameter half of :meth:`fingerprint`.
    defaults: Dict[str, Any] = {}
    #: Whether ``shards=N`` (the multiprocessing executor) is meaningful.
    supports_shards: bool = False

    # -- cache identity -----------------------------------------------------
    def fingerprint(self, **params: Any) -> dict:
        """Content identity for the sweep cache (machine/policy hashed
        separately).  Override to fold in external content (replay does,
        with the schedule digest)."""
        return {"workload": self.name, "params": {**self.defaults, **params}}

    # -- execution ----------------------------------------------------------
    def resolve_machine(self, machine: Optional[Union[str, MachineLike]]) -> Optional[MachineLike]:
        if machine is None:
            machine = self.default_machine
        if machine is None:
            return None
        return resolve_machine_arg(machine)

    def run(
        self,
        machine: Optional[Union[str, MachineLike]] = None,
        policy: Optional[str] = None,
        shards: Optional[int] = None,
        faults: Optional[Any] = None,
        **params: Any,
    ) -> WorkloadResult:
        """Run on ``machine`` under ``policy``; returns a WorkloadResult.

        ``shards=N`` routes shard-capable workloads through the
        multiprocessing executor (results are pinned bit-identical to the
        sequential driver, DESIGN.md §14).

        ``faults`` plugs a :class:`~repro.hw.faults.FaultSchedule` (or a
        JSONL path) into the run: every fabric the workload builds installs
        the schedule's link mutations on its own timeline (DESIGN.md §17).
        ``None`` — the default — leaves the fabric immutable and the run's
        outputs bit-identical to a build without the fault layer.
        """
        from repro.hw.faults import fault_schedule

        resolved = self.resolve_machine(machine)
        if shards is not None and not self.supports_shards:
            raise WorkloadError(
                f"workload {self.name!r} runs on a single engine; "
                "shards=N applies to cluster workloads only"
            )
        merged = {**self.defaults, **params}
        with fault_schedule(faults), path_policy(policy):
            before = STATS.snapshot()["events_popped"]
            outcome = self._execute(resolved, shards, **merged)
            popped = (
                outcome.events_popped
                if outcome.events_popped is not None
                else STATS.snapshot()["events_popped"] - before
            )
        digests = {"series": series_digest(outcome.series), **outcome.digests}
        return WorkloadResult(
            workload=self.name,
            machine=(
                machine_label(resolved) if resolved is not None else "exhibit-canonical"
            ),
            policy=policy if policy is not None else "default",
            mode=outcome.mode,
            series=outcome.series,
            digests=digests,
            events_popped=popped,
            class_bytes=outcome.class_bytes,
            extra=outcome.extra,
        )

    def _execute(
        self, machine: Optional[MachineLike], shards: Optional[int], **params: Any
    ) -> ExecOutcome:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.name}>"
