"""Shared helpers for the exhibit benchmarks.

Each benchmark regenerates one of the paper's tables/figures through the
simulation, prints the paper-style series, and asserts the paper's *shape*
claims (orderings, approximate factors, crossover locations).  Absolute
times are simulated, so pytest-benchmark's wall-clock statistics measure
harness cost only; the scientific payload is the printed series and the
assertions.
"""

import pytest

from repro.bench.series import Series, render


def run_exhibit(benchmark, fn, *args, **kwargs) -> Series:
    """Run one exhibit generator under pytest-benchmark and print it."""
    series = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(render(series))
    return series


def within(value: float, lo: float, hi: float, what: str) -> None:
    assert lo <= value <= hi, f"{what} = {value:.3f} outside expected band [{lo}, {hi}]"
