"""Topology shape queries, route resolution, fabric transfers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.memory import Buffer, MemSpace
from repro.hw.params import ONE_NODE, PAPER_TESTBED, TestbedConfig
from repro.hw.topology import Fabric, RouteError, Topology
from repro.sim.engine import Engine
from repro.units import us, GBps


def test_topology_shape():
    t = Topology(PAPER_TESTBED)
    assert t.n_gpus == 8
    assert t.node_of(0) == 0 and t.node_of(4) == 1
    assert t.local_index(5) == 1
    assert t.same_node(0, 3) and not t.same_node(3, 4)
    assert t.gpus_on_node(1) == [4, 5, 6, 7]


def test_topology_bounds():
    t = Topology(ONE_NODE)
    with pytest.raises(IndexError):
        t.node_of(4)
    with pytest.raises(IndexError):
        t.gpus_on_node(1)


def _mk(engine=None, config=PAPER_TESTBED):
    engine = engine or Engine()
    return engine, Fabric(engine, config)


def dev(fab, gpu, n=8):
    return Buffer.alloc(n, space=MemSpace.DEVICE, node=fab.topo.node_of(gpu), gpu=gpu)


def host(fab, node, n=8, pinned=False):
    return Buffer.alloc(n, space=MemSpace.PINNED if pinned else MemSpace.HOST, node=node)


def test_route_same_gpu():
    _e, fab = _mk()
    r = fab.route(dev(fab, 0), dev(fab, 0))
    assert [l.name for l in r] == ["hbm0"]


def test_route_nvlink_pair():
    _e, fab = _mk()
    r = fab.route(dev(fab, 0), dev(fab, 2))
    assert [l.name for l in r] == ["nvl0->2"]


def test_route_no_nvlink_across_nodes():
    _e, fab = _mk()
    r = fab.route(dev(fab, 0), dev(fab, 4))
    assert [l.name for l in r] == ["ib_out0", "ib_in4"]


def test_route_d2h_h2d():
    _e, fab = _mk()
    assert [l.name for l in fab.route(dev(fab, 1), host(fab, 0))] == ["c2c_d2h1"]
    assert [l.name for l in fab.route(host(fab, 0), dev(fab, 1))] == ["c2c_h2d1"]


def test_route_host_to_host_intra():
    _e, fab = _mk()
    names = [l.name for l in fab.route(host(fab, 0), host(fab, 0))]
    assert names == ["hostmem_tx0", "hostmem_rx0"]


def test_route_host_to_host_inter():
    _e, fab = _mk()
    names = [l.name for l in fab.route(host(fab, 0), host(fab, 1))]
    assert names == ["hostmem_tx0", "ib_out0", "ib_in4", "hostmem_rx1"]


def test_route_pinned_skips_hostmem_inter():
    _e, fab = _mk()
    names = [l.name for l in fab.route(host(fab, 0, pinned=True), host(fab, 1, pinned=True))]
    assert names == ["ib_out0", "ib_in4"]


def test_transfer_moves_payload():
    eng, fab = _mk()
    src = dev(fab, 0)
    src.data[:] = 4.5
    dst = dev(fab, 1)
    done = fab.transfer(src, dst)
    eng.run(done)
    assert np.all(dst.data == 4.5)


def test_transfer_visibility_at_arrival():
    """Data is not visible before the wire completes."""
    eng, fab = _mk()
    src, dst = dev(fab, 0, 1 << 20), dev(fab, 1, 1 << 20)
    src.data[:] = 1.0
    fab.transfer(src, dst)
    eng.run(until=1 * us)  # well before the 8 MiB NVLink transfer ends
    assert dst.data[0] == 0.0
    eng.run()
    assert dst.data[0] == 1.0


def test_transfer_size_mismatch():
    _e, fab = _mk()
    with pytest.raises(ValueError):
        fab.transfer(dev(fab, 0, 4), dev(fab, 1, 8))


def test_gpu_distance():
    _e, fab = _mk()
    assert fab.gpu_distance(0, 0) == "local"
    assert fab.gpu_distance(0, 3) == "nvlink"
    assert fab.gpu_distance(0, 7) == "ib"


def test_large_transfer_bandwidth_bound():
    """An 8 MiB NVLink transfer takes ~ size/bw + latency."""
    eng, fab = _mk()
    n = 1 << 20  # 8 MiB of float64
    done = fab.transfer(dev(fab, 0, n), dev(fab, 1, n))
    eng.run(done)
    expected = (n * 8) / (150 * GBps) + fab.config.params.nvlink_latency
    assert eng.now == pytest.approx(expected, rel=1e-6)


def test_host_initiated_transfer_pays_engine_overhead():
    eng, fab = _mk()
    d = fab.host_initiated_transfer(dev(fab, 0), dev(fab, 1))
    eng.run(d)
    with_engine = eng.now
    eng2, fab2 = _mk()
    d2 = fab2.transfer(dev(fab2, 0), dev(fab2, 1))
    eng2.run(d2)
    assert with_engine == pytest.approx(
        eng2.now + fab.config.params.cuda_ipc_put_overhead, rel=1e-6
    )


def test_host_initiated_transfer_direct_for_host_buffers():
    eng, fab = _mk()
    d = fab.host_initiated_transfer(host(fab, 0), host(fab, 0))
    eng.run(d)
    no_penalty = eng.now
    assert no_penalty < fab.config.params.cuda_ipc_put_overhead


_spaces = st.sampled_from([MemSpace.HOST, MemSpace.PINNED, MemSpace.DEVICE])


@given(
    s_space=_spaces, d_space=_spaces,
    s_gpu=st.integers(min_value=0, max_value=7),
    d_gpu=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=200, deadline=None)
def test_property_every_location_pair_routes_and_delivers(s_space, d_space, s_gpu, d_gpu):
    """Any (space, gpu) pair resolves to a route and delivers payload."""
    eng, fab = _mk()
    t = fab.topo

    def make(space, gpu):
        node = t.node_of(gpu)
        g = gpu if space is MemSpace.DEVICE else None
        return Buffer.alloc(4, space=space, node=node, gpu=g)

    src, dst = make(s_space, s_gpu), make(d_space, d_gpu)
    src.data[:] = 7.0
    route = fab.route(src, dst)
    assert len(route) >= 1
    eng.run(fab.transfer(src, dst))
    assert np.all(dst.data == 7.0)
