"""Ablation benches for the design choices DESIGN.md section 5 calls out.

These go beyond the paper's figures: they sweep the knobs the paper fixes
(or mentions only in passing) and check the design rationale holds.

* transport-partition count for the P2P channel (paper: 1 best intra-node,
  2 best inter-node for large kernels);
* user-partition count for the partitioned allreduce (pipelining vs
  per-put overhead);
* progression-engine poll latency sensitivity (the GPU-initiated paths
  depend on host polling; NCCL-style in-kernel paths do not);
* the traditional allreduce's bounce-buffer chunk size (why the paper's
  baseline is so slow).
"""

import pytest
from conftest import within

from repro.bench.coll import measure_allreduce
from repro.bench.p2p import TWO_NODE_PAIR, measure_p2p_goodput
from repro.bench.series import Series, render
from repro.hw.params import ONE_NODE
from repro.units import us


def test_ablation_transport_partitions(benchmark):
    """Sweep transport partitions for a large-kernel partitioned send."""

    def run():
        s = Series(
            "Ablation A1",
            "Transport partitions vs goodput (grid=8192, inter-node PE)",
            ["tps", "goodput_gbps"],
        )
        for tps in (1, 2, 4, 8):
            g = measure_p2p_goodput(8192, "progression", TWO_NODE_PAIR, tps=tps)
            s.add(tps=tps, goodput_gbps=g / 1e9)
        return s

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render(series))
    by_tps = {r["tps"]: r["goodput_gbps"] for r in series.rows}
    # Paper Section VI-A2: two transport partitions won for large
    # inter-node kernels (one cannot overlap; too many pay per-put cost).
    assert by_tps[2] >= by_tps[1], "2 partitions should beat 1 (overlap)"
    assert by_tps[2] >= by_tps[8] * 0.95, "heavy splitting must not win big"


def test_ablation_allreduce_partitions(benchmark):
    """User-partition count for the partitioned allreduce (4 GPUs)."""

    def run():
        s = Series(
            "Ablation A2",
            "User partitions vs partitioned allreduce time (grid=2048)",
            ["partitions", "time_us"],
        )
        for u in (2, 4, 8, 16):
            t = measure_allreduce(2048, "partitioned", ONE_NODE, 4, partitions=u)
            s.add(partitions=u, time_us=t / us)
        return s

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render(series))
    times = {r["partitions"]: r["time_us"] for r in series.rows}
    # More partitions pipeline better up to a point, then per-put and
    # per-reduce overheads win: the curve must not be monotone decreasing
    # through 16.
    assert times[16] > min(times.values()) * 0.99
    assert max(times.values()) / min(times.values()) < 6.0, "no pathological blowup"


def test_ablation_progression_poll(benchmark):
    """GPU-initiated paths degrade gracefully with slower host polling."""

    def run():
        s = Series(
            "Ablation A3",
            "Progression poll latency vs intra-node PE goodput (grid=16)",
            ["poll_us", "goodput_gbps"],
        )
        for poll in (0.1, 0.35, 1.0, 3.0):
            cfg = ONE_NODE.with_overrides(
                params=ONE_NODE.params.with_overrides(progress_poll_latency=poll * us)
            )
            g = measure_p2p_goodput(16, "progression", cfg)
            s.add(poll_us=poll, goodput_gbps=g / 1e9)
        return s

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render(series))
    vals = series.column("goodput_gbps")
    assert all(b <= a * 1.001 for a, b in zip(vals, vals[1:])), (
        "goodput must be non-increasing in poll latency"
    )
    assert vals[0] / vals[-1] < 2.0, "the design must not collapse under 3us polling"


def test_ablation_bounce_chunk(benchmark):
    """Traditional allreduce staging chunk size explains the Fig 6 gap."""

    def run():
        s = Series(
            "Ablation A4",
            "Bounce-buffer chunk vs traditional allreduce time (grid=4096)",
            ["bounce_kib", "time_us"],
        )
        for kib in (32, 64, 256, 1024):
            cfg = ONE_NODE.with_overrides(
                params=ONE_NODE.params.with_overrides(allreduce_bounce_bytes=kib * 1024)
            )
            t = measure_allreduce(4096, "traditional", cfg, 4)
            s.add(bounce_kib=kib, time_us=t / us)
        return s

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render(series))
    vals = series.column("time_us")
    assert all(b < a for a, b in zip(vals, vals[1:])), (
        "larger staging chunks must monotonically reduce allreduce time"
    )
    assert vals[0] / vals[-1] > 3.0, "chunking is the dominant baseline cost"
