"""Testbed topology and the Fabric route/transfer facade.

The :class:`Topology` mirrors the paper's testbed (Section V): ``n_nodes``
nodes, each with ``gpus_per_node`` GH200 superchips.  Within a node every
GPU pair is NVLink-connected (6 links -> one 150 GB/s channel per direction
per pair); each superchip couples its Grace CPU and Hopper GPU over
NVLink-C2C; each superchip owns one ConnectX-7 NIC to the inter-node fabric.

:class:`Fabric` instantiates one :class:`~repro.hw.links.Link` per direction
per channel and resolves a route for any (source buffer, destination buffer)
pair, then runs transfers with real payload copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hw.links import Link, start_transfer
from repro.hw.memory import Buffer, MemSpace
from repro.hw.params import TestbedConfig
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.units import us

#: Global GPU index (0 .. n_gpus-1); node-local index is ``gpu % gpus_per_node``.
GpuId = int


@dataclass(frozen=True)
class Topology:
    """Pure shape queries over a :class:`TestbedConfig`."""

    config: TestbedConfig

    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    @property
    def gpus_per_node(self) -> int:
        return self.config.gpus_per_node

    @property
    def n_gpus(self) -> int:
        return self.config.n_gpus

    def node_of(self, gpu: GpuId) -> int:
        self._check(gpu)
        return gpu // self.gpus_per_node

    def local_index(self, gpu: GpuId) -> int:
        self._check(gpu)
        return gpu % self.gpus_per_node

    def same_node(self, a: GpuId, b: GpuId) -> bool:
        return self.node_of(a) == self.node_of(b)

    def gpus_on_node(self, node: int) -> List[GpuId]:
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range (n_nodes={self.n_nodes})")
        base = node * self.gpus_per_node
        return list(range(base, base + self.gpus_per_node))

    def _check(self, gpu: GpuId) -> None:
        if not 0 <= gpu < self.n_gpus:
            raise IndexError(f"gpu {gpu} out of range (n_gpus={self.n_gpus})")


class RouteError(Exception):
    """No path exists between the requested buffer locations."""


class Fabric:
    """All links of the testbed plus route resolution and transfers."""

    def __init__(self, engine: Engine, config: TestbedConfig) -> None:
        self.engine = engine
        self.config = config
        self.topo = Topology(config)
        p = config.params

        # Per-GPU HBM port (local device copies).
        self.hbm: Dict[GpuId, Link] = {
            g: Link(engine, f"hbm{g}", p.hbm_bw, 0.05 * us) for g in range(self.topo.n_gpus)
        }
        # NVLink: one link per *ordered* intra-node GPU pair.
        self.nvlink: Dict[Tuple[GpuId, GpuId], Link] = {}
        for node in range(self.topo.n_nodes):
            gpus = self.topo.gpus_on_node(node)
            for a in gpus:
                for b in gpus:
                    if a != b:
                        self.nvlink[(a, b)] = Link(
                            engine, f"nvl{a}->{b}", p.nvlink_bw, p.nvlink_latency
                        )
        # C2C per superchip, per direction.
        self.c2c_h2d: Dict[GpuId, Link] = {
            g: Link(engine, f"c2c_h2d{g}", p.c2c_bw, p.c2c_latency)
            for g in range(self.topo.n_gpus)
        }
        self.c2c_d2h: Dict[GpuId, Link] = {
            g: Link(engine, f"c2c_d2h{g}", p.c2c_bw, p.c2c_latency)
            for g in range(self.topo.n_gpus)
        }
        # One NIC per superchip; egress/ingress links onto the IB fabric.
        self.nic_out: Dict[GpuId, Link] = {
            g: Link(engine, f"ib_out{g}", p.ib_bw, p.ib_latency / 2)
            for g in range(self.topo.n_gpus)
        }
        self.nic_in: Dict[GpuId, Link] = {
            g: Link(engine, f"ib_in{g}", p.ib_bw, p.ib_latency / 2)
            for g in range(self.topo.n_gpus)
        }
        # Copy engine per GPU: host-initiated peer copies (UCX cuda_ipc
        # puts = cuMemcpyDtoDAsync) serialize through it with a per-op
        # setup cost, which caps their aggregate NVLink efficiency below
        # what SM-driven stores (Kernel-Copy, NCCL) achieve.
        from repro.sim.resources import Resource

        self.copy_engine: Dict[GpuId, Resource] = {
            g: Resource(engine, capacity=1) for g in range(self.topo.n_gpus)
        }
        # Host memory ports per node, direction-specific (tx = source-side
        # read, rx = destination-side write).  Direction-specific links keep
        # every route's acquisition order hierarchical (tx < nic_out <
        # nic_in < rx), which makes concurrent transfers deadlock-free.
        self.hostmem_tx: Dict[int, Link] = {
            n: Link(engine, f"hostmem_tx{n}", p.host_mem_bw, 0.05 * us)
            for n in range(self.topo.n_nodes)
        }
        self.hostmem_rx: Dict[int, Link] = {
            n: Link(engine, f"hostmem_rx{n}", p.host_mem_bw, 0.05 * us)
            for n in range(self.topo.n_nodes)
        }

    # -- route resolution ------------------------------------------------------
    def route(self, src: Buffer, dst: Buffer) -> List[Link]:
        """Resolve the link path for a payload from ``src`` to ``dst``.

        The NIC used for an inter-node hop is the one belonging to the
        source/destination superchip (GPUDirect-RDMA-style: device memory
        moves straight through the local NIC without host staging).
        """
        s_space, s_node, s_gpu = src.location()
        d_space, d_node, d_gpu = dst.location()

        s_dev = s_space in (MemSpace.DEVICE, MemSpace.UNIFIED) and s_gpu is not None
        d_dev = d_space in (MemSpace.DEVICE, MemSpace.UNIFIED) and d_gpu is not None

        if s_node == d_node:
            if s_dev and d_dev:
                if s_gpu == d_gpu:
                    return [self.hbm[s_gpu]]
                key = (s_gpu, d_gpu)
                if key not in self.nvlink:
                    raise RouteError(f"no NVLink between gpus {s_gpu} and {d_gpu}")
                return [self.nvlink[key]]
            if s_dev and not d_dev:
                return [self.c2c_d2h[s_gpu]]
            if not s_dev and d_dev:
                return [self.c2c_h2d[d_gpu]]
            return [self.hostmem_tx[s_node], self.hostmem_rx[d_node]]

        # inter-node
        out_nic = self.nic_out[s_gpu] if s_dev else self.nic_out[self.topo.gpus_on_node(s_node)[0]]
        in_nic = self.nic_in[d_gpu] if d_dev else self.nic_in[self.topo.gpus_on_node(d_node)[0]]
        route: List[Link] = []
        if not s_dev and s_space is MemSpace.HOST:
            route.append(self.hostmem_tx[s_node])
        route.append(out_nic)
        route.append(in_nic)
        if not d_dev and d_space is MemSpace.HOST:
            route.append(self.hostmem_rx[d_node])
        return route

    # -- transfers --------------------------------------------------------------
    def transfer(self, src: Buffer, dst: Buffer, name: str = "xfer") -> Event:
        """Move ``src``'s payload into ``dst``; event fires when data landed.

        The payload copy happens exactly at arrival time, so a reader that
        waits for the event observes the new data and a reader that races
        observes the old data — matching RMA visibility semantics.
        """
        if len(src.data) != len(dst.data):
            raise ValueError(
                f"transfer size mismatch: {len(src.data)} vs {len(dst.data)} elements"
            )
        route = self.route(src, dst)
        return start_transfer(
            self.engine,
            route,
            src.nbytes,
            on_wire_done=lambda: dst.copy_from(src),
            name=name,
        )

    def host_initiated_transfer(self, src: Buffer, dst: Buffer, name: str = "hxfer") -> Event:
        """A transfer issued by *host* software (UCX put, MPI rendezvous).

        Intra-node device-to-device payloads ride the cuda_ipc path: a
        host-mediated async copy through the source GPU's copy engine,
        paying the per-op setup cost — the mechanism the Kernel-Copy
        design bypasses (paper Section IV-A4).  Everything else (host
        buffers, same-GPU, inter-node GPUDirect) is a plain transfer.
        """
        cuda_ipc = (
            src.space is MemSpace.DEVICE
            and dst.space is MemSpace.DEVICE
            and src.node == dst.node
            and src.gpu != dst.gpu
        )
        if not cuda_ipc:
            return self.transfer(src, dst, name=name)
        overhead = self.config.params.cuda_ipc_put_overhead
        engine_res = self.copy_engine[src.gpu]

        def staged():
            yield engine_res.acquire()
            try:
                yield self.engine.timeout(overhead)
                yield self.transfer(src, dst, name=name)
            finally:
                engine_res.release()

        return self.engine.process(staged(), name=name)

    def transfer_bytes(self, src: Buffer, dst: Buffer, nbytes: int, name: str = "ctrl") -> Event:
        """Timed transfer of ``nbytes`` along src->dst route without payload.

        Used for control messages (flags, setup packets) whose logical
        content is applied by the caller on completion.
        """
        route = self.route(src, dst)
        return start_transfer(self.engine, route, nbytes, name=name)

    def gpu_distance(self, a: GpuId, b: GpuId) -> str:
        """'local' | 'nvlink' | 'ib' — used by protocol selection."""
        if a == b:
            return "local"
        return "nvlink" if self.topo.same_node(a, b) else "ib"
