"""Fused device-side partitioned allreduce — the paper's proposed extension.

Section VI-B argues the device ``MPIX_Pready`` binding should be relaxed
"to allow for computation and communication within the call as that would
allow the execution of an entire allreduce operation within a kernel",
closing the gap to NCCL.  This module implements exactly that proposal on
our substrate:

* the ring schedule executes *on the device*: chunk movement is intra-
  kernel NVLink stores through ``rkey_ptr``-mapped peer staging (no host
  puts, no copy engine), arrivals are device-memory flags, reductions run
  fused in the same kernel (no per-step launch + ``cudaStreamSynchronize``);
* the host API surface is unchanged: ``start`` / ``pbuf_prepare`` /
  ``pready(u)`` / ``parrived(u)`` / ``wait`` — only the execution engine
  moved from the progression thread to the GPU;
* like the Kernel-Copy P2P mode, it requires an NVLink-reachable clique
  (all ranks on one node) — the constraint the paper ties to GB200-scale
  NVLink domains.

The ablation bench ``benchmarks/test_ablation_fused_collective.py`` shows
this recovers NCCL-class performance through the MPI-native API, which is
the paper's prediction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional

import numpy as np

from repro.cuda.devapi import host_flag_write_proc
from repro.hw.memory import Buffer, MemSpace
from repro.mpi.errors import MpiStateError, MpiUsageError
from repro.mpi.ops import MpiOp, NOP, SUM
from repro.mpi.requests import PersistentRequest
from repro.partitioned.aggregation import AggregationSpec, SignalMode
from repro.pcoll.ring import ring_allreduce_schedule
from repro.pcoll.schedule import Schedule
from repro.sim.resources import Counter, Flag
from repro.units import us

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cuda.device import Device
    from repro.mpi.comm import Communicator

#: In-kernel cost per ring step (flag spin + store issue), like NCCL's.
FUSED_STEP_OVERHEAD = 0.35 * us


class _FusedClique:
    """Shared device-visible state of one fused collective instance."""

    def __init__(self, engine, n_ranks: int, partitions: int, n_steps: int) -> None:
        self.engine = engine
        self.n_ranks = n_ranks
        self.partitions = partitions
        self.n_steps = n_steps
        self.members: Dict[int, "FusedPallreduce"] = {}
        self.join_count = Counter(engine)
        self.epoch_flags: Dict[int, List[List[List[Flag]]]] = {}

    def flags(self, epoch: int) -> List[List[List[Flag]]]:
        """flags[rank][partition][step] for one epoch (lazily built)."""
        f = self.epoch_flags.get(epoch)
        if f is None:
            f = [
                [[Flag(self.engine) for _ in range(self.n_steps)]
                 for _ in range(self.partitions)]
                for _ in range(self.n_ranks)
            ]
            self.epoch_flags[epoch] = f
            # Drop stale epochs to bound memory.
            for old in [e for e in self.epoch_flags if e < epoch - 1]:
                del self.epoch_flags[old]
        return f


class FusedPallreduce(PersistentRequest):
    """Partitioned allreduce executed entirely on the device."""

    def __init__(
        self,
        comm: "Communicator",
        sendbuf: Buffer,
        recvbuf: Buffer,
        partitions: int,
        op: MpiOp,
        device: "Device",
    ) -> None:
        super().__init__(comm.rt, "fused_pallreduce")
        if comm.size < 2:
            raise MpiUsageError("fused pallreduce needs at least 2 ranks")
        n = len(sendbuf.data)
        if len(recvbuf.data) != n:
            raise MpiUsageError("sendbuf/recvbuf length mismatch")
        if n % (partitions * comm.size) != 0:
            raise MpiUsageError(
                f"{n} elements do not divide into {partitions} partitions x "
                f"{comm.size} ring chunks"
            )
        if not sendbuf.same_allocation(recvbuf):
            raise MpiUsageError("the fused collective is in-place (sendbuf is recvbuf)")
        topo = comm.rt.fabric.topo
        peers = [comm.world_rank_of(r) for r in range(comm.size)]
        peer_gpus = [comm.rt.world.devices[p].gpu_id for p in peers]
        if not all(
            topo.can_peer_map(a, b) for a in peer_gpus for b in peer_gpus
        ):
            raise MpiUsageError(
                "fused pallreduce requires a peer-mappable clique "
                "(all ranks NVLink/switch-reachable on one node); use "
                "the progression-engine collective otherwise"
            )
        self.comm = comm
        self.buf = recvbuf
        self.partitions = partitions
        self.op = op
        self.device = device
        self.schedule: Schedule = ring_allreduce_schedule(comm.rank, comm.size, op)
        self.part_elems = n // partitions
        self.chunk_elems = self.part_elems // comm.size

        # Shared clique state (stands for the rkey_ptr-mapped peer windows).
        registry = comm.rt.world.__dict__.setdefault("_fused_cliques", {})
        seq = getattr(comm, "_fused_seq", 0)
        comm._fused_seq = seq + 1
        key = (comm.comm_id, seq)
        clique = registry.get(key)
        if clique is None:
            clique = _FusedClique(
                self.engine, comm.size, partitions, self.schedule.n_steps
            )
            registry[key] = clique
        self.clique = clique
        clique.members[comm.rank] = self

        # Per-(partition, step) staging so fast peers can never overwrite.
        self.staging = Buffer.alloc(
            partitions * self.schedule.n_steps * self.chunk_elems,
            recvbuf.data.dtype, MemSpace.DEVICE,
            node=device.node, gpu=device.gpu_id, label="fused_rx",
        )
        self.user_ready: List[Flag] = []
        self.partition_done: List[Flag] = []
        self.done_count = Counter(self.engine)
        self._pready_called: List[bool] = []
        self.prepared_once = False
        self.preq = None

    # -- geometry ------------------------------------------------------------
    def _w_chunk(self, u: int, chunk: int) -> Buffer:
        return self.buf.view(u * self.part_elems + chunk * self.chunk_elems, self.chunk_elems)

    def _slot(self, u: int, step: int) -> Buffer:
        return self.staging.view(
            (u * self.schedule.n_steps + step) * self.chunk_elems, self.chunk_elems
        )

    # -- control flow -----------------------------------------------------------
    def start(self) -> Generator:
        yield self.engine.timeout(0.2 * us)
        self._begin_epoch()
        self.user_ready = [Flag(self.engine) for _ in range(self.partitions)]
        self.partition_done = [Flag(self.engine) for _ in range(self.partitions)]
        self._pready_called = [False] * self.partitions
        self.done_count.reset()
        epoch = self.epoch
        for u in range(self.partitions):
            self.engine.process(self._device_ring(u, epoch), name=f"fused.sm{u}")
        if self.preq is not None:
            self.preq.arm_epoch()

    def pbuf_prepare(self) -> Generator:
        """First call maps the peer windows (rkey_ptr); later calls are a
        clique-wide readiness rendezvous (device flags, no wire)."""
        if not self.active:
            raise MpiStateError("pbuf_prepare before MPI_Start")
        rt = self.rt
        yield rt.engine.timeout(rt.params.mpi_call_overhead)
        if not self.prepared_once:
            yield from rt.mca_partitioned_init()
            # One rkey_ptr map per peer window (cuIpcOpenMemHandle path).
            for _ in range(self.comm.size - 1):
                yield rt.engine.timeout(rt.params.ucp_rkey_ptr)
            self.prepared_once = True
        self.clique.join_count.add(1)
        yield self.clique.join_count.wait_for(self.comm.size * self.epoch)

    def pready(self, user_partition: int) -> Generator:
        yield self.engine.timeout(0.2 * us)
        self.issue_user_pready(user_partition)

    def issue_user_pready(self, u: int) -> None:
        if not self.active:
            raise MpiStateError("fused MPI_Pready outside an active epoch")
        if not 0 <= u < self.partitions:
            raise MpiUsageError(f"user partition {u} out of range")
        if self._pready_called[u]:
            raise MpiStateError(f"MPI_Pready called twice for user partition {u}")
        self._pready_called[u] = True
        self.user_ready[u].set()

    def parrived(self, u: int) -> bool:
        if not 0 <= u < self.partitions:
            raise MpiUsageError(f"user partition {u} out of range")
        return self.partition_done[u].is_set

    def wait(self, charge_overhead: bool = True) -> Generator:
        if charge_overhead:
            yield self.engine.timeout(self.rt.params.mpi_call_overhead)
        if not self.active:
            return self.status
        yield self.done_count.wait_for(self.partitions)
        yield self.engine.timeout(self.rt.params.progress_poll_latency)
        self._complete({"epoch": self.epoch})
        return self.status

    # -- the in-kernel ring, one coroutine per user partition --------------------
    def _device_ring(self, u: int, epoch: int) -> Generator:
        yield self.user_ready[u].wait()
        if self.epoch != epoch:
            return
        r = self.comm.rank
        P = self.comm.size
        right = (r + 1) % P
        flags = self.clique.flags(epoch)
        fabric = self.rt.fabric
        hbm_bw = self.device.cost.hbm_bw

        for i, step in enumerate(self.schedule.steps):
            yield self.engine.timeout(FUSED_STEP_OVERHEAD)
            # Direct SM stores into the right peer's mapped staging window.
            peer = self.clique.members[right]
            dst = peer._slot(u, i)
            put = fabric.dataplane.put(
                self._w_chunk(u, step.send_chunk), dst,
                traffic_class="pcoll", initiator="device", name=f"fused_u{u}s{i}",
            )
            flag = flags[right][u][i]
            put.add_callback(lambda _ev, flag=flag: flag.set())

            # Spin on my own device flag, then reduce/copy fused in-kernel.
            my_flag = flags[r][u][i]
            if not my_flag.is_set:
                yield my_flag.wait()
            slot = self._slot(u, i)
            target = self._w_chunk(u, step.recv_chunk)
            if step.op is not NOP:
                step.op.reduce_into(target.data, slot.data)
                yield self.engine.timeout(target.nbytes * 3 / hbm_bw)
            else:
                target.data[:] = slot.data
                yield self.engine.timeout(target.nbytes * 2 / hbm_bw)

        # Signal completion to the host (one flag store per partition).
        yield self.engine.process(
            host_flag_write_proc(self.device, 1, self.partition_done[u])
        )
        self.done_count.add(1)

    # -- device MPIX_Prequest (kernel blocks trigger user partitions) -----------------
    def prequest_create(
        self,
        device: "Device",
        grid: int,
        block: int,
        signal_mode: SignalMode = SignalMode.BLOCK,
    ) -> Generator:
        """Device request: blocks signal in *device memory* (no host hop —
        the ring engine lives on the GPU), so the trigger is just the
        global-memory counter crossing."""
        from repro.partitioned.prequest import CopyMode, Prequest

        if grid % self.partitions != 0:
            raise MpiUsageError(
                f"grid {grid} not divisible by {self.partitions} user partitions"
            )
        agg = AggregationSpec(grid, block, grid // self.partitions, signal_mode)
        cost = device.cost
        yield self.engine.timeout(cost.cuda_malloc_cost)
        yield self.engine.timeout(cost.memcpy_api_cost)
        preq = Prequest(
            self, device, agg, CopyMode.PROGRESSION_ENGINE,
            on_ready=self.issue_user_pready,
        )
        self.preq = preq
        if self.active:
            preq.arm_epoch()
        return preq


def fused_pallreduce_init(
    comm: "Communicator",
    sendbuf: Buffer,
    recvbuf: Buffer,
    partitions: int,
    op: MpiOp = SUM,
    device: Optional["Device"] = None,
) -> Generator:
    """MPIX_Pallreduce_init with the relaxed (fused device) semantics."""
    rt = comm.rt
    yield rt.engine.timeout(rt.params.mpi_call_overhead)
    req = FusedPallreduce(comm, sendbuf, recvbuf, partitions, op, device or rt.device)
    # Schedule construction + window allocation out of the device pool.
    from repro.pcoll.request import POOL_ALLOC_COST, SCHEDULE_STEP_COST

    yield rt.engine.timeout(SCHEDULE_STEP_COST * req.schedule.n_steps + POOL_ALLOC_COST)
    return req
