"""Generator templates compiling cluster-scale fabrics into MachineSpecs.

The hand-written catalog stops at two nodes; the regimes the related work
evaluates (GICC, NVSHMEM system analysis) are 512-4096 GPU rail-optimized
fabrics.  This module builds those shapes programmatically::

    fat_tree(gpus=512, rails=4)      # two-level rail-optimized Clos
    dragonfly(gpus=1024, rails=2)    # one-router-per-group dragonfly

and names them for the CLIs (``--machine fat-tree-512``)::

    fat-tree-512                 # 512 GPUs, defaults below
    fat-tree-1024-r2-n8-l16      # -r rails -n gpus/node -l nodes/leaf -s spines
    dragonfly-512-g8             # -g nodes/group

Node internals reuse the GH200 superchip template (NVLink pair mesh, C2C,
NIC per GPU); the fabric adds leaf/spine trunk or dragonfly global link
classes on top.  :func:`wire_path_classes` is the single source of truth
for which inter-node link classes a (src, dst) GPU pair crosses — the
LinkGraph compilation, the topo validator's metrics, and the shard wire
model all derive from it, which is what lets shards price a cross-shard
hop without building the 512-GPU graph.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.hw.params import GH200Params
from repro.hw.spec.catalog import gh200_node
from repro.hw.spec.schema import (
    DragonflyFabric,
    FatTreeFabric,
    LinkClass,
    MachineSpec,
    SpecError,
)
from repro.units import us


def fat_tree(
    gpus: int = 512,
    gpus_per_node: int = 8,
    rails: int = 4,
    nodes_per_leaf: int = 8,
    spines_per_rail: Optional[int] = None,
    params: Optional[GH200Params] = None,
    name: Optional[str] = None,
) -> MachineSpec:
    """A rail-optimized leaf/spine Clos of GH200-style nodes.

    ``spines_per_rail`` defaults to ``nodes_per_leaf`` — with trunk links
    running at twice the NIC rate that makes every rail plane
    non-blocking for uniform traffic.
    """
    if gpus % gpus_per_node:
        raise SpecError(f"fat_tree: {gpus} gpus not divisible by {gpus_per_node}/node")
    nodes = gpus // gpus_per_node
    if nodes % nodes_per_leaf:
        raise SpecError(f"fat_tree: {nodes} nodes not divisible by {nodes_per_leaf}/leaf")
    p = params or GH200Params()
    spines = spines_per_rail if spines_per_rail is not None else nodes_per_leaf
    fabric = FatTreeFabric(
        rails=rails,
        nodes_per_leaf=nodes_per_leaf,
        spines_per_rail=spines,
        trunk_up=LinkClass("trunk_up", 2 * p.ib_bw, 0.5 * us),
        trunk_down=LinkClass("trunk_down", 2 * p.ib_bw, 0.5 * us),
    )
    return MachineSpec(
        name=name or f"fat-tree-{gpus}",
        nodes=(gh200_node(gpus_per_node, p),) * nodes,
        nic_out=LinkClass("nic_out", p.ib_bw, p.ib_latency / 2),
        nic_in=LinkClass("nic_in", p.ib_bw, p.ib_latency / 2),
        params=p,
        fabric=fabric,
    )


def dragonfly(
    gpus: int = 512,
    gpus_per_node: int = 8,
    rails: int = 2,
    nodes_per_group: int = 8,
    params: Optional[GH200Params] = None,
    name: Optional[str] = None,
) -> MachineSpec:
    """A dragonfly of GH200-style nodes: one router per group per rail,
    groups fully connected by global links."""
    if gpus % gpus_per_node:
        raise SpecError(f"dragonfly: {gpus} gpus not divisible by {gpus_per_node}/node")
    nodes = gpus // gpus_per_node
    if nodes % nodes_per_group:
        raise SpecError(
            f"dragonfly: {nodes} nodes not divisible by {nodes_per_group}/group"
        )
    p = params or GH200Params()
    fabric = DragonflyFabric(
        rails=rails,
        nodes_per_group=nodes_per_group,
        global_link=LinkClass("dfly_global", p.ib_bw, 1.0 * us),
    )
    return MachineSpec(
        name=name or f"dragonfly-{gpus}",
        nodes=(gh200_node(gpus_per_node, p),) * nodes,
        nic_out=LinkClass("nic_out", p.ib_bw, p.ib_latency / 2),
        nic_in=LinkClass("nic_in", p.ib_bw, p.ib_latency / 2),
        params=p,
        fabric=fabric,
    )


# -- generator-name grammar ---------------------------------------------------
_GEN_RE = re.compile(r"^(fat-tree|dragonfly)-(\d+)((?:-[a-z]\d+)*)$")
_OPT_RE = re.compile(r"-([a-z])(\d+)")


def parse_machine(name: str) -> Optional[MachineSpec]:
    """Build a spec from a generator name; None if the name isn't one.

    Grammar: ``fat-tree-<gpus>`` / ``dragonfly-<gpus>`` with optional
    ``-r<rails> -n<gpus_per_node> -l<nodes_per_leaf> -s<spines_per_rail>
    -g<nodes_per_group>`` suffixes in any order.
    """
    m = _GEN_RE.match(name)
    if m is None:
        return None
    kind, gpus, rest = m.group(1), int(m.group(2)), m.group(3)
    opts = {key: int(val) for key, val in _OPT_RE.findall(rest)}

    def take(key: str, default):
        return opts.pop(key, default)

    if kind == "fat-tree":
        spec = fat_tree(
            gpus=gpus,
            gpus_per_node=take("n", 8),
            rails=take("r", 4),
            nodes_per_leaf=take("l", 8),
            spines_per_rail=take("s", None),
            name=name,
        )
    else:
        spec = dragonfly(
            gpus=gpus,
            gpus_per_node=take("n", 8),
            rails=take("r", 2),
            nodes_per_group=take("g", 8),
            name=name,
        )
    if opts:
        raise SpecError(f"machine {name!r}: unknown option(s) {sorted(opts)}")
    return spec


def resolve_machine(name: str) -> MachineSpec:
    """Catalog name or generator name -> spec (the CLI entry point)."""
    from repro.hw.spec.catalog import SPECS

    spec = SPECS.get(name)
    if spec is not None:
        return spec
    spec = parse_machine(name)
    if spec is not None:
        return spec
    raise SpecError(
        f"unknown machine {name!r}; known specs: {sorted(SPECS)}, "
        "or a generator name like fat-tree-512 / dragonfly-512-g8"
    )


# -- analytic wire model ------------------------------------------------------
def wire_path_classes(spec: MachineSpec, src: int, dst: int) -> Tuple[LinkClass, ...]:
    """Inter-node link classes a ``src -> dst`` GPU transfer crosses.

    Only defined for cross-node pairs.  The sequence excludes intra-node
    hops (HBM, D2D, PXN forwarding) — it is exactly the fabric segment of
    the graph-searched route, which the generator tests pin.
    """
    ns, nd = spec.node_of(src), spec.node_of(dst)
    if ns == nd:
        raise SpecError(f"gpus {src},{dst} share node {ns}: no wire segment")
    fabric = spec.fabric
    if fabric is None:
        return (spec.nic_out, spec.nic_in)
    if fabric.kind == "fat-tree":
        if ns // fabric.nodes_per_leaf == nd // fabric.nodes_per_leaf:
            return (spec.nic_out, spec.nic_in)
        return (spec.nic_out, fabric.trunk_up, fabric.trunk_down, spec.nic_in)
    # dragonfly
    if ns // fabric.nodes_per_group == nd // fabric.nodes_per_group:
        return (spec.nic_out, spec.nic_in)
    return (spec.nic_out, fabric.global_link, spec.nic_in)


def wire_latency(spec: MachineSpec, src: int, dst: int) -> float:
    """First-byte latency of the wire segment, incl. PXN rail forwarding."""
    lat = sum(cls.latency for cls in wire_path_classes(spec, src, dst))
    if spec.fabric is not None and spec.rail_of(src) != spec.rail_of(dst):
        d2d = spec.node_spec_of(src).d2d
        if d2d is not None:
            lat += d2d.latency  # PXN hop to a same-node GPU on dst's rail
    return lat


def wire_bandwidth(spec: MachineSpec, src: int, dst: int) -> float:
    """Bottleneck bandwidth of the wire segment."""
    return min(cls.bandwidth for cls in wire_path_classes(spec, src, dst))


def min_internode_latency(spec: MachineSpec) -> float:
    """The conservative lookahead bound: no cross-node byte can become
    visible sooner than this after its send.  Equals the cheapest
    relationship class (same-leaf / same-group / flat wire)."""
    if spec.n_nodes < 2:
        raise SpecError(f"spec {spec.name!r} has a single node: no internode wire")
    return spec.nic_out.latency + spec.nic_in.latency


# -- fabric metrics (topo CLI) ------------------------------------------------
def fabric_metrics(spec: MachineSpec) -> Dict[str, object]:
    """Analytic shape/capacity summary for generated fabrics.

    ``diameter_links`` counts fabric + NIC (+ PXN d2d) hops on the worst
    GPU pair; ``bisection_bw`` is the capacity crossing an even node
    bisection, in bytes/s.
    """
    fabric = spec.fabric
    nodes = spec.n_nodes
    metrics: Dict[str, object] = {
        "machine": spec.name,
        "nodes": nodes,
        "gpus": spec.n_gpus,
        "rails": 1 if fabric is None else fabric.rails,
        "lookahead_s": min_internode_latency(spec) if nodes > 1 else None,
    }
    if fabric is None:
        metrics["kind"] = "flat"
        metrics["diameter_links"] = 2 if nodes > 1 else 1
        metrics["bisection_bw"] = (spec.n_gpus // 2) * min(
            spec.nic_out.bandwidth, spec.nic_in.bandwidth
        )
        return metrics
    pxn = 1 if fabric.rails > 1 else 0
    if fabric.kind == "fat-tree":
        leaves = nodes // fabric.nodes_per_leaf
        metrics["kind"] = "fat-tree"
        metrics["leaves_per_rail"] = leaves
        metrics["spines_per_rail"] = fabric.spines_per_rail
        metrics["diameter_links"] = (4 if leaves > 1 else 2) + pxn
        if leaves > 1:
            metrics["bisection_bw"] = (
                (leaves // 2) * fabric.spines_per_rail
                * fabric.rails * fabric.trunk_up.bandwidth
            )
        else:
            metrics["bisection_bw"] = (spec.n_gpus // 2) * spec.nic_out.bandwidth
    else:
        groups = nodes // fabric.nodes_per_group
        metrics["kind"] = "dragonfly"
        metrics["groups"] = groups
        metrics["diameter_links"] = (3 if groups > 1 else 2) + pxn
        if groups > 1:
            left = groups // 2
            metrics["bisection_bw"] = (
                left * (groups - left) * fabric.rails * fabric.global_link.bandwidth
            )
        else:
            metrics["bisection_bw"] = (spec.n_gpus // 2) * spec.nic_out.bandwidth
    return metrics


def format_metrics(metrics: Dict[str, object]) -> List[str]:
    """Human lines for the topo CLI."""
    from repro.units import GBps

    lines = [
        f"fabric kind: {metrics['kind']}, {metrics['nodes']} node(s), "
        f"{metrics['gpus']} gpu(s), {metrics['rails']} rail(s)"
    ]
    if "leaves_per_rail" in metrics:
        lines.append(
            f"  {metrics['leaves_per_rail']} leaf / {metrics['spines_per_rail']} "
            "spine switch(es) per rail"
        )
    if "groups" in metrics:
        lines.append(f"  {metrics['groups']} group(s) per rail")
    lines.append(f"  diameter: {metrics['diameter_links']} links")
    lines.append(f"  bisection bandwidth: {metrics['bisection_bw'] / GBps:.0f} GB/s")
    if metrics["lookahead_s"] is not None:
        lines.append(f"  conservative lookahead: {metrics['lookahead_s'] * 1e6:.2f} us")
    return lines
