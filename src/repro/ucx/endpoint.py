"""UCP endpoints: RMA puts and active messages to a remote worker.

``put_nbx`` is the workhorse under ``MPI_Pready`` (paper Section IV-A4):
the sender puts a data partition into the registered remote region, and —
because UCX lacks a put-with-remote-completion (cf. the paper's
IBV_WR_RDMA_WRITE_WITH_IMM remark) — chains a *second* tiny put that raises
the partition-arrived flag on the receiver.  :meth:`UcpEndpoint.put_nbx`
implements one put; the chaining lives in the MPI Partitioned layer.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.hw.memory import Buffer
from repro.sim.events import Event
from repro.ucx.context import AmMessage, UcpWorker, WorkerAddress
from repro.ucx.memreg import RemoteKey, UcxMemError


class UcpEndpoint:
    """Connection from a local worker to a remote worker."""

    def __init__(self, worker: UcpWorker, remote: WorkerAddress) -> None:
        self.worker = worker
        self.remote = remote
        self.engine = worker.engine
        self.fabric = worker.fabric
        self.puts_issued = 0
        self.puts_completed = 0

    # -- RMA ---------------------------------------------------------------
    def put_nbx(
        self,
        src: Buffer,
        rkey: RemoteKey,
        offset_elems: int = 0,
        callback: Optional[Callable[[], None]] = None,
    ) -> Event:
        """Non-blocking RMA put of ``src`` into the remote region.

        ``offset_elems`` positions the write inside the registered region
        (element-granular, matching how partitions index one buffer).  The
        returned event fires — and ``callback`` runs — when the data has
        landed in the target memory.  Puts from one endpoint to regions on
        one route complete in issue order (FIFO links).
        """
        target = rkey.target
        if offset_elems < 0 or offset_elems + len(src.data) > len(target.data):
            raise UcxMemError(
                f"put_nbx out of bounds: offset {offset_elems} + {len(src.data)} "
                f"> region {len(target.data)}"
            )
        dst_view = target.view(offset_elems, len(src.data))
        self.puts_issued += 1
        # Transport selection happens in the dataplane: D2D puts between
        # peers that can IPC-map each other ride the host-mediated
        # cuda_ipc copy engine, everything else goes direct (shm /
        # rc_verbs GPUDirect / host-staged bounce on no-P2P machines).
        done = self.fabric.dataplane.rma_put(
            src, dst_view, traffic_class="rma", name=f"put[{self.worker.name}]"
        )
        obs = self.engine.obs
        t_issue = self.engine.now
        nbytes = src.nbytes

        def _on_done(ev: Event) -> None:
            self.puts_completed += 1
            if obs is not None:
                obs.span(
                    "ucx", "put", None, t_issue, self.engine.now,
                    nbytes=nbytes, worker=self.worker.name,
                )
            if callback is not None and ev.ok:
                callback()

        done.add_callback(_on_done)
        return done

    # -- active messages -----------------------------------------------------
    def am_send(self, am_id: int, payload: Any, nbytes: int = 128) -> Event:
        """Send an active message; event fires at *local* completion.

        The payload object is delivered to the remote worker's AM channel
        when the wire transfer arrives.  ``nbytes`` sizes the wire cost
        (setup_t packets are small control messages).
        """
        def send_proc():
            obs = self.engine.obs
            if obs is not None:
                obs.instant(
                    "ucx", "am_send", None,
                    am_id=am_id, nbytes=nbytes, worker=self.worker.name,
                )
            p = self.fabric.config.params
            yield self.engine.timeout(p.am_send_overhead)
            src_probe = Buffer.alloc(
                max(nbytes // 8, 1), space=_host_space(), node=self.worker.context.node
            )
            dst_probe = Buffer.alloc(
                max(nbytes // 8, 1), space=_host_space(), node=self.remote.node
            )
            wire = self.fabric.dataplane.control(
                src_probe, dst_probe, nbytes, traffic_class="am", name="am"
            )

            def deliver(ev: Event) -> None:
                if ev.ok:
                    self.remote.resolve()._deliver_am(
                        AmMessage(am_id, payload, nbytes, self.worker.address)
                    )

            wire.add_callback(deliver)
            # Local completion: once injected (eager AM), not when delivered.
            return None

        return self.engine.process(send_proc(), name=f"am{am_id}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UcpEndpoint {self.worker.name} -> worker{self.remote.worker_id}>"


def _host_space():
    from repro.hw.memory import MemSpace

    return MemSpace.HOST
