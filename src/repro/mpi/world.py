"""The World: an ``mpiexec`` that runs rank coroutines in one simulation.

``World`` builds the engine, fabric, and one :class:`~repro.cuda.Device`
per GPU, then :meth:`World.run` launches ``nprocs`` rank processes (one per
GPU, rank *r* on GPU *r* — matching the paper's placement where ranks 0-3
and 4-7 share nodes) and runs the simulation until every rank returns.

Application main functions are generators::

    def main(ctx):                       # ctx: RankCtx
        comm = ctx.comm
        yield from comm.barrier()
        return ctx.rank

    results = World(ONE_NODE).run(main, nprocs=4)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.cuda.device import Device
from repro.cuda.timing import CostModel
from repro.hw.params import PAPER_TESTBED
from repro.hw.topology import Fabric, MachineLike
from repro.mpi.comm import CommGroup, Communicator
from repro.mpi.errors import MpiUsageError
from repro.mpi.runtime import MpiRuntime
from repro.sim.engine import Engine
from repro.sim.events import AllOf
from repro.sim.resources import Counter
from repro.ucx.context import WorkerAddress


@dataclass
class RankCtx:
    """Everything a rank's main function needs."""

    rank: int
    size: int
    world: "World"
    mpi: MpiRuntime
    gpu: Device
    comm: Communicator

    @property
    def engine(self) -> Engine:
        return self.world.engine

    @property
    def now(self) -> float:
        return self.world.engine.now

    @property
    def params(self):
        return self.mpi.params


class _SplitSlot:
    """Collects one split round's (color, key) submissions."""

    def __init__(self, world: "World", expected: int) -> None:
        self.world = world
        self.expected = expected
        self._submissions: Dict[int, tuple] = {}  # parent rank -> (color, key, world_rank)
        self._groups: Optional[Dict[int, CommGroup]] = None

    def submit(self, parent_rank: int, color: int, key: int, world_rank: int) -> None:
        self._submissions[parent_rank] = (color, key, world_rank)

    def group_for(self, color: int) -> Optional[CommGroup]:
        if len(self._submissions) != self.expected:
            raise MpiUsageError(
                "comm split used before all members submitted (missing barrier?)"
            )
        if self._groups is None:
            by_color: Dict[int, list] = {}
            for prank, (c, key, wrank) in self._submissions.items():
                if c >= 0:
                    by_color.setdefault(c, []).append((key, prank, wrank))
            self._groups = {}
            for c, members in by_color.items():
                members.sort()  # by key, then parent rank (MPI tie-break)
                self._groups[c] = CommGroup(
                    self.world.alloc_comm_id(), [wrank for _k, _p, wrank in members]
                )
        if color < 0:
            return None
        return self._groups[color]


class World:
    """One simulated machine plus its MPI job launcher."""

    def __init__(
        self,
        config: MachineLike = PAPER_TESTBED,
        cost: Optional[CostModel] = None,
        trace: bool = False,
        engine: Optional[Engine] = None,
    ) -> None:
        # Collect predecessors' cyclic garbage *before* allocating this
        # machine's buffers (see the note in run()).  Skipped for embedded
        # worlds (``engine=`` injection): a shard hosting a node-local
        # World must not pay a full collection per window.
        if engine is None:
            import gc

            gc.collect()
        elif trace:
            raise ValueError("trace=True is not supported with an injected engine")
        self.config = config
        self.engine = engine if engine is not None else Engine(trace=trace)
        self.fabric = Fabric(self.engine, config)
        # An explicit cost model applies to every device; otherwise each
        # device derives its own from the machine spec's per-GPU constants.
        self.cost = cost
        self.devices: List[Device] = [
            Device(self.fabric, g, cost) for g in range(self.fabric.topo.n_gpus)
        ]
        self._addresses: Dict[int, WorkerAddress] = {}
        self._comm_ids = itertools.count(0)
        self._nprocs = 0
        self._boot_counter: Optional[Counter] = None

    # -- bootstrap services (PMIx equivalents, zero simulated cost) -------------
    def _register_address(self, world_rank: int, addr: WorkerAddress) -> None:
        self._addresses[world_rank] = addr

    def address_of(self, world_rank: int) -> WorkerAddress:
        addr = self._addresses.get(world_rank)
        if addr is None:
            raise MpiUsageError(
                f"rank {world_rank} has no published address (before MPI_Init?)"
            )
        return addr

    def _bootstrap_barrier(self):
        assert self._boot_counter is not None
        self._boot_counter.add(1)
        yield self._boot_counter.wait_for(self._nprocs)

    def alloc_comm_id(self) -> int:
        return next(self._comm_ids)

    def comm_split_slot(self, parent_comm) -> "_SplitSlot":
        """Out-of-band agreement slot for one MPI_Comm_split round.

        MPI requires every rank of the communicator to call split in the
        same order, so the Nth split on a communicator is the same
        operation everywhere; the slot collects (color, key) submissions
        and assigns consistent CommGroups once all members arrived.
        """
        slots = self.__dict__.setdefault("_split_slots", {})
        seq = getattr(parent_comm, "_split_seq", 0)
        parent_comm._split_seq = seq + 1
        key = (parent_comm.comm_id, seq)
        slot = slots.get(key)
        if slot is None:
            slot = _SplitSlot(self, parent_comm.size)
            slots[key] = slot
        return slot

    # -- job launch -----------------------------------------------------------------
    def launch(
        self,
        main: Callable[[RankCtx], Any],
        nprocs: Optional[int] = None,
        args: Sequence[Any] = (),
    ) -> List[Any]:
        """Spawn ``nprocs`` rank processes without driving the engine.

        Returns the rank :class:`~repro.sim.process.Process` list (rank
        order); each process event's value is that rank's return value.
        This is the embedding surface: a shard hosts a node-local World by
        launching its ranks onto the shard engine and letting the window
        driver advance time — :meth:`run` is launch + ``engine.run``.
        """
        n_gpus = self.fabric.topo.n_gpus
        nprocs = nprocs if nprocs is not None else n_gpus
        if not 1 <= nprocs <= n_gpus:
            raise MpiUsageError(
                f"nprocs {nprocs} out of range 1..{n_gpus} (one rank per GPU)"
            )
        self._nprocs = nprocs
        self._boot_counter = Counter(self.engine)

        world_group = CommGroup(self.alloc_comm_id(), list(range(nprocs)))
        runtimes = [MpiRuntime(self, r, self.devices[r]) for r in range(nprocs)]

        def rank_main(rt: MpiRuntime):
            yield from rt.init()
            comm = Communicator(world_group, rt)
            ctx = RankCtx(
                rank=rt.world_rank, size=nprocs, world=self,
                mpi=rt, gpu=rt.device, comm=comm,
            )
            result = yield from main(ctx, *args)
            yield from rt.finalize()
            return result

        return [
            self.engine.process(rank_main(rt), name=f"rank{rt.world_rank}")
            for rt in runtimes
        ]

    def run(
        self,
        main: Callable[[RankCtx], Any],
        nprocs: Optional[int] = None,
        args: Sequence[Any] = (),
        until: Optional[float] = None,
    ) -> List[Any]:
        """Launch ``nprocs`` ranks and simulate to completion.

        Returns each rank's return value, ordered by rank.  ``args`` are
        passed through to ``main(ctx, *args)``.
        """
        procs = self.launch(main, nprocs, args)
        done = AllOf(self.engine, procs)
        self.engine.run(done)
        results = [p.value for p in procs]
        # A finished world is a large reference cycle (progress-loop
        # generators <-> engine <-> runtimes <-> NumPy buffers); collect
        # it eagerly so back-to-back benchmark worlds do not accumulate
        # gigabytes of cyclic garbage before the GC would get to them.
        import gc

        self._addresses.clear()
        gc.collect()
        return results

    @property
    def now(self) -> float:
        return self.engine.now
