"""Fast benchmark smoke tier: one small-grid point per paper exhibit.

Run with ``pytest -m smoke`` (the ``scripts/ci.sh`` smoke tier).  Each
test exercises one exhibit generator end-to-end on its smallest sweep
point — catching wiring regressions (route resolution, world construction,
series plumbing) in seconds without the full decimated sweeps.
"""

import pytest

from repro.bench import figures

pytestmark = pytest.mark.smoke


def _one_point(fn, **kwargs):
    series = fn(**kwargs)
    assert series.rows, f"{series.exhibit}: empty series"
    return series


def test_fig2_smoke():
    _one_point(figures.fig2, grids=(4,))


def test_fig3_smoke():
    _one_point(figures.fig3, threads=(32,))


def test_fig4_smoke():
    _one_point(figures.fig4, grids=(16,))


def test_fig5_smoke():
    _one_point(figures.fig5, grids=(16,))


def test_fig6_smoke():
    _one_point(figures.fig6, grids=(1024,))


def test_fig7_smoke():
    _one_point(figures.fig7, grids=(1024,))


def test_table1_smoke():
    _one_point(figures.table1)


def test_fig8_smoke():
    _one_point(figures.fig8, multipliers=(1,), iters=3)


def test_fig9_smoke():
    _one_point(figures.fig9, multipliers=(1,), iters=3)


def test_fig10_smoke():
    _one_point(figures.fig10, grids=(256,))


def test_fig11_smoke():
    _one_point(figures.fig11, grids=(256,))
