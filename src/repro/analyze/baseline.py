"""The checked-in findings baseline (``analyze-baseline.json``).

The baseline lets the analyzer land green on a repo with known,
deliberate over-approximations *without* disabling whole rules: every
baselined finding is pinned by its exact ``(rule, path, line)`` identity
and keeps being reported under ``--no-baseline``.  Entries that no
longer match anything are *stale* and reported, so the file can only
shrink silently, never grow.

Regenerate with ``python -m repro analyze --write-baseline`` after
deliberate changes; review the diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from repro.analyze.rules import Finding

#: Default location, resolved relative to the working directory.
DEFAULT_BASELINE = "analyze-baseline.json"

VERSION = 1


def save(path: Path, findings: Iterable[Finding]) -> None:
    entries = [
        {"rule": f.rule, "path": f.path, "line": f.line, "message": f.message}
        for f in findings
    ]
    payload = {"version": VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load(path: Path) -> Set[Tuple[str, str, int]]:
    """The set of baselined (rule, path, line) identities."""
    payload = json.loads(path.read_text())
    if payload.get("version") != VERSION:
        raise ValueError(
            f"baseline {path} has version {payload.get('version')!r}, "
            f"expected {VERSION}"
        )
    return {
        (e["rule"], e["path"], int(e["line"]))
        for e in payload.get("findings", [])
    }


def split(
    findings: Iterable[Finding], baselined: Set[Tuple[str, str, int]]
) -> Tuple[List[Finding], List[Finding], List[Tuple[str, str, int]]]:
    """-> (new findings, baseline-matched findings, stale baseline keys)."""
    new: List[Finding] = []
    matched: List[Finding] = []
    seen: Set[Tuple[str, str, int]] = set()
    for f in findings:
        key = f.key()
        if key in baselined:
            matched.append(f)
            seen.add(key)
        else:
            new.append(f)
    stale = sorted(baselined - seen)
    return new, matched, stale
