"""UCP contexts, workers, and worker addresses.

One :class:`UcpContext` exists per process (MPI rank); it owns one or more
:class:`UcpWorker` objects.  A worker encapsulates communication resources
and receives active messages; its :class:`WorkerAddress` is what remote
endpoints connect to (in real UCX an opaque blob exchanged out-of-band; our
MPI layer exchanges it through the launcher's bootstrap, like PMIx would).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.hw.topology import Fabric
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import Channel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ucx.endpoint import UcpEndpoint

_worker_ids = itertools.count()


@dataclass(frozen=True)
class WorkerAddress:
    """Opaque address of a worker (exchangeable between ranks)."""

    worker_id: int
    node: int
    gpu: Optional[int]
    _worker: "UcpWorker" = field(repr=False, compare=False)

    def resolve(self) -> "UcpWorker":
        return self._worker


class AmMessage:
    """A received active message."""

    __slots__ = ("am_id", "payload", "nbytes", "sender")

    def __init__(self, am_id: int, payload: Any, nbytes: int, sender: WorkerAddress) -> None:
        self.am_id = am_id
        self.payload = payload
        self.nbytes = nbytes
        self.sender = sender


class UcpWorker:
    """A progress context: AM reception + endpoint factory."""

    def __init__(self, context: "UcpContext", name: str = "") -> None:
        self.context = context
        self.engine: Engine = context.engine
        self.fabric: Fabric = context.fabric
        self.worker_id = next(_worker_ids)
        self.name = name or f"worker{self.worker_id}"
        # Per-AM-id FIFO channels of received messages.
        self._am_channels: Dict[int, Channel] = {}
        self._endpoints: Dict[int, "UcpEndpoint"] = {}  # keyed by remote worker_id

    @property
    def address(self) -> WorkerAddress:
        return WorkerAddress(self.worker_id, self.context.node, self.context.gpu, self)

    # -- endpoints ----------------------------------------------------------
    def ep_create(self, remote: WorkerAddress):
        """Create (or reuse) an endpoint to ``remote``.

        Host generator: charges endpoint creation cost on first use — call
        as ``ep = yield from worker.ep_create(addr)``.
        """
        from repro.ucx.endpoint import UcpEndpoint

        existing = self._endpoints.get(remote.worker_id)
        if existing is not None:
            return existing
            yield  # pragma: no cover - keeps this a generator
        yield self.engine.timeout(self.fabric.config.params.ucp_ep_create)
        ep = UcpEndpoint(self, remote)
        self._endpoints[remote.worker_id] = ep
        return ep

    # -- active messages -------------------------------------------------------
    def _am_channel(self, am_id: int) -> Channel:
        chan = self._am_channels.get(am_id)
        if chan is None:
            chan = Channel(self.engine, name=f"{self.name}.am{am_id}")
            self._am_channels[am_id] = chan
        return chan

    def am_recv(self, am_id: int) -> Event:
        """Event yielding the next AmMessage with ``am_id``."""
        return self._am_channel(am_id).get()

    def am_try_recv(self, am_id: int) -> Optional[AmMessage]:
        """Non-blocking AM poll (used by progression engines)."""
        return self._am_channel(am_id).try_get()

    def _deliver_am(self, msg: AmMessage) -> None:
        self._am_channel(msg.am_id).put(msg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UcpWorker {self.name} node={self.context.node}>"


class UcpContext:
    """Per-process UCP context (created lazily by the MPI layer)."""

    def __init__(self, engine: Engine, fabric: Fabric, node: int, gpu: Optional[int]) -> None:
        self.engine = engine
        self.fabric = fabric
        self.node = node
        self.gpu = gpu
        self.workers: List[UcpWorker] = []

    @classmethod
    def create(cls, engine: Engine, fabric: Fabric, node: int, gpu: Optional[int]):
        """Host generator: charge ``ucp_context_create`` and build."""
        yield engine.timeout(fabric.config.params.ucp_context_create)
        return cls(engine, fabric, node, gpu)

    def worker_create(self, name: str = ""):
        """Host generator: charge ``ucp_worker_create`` and build."""
        yield self.engine.timeout(self.fabric.config.params.ucp_worker_create)
        worker = UcpWorker(self, name)
        self.workers.append(worker)
        return worker
