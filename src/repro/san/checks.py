"""Dynamic partitioned-semantics checks over a recorded trace.

Each check is a pure function ``(events, allocs) -> [Finding]`` consuming
the trace a :class:`~repro.san.record.Recorder` collected.  The MPI 4.0
rules enforced (paper §II-B / §IV-A; MPI 4.0 §4.2):

``double-pready``
    Every partition of an active epoch may be marked ready **once**.  The
    device bindings aggregate a block's worth of user partitions, so the
    device-level rule is: one ``pready_*`` call per block (or wave range)
    per prequest per epoch.  Doubled calls are silently absorbed by the
    global-memory counters in the seed — this check makes them fatal.
``pready-inactive`` / ``pready-freed`` / ``pready-wrong-device``
    ``MPIX_Pready`` outside an active epoch, on a freed ``MPIX_Prequest``,
    or from a different device than the request was created for.  The
    runtime guards raise; the sanitizer preserves them as findings with
    provenance even when the exception is swallowed upstream.
``read-before-parrived``
    A recorded read of a receive-side partition before its arrived flag
    was raised in the current epoch.
``send-overwrite``
    A recorded write to a send-side transport partition between its
    ``Pready`` and the transport's completion (data + flag puts landed).
``uninit-read``
    A device-actor read of a DEVICE-space allocation that was created in
    the sanitized window and never written — by a recorded write, a
    transport landing, or a kernel ``apply`` on that GPU (``cudaMalloc``
    does not zero memory; the simulator's NumPy backing does, so this is
    the only way the model can surface such bugs).  Conservative: any
    kernel ``apply`` on the owning GPU counts as initializing it.
``ipc-misuse``
    Cross-node ``cudaIpcOpenMemHandle`` / Kernel-Copy mapping attempts
    (NVLink unreachable), or IPC export of non-device memory.
``data-race``
    The generic happens-before detector (:mod:`repro.san.hb`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.san import hb
from repro.san.record import ACCESS, MARK, AllocInfo, TraceEvent, fmt_actor
from repro.san.report import Finding
from repro.units import fmt_time


@dataclass(frozen=True)
class CheckInfo:
    """Catalogue entry, surfaced by ``python -m repro san --list-checks``."""

    id: str
    kind: str        # "dynamic" (trace) or "static" (AST lint)
    summary: str


CheckFn = Callable[[Sequence[TraceEvent], Dict[int, AllocInfo]], List[Finding]]


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------

def _marks(events: Sequence[TraceEvent], note: str) -> List[TraceEvent]:
    return [ev for ev in events if ev.kind == MARK and ev.note == note]


def _blocks_range(ev: TraceEvent) -> Tuple[int, int]:
    """Half-open block range a pready mark covers (single block or wave)."""
    blocks = ev.get("blocks")
    if blocks is not None:
        return int(blocks[0]), int(blocks[1])
    b = int(ev.get("block"))
    return b, b + 1


# --------------------------------------------------------------------------
# the checks
# --------------------------------------------------------------------------

def check_double_pready(events, allocs) -> List[Finding]:
    findings: List[Finding] = []
    # (preq id, epoch) -> list of (lo, hi, event)
    seen: Dict[Tuple[int, int], List[Tuple[int, int, TraceEvent]]] = {}
    for ev in _marks(events, "pready"):
        key = (ev.get("preq"), ev.get("epoch"))
        lo, hi = _blocks_range(ev)
        for plo, phi, prev in seen.setdefault(key, []):
            if lo < phi and plo < hi:
                overlap = (max(lo, plo), min(hi, phi))
                which = (
                    f"block {overlap[0]}"
                    if overlap[1] - overlap[0] == 1
                    else f"blocks [{overlap[0]}:{overlap[1]})"
                )
                findings.append(
                    Finding(
                        check="double-pready",
                        message=(
                            f"MPIX_Pready issued twice for {which} of transport "
                            f"partition {ev.get('tp')} in epoch {ev.get('epoch')} "
                            "(one ready call per partition per epoch)"
                        ),
                        time=ev.time,
                        actor=ev.actor,
                        related=(
                            (prev.time, prev.actor, "first MPIX_Pready for this range"),
                        ),
                    )
                )
                break
        seen[key].append((lo, hi, ev))
    return findings


_GUARD_CHECKS = (
    "pready-inactive",
    "pready-freed",
    "pready-wrong-device",
    "ipc-misuse",
)


def check_guards(events, allocs) -> List[Finding]:
    """Surface runtime-guard trips (which also raise) as findings."""
    return [
        Finding(
            check=ev.get("check"),
            message=ev.get("msg", ""),
            time=ev.time,
            actor=ev.actor,
        )
        for ev in _marks(events, "guard")
        if ev.get("check") in _GUARD_CHECKS
    ]


def _channel_geometry(events, note: str):
    """req id -> (alloc, elem bytes per partition, partitions) from marks."""
    out = {}
    for ev in _marks(events, note):
        out[ev.get("req")] = (
            ev.get("alloc"),
            ev.get("partition_bytes"),
            ev.get("partitions"),
        )
    return out


def check_read_before_parrived(events, allocs) -> List[Finding]:
    findings: List[Finding] = []
    chans = _channel_geometry(events, "channel-recv")
    # recv alloc -> (req id, partition bytes, partitions)
    by_alloc = {alloc: (req, pb, n) for req, (alloc, pb, n) in chans.items()}
    arrived: Dict[Tuple[int, int], float] = {}   # (req, partition) -> time
    active: Dict[int, bool] = {}
    for ev in events:
        if ev.kind == MARK and ev.note == "epoch-start" and ev.get("side") == "recv":
            req = ev.get("req")
            active[req] = True
            arrived = {k: t for k, t in arrived.items() if k[0] != req}
        elif ev.kind == MARK and ev.note == "arrived":
            arrived[(ev.get("req"), ev.get("partition"))] = ev.time
        elif ev.kind == MARK and ev.note == "epoch-complete" and ev.get("side") == "recv":
            active[ev.get("req")] = False
        elif ev.kind == ACCESS and not ev.write and ev.actor is not None:
            entry = by_alloc.get(ev.alloc)
            if entry is None or entry[1] is None:
                continue
            req, pbytes, nparts = entry
            if not active.get(req):
                continue  # outside an epoch: the buffer belongs to the app
            for p in range(ev.lo // pbytes, min((ev.hi - 1) // pbytes + 1, nparts)):
                if (req, p) not in arrived:
                    findings.append(
                        Finding(
                            check="read-before-parrived",
                            message=(
                                f"read of receive partition {p} "
                                f"({fmt_actor(ev.actor)}, bytes [{ev.lo}:{ev.hi})) "
                                "before MPIX_Parrived reported it complete"
                            ),
                            time=ev.time,
                            actor=ev.actor,
                        )
                    )
                    break
    return findings


def check_send_overwrite(events, allocs) -> List[Finding]:
    findings: List[Finding] = []
    chans = _channel_geometry(events, "channel-send")
    by_alloc = {alloc: (req, pb, n) for req, (alloc, pb, n) in chans.items()}
    # (req, partition) -> pready mark still in flight
    in_flight: Dict[Tuple[int, int], TraceEvent] = {}
    for ev in events:
        if ev.kind == MARK and ev.note == "wire-pready":
            in_flight[(ev.get("req"), ev.get("partition"))] = ev
        elif ev.kind == MARK and ev.note == "tp-complete":
            in_flight.pop((ev.get("req"), ev.get("partition")), None)
        elif ev.kind == ACCESS and ev.write and ev.actor is not None:
            entry = by_alloc.get(ev.alloc)
            if entry is None or entry[1] is None:
                continue
            req, pbytes, nparts = entry
            for p in range(ev.lo // pbytes, min((ev.hi - 1) // pbytes + 1, nparts)):
                pready_ev = in_flight.get((req, p))
                if pready_ev is not None:
                    findings.append(
                        Finding(
                            check="send-overwrite",
                            message=(
                                f"send partition {p} overwritten while its "
                                "transfer is in flight (MPI_Pready issued, "
                                "transport not complete)"
                            ),
                            time=ev.time,
                            actor=ev.actor,
                            related=(
                                (
                                    pready_ev.time,
                                    pready_ev.actor,
                                    f"MPI_Pready for partition {p}",
                                ),
                            ),
                        )
                    )
                    break
    return findings


def check_uninit_read(events, allocs) -> List[Finding]:
    findings: List[Finding] = []
    written: Dict[int, bool] = {}
    reported: set = set()
    for ev in events:
        if ev.kind == MARK and ev.note == "apply":
            gpu = ev.get("gpu")
            for idx, info in allocs.items():
                if info.gpu == gpu:
                    written[idx] = True
        elif ev.kind == ACCESS and ev.write:
            written[ev.alloc] = True
        elif ev.kind == ACCESS and not ev.write:
            info = allocs.get(ev.alloc)
            if (
                ev.actor is not None
                and info is not None
                and info.space == "device"
                and not info.preexisting
                and not written.get(ev.alloc)
                and ev.alloc not in reported
            ):
                reported.add(ev.alloc)
                label = f" {info.label!r}" if info.label else ""
                findings.append(
                    Finding(
                        check="uninit-read",
                        message=(
                            f"read of device allocation{label} (alloc{ev.alloc}, "
                            f"bytes [{ev.lo}:{ev.hi})) that was never written — "
                            "cudaMalloc memory is uninitialized"
                        ),
                        time=ev.time,
                        actor=ev.actor,
                    )
                )
    return findings


def check_data_race(events, allocs) -> List[Finding]:
    findings: List[Finding] = []
    for race in hb.detect_races(events, allocs):
        info = allocs.get(race.alloc)
        label = f" {info.label!r}" if info is not None and info.label else ""
        a, b = race.first, race.second
        kind = "write/write" if a.write and b.write else "read/write"
        findings.append(
            Finding(
                check="data-race",
                message=(
                    f"{kind} race on allocation{label} (alloc{race.alloc}): "
                    f"{'write' if b.write else 'read'} of bytes [{b.lo}:{b.hi}) "
                    f"is unordered with {fmt_actor(a.actor)}'s "
                    f"{'write' if a.write else 'read'} of [{a.lo}:{a.hi}) "
                    f"at t={fmt_time(a.time)}"
                ),
                time=b.time,
                actor=b.actor,
                related=((a.time, a.actor, "conflicting access"),),
            )
        )
    return findings


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

DYNAMIC_CHECKS: Dict[str, Tuple[CheckInfo, Optional[CheckFn]]] = {
    "double-pready": (
        CheckInfo("double-pready", "dynamic",
                  "one MPIX_Pready per partition per epoch (device + wave paths)"),
        check_double_pready,
    ),
    "pready-inactive": (
        CheckInfo("pready-inactive", "dynamic",
                  "MPIX_Pready outside an active epoch (missing MPI_Start)"),
        None,  # via check_guards
    ),
    "pready-freed": (
        CheckInfo("pready-freed", "dynamic",
                  "MPIX_Pready on a freed MPIX_Prequest"),
        None,  # via check_guards
    ),
    "pready-wrong-device": (
        CheckInfo("pready-wrong-device", "dynamic",
                  "MPIX_Pready from a device the prequest was not created for"),
        None,  # via check_guards
    ),
    "ipc-misuse": (
        CheckInfo("ipc-misuse", "dynamic",
                  "cross-node cudaIpc / Kernel-Copy mapping, non-device IPC export"),
        None,  # via check_guards
    ),
    "read-before-parrived": (
        CheckInfo("read-before-parrived", "dynamic",
                  "receive partition read before its MPIX_Parrived flag"),
        check_read_before_parrived,
    ),
    "send-overwrite": (
        CheckInfo("send-overwrite", "dynamic",
                  "send partition written between MPI_Pready and transport completion"),
        check_send_overwrite,
    ),
    "uninit-read": (
        CheckInfo("uninit-read", "dynamic",
                  "device-side read of never-written cudaMalloc memory"),
        check_uninit_read,
    ),
    "data-race": (
        CheckInfo("data-race", "dynamic",
                  "happens-before (vector clock) race on overlapping byte ranges"),
        check_data_race,
    ),
}


def run_checks(
    events: Sequence[TraceEvent],
    allocs: Dict[int, AllocInfo],
    only: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the selected (default: all) dynamic checks over one trace."""
    wanted = set(only) if only is not None else set(DYNAMIC_CHECKS)
    unknown = wanted - set(DYNAMIC_CHECKS)
    if unknown:
        raise ValueError(f"unknown sanitizer checks: {sorted(unknown)}")
    findings: List[Finding] = []
    ran: set = set()
    for check_id in DYNAMIC_CHECKS:
        if check_id not in wanted:
            continue
        _info, fn = DYNAMIC_CHECKS[check_id]
        if fn is None:
            if "guards" not in ran:
                ran.add("guards")
                findings += [
                    f for f in check_guards(events, allocs) if f.check in wanted
                ]
        else:
            findings += fn(events, allocs)
    findings.sort(key=lambda f: f.time)
    return findings
