"""repro.shard: conservative-parallel sharded execution of cluster specs.

One :class:`~repro.shard.shard.Shard` per node, each with a private
engine and node-local fabric; :class:`~repro.shard.message.ShardMessage`
is the only thing that crosses a shard boundary, routed through
driver-side window queues under a CMB-style lookahead horizon.  The
sequential driver is the pinned-deterministic default;
:class:`~repro.shard.executor.ShardedExecutor` fans shard blocks out to
worker processes with bit-identical results (DESIGN.md §14).
"""

from repro.shard.cluster import ClusterError, ClusterJob, ClusterResult
from repro.shard.executor import ShardedExecutor
from repro.shard.mailbox import Mailbox, MailboxError, WindowQueue
from repro.shard.message import MessageDigest, ShardMessage, WireModel
from repro.shard.shard import RemoteBuffer, Shard, ShardBridge, local_spec
from repro.shard.workloads import WORKLOADS, resolve_workload

__all__ = [
    "ClusterError",
    "ClusterJob",
    "ClusterResult",
    "Mailbox",
    "MailboxError",
    "MessageDigest",
    "RemoteBuffer",
    "Shard",
    "ShardBridge",
    "ShardedExecutor",
    "ShardMessage",
    "WindowQueue",
    "WireModel",
    "WORKLOADS",
    "local_spec",
    "resolve_workload",
]
