"""Wall-clock performance harness for the simulator itself.

Everything under ``repro.perf`` is *outside* the deterministic core
(``repro.san``'s ``wallclock`` lint does not scope it), so it may consult
``time.perf_counter``.  The harness runs a pinned workload suite, totals
the engine's heap-traffic counters (:data:`repro.sim.engine.STATS`), and
writes ``BENCH_pr<N>.json`` — the DES-level regression baseline that
``scripts/ci.sh``'s ``bench-smoke`` step gates on.  See DESIGN.md §11.
"""

from repro.perf.bench import SUITE, main, run_suite  # noqa: F401
