"""Cluster workloads: build functions that populate one shard with processes.

A workload is a ``build(shard, cfg) -> [Process]`` function, registered in
:data:`WORKLOADS` with its default config.  Builds run once per shard (in
every execution mode, including inside forked workers), so they must be
importable module-level functions and their ``cfg`` values picklable.

Two shapes ship with the package:

``halo``
    A global ring halo exchange with node stride: every GPU pushes
    ``chunks`` chunks per iteration to the same-local-index GPU on the
    next node (always cross-shard) and receives the matching chunks from
    the previous node, plus one same-node face exchange per iteration
    that keeps the local engines dense with events between windows.

``allreduce-node``
    Each shard embeds a node-local :class:`~repro.mpi.world.World` on the
    shard engine (the full MPI stack: init, ring allreduce, barrier) and
    rank 0 forwards a digest buffer around the inter-node ring — the
    hierarchical shape of the paper's multi-node partitioned runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.hw.memory import Buffer, MemSpace
from repro.sim.process import Process


def resolve_workload(name: str) -> Tuple[str, Callable, dict]:
    """``name -> (name, build_fn, defaults)``; raises on unknown names."""
    entry = WORKLOADS.get(name)
    if entry is None and name == "replay":
        # Trace-replay schedules build shards from lowered micro-ops
        # (repro.workload.replay lowers; repro.shard.replay executes);
        # registered on demand so repro.shard stays import-light.
        from repro.shard.replay import REPLAY_CLUSTER_DEFAULTS, build_replay

        entry = WORKLOADS[name] = (build_replay, REPLAY_CLUSTER_DEFAULTS)
    if entry is None:
        from repro.shard.cluster import ClusterError

        known = ", ".join(sorted(WORKLOADS) + ["replay"])
        raise ClusterError(f"unknown workload {name!r} (known: {known})")
    build, defaults = entry
    return name, build, dict(defaults)


# -- halo ---------------------------------------------------------------------

HALO_DEFAULTS = {
    "iters": 4,
    "chunks": 2,
    "chunk_bytes": 1 << 20,   # 1 MiB per halo chunk
    "face_bytes": 1 << 22,    # 4 MiB same-node face exchange
}


def _halo_rank(shard, local: int, cfg: dict):
    g = shard.to_global(local)
    n = shard.cluster.n_gpus
    stride = shard.n_local_gpus        # ring step = one node (always cross-shard)
    fwd = (g + stride) % n
    back = (g - stride) % n
    chunk_bytes = cfg["chunk_bytes"]
    chunk_src = Buffer.alloc_virtual(
        chunk_bytes, np.uint8, MemSpace.DEVICE, 0, local, label=f"halo{g}"
    )
    peer = (local + 1) % shard.n_local_gpus
    face_src = face_dst = None
    if peer != local:
        face_src = Buffer.alloc_virtual(
            cfg["face_bytes"], np.uint8, MemSpace.DEVICE, 0, local, label=f"face{g}"
        )
        face_dst = Buffer.alloc_virtual(
            cfg["face_bytes"], np.uint8, MemSpace.DEVICE, 0, peer, label=f"face{g}d"
        )
    dataplane = shard.fabric.dataplane
    for it in range(cfg["iters"]):
        sends = [
            shard.put(
                chunk_src,
                shard.remote(fwd, chunk_bytes, ("halo", it, c, g)),
                name=f"halo{g}.{it}.{c}",
            )
            for c in range(cfg["chunks"])
        ]
        if face_src is not None:
            # Same-node traffic routes through the local link graph as
            # usual; only the bridge-claimed remote puts leave the shard.
            yield dataplane.put(
                face_src, face_dst, traffic_class="halo-face", name=f"face{g}.{it}"
            )
        for c in range(cfg["chunks"]):
            yield shard.recv(g, ("halo", it, c, back))
        for ev in sends:
            yield ev
    return (g, shard.engine.now)


def build_halo(shard, cfg: dict) -> List[Process]:
    return [
        shard.engine.process(
            _halo_rank(shard, local, cfg),
            name=f"halo.n{shard.id}.g{local}",
        )
        for local in range(shard.n_local_gpus)
    ]


# -- allreduce-node -----------------------------------------------------------

ALLREDUCE_DEFAULTS = {
    "iters": 2,
    "elems": 1 << 12,          # intra-node allreduce payload (float64 count)
    "ring_bytes": 1 << 16,     # inter-node rank-0 digest forward
}


def build_allreduce_node(shard, cfg: dict) -> List[Process]:
    from repro.mpi.world import World

    world = World(shard.local_spec, engine=shard.engine)
    n_shards = shard.cluster.n_nodes
    right = (shard.id + 1) % n_shards
    iters, elems, ring_bytes = cfg["iters"], cfg["elems"], cfg["ring_bytes"]

    def main(ctx):
        send = ctx.gpu.alloc(elems, fill=float(ctx.rank + 1))
        recv = ctx.gpu.alloc(elems, fill=0.0)
        ring = ctx.gpu.alloc_virtual(ring_bytes, np.uint8, label=f"ring{shard.id}")
        for it in range(iters):
            yield from ctx.comm.allreduce(send, recv)
            if ctx.rank == 0:
                # Rank 0 carries the node's digest one hop around the
                # inter-node ring, then waits for the left neighbour's.
                sent = shard.put(
                    ring,
                    shard.remote(
                        shard.cluster.gpu_base(right), ring_bytes, ("ring", it)
                    ),
                    name=f"ring{shard.id}.{it}",
                )
                yield shard.recv(shard.gpu_base, ("ring", it))
                yield sent
            yield from ctx.comm.barrier()
        return (shard.id, ctx.rank, float(recv.data[0]))

    return world.launch(main, nprocs=shard.n_local_gpus)


#: name -> (build function, default cfg)
WORKLOADS: Dict[str, Tuple[Callable, dict]] = {
    "halo": (build_halo, HALO_DEFAULTS),
    "allreduce-node": (build_allreduce_node, ALLREDUCE_DEFAULTS),
}
