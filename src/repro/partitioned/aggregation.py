"""Partition aggregation: mapping GPU work onto transport partitions.

Terminology (paper Section IV-B preamble): a **user partition** is what the
application addresses (here: one per CUDA thread in the GPU benchmarks, per
Listing 2's ``MPIX_Pready(idx, preq)``); a **transport partition** is what
the wire protocol tracks (one RMA put + one arrived flag each).

:class:`AggregationSpec` fixes, for a kernel of ``grid x block_threads``:

* ``blocks_per_partition`` — how many blocks' data aggregate into one
  transport partition (the paper found 1 best intra-node, 2 best
  inter-node for large kernels — Section VI-A);
* ``signal_mode`` — which actor writes the host-visible ready signal:
  every **thread**, each warp's leader (**warp**), or the block's thread 0
  after ``__syncthreads()`` (**block**).  Multi-block aggregation always
  uses global-memory counters so exactly one host write per transport
  partition crossing occurs in block mode.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.mpi.errors import MpiUsageError


class SignalMode(enum.Enum):
    """Granularity of device -> host ready signalling (Fig 3)."""

    THREAD = "thread"
    WARP = "warp"
    BLOCK = "block"


@dataclass(frozen=True)
class AggregationSpec:
    """Static mapping of a kernel's blocks onto transport partitions."""

    grid: int
    block_threads: int
    blocks_per_partition: int = 1
    signal_mode: SignalMode = SignalMode.BLOCK
    warp_size: int = 32

    def __post_init__(self) -> None:
        if self.grid < 1 or self.block_threads < 1:
            raise MpiUsageError("grid and block_threads must be >= 1")
        if self.blocks_per_partition < 1:
            raise MpiUsageError("blocks_per_partition must be >= 1")
        if self.grid % self.blocks_per_partition != 0:
            raise MpiUsageError(
                f"grid {self.grid} does not divide into transport partitions of "
                f"{self.blocks_per_partition} blocks"
            )

    # -- shape ------------------------------------------------------------------
    @property
    def n_transport(self) -> int:
        return self.grid // self.blocks_per_partition

    @property
    def n_user(self) -> int:
        """User partitions: one per thread (Listing 2 semantics)."""
        return self.grid * self.block_threads

    @property
    def threads_per_partition(self) -> int:
        return self.blocks_per_partition * self.block_threads

    @property
    def warps_per_block(self) -> int:
        return math.ceil(self.block_threads / self.warp_size)

    # -- mappings ---------------------------------------------------------------
    def tp_of_block(self, block_id: int) -> int:
        if not 0 <= block_id < self.grid:
            raise MpiUsageError(f"block {block_id} out of range for grid {self.grid}")
        return block_id // self.blocks_per_partition

    def tp_of_user(self, user_partition: int) -> int:
        if not 0 <= user_partition < self.n_user:
            raise MpiUsageError(
                f"user partition {user_partition} out of range ({self.n_user})"
            )
        return user_partition // self.threads_per_partition

    def host_writes_per_block(self) -> int:
        """Host flag stores one block issues under the signal mode."""
        if self.signal_mode is SignalMode.THREAD:
            return self.block_threads
        if self.signal_mode is SignalMode.WARP:
            return self.warps_per_block
        return 1

    def expected_host_signals(self) -> int:
        """Host-side signal count that marks one transport partition ready.

        Block mode uses global-memory counters across blocks, so exactly
        one host write lands per transport partition regardless of
        ``blocks_per_partition``; thread/warp modes write per actor.
        """
        if self.signal_mode is SignalMode.BLOCK:
            return 1
        per_block = self.host_writes_per_block()
        return per_block * self.blocks_per_partition

    def gmem_threshold(self) -> int:
        """Global-memory counter crossing that triggers the host write."""
        return self.blocks_per_partition
