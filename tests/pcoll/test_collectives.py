"""Partitioned collectives end-to-end: allreduce, bcast, device path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuda.kernel import UniformKernel
from repro.cuda.timing import WorkSpec
from repro.hw.params import ONE_NODE, PAPER_TESTBED, TestbedConfig
from repro.mpi.errors import MpiStateError, MpiUsageError
from repro.mpi.ops import MAX, SUM
from repro.mpi.world import World
from repro.partitioned import device as pdev


def _allreduce_job(P, U, chunk=64, epochs=1, op=SUM, config=None, values=None):
    """Run a partitioned allreduce; returns per-rank final arrays."""
    config = config or (ONE_NODE if P <= 4 else PAPER_TESTBED)
    n = U * P * chunk

    def main(ctx):
        comm = ctx.comm
        w = ctx.gpu.alloc(n)
        req = yield from comm.pallreduce_init(w, w, partitions=U, op=op, device=ctx.gpu)
        outs = []
        for e in range(epochs):
            fill = values(ctx.rank, e) if values else float(ctx.rank + 1)
            w.data[:] = fill
            yield from req.start()
            yield from req.pbuf_prepare()
            for u in range(U):
                yield from req.pready(u)
            yield from req.wait()
            outs.append(w.data.copy())
        return outs

    return World(config).run(main, nprocs=P)


@pytest.mark.parametrize("P,U", [(2, 1), (2, 4), (3, 2), (4, 4), (4, 8)])
def test_allreduce_sum_shapes(P, U):
    results = _allreduce_job(P, U)
    expect = sum(range(1, P + 1))
    for r in results:
        assert np.all(r[0] == expect)


def test_allreduce_max():
    results = _allreduce_job(4, 2, op=MAX)
    for r in results:
        assert np.all(r[0] == 4.0)


def test_allreduce_eight_ranks_two_nodes():
    results = _allreduce_job(8, 2, config=PAPER_TESTBED)
    for r in results:
        assert np.all(r[0] == sum(range(1, 9)))


def test_allreduce_multi_epoch():
    results = _allreduce_job(4, 2, epochs=3, values=lambda r, e: float(r + 1 + 10 * e))
    for r in results:
        for e in range(3):
            assert np.all(r[e] == sum(x + 1 + 10 * e for x in range(4)))


def test_allreduce_nonuniform_data():
    """Each element differs: verifies chunk routing exactly."""
    rng_n = 4 * 4 * 16

    def values(rank, _e):
        return 0.0  # placeholder; we fill below via closure trick

    # Use distinct per-element data through a custom job.
    def main(ctx):
        comm = ctx.comm
        n = rng_n
        w = ctx.gpu.alloc(n)
        w.data[:] = np.arange(n) * (ctx.rank + 1)
        req = yield from comm.pallreduce_init(w, w, partitions=4, device=ctx.gpu)
        yield from req.start()
        yield from req.pbuf_prepare()
        for u in range(4):
            yield from req.pready(u)
        yield from req.wait()
        return w.data.copy()

    results = World(ONE_NODE).run(main, nprocs=4)
    expected = np.arange(rng_n) * sum(range(1, 5))
    for r in results:
        assert np.allclose(r, expected)


def test_allreduce_out_of_place_staging():
    def main(ctx):
        comm = ctx.comm
        n = 4 * 4 * 16
        src = ctx.gpu.alloc(n, fill=float(ctx.rank + 1))
        dst = ctx.gpu.alloc(n)
        req = yield from comm.pallreduce_init(src, dst, partitions=4, device=ctx.gpu)
        yield from req.start()
        yield from req.pbuf_prepare()
        for u in range(4):
            yield from req.pready(u)
        yield from req.wait()
        assert np.all(src.data == float(ctx.rank + 1))  # source untouched
        assert np.all(dst.data == 10.0)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_collective_parrived_flags():
    order = {}

    def main(ctx):
        comm = ctx.comm
        n = 2 * 4 * 16
        w = ctx.gpu.alloc(n, fill=1.0)
        req = yield from comm.pallreduce_init(w, w, partitions=2, device=ctx.gpu)
        yield from req.start()
        yield from req.pbuf_prepare()
        assert not req.parrived(0)
        for u in range(2):
            yield from req.pready(u)
        yield from req.wait()
        assert req.parrived(0) and req.parrived(1)
        with pytest.raises(MpiUsageError):
            req.parrived(5)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_device_initiated_collective():
    def main(ctx):
        comm = ctx.comm
        grid, block = 32, 1024
        n = grid * block
        w = ctx.gpu.alloc(n, fill=float(ctx.rank + 1))
        req = yield from comm.pallreduce_init(w, w, partitions=8, device=ctx.gpu)
        yield from req.start()
        yield from req.pbuf_prepare()
        preq = yield from req.prequest_create(ctx.gpu, grid=grid, block=block)
        k = UniformKernel(grid, block, WorkSpec.bce(),
                          wave_hook=lambda kc, wv: pdev.pready_wave(kc, preq, wv))
        yield from ctx.gpu.launch_h(k)
        yield from req.wait()
        assert np.all(w.data == 10.0)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_pbcast_root_and_leaves():
    def main(ctx):
        comm = ctx.comm
        buf = ctx.gpu.alloc(256, fill=float(99 if ctx.rank == 2 else 0))
        req = yield from comm.pbcast_init(buf, partitions=4, root=2, device=ctx.gpu)
        yield from req.start()
        yield from req.pbuf_prepare()
        if ctx.rank == 2:
            for u in range(4):
                yield from req.pready(u)
        yield from req.wait()
        assert np.all(buf.data == 99.0)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_pbcast_partition_pipelining():
    """Partitions released one by one still complete (independent SMs)."""

    def main(ctx):
        comm = ctx.comm
        buf = ctx.gpu.alloc(64, fill=float(7 if ctx.rank == 0 else 0))
        req = yield from comm.pbcast_init(buf, partitions=4, root=0, device=ctx.gpu)
        yield from req.start()
        yield from req.pbuf_prepare()
        if ctx.rank == 0:
            for u in range(4):
                yield ctx.engine.timeout(5e-6)
                yield from req.pready(u)
        yield from req.wait()
        assert np.all(buf.data == 7.0)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_pready_errors():
    def main(ctx):
        comm = ctx.comm
        n = 2 * 4 * 16
        w = ctx.gpu.alloc(n, fill=1.0)
        req = yield from comm.pallreduce_init(w, w, partitions=2, device=ctx.gpu)
        with pytest.raises(MpiStateError):
            req.issue_user_pready(0)  # before start
        yield from req.start()
        yield from req.pbuf_prepare()
        yield from req.pready(0)
        with pytest.raises(MpiStateError, match="twice"):
            yield from req.pready(0)
        with pytest.raises(MpiUsageError):
            yield from req.pready(9)
        yield from req.pready(1)
        yield from req.wait()
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_indivisible_geometry_rejected():
    def main(ctx):
        comm = ctx.comm
        with pytest.raises(MpiUsageError):
            # 100 elements / 3 partitions does not divide
            yield from comm.pallreduce_init(
                ctx.gpu.alloc(100), ctx.gpu.alloc(100), partitions=3, device=ctx.gpu
            )
        return True

    # NB: init raises locally before any communication, so all ranks agree.
    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_chunk_indivisible_rejected():
    def main(ctx):
        comm = ctx.comm
        # 8 elements, 2 partitions -> 4 elems/partition; P=4 ring chunks
        # would need 4 | 4 -> ok; use P=3... with nprocs=3 ring chunks=3
        with pytest.raises(MpiUsageError, match="ring chunks"):
            yield from comm.pallreduce_init(
                ctx.gpu.alloc(8), ctx.gpu.alloc(8), partitions=2, device=ctx.gpu
            )
        return True

    assert all(World(ONE_NODE).run(main, nprocs=3))


def test_single_rank_collective_rejected():
    def main(ctx):
        with pytest.raises(MpiUsageError):
            yield from ctx.comm.pallreduce_init(
                ctx.gpu.alloc(8), ctx.gpu.alloc(8), partitions=2, device=ctx.gpu
            )
        return True

    assert all(World(ONE_NODE).run(main, nprocs=1))


@given(
    P=st.sampled_from([2, 4]),
    U=st.sampled_from([1, 2, 4]),
    chunk=st.sampled_from([4, 16]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None)
def test_property_allreduce_equals_numpy_sum(P, U, chunk, seed):
    """Partitioned allreduce == elementwise sum for random inputs."""
    rng = np.random.default_rng(seed)
    n = U * P * chunk
    inputs = {r: rng.standard_normal(n) for r in range(P)}

    def main(ctx):
        comm = ctx.comm
        w = ctx.gpu.alloc(n)
        w.data[:] = inputs[ctx.rank]
        req = yield from comm.pallreduce_init(w, w, partitions=U, device=ctx.gpu)
        yield from req.start()
        yield from req.pbuf_prepare()
        for u in range(U):
            yield from req.pready(u)
        yield from req.wait()
        return w.data.copy()

    results = World(ONE_NODE).run(main, nprocs=P)
    expected = sum(inputs.values())
    for r in results:
        assert np.allclose(r, expected)
