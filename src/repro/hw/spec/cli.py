"""``python -m repro topo``: print and validate a machine spec's link table.

    python -m repro topo --list            # known spec names
    python -m repro topo gh200-2x4         # link table + route validation
    python -m repro topo pcie-nop2p --routes  # also dump resolved routes

Validation builds the full link graph and resolves a route for every
(src-port, dst-port) pair, checking that each resolved route acquires
links in strictly increasing stage (the deadlock-freedom ladder) — the
same invariant the property tests sweep.
"""

from __future__ import annotations

import argparse
from typing import Iterable, List, Tuple

from repro.hw.spec.catalog import SPECS, named_spec
from repro.hw.spec.graph import LinkGraph, Port, RouteSearchError
from repro.hw.spec.schema import MachineSpec, SpecError
from repro.sim.engine import Engine
from repro.units import GBps, us


def _ports(spec: MachineSpec) -> List[Port]:
    ports: List[Port] = [("gpu", g) for g in range(spec.n_gpus)]
    for n in range(spec.n_nodes):
        ports.append(("pin", n))
        ports.append(("pag", n))
    return ports


def _route_rows(graph: LinkGraph) -> Iterable[Tuple[Port, Port, Tuple]]:
    ports = _ports(graph.spec)
    for src in ports:
        for dst in ports:
            yield src, dst, graph.search(src, dst)


def validate_spec(spec: MachineSpec) -> List[str]:
    """Return a list of problems (empty = valid).

    Checks the schema invariants, then resolves every endpoint-pair route
    and verifies the hierarchical acquisition order.
    """
    problems: List[str] = []
    try:
        spec.validate()
    except SpecError as exc:
        return [f"schema: {exc}"]
    graph = LinkGraph(Engine(), spec)
    try:
        for src, dst, route in _route_rows(graph):
            if not route:
                problems.append(f"route {src} -> {dst}: empty")
                continue
            stages = [link.stage for link in route]
            if src != dst and stages != sorted(set(stages)):
                problems.append(
                    f"route {src} -> {dst}: stages not strictly increasing: "
                    f"{[(l.name, l.stage) for l in route]}"
                )
    except RouteSearchError as exc:
        problems.append(f"routing: {exc}")
    return problems


def _fmt_link(link) -> str:
    return (
        f"{link.name:<14} {link.kind:<10} stage={link.stage} "
        f"{link.bandwidth / GBps:8.1f} GB/s {link.latency / us:7.2f} us"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro topo",
        description="Print and validate a machine spec's link table.",
    )
    parser.add_argument("spec", nargs="?", help="spec name (see --list)")
    parser.add_argument("--list", action="store_true", help="list known specs")
    parser.add_argument("--routes", action="store_true", help="dump resolved routes")
    args = parser.parse_args(argv)

    if args.list or args.spec is None:
        for name, spec in SPECS.items():
            print(f"{name:<14} {spec.n_nodes} node(s) x {spec.uniform_gpus_per_node} gpu(s)")
        return 0

    try:
        spec = named_spec(args.spec)
    except SpecError as exc:
        parser.error(str(exc))

    graph = LinkGraph(Engine(), spec)
    print(f"machine {spec.name}: {spec.n_nodes} node(s), {spec.n_gpus} gpu(s)")
    for n, node in enumerate(spec.nodes):
        print(f"  node {n}: {node.n_gpus} gpu(s), {node.interconnect.value} interconnect, "
              f"{'NIC per GPU' if node.nic_per_gpu else 'shared node NIC'}")
    print(f"\n{len(graph.links)} links:")
    for link in graph.links:
        print(f"  {_fmt_link(link)}")

    if args.routes:
        print("\nroutes:")
        for src, dst, route in _route_rows(graph):
            names = " -> ".join(link.name for link in route)
            print(f"  {src} -> {dst}: {names}")

    problems = validate_spec(spec)
    if problems:
        print(f"\nINVALID: {len(problems)} problem(s)")
        for p in problems:
            print(f"  {p}")
        return 1
    print("\nvalid: all endpoint-pair routes resolve with hierarchical link order")
    return 0
