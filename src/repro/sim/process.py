"""Generator-coroutine processes.

A process wraps a generator. Each ``yield`` hands the engine something to
wait for (an :class:`~repro.sim.events.Event`, another :class:`Process`, a
bare number meaning a timeout, or ``None`` meaning "resume immediately but
after already-scheduled same-time events").  The value of the awaited event
is sent back into the generator; failures are thrown into it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, Timeout, PRIORITY_NORMAL, PRIORITY_URGENT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ProcessFailed(Exception):
    """Raised by Engine.run when an unhandled exception escaped a process."""

    def __init__(self, process: "Process", exc: BaseException) -> None:
        super().__init__(f"{process!r} failed: {exc!r}")
        self.process = process
        self.exc = exc


class Process(Event):
    """A running coroutine; is itself an Event that fires on termination.

    The event value is the generator's return value (``StopIteration``
    payload); if the generator raises, the process event *fails* with that
    exception, which then propagates to any process waiting on it.
    """

    __slots__ = ("gen", "name", "_target", "_started")

    def __init__(self, engine: "Engine", gen: Generator, name: Optional[str] = None) -> None:
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        super().__init__(engine)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None  # event we are currently waiting on
        self._started = False
        # Kick off at current time, urgent so spawn order is preserved.
        boot = Event(engine)
        boot.add_callback(self._resume)
        boot.succeed(None, priority=PRIORITY_URGENT)

    # -- lifecycle ------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        if self._target is not None:
            # Detach from whatever we were waiting on.
            target, self._target = self._target, None
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
                # A timed-out wait nobody else observes is dead weight on
                # the heap; lazy-delete it so the engine skips the pop.
                if not target.callbacks and isinstance(target, Timeout):
                    target.cancel()
        wake = Event(self.engine)
        wake.add_callback(lambda ev: self._step(throw=Interrupt(cause)))
        wake.succeed(None, priority=PRIORITY_URGENT)

    def kill(self) -> None:
        """Terminate the process immediately without resuming it.

        Unlike :meth:`interrupt` — which throws into the generator at the
        current time and lets it unwind — ``kill`` closes the generator
        synchronously and succeeds the process event with ``None``.  Used
        by shard teardown: when a window aborts, resident processes must
        not run again against half-merged state.
        """
        if self.triggered:
            return
        if self._target is not None:
            target, self._target = self._target, None
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
                if not target.callbacks and isinstance(target, Timeout):
                    target.cancel()
        self.gen.close()
        self.succeed(None, priority=PRIORITY_NORMAL)

    # -- engine internals -------------------------------------------------------
    def _resume(self, ev: Event) -> None:
        self._target = None
        if ev.ok:
            self._step(send=ev.value)
        else:
            self._step(throw=ev.value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        if self.triggered:
            return
        self.engine._active_process = self
        try:
            if throw is not None:
                target = self.gen.throw(throw)
            else:
                target = self.gen.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            if self.callbacks:
                self.fail(exc)
            else:
                # Nobody is waiting on this process: surface the crash.
                self.engine._crash(self, exc)
            return
        finally:
            self.engine._active_process = None
        self._wait_on(self._coerce(target))

    def _coerce(self, target: Any) -> Event:
        if isinstance(target, Event):
            return target
        # Coerced waits are anonymous and single-waiter, so they draw from
        # the engine's timeout free-list instead of allocating.
        if target is None:
            return self.engine.pooled_timeout(0.0)
        if isinstance(target, (int, float)):
            return self.engine.pooled_timeout(float(target))
        raise TypeError(f"process {self.name!r} yielded unsupported {target!r}")

    def _wait_on(self, target: Event) -> None:
        if target is self:
            raise RuntimeError(f"process {self.name!r} awaits itself")
        self._target = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"
