"""Partitioned point-to-point: host-side requests and wire protocol.

Implements the control flow of the paper's Fig 1 / Section IV-A:

1. ``psend_init``/``precv_init`` — create the (lazily-initialized)
   partitioned UCP resources, send/expect ``setup_t`` (non-blocking);
2. ``start`` — mark pending, reset internal flags, **no progress**;
3. ``pbuf_prepare`` — first call completes the rkey handshake (receiver
   registers buffers, replies with rkeys); later calls exchange the
   ready-to-receive signal;
4. ``pready(i)`` — ``ucp_put_nbx`` of partition *i* with a chained
   completion-flag put (UCX has no put-with-remote-completion);
5. ``parrived(i)`` — poll the receive-side completion flag;
6. ``wait`` — sender drains outstanding puts; receiver counts arrivals.

The requests are persistent: ``start`` re-arms them for a new epoch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional

import numpy as np

from repro.hw.memory import Buffer, MemSpace
from repro.mpi.errors import MpiStateError, MpiUsageError
from repro.mpi.progress import AM_PART_RTR, AM_PART_SETUP, AM_PART_SETUP_RESP
from repro.mpi.requests import PersistentRequest
from repro.partitioned.setup import SETUP_BYTES, ChannelKey, ReadyToReceive, SetupResp, SetupT
from repro.san import record
from repro.sim.events import Event
from repro.sim.resources import Counter, Flag
from repro.ucx.memreg import mem_map, rkey_pack, rkey_unpack
from repro.units import us

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import Communicator
    from repro.partitioned.prequest import Prequest

#: Host-side CPU cost of issuing one ucp_put_nbx (pready hot path).
PUT_ISSUE_COST = 0.65 * us
#: Host-side cost of packing the setup_t / prepopulating ucp params.
SETUP_PACK_COST = 1.6 * us
#: Host-side cost of MPI_Start (flag resets, no progress).
START_COST = 0.2 * us
#: Host-side cost of validating a ready-to-receive signal (later epochs).
RTR_PROCESS_COST = 1.0 * us
#: Progress-pass delay between a data put completing and its chained
#: completion-flag put being injected (Section IV-A4's two-put scheme).
FLAG_CHAIN_DELAY = 0.3 * us


def _part_ucp_first_touch(rt) -> Generator:
    """First partitioned call creates the component's UCP context/worker.

    The paper's component owns its own UCP resources (Section IV-A1); we
    charge their creation cost here but share the rank's worker for AM
    plumbing — the timing is what the reproduction depends on.
    """
    if not getattr(rt, "_part_ucp_ready", False):
        p = rt.params
        yield rt.engine.timeout(p.ucp_context_create + p.ucp_worker_create)
        rt._part_ucp_ready = True


class PsendRequest(PersistentRequest):
    """Sender side of a partitioned channel."""

    def __init__(
        self, comm: "Communicator", buf: Buffer, partitions: int, dest: int, tag: int
    ) -> None:
        super().__init__(comm.rt, "psend")
        if partitions < 1:
            raise MpiUsageError("partitions must be >= 1")
        if len(buf.data) % partitions != 0:
            raise MpiUsageError(
                f"send buffer of {len(buf.data)} elements does not divide into "
                f"{partitions} partitions"
            )
        self.comm = comm
        self.buf = buf
        self.partitions = partitions
        self.dest = dest
        self.tag = tag
        self.key: ChannelKey = (comm.comm_id, comm.rank, dest, tag)
        self.elems_per_partition = len(buf.data) // partitions

        # UCP state (filled by the first pbuf_prepare).
        self.ep = None
        self.rkey_data = None
        self.rkey_flags = None
        self.arrived_sink = None
        self.prepared_once = False
        self.prepared_epoch = 0

        # Reserved FIFO slot for the setup response (posting order matters).
        self._resp_ev: Event = self.rt.part_matcher.get((AM_PART_SETUP_RESP,) + self.key)

        # Epoch state.
        self.pready_called: List[bool] = []
        self._puts_done = Counter(self.engine)
        self._puts_expected = 0

        # One-byte source for chained completion-flag puts.
        self._flag_src = Buffer.alloc(1, np.int8, MemSpace.PINNED, node=self.rt.node, fill=1)

        # Device request (MPIX_Prequest), if created.
        self.preq: Optional["Prequest"] = None

    # -- MPI_Start -----------------------------------------------------------
    def start(self) -> Generator:
        yield self.engine.timeout(START_COST)
        self._begin_epoch()
        self.pready_called = [False] * self.partitions
        self._puts_done.reset()
        self._puts_expected = 0
        record.channel(
            "channel-send", self.buf, req=record.ident(self),
            partition_bytes=self.elems_per_partition * self.buf.itemsize,
            partitions=self.partitions,
        )
        record.mark("epoch-start", side="send", req=record.ident(self), epoch=self.epoch)
        if self.preq is not None:
            self.preq.arm_epoch()

    # -- MPIX_Pbuf_prepare --------------------------------------------------------
    def pbuf_prepare(self) -> Generator:
        if not self.active:
            raise MpiStateError("pbuf_prepare before MPI_Start")
        rt = self.rt
        yield rt.engine.timeout(rt.params.mpi_call_overhead)
        yield from rt.mca_partitioned_init()
        if not self.prepared_once:
            resp: SetupResp = yield self._resp_ev
            if resp.partitions != self.partitions:
                raise MpiUsageError(
                    f"partition count mismatch: sender {self.partitions}, "
                    f"receiver {resp.partitions}"
                )
            self.ep = yield from rt.worker.ep_create(resp.worker_addr)
            self.rkey_data = yield from rkey_unpack(rt.worker, resp.rkey_data)
            self.rkey_flags = yield from rkey_unpack(rt.worker, resp.rkey_flags)
            self.arrived_sink = resp.arrived_sink
            yield rt.engine.timeout(SETUP_PACK_COST)  # prepopulate put params
            self.prepared_once = True
        else:
            rtr: ReadyToReceive = yield rt.part_matcher.get((AM_PART_RTR,) + self.key)
            assert rtr.key == self.key
            # Validate the signal and refresh the put parameters.
            yield rt.engine.timeout(RTR_PROCESS_COST)
        self.prepared_epoch = self.epoch

    # -- MPI_Pready (host binding) ----------------------------------------------------
    def pready(self, partition: int) -> Generator:
        """Host MPI_Pready: RMA-put the partition plus its chained flag."""
        yield self.engine.timeout(PUT_ISSUE_COST)
        self.issue_pready(partition)

    def issue_pready(
        self,
        partition: int,
        with_data: bool = True,
        src_override: Optional[Buffer] = None,
        actor=None,
    ) -> None:
        """Zero-time core (the progression engine charges its own costs).

        ``with_data=False`` is the Kernel-Copy completion path: the data
        already landed via the device's direct stores, only the
        receive-side completion flag needs raising.  ``src_override`` lets
        the partitioned-collective layer put a chunk of its working buffer
        through this wire partition (Section IV-B2's transport-partition
        mapping) instead of the channel buffer's own slice.  ``actor`` is
        the sanitizer identity of the issuer (defaults to this rank's host
        program; the progression engine passes its own).
        """
        if actor is None:
            actor = ("host", self.rt.world_rank)
        if not self.active:
            msg = "MPI_Pready outside an active epoch (missing MPI_Start?)"
            record.guard("pready-inactive", actor, msg)
            raise MpiStateError(msg)
        if self.prepared_epoch != self.epoch:
            msg = "MPI_Pready before MPIX_Pbuf_prepare in this epoch"
            record.guard("pready-inactive", actor, msg)
            raise MpiStateError(msg)
        if not 0 <= partition < self.partitions:
            raise MpiUsageError(
                f"partition {partition} out of range 0..{self.partitions - 1}"
            )
        if self.pready_called[partition]:
            raise MpiStateError(f"MPI_Pready called twice for partition {partition}")
        self.pready_called[partition] = True
        # Publish the issuer's history to whoever observes this partition's
        # arrival, and open the in-flight window the overwrite check tracks.
        record.mark(
            "wire-pready", actor=actor, req=record.ident(self), partition=partition,
            epoch=self.epoch,
        )
        record.release(actor, ("arr", self.key, partition))

        if with_data:
            self._puts_expected += 2
            src = src_override if src_override is not None else self.buf.partition(
                partition, self.partitions
            )
            if len(src.data) != self.elems_per_partition:
                raise MpiUsageError(
                    f"pready source of {len(src.data)} elements does not match the "
                    f"partition size {self.elems_per_partition}"
                )
            data_put = self.ep.put_nbx(
                src,
                self.rkey_data,
                offset_elems=partition * self.elems_per_partition,
                callback=lambda: self._chain_flag_after_data(partition),
            )
            data_put.add_callback(lambda _ev: self._puts_done.add(1))
        else:
            self._puts_expected += 1
            self._chain_flag(partition)

    def _chain_flag_after_data(self, partition: int) -> None:
        """Data put completed: detect the completion, then chain the flag.

        UCX reports the data put's completion to a callback the worker
        runs on its next progress pass; that detection delay precedes the
        flag put's injection.
        """
        def proc():
            yield self.engine.timeout(FLAG_CHAIN_DELAY)
            self._chain_flag(partition)

        self.engine.process(proc(), name="chain_flag")

    def _chain_flag(self, partition: int) -> None:
        """The second put: raise the receive-side partition-arrived flag."""
        sink = self.arrived_sink
        flag_put = self.ep.put_nbx(
            self._flag_src,
            self.rkey_flags,
            offset_elems=partition,
            callback=lambda: sink(partition),
        )
        # The flag put is always the transport's last act for a partition,
        # in both copy modes: closing the send-overwrite window here covers
        # the progression-engine and kernel-copy paths alike.
        flag_put.add_callback(
            lambda _ev: record.mark("tp-complete", req=record.ident(self), partition=partition)
        )
        flag_put.add_callback(lambda _ev: self._puts_done.add(1))

    # -- MPI_Wait ------------------------------------------------------------------
    def wait(self, charge_overhead: bool = True) -> Generator:
        """Sender MPI_Wait: progress until all puts (data + flags) are done.

        ``charge_overhead=False`` is used by waitall-style aggregation
        (one call overhead for a whole request batch).
        """
        if charge_overhead:
            yield self.engine.timeout(self.rt.params.mpi_call_overhead)
        if not self.active:
            return self.status
        if not all(self.pready_called):
            missing = self.pready_called.count(False)
            # MPI_Wait blocks forever if partitions were never readied;
            # surface that as an error rather than hanging the simulation —
            # unless a device request is attached (its signals are still
            # in flight through the progression engine).
            if self.preq is None:
                raise MpiStateError(
                    f"MPI_Wait with {missing} partitions never marked ready"
                )
        yield self._puts_done.wait_for(self._expected_total())
        record.mark("epoch-complete", side="send", req=record.ident(self), epoch=self.epoch)
        self._complete({"epoch": self.epoch})
        return self.status

    def _expected_total(self) -> int:
        if self.preq is not None:
            # Every transport partition produces puts via the device path.
            from repro.partitioned.prequest import CopyMode

            per_tp = 2 if self.preq.mode is CopyMode.PROGRESSION_ENGINE else 1
            return self.partitions * per_tp
        return self.partitions * 2

    # -- MPIX_Prequest_create ------------------------------------------------------
    def prequest_create(self, device, agg=None, mode=None, **kw) -> Generator:
        from repro.partitioned.prequest import prequest_create

        return (yield from prequest_create(self, device, agg=agg, mode=mode, **kw))


class PrecvRequest(PersistentRequest):
    """Receiver side of a partitioned channel."""

    def __init__(
        self, comm: "Communicator", buf: Buffer, partitions: int, source: int, tag: int
    ) -> None:
        super().__init__(comm.rt, "precv")
        if partitions < 1:
            raise MpiUsageError("partitions must be >= 1")
        if len(buf.data) % partitions != 0:
            raise MpiUsageError(
                f"recv buffer of {len(buf.data)} elements does not divide into "
                f"{partitions} partitions"
            )
        self.comm = comm
        self.buf = buf
        self.partitions = partitions
        self.source = source
        self.tag = tag
        self.key: ChannelKey = (comm.comm_id, source, comm.rank, tag)

        self.prepared_once = False
        self.ep = None

        # Receive-side completion flags: pinned host memory + waiters.
        self.flags_buf = Buffer.alloc(
            partitions, np.int8, MemSpace.PINNED, node=self.rt.node, label="parrived_flags"
        )
        self.arrived_flags: List[Flag] = [Flag(self.engine) for _ in range(partitions)]
        self.arrived_count = Counter(self.engine)

        # Reserved FIFO slot for the sender's setup_t (posting order).
        self._setup_ev: Event = self.rt.part_matcher.get((AM_PART_SETUP,) + self.key)

    # -- MPI_Start -----------------------------------------------------------
    def start(self) -> Generator:
        yield self.engine.timeout(START_COST)
        self._begin_epoch()
        self.flags_buf.data[:] = 0
        for f in self.arrived_flags:
            f.clear()
        self.arrived_count.reset()
        record.channel(
            "channel-recv", self.buf, req=record.ident(self),
            partition_bytes=self.elems_per_partition * self.buf.itemsize,
            partitions=self.partitions,
        )
        record.mark("epoch-start", side="recv", req=record.ident(self), epoch=self.epoch)

    # -- MPIX_Pbuf_prepare ---------------------------------------------------------
    def pbuf_prepare(self) -> Generator:
        if not self.active:
            raise MpiStateError("pbuf_prepare before MPI_Start")
        rt = self.rt
        yield rt.engine.timeout(rt.params.mpi_call_overhead)
        yield from rt.mca_partitioned_init()
        if not self.prepared_once:
            setup: SetupT = yield self._setup_ev
            if setup.partitions != self.partitions:
                # Nack the sender (it validates the response's partition
                # count) so both endpoints raise instead of one hanging.
                ep = yield from rt.worker.ep_create(setup.worker_addr)
                nack = SetupResp(self.key, None, None, rt.worker.address, self.partitions)
                yield ep.am_send(AM_PART_SETUP_RESP, (self.key, nack), nbytes=SETUP_BYTES)
                raise MpiUsageError(
                    f"partition count mismatch: sender {setup.partitions}, "
                    f"receiver {self.partitions}"
                )
            if setup.elems_per_partition * setup.itemsize != (
                self.elems_per_partition * self.buf.itemsize
            ):
                raise MpiUsageError("partition byte-size mismatch between endpoints")
            memh_data = yield from mem_map(rt.worker, self.buf)
            memh_flags = yield from mem_map(rt.worker, self.flags_buf)
            pk_data = yield from rkey_pack(rt.worker, memh_data)
            pk_flags = yield from rkey_pack(rt.worker, memh_flags)
            self.ep = yield from rt.worker.ep_create(setup.worker_addr)
            resp = SetupResp(
                self.key, pk_data, pk_flags, rt.worker.address,
                self.partitions, arrived_sink=self._mark_arrived,
            )
            yield self.ep.am_send(
                AM_PART_SETUP_RESP, (self.key, resp), nbytes=SETUP_BYTES
            )
            self.prepared_once = True
        else:
            yield self.ep.am_send(
                AM_PART_RTR, (self.key, ReadyToReceive(self.key, self.epoch)),
                nbytes=SETUP_BYTES // 4,
            )

    @property
    def elems_per_partition(self) -> int:
        return len(self.buf.data) // self.partitions

    # -- arrival path -----------------------------------------------------------------
    def _mark_arrived(self, partition: int) -> None:
        """The chained flag put landed: partition data is in our buffer."""
        record.mark("arrived", req=record.ident(self), partition=partition)
        self.flags_buf.data[partition] = 1
        self.arrived_flags[partition].set()
        self.arrived_count.add(1)

    def parrived(self, partition: int) -> bool:
        """Host MPI_Parrived: poll the receive-side completion flag."""
        if not 0 <= partition < self.partitions:
            raise MpiUsageError(
                f"partition {partition} out of range 0..{self.partitions - 1}"
            )
        return self.arrived_flags[partition].is_set

    # -- MPI_Wait -------------------------------------------------------------------
    def wait(self, charge_overhead: bool = True) -> Generator:
        if charge_overhead:
            yield self.engine.timeout(self.rt.params.mpi_call_overhead)
        if not self.active:
            return self.status
        yield self.arrived_count.wait_for(self.partitions)
        # The single progression thread notices the last flag by polling.
        yield self.engine.timeout(self.rt.params.progress_poll_latency)
        host = ("host", self.rt.world_rank)
        for p in range(self.partitions):
            record.acquire(host, ("arr", self.key, p))
        record.mark("epoch-complete", side="recv", req=record.ident(self), epoch=self.epoch)
        self._complete({"epoch": self.epoch})
        return self.status


# --------------------------------------------------------------------------
# init entry points (called through Communicator)
# --------------------------------------------------------------------------

def psend_init(
    comm: "Communicator", buf: Buffer, partitions: int, dest: int, tag: int = 0
) -> Generator:
    """MPI_Psend_init: non-blocking, local; ships setup_t to the receiver."""
    rt = comm.rt
    yield rt.engine.timeout(rt.params.mpi_call_overhead)
    yield from _part_ucp_first_touch(rt)
    req = PsendRequest(comm, buf, partitions, dest, tag)
    yield rt.engine.timeout(SETUP_PACK_COST)
    ep = yield from rt.ep_to(comm, dest)
    setup = SetupT(
        req.key, partitions, req.elems_per_partition, buf.itemsize, rt.worker.address
    )
    yield ep.am_send(AM_PART_SETUP, (req.key, setup), nbytes=SETUP_BYTES)
    return req


def precv_init(
    comm: "Communicator", buf: Buffer, partitions: int, source: int, tag: int = 0
) -> Generator:
    """MPI_Precv_init: non-blocking, local; posts the setup_t receive."""
    rt = comm.rt
    yield rt.engine.timeout(rt.params.mpi_call_overhead)
    yield from _part_ucp_first_touch(rt)
    req = PrecvRequest(comm, buf, partitions, source, tag)
    return req
