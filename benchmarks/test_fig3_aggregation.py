"""Fig 3: device-side partition aggregation (thread vs warp vs block).

Paper claims reproduced here:

* all three mappings cost the same (within error) for a single thread,
  and warp == block up to 32 threads;
* above 32 threads the mappings diverge;
* at a full 1024-thread block, block-level MPIX_Pready is ~271.5x cheaper
  than thread-level and ~9.4x cheaper than warp-level.
"""

from conftest import run_exhibit, within

from repro.bench import figures


def test_fig3_aggregation(benchmark):
    series = run_exhibit(benchmark, figures.fig3)

    first = series.rows[0]
    assert first["threads"] == 1
    assert abs(first["thread_us"] - first["block_us"]) < 0.1
    assert abs(first["warp_us"] - first["block_us"]) < 0.1

    for row in series.rows:
        if row["threads"] <= 32:
            assert abs(row["warp_us"] - row["block_us"]) < 0.1, (
                f"warp and block must match at {row['threads']} threads (<= one warp)"
            )
        else:
            assert row["thread_us"] > row["warp_us"] > row["block_us"]

    last = series.rows[-1]
    assert last["threads"] == 1024
    within(last["thread_us"] / last["block_us"], 240.0, 300.0, "thread/block ratio (paper 271.5)")
    within(last["warp_us"] / last["block_us"], 8.0, 11.0, "warp/block ratio (paper 9.4)")
