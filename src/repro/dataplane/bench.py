"""Striping exhibit: single-path vs multi-path goodput on raw transfers.

Isolates the dataplane from the MPI stack: one fresh engine + fabric per
measurement, one device-to-device payload descriptor, goodput = bytes /
simulated completion time.  On the GH200 4-GPU NVLink mesh a large D2D
transfer has four link-disjoint routes (the direct NVLink, two two-hop
NVLink detours through the other mesh GPUs, and the C2C host path), so
striping multiplies the aggregate bottleneck bandwidth; small transfers
are overhead-dominated and striping cannot pay for the extra route
latency — the crossover the sweep exhibits.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bench.series import Series
from repro.dataplane.policy import MultiPathPolicy, PathPolicy, SinglePathPolicy
from repro.hw.memory import Buffer, MemSpace
from repro.hw.params import ONE_NODE
from repro.hw.topology import Fabric, MachineLike
from repro.sim.engine import Engine
from repro.units import KiB, MiB, fmt_bytes


def _mk_policy(policy) -> PathPolicy:
    if isinstance(policy, PathPolicy):
        return policy
    if policy in (None, "", "single"):
        return SinglePathPolicy()
    if policy == "multi":
        return MultiPathPolicy()
    raise ValueError(f"unknown policy {policy!r}")


def measure_stripe_goodput(
    nbytes: int,
    policy="single",
    config: MachineLike = ONE_NODE,
    src_gpu: int = 0,
    dst_gpu: int = 1,
) -> dict:
    """One D2D transfer of ``nbytes`` under a path policy.

    Returns goodput plus the stripe/route count the policy actually used
    and the dataplane ledger snapshot — everything the bench suite and
    the property tests assert on.  Payload buffers are virtual (zero
    stride), so GiB-scale points cost O(1) host memory.
    """
    engine = Engine()
    fabric = Fabric(engine, config)
    fabric.dataplane.policy = _mk_policy(policy)
    topo = fabric.topo
    n = max(nbytes // 8, 1)  # float64 elements
    src = Buffer.alloc_virtual(
        n, space=MemSpace.DEVICE, node=topo.node_of(src_gpu), gpu=src_gpu
    )
    dst = Buffer.alloc_virtual(
        n, space=MemSpace.DEVICE, node=topo.node_of(dst_gpu), gpu=dst_gpu
    )
    out = {}

    def proc():
        t0 = engine.now
        yield fabric.dataplane.put(src, dst, traffic_class="bench", name="stripe")
        out["elapsed"] = engine.now - t0

    done = engine.process(proc(), name="stripe_bench")
    engine.run()
    if not done.ok:  # pragma: no cover - surfacing simulation bugs
        raise RuntimeError(f"stripe bench failed: {done.value!r}")
    usage = fabric.dataplane.ledger["bench"]
    return {
        "nbytes": src.nbytes,
        "elapsed_s": out["elapsed"],
        "goodput_Bps": src.nbytes / out["elapsed"],
        "stripes": usage.stripes,
        "ledger": fabric.dataplane.ledger.as_dict(),
    }


#: Sweep sizes: overhead-dominated KiBs through bandwidth-bound GiB-scale.
SWEEP_SIZES = (
    64 * KiB,
    512 * KiB,
    2 * MiB,
    8 * MiB,
    64 * MiB,
    512 * MiB,
)


def stripe_sweep(
    sizes: Sequence[int] = SWEEP_SIZES,
    config: MachineLike = ONE_NODE,
    src_gpu: int = 0,
    dst_gpu: int = 1,
) -> Series:
    """Single-path vs multi-path goodput over a size sweep (one D2D pair)."""
    series = Series(
        exhibit="Striping",
        title="single-path vs link-disjoint striped goodput, D2D "
              f"gpu{src_gpu}->gpu{dst_gpu}",
        columns=("size", "single_GBps", "multi_GBps", "stripes", "speedup"),
    )
    for nbytes in sizes:
        single = measure_stripe_goodput(nbytes, "single", config, src_gpu, dst_gpu)
        multi = measure_stripe_goodput(nbytes, "multi", config, src_gpu, dst_gpu)
        series.add(
            size=fmt_bytes(nbytes),
            single_GBps=round(single["goodput_Bps"] / 1e9, 2),
            multi_GBps=round(multi["goodput_Bps"] / 1e9, 2),
            stripes=multi["stripes"],
            speedup=round(multi["goodput_Bps"] / single["goodput_Bps"], 3),
        )
    series.note(
        "multi stripes across link-disjoint routes (MultiPathPolicy); "
        "below min_stripe_bytes the plans coincide"
    )
    return series
