"""Trace recording: the sanitizer's view of a running simulation.

A :class:`Recorder` collects a flat, deterministic list of
:class:`TraceEvent` — accesses, sync edges, and semantic marks — from
instrumented sites across the simulator.  Recording is **opt-in**: every
hook is a no-op unless a recorder is installed (see
:class:`repro.san.sanitizer.Sanitizer`), so the uninstrumented hot path
costs one ``is None`` test.

Identity model:

* **Actors** are tuples naming a simulated execution context: a GPU block
  ``("block", "gpu0", "vadd", 3)``, a kernel's bulk wave context
  ``("kernel", "gpu0", "jacobi_p")``, a stream worker ``("stream",
  "gpu0.s0")``, a rank's host program ``("host", 0)``, or a rank's MPI
  progression engine ``("pe", 0)``.
* **Allocations** are base NumPy arrays; views map to ``(alloc, lo, hi)``
  byte ranges via ``np.byte_bounds`` so overlap checks see through
  ``Buffer.view``/``partition`` aliasing exactly like device pointers.
* **Sync objects** are tuples keying release/acquire pairs (host-signal
  counters, arrived flags, kernel launch/join, stream drains).

Time comes from the engines themselves: :class:`repro.sim.engine.Engine`
announces itself to the instrumentation bus at construction, the bus calls
``Recorder.on_attach``, and the recorder reads ``now`` from the most
recent engine (simulations run one at a time).

Since the :mod:`repro.obs` refactor the module-level hooks below publish
onto the ambient obs bus as ``cat="san"`` instants carrying the raw call
arguments; :class:`Recorder` is a bus *subscriber* that rebuilds the exact
pre-bus :class:`TraceEvent` stream from them (its own ``seq`` counter, its
own clock), so sanitizer verdicts and trace bytes are unchanged.  The
recorder stays reachable through :func:`install`/:func:`active` for the
synchronous identity queries (:func:`ident`, ``range_of``) the protocol
layers make while tracing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import bus as _obs
from repro.units import fmt_time

try:  # numpy >= 2.0
    from numpy.lib.array_utils import byte_bounds as _byte_bounds
except ImportError:  # pragma: no cover - numpy 1.x
    _byte_bounds = np.byte_bounds

Actor = Tuple[Any, ...]
SyncObj = Tuple[Any, ...]

#: Event kinds a recorder emits.
ACCESS = "access"
ACQUIRE = "acq"
RELEASE = "rel"
MARK = "mark"

#: Bus category the hooks publish under (and the Recorder subscribes to).
CAT = "san"


def fmt_actor(actor: Optional[Actor]) -> str:
    """Human-readable actor, e.g. ``block(gpu0,vadd,b3)``."""
    if actor is None:
        return "transport"
    head, *rest = actor
    return f"{head}({','.join(str(r) for r in rest)})" if rest else str(head)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence, totally ordered by ``(time, seq)``."""

    time: float
    seq: int
    kind: str                       # ACCESS / ACQUIRE / RELEASE / MARK
    actor: Optional[Actor]          # None: anonymous transport copy
    obj: Optional[SyncObj] = None   # sync object (acq/rel)
    alloc: int = -1                 # allocation index (access)
    lo: int = 0                     # byte range within the allocation
    hi: int = 0
    write: bool = False
    note: str = ""                  # mark kind, or access annotation
    info: Tuple[Tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.info:
            if k == key:
                return v
        return default

    def render(self) -> str:
        parts = [f"t={fmt_time(self.time)}", f"#{self.seq}", self.kind]
        if self.kind == ACCESS:
            rw = "W" if self.write else "R"
            parts.append(f"{rw} alloc{self.alloc}[{self.lo}:{self.hi})")
        if self.obj is not None:
            parts.append(f"obj={self.obj[0]}")
        parts.append(f"actor={fmt_actor(self.actor)}")
        if self.note:
            parts.append(self.note)
        parts += [f"{k}={v}" for k, v in self.info]
        return " ".join(parts)


@dataclass
class AllocInfo:
    """Registry entry for one base allocation seen by the recorder."""

    index: int
    label: str
    space: str                      # MemSpace.value, or "?" for pre-existing
    gpu: Optional[int]
    nbytes: int
    zero_filled: bool               # allocated with fill=None (calloc-style)
    preexisting: bool               # first seen via an access, not an alloc
    virtual: bool = False           # zero-stride geometry-only buffer
    base: Any = field(default=None, repr=False)  # strong ref, keeps ids stable


class Recorder:
    """Collects the trace for one sanitized window."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.allocs: Dict[int, AllocInfo] = {}      # index -> info
        self._alloc_by_id: Dict[int, int] = {}      # id(base array) -> index
        self._seq = 0
        self._engines: List[Any] = []
        self._idents: Dict[int, int] = {}           # id(obj) -> stable token
        self._ident_refs: List[Any] = []            # keep ids from being reused

    def ident(self, obj: Any) -> int:
        """Stable per-recorder token for ``obj`` (first-seen order).

        Used instead of raw ``id()`` in trace marks so identical runs
        produce byte-identical traces (the determinism contract).
        """
        token = self._idents.get(id(obj))
        if token is None:
            token = len(self._ident_refs)
            self._idents[id(obj)] = token
            self._ident_refs.append(obj)
        return token

    # -- time ---------------------------------------------------------------
    def note_engine(self, engine: Any) -> None:
        self._engines.append(engine)

    #: Bus-subscriber attach hook: track the engine's clock.
    on_attach = note_engine

    @property
    def now(self) -> float:
        return self._engines[-1].now if self._engines else 0.0

    # -- allocation registry --------------------------------------------------
    def _register(self, buf: Any, zero_filled: bool, preexisting: bool) -> AllocInfo:
        arr = buf.data
        base = arr
        while base.base is not None:
            base = base.base
        idx = self._alloc_by_id.get(id(base))
        if idx is not None:
            return self.allocs[idx]
        idx = len(self.allocs)
        info = AllocInfo(
            index=idx,
            label=buf.label,
            space=getattr(buf.space, "value", "?"),
            gpu=buf.gpu,
            nbytes=int(base.nbytes),
            zero_filled=zero_filled,
            preexisting=preexisting,
            virtual=0 in arr.strides,
            base=base,
        )
        self._alloc_by_id[id(base)] = idx
        self.allocs[idx] = info
        return info

    def note_alloc(self, buf: Any, zero_filled: bool) -> None:
        """A Buffer was allocated inside the sanitized window."""
        self._register(buf, zero_filled=zero_filled, preexisting=False)

    def range_of(self, buf: Any) -> Tuple[int, int, int]:
        """``(alloc index, lo, hi)`` byte range of a Buffer (view)."""
        info = self._register(buf, zero_filled=True, preexisting=True)
        arr = buf.data
        base = arr
        while base.base is not None:
            base = base.base
        lo_a, hi_a = _byte_bounds(arr)
        lo_b, _hi_b = _byte_bounds(base)
        return info.index, int(lo_a - lo_b), int(hi_a - lo_b)

    # -- event emission ----------------------------------------------------------
    def _emit(self, **kw: Any) -> None:
        self._seq += 1
        self.events.append(TraceEvent(time=self.now, seq=self._seq, **kw))

    def access(
        self, actor: Optional[Actor], buf: Any, write: bool, note: str = ""
    ) -> None:
        alloc, lo, hi = self.range_of(buf)
        if self.allocs[alloc].virtual:
            return  # geometry-only payload: aliasing is meaningless
        self._emit(
            kind=ACCESS, actor=actor, alloc=alloc, lo=lo, hi=hi, write=write, note=note
        )

    def acquire(self, actor: Actor, obj: SyncObj) -> None:
        self._emit(kind=ACQUIRE, actor=actor, obj=obj)

    def release(self, actor: Actor, obj: SyncObj) -> None:
        self._emit(kind=RELEASE, actor=actor, obj=obj)

    def mark(self, note: str, actor: Optional[Actor] = None, **info: Any) -> None:
        self._emit(kind=MARK, actor=actor, note=note, info=tuple(sorted(info.items())))

    # -- bus subscription ----------------------------------------------------
    def on_event(self, ev: Any) -> None:
        """Consume one ``cat="san"`` bus event (ignore everything else).

        The payload carries the raw hook arguments; re-emitting through the
        methods above reproduces the pre-bus trace byte-for-byte.
        """
        if ev.cat != CAT:
            return
        name = ev.name
        if name == ACCESS:
            self.access(ev.actor, ev.get("buf"), ev.get("write"), ev.get("note", ""))
        elif name == ACQUIRE:
            self.acquire(ev.actor, ev.get("obj"))
        elif name == RELEASE:
            self.release(ev.actor, ev.get("obj"))
        elif name == MARK:
            self._emit(
                kind=MARK, actor=ev.actor,
                note=ev.get("note", ""), info=ev.get("info", ()),
            )
        elif name == "alloc":
            self.note_alloc(ev.get("buf"), ev.get("zero_filled"))
        elif name == "channel":
            alloc, _lo, _hi = self.range_of(ev.get("buf"))
            info = dict(ev.get("info", ()))
            info["alloc"] = alloc
            self._emit(
                kind=MARK, actor=None,
                note=ev.get("note", ""), info=tuple(sorted(info.items())),
            )

    # -- serialization (determinism fixture) ------------------------------------
    def trace_bytes(self) -> bytes:
        return "\n".join(ev.render() for ev in self.events).encode()


# --------------------------------------------------------------------------
# module-level hook surface (what instrumented code calls)
#
# The hooks publish ``cat="san"`` events onto the ambient obs bus; every
# subscriber sees them (the profiler's timeline shows pready marks), and a
# subscribed Recorder rebuilds its TraceEvent stream from them.  The gate
# is one ``is None`` test on the ambient bus, exactly as before.
# --------------------------------------------------------------------------

_ACTIVE: Optional[Recorder] = None


def install(rec: Recorder) -> None:
    """Make ``rec`` the process-wide recorder for identity queries.

    Event *flow* goes through the obs bus — the Sanitizer additionally
    subscribes the recorder there; ``install`` only serves :func:`ident` /
    ``range_of`` lookups and enforces the one-sanitizer-at-a-time rule.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a Sanitizer is already active; they do not nest")
    _ACTIVE = rec


def uninstall() -> Recorder:
    global _ACTIVE
    if _ACTIVE is None:
        raise RuntimeError("no active Sanitizer to uninstall")
    rec, _ACTIVE = _ACTIVE, None
    return rec


def active() -> Optional[Recorder]:
    return _ACTIVE


def on() -> bool:
    return _ACTIVE is not None


def note_engine(engine: Any) -> None:
    """Legacy direct registration (engines now announce via the obs bus)."""
    if _ACTIVE is not None:
        _ACTIVE.note_engine(engine)


def note_alloc(buf: Any, zero_filled: bool) -> None:
    bus = _obs._AMBIENT
    if bus is not None:
        bus.instant(CAT, "alloc", None, buf=buf, zero_filled=zero_filled)


def access(actor: Optional[Actor], buf: Any, write: bool, note: str = "") -> None:
    bus = _obs._AMBIENT
    if bus is not None:
        bus.instant(CAT, ACCESS, actor, buf=buf, write=write, note=note)


def acquire(actor: Actor, obj: SyncObj) -> None:
    bus = _obs._AMBIENT
    if bus is not None:
        bus.instant(CAT, ACQUIRE, actor, obj=obj)


def release(actor: Actor, obj: SyncObj) -> None:
    bus = _obs._AMBIENT
    if bus is not None:
        bus.instant(CAT, RELEASE, actor, obj=obj)


def mark(note: str, actor: Optional[Actor] = None, **info: Any) -> None:
    bus = _obs._AMBIENT
    if bus is not None:
        bus.instant(CAT, MARK, actor, note=note, info=tuple(sorted(info.items())))


def channel(note: str, buf: Any, **info: Any) -> None:
    """Mark channel geometry: the Recorder resolves ``buf`` to its alloc."""
    bus = _obs._AMBIENT
    if bus is not None:
        bus.instant(
            CAT, "channel", None,
            buf=buf, note=note, info=tuple(sorted(info.items())),
        )


def ident(obj: Any) -> int:
    """Stable trace token for ``obj`` (0 when no recorder is active)."""
    return _ACTIVE.ident(obj) if _ACTIVE is not None else 0


def guard(check: str, actor: Optional[Actor], msg: str) -> None:
    """A runtime guard is about to raise: preserve it as a finding source."""
    mark("guard", actor=actor, check=check, msg=msg)
