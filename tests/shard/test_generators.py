"""Fabric generators: grammar, metrics, and the analytic-wire == graph pin."""

import pytest

from repro.hw.spec.cli import validate_spec
from repro.hw.spec.generators import (
    fabric_metrics,
    fat_tree,
    min_internode_latency,
    parse_machine,
    resolve_machine,
    wire_bandwidth,
    wire_latency,
    wire_path_classes,
)
from repro.hw.spec.graph import LinkGraph
from repro.hw.spec.schema import SpecError
from repro.sim.engine import Engine


# -- grammar -----------------------------------------------------------------

def test_default_fat_tree_512():
    spec = resolve_machine("fat-tree-512")
    assert spec.n_nodes == 64
    assert spec.n_gpus == 512
    assert spec.fabric.kind == "fat-tree"
    assert spec.fabric.rails == 4


def test_option_suffixes():
    spec = parse_machine("fat-tree-64-r2-n8-l4-s2")
    assert spec.n_nodes == 8
    assert spec.fabric.rails == 2
    assert spec.fabric.nodes_per_leaf == 4
    assert spec.fabric.spines_per_rail == 2
    dfly = parse_machine("dragonfly-128-r2-g4")
    assert dfly.fabric.kind == "dragonfly"
    assert dfly.fabric.nodes_per_group == 4


def test_non_generator_names_return_none():
    assert parse_machine("gh200-2x4") is None
    assert parse_machine("fat-tree") is None


def test_unknown_option_rejected():
    with pytest.raises(SpecError, match="unknown option"):
        parse_machine("fat-tree-512-z3")


def test_resolve_machine_prefers_catalog():
    spec = resolve_machine("gh200-2x4")
    assert spec.fabric is None
    with pytest.raises(SpecError, match="unknown machine"):
        resolve_machine("hyper-cube-512")


def test_indivisible_shapes_rejected():
    with pytest.raises(SpecError, match="not divisible"):
        fat_tree(gpus=100, gpus_per_node=8)
    with pytest.raises(SpecError):  # 8 gpus/node not divisible into 3 rails
        resolve_machine("fat-tree-64-r3")


# -- metrics -----------------------------------------------------------------

def test_fat_tree_metrics():
    m = fabric_metrics(resolve_machine("fat-tree-512"))
    assert m["nodes"] == 64 and m["gpus"] == 512 and m["rails"] == 4
    assert m["leaves_per_rail"] == 8 and m["spines_per_rail"] == 8
    assert m["diameter_links"] == 5  # nic + trunk up/down + nic + pxn hop
    # 4 leaves cross the bisection x 8 spines x 4 rails x trunk bw
    spec = resolve_machine("fat-tree-512")
    assert m["bisection_bw"] == 4 * 8 * 4 * spec.fabric.trunk_up.bandwidth
    assert m["lookahead_s"] == pytest.approx(min_internode_latency(spec))


def test_dragonfly_metrics():
    m = fabric_metrics(resolve_machine("dragonfly-512"))
    assert m["kind"] == "dragonfly"
    assert m["groups"] == 8
    assert m["diameter_links"] == 4


# -- wire model vs compiled graph -------------------------------------------

def _graph_wire_segment(graph, route):
    """The fabric (inter-node) portion of a graph-searched route."""
    wire_links = set()
    for reg in (graph.nic_out, graph.nic_in, graph.trunk_up,
                graph.trunk_down, graph.dfly_global):
        wire_links.update(id(link) for link in reg.values())
    return [link for link in route if id(link) in wire_links]


@pytest.mark.parametrize("machine", ["fat-tree-32-r2-l2", "dragonfly-32-r2-g2"])
def test_analytic_wire_matches_graph_route(machine):
    spec = resolve_machine(machine)
    graph = LinkGraph(Engine(), spec)
    # Same-rail cross-leaf/cross-group, same-rail same-leaf, and
    # cross-rail pairs; gpu 0 is (node 0, rail 0).
    pairs = [(0, 8), (0, 24), (0, 25)]
    for src, dst in pairs:
        route = graph.search(("gpu", src), ("gpu", dst))
        segment = _graph_wire_segment(graph, route)
        classes = wire_path_classes(spec, src, dst)
        assert [link.kind for link in segment] == [c.kind for c in classes], (src, dst)
        lat = sum(link.latency for link in segment)
        if spec.rail_of(src) != spec.rail_of(dst):
            lat += spec.nodes[0].d2d.latency  # PXN hop the wire model prices
        assert wire_latency(spec, src, dst) == pytest.approx(lat)
        assert wire_bandwidth(spec, src, dst) == pytest.approx(
            min(link.bandwidth for link in segment)
        )


def test_wire_model_undefined_same_node():
    spec = resolve_machine("fat-tree-32-r2-l2")
    with pytest.raises(SpecError, match="no wire segment"):
        wire_path_classes(spec, 0, 1)


def test_lookahead_needs_two_nodes():
    from repro.shard import local_spec

    single = local_spec(resolve_machine("fat-tree-32-r2-l2"), 0)
    with pytest.raises(SpecError, match="single node"):
        min_internode_latency(single)


# -- stage ladder ------------------------------------------------------------

@pytest.mark.parametrize("machine", [
    "fat-tree-32-r2-l2", "dragonfly-32-r2-g2", "fat-tree-512",
])
def test_generated_specs_validate(machine):
    assert validate_spec(resolve_machine(machine)) == []
